"""Batch local-scheduling policies (cost function: ETTC).

The paper evaluates First-Come-First-Served and Shortest-Job-First
(§IV-C); both "share the same cost function ... and are thus interoperable".
Longest-Job-First is included as an additional interoperable batch policy
for the future-work ablations.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List

from .base import BATCH, LocalScheduler, QueuedJob

if TYPE_CHECKING:
    from ..workload.jobs import Job
from .costs import ettc

__all__ = ["BatchScheduler", "FCFSScheduler", "SJFScheduler", "LJFScheduler"]


class BatchScheduler(LocalScheduler):
    """Common cost logic of all batch policies: ETTC of the probed job.

    The fast path bisects the probe into the cached execution order and
    reads its completion time off the cached prefix fold — the same float
    operations, in the same order, as the reference
    ``ettc(hypothetical_order(...), ...)``, which remains the fallback for
    probes whose job id is already queued (first-match semantics) and for
    ``generic`` probe modes.
    """

    kind = BATCH

    def cost_of(
        self, job: "Job", ertp: float, now: float, running_remaining: float
    ) -> float:
        """ETTC of ``job`` if it were enqueued now (lower is better)."""
        if job.job_id not in self._ids:
            index = self._probe_index(job, ertp)
            if index is not None:
                fold = self._prefix_fold(running_remaining)
                return (now + (fold[index] + ertp)) - now
        order = self.hypothetical_order(job, ertp)
        return ettc(order, job.job_id, now, running_remaining)


class FCFSScheduler(BatchScheduler):
    """First-Come-First-Served: execution follows local arrival order.

    Arrival means "reception of an ASSIGN message" (§IV-C) — i.e. the order
    jobs were enqueued on *this* node, which is exactly the base-class
    default order.
    """

    name = "FCFS"


class SJFScheduler(BatchScheduler):
    """Shortest-Job-First: "the scheduling order depends on the jobs' ERT,
    with shorter jobs being executed first" (§IV-C).

    Note the paper orders by the grid-baseline **ERT**, not the node-scaled
    ERTp — on a single node the two orders coincide anyway because ERTp is
    ERT divided by one constant.  Ties fall back to arrival order, keeping
    the policy deterministic.
    """

    name = "SJF"
    probe_mode = "keyed"

    def execution_order(self, entries: List[QueuedJob]) -> List[QueuedJob]:
        """Sort by grid-baseline ERT, ties by arrival."""
        return sorted(entries, key=lambda e: (e.job.ert, e.enqueue_time))

    def entry_sort_value(self, entry: QueuedJob) -> float:
        """First sort-key component: the job's ERT."""
        return entry.job.ert

    def probe_sort_value(self, job: "Job", ertp: float) -> float:
        """A probe sorts by its ERT like any entry."""
        return job.ert


class LJFScheduler(BatchScheduler):
    """Longest-Job-First (extension): inverse of SJF, same ETTC cost."""

    name = "LJF"
    probe_mode = "keyed"

    def execution_order(self, entries: List[QueuedJob]) -> List[QueuedJob]:
        """Sort by descending ERT, ties by arrival."""
        return sorted(entries, key=lambda e: (-e.job.ert, e.enqueue_time))

    def entry_sort_value(self, entry: QueuedJob) -> float:
        """First sort-key component: negated ERT."""
        return -entry.job.ert

    def probe_sort_value(self, job: "Job", ertp: float) -> float:
        """A probe sorts by its negated ERT like any entry."""
        return -job.ert
