"""Batch local-scheduling policies (cost function: ETTC).

The paper evaluates First-Come-First-Served and Shortest-Job-First
(§IV-C); both "share the same cost function ... and are thus interoperable".
Longest-Job-First is included as an additional interoperable batch policy
for the future-work ablations.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List

from .base import BATCH, LocalScheduler, QueuedJob

if TYPE_CHECKING:
    from ..workload.jobs import Job
from .costs import ettc

__all__ = ["BatchScheduler", "FCFSScheduler", "SJFScheduler", "LJFScheduler"]


class BatchScheduler(LocalScheduler):
    """Common cost logic of all batch policies: ETTC of the probed job."""

    kind = BATCH

    def cost_of(
        self, job: "Job", ertp: float, now: float, running_remaining: float
    ) -> float:
        order = self.hypothetical_order(job, ertp)
        return ettc(order, job.job_id, now, running_remaining)


class FCFSScheduler(BatchScheduler):
    """First-Come-First-Served: execution follows local arrival order.

    Arrival means "reception of an ASSIGN message" (§IV-C) — i.e. the order
    jobs were enqueued on *this* node, which is exactly the base-class
    default order.
    """

    name = "FCFS"


class SJFScheduler(BatchScheduler):
    """Shortest-Job-First: "the scheduling order depends on the jobs' ERT,
    with shorter jobs being executed first" (§IV-C).

    Note the paper orders by the grid-baseline **ERT**, not the node-scaled
    ERTp — on a single node the two orders coincide anyway because ERTp is
    ERT divided by one constant.  Ties fall back to arrival order, keeping
    the policy deterministic.
    """

    name = "SJF"

    def execution_order(self, entries: List[QueuedJob]) -> List[QueuedJob]:
        return sorted(entries, key=lambda e: (e.job.ert, e.enqueue_time))


class LJFScheduler(BatchScheduler):
    """Longest-Job-First (extension): inverse of SJF, same ETTC cost."""

    name = "LJF"

    def execution_order(self, entries: List[QueuedJob]) -> List[QueuedJob]:
        return sorted(entries, key=lambda e: (-e.job.ert, e.enqueue_time))
