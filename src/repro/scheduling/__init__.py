"""Local scheduling policies and the paper's ETTC / NAL cost functions."""

from .base import BATCH, DEADLINE, LocalScheduler, QueuedJob
from .batch import BatchScheduler, FCFSScheduler, LJFScheduler, SJFScheduler
from .costs import completion_times, ettc, nal
from .edf import EDFScheduler
from .priority import AgingPriorityScheduler, PriorityScheduler
from .registry import SCHEDULER_FACTORIES, make_scheduler
from .reservation import (
    BackfillScheduler,
    ReservationScheduler,
    reservation_completion_times,
)

__all__ = [
    "AgingPriorityScheduler",
    "BATCH",
    "BackfillScheduler",
    "ReservationScheduler",
    "reservation_completion_times",
    "BatchScheduler",
    "DEADLINE",
    "EDFScheduler",
    "FCFSScheduler",
    "LJFScheduler",
    "LocalScheduler",
    "PriorityScheduler",
    "QueuedJob",
    "SCHEDULER_FACTORIES",
    "SJFScheduler",
    "completion_times",
    "ettc",
    "make_scheduler",
    "nal",
]
