"""Name → scheduler-class registry used by scenario configuration."""

from __future__ import annotations

from typing import Callable, Dict

from ..errors import ConfigurationError
from .base import LocalScheduler
from .batch import FCFSScheduler, LJFScheduler, SJFScheduler
from .edf import EDFScheduler
from .priority import AgingPriorityScheduler, PriorityScheduler
from .reservation import BackfillScheduler, ReservationScheduler

__all__ = ["SCHEDULER_FACTORIES", "make_scheduler"]

SCHEDULER_FACTORIES: Dict[str, Callable[[], LocalScheduler]] = {
    "FCFS": FCFSScheduler,
    "SJF": SJFScheduler,
    "LJF": LJFScheduler,
    "EDF": EDFScheduler,
    "PRIORITY": PriorityScheduler,
    "AGING": AgingPriorityScheduler,
    "RESERVATION": ReservationScheduler,
    "BACKFILL": BackfillScheduler,
}


def make_scheduler(name: str) -> LocalScheduler:
    """Instantiate a local scheduler by policy name (case-insensitive)."""
    factory = SCHEDULER_FACTORIES.get(name.upper())
    if factory is None:
        raise ConfigurationError(
            f"unknown scheduling policy {name!r}; known: "
            f"{sorted(SCHEDULER_FACTORIES)}"
        )
    return factory()
