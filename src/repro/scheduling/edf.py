"""Earliest-Deadline-First local scheduling (cost function: NAL).

"Used only for deadline scheduling, this policy prioritizes jobs with an
earlier deadline (as specified in their profile)" (§IV-C).  EDF is the sole
deadline policy of the paper's evaluation and uses the Negative Accumulated
Lateness cost; deadline offers are never compared with batch (ETTC) offers.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List

from ..errors import SchedulingError
from .base import DEADLINE, LocalScheduler, QueuedJob

if TYPE_CHECKING:
    from ..workload.jobs import Job
from .costs import nal

__all__ = ["EDFScheduler"]


class EDFScheduler(LocalScheduler):
    """Earliest-Deadline-First with the NAL cost."""

    kind = DEADLINE
    name = "EDF"

    def enqueue(self, job: "Job", ertp: float, now: float) -> QueuedJob:
        if job.deadline is None:
            raise SchedulingError(
                f"job {job.job_id} has no deadline: EDF requires deadlines"
            )
        return super().enqueue(job, ertp, now)

    def execution_order(self, entries: List[QueuedJob]) -> List[QueuedJob]:
        return sorted(
            entries, key=lambda e: (e.job.deadline, e.enqueue_time)
        )

    def cost_of(
        self, job: "Job", ertp: float, now: float, running_remaining: float
    ) -> float:
        if job.deadline is None:
            raise SchedulingError(
                f"job {job.job_id} has no deadline: cannot compute NAL"
            )
        order = self.hypothetical_order(job, ertp)
        return nal(order, now, running_remaining)
