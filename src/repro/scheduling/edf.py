"""Earliest-Deadline-First local scheduling (cost function: NAL).

"Used only for deadline scheduling, this policy prioritizes jobs with an
earlier deadline (as specified in their profile)" (§IV-C).  EDF is the sole
deadline policy of the paper's evaluation and uses the Negative Accumulated
Lateness cost; deadline offers are never compared with batch (ETTC) offers.

NAL is a whole-queue quantity, so a probe cannot be O(1); what the hot path
avoids is the per-probe sort and allocation: the execution order and the
completion-time fold are cached per queue version, the probe is bisected
into position, and one tight loop over a reused gamma buffer replays the
exact float operations of the reference :func:`~repro.scheduling.costs.nal`.
The whole-queue NAL quoted in INFORM messages is additionally memoized per
``(version, now, running_remaining)``, collapsing the per-candidate
recomputation of an INFORM round into one evaluation.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional, Tuple

from ..errors import SchedulingError
from ..types import JobId
from .base import DEADLINE, LocalScheduler, QueuedJob

if TYPE_CHECKING:
    from ..workload.jobs import Job
from .costs import nal

__all__ = ["EDFScheduler"]


class EDFScheduler(LocalScheduler):
    """Earliest-Deadline-First with the NAL cost."""

    kind = DEADLINE
    name = "EDF"
    probe_mode = "keyed"

    def __init__(self) -> None:
        super().__init__()
        self._gammas: List[float] = []  # reused per-probe scratch buffer
        self._queue_nal_key: Optional[Tuple[int, float, float]] = None
        self._queue_nal = 0.0

    def enqueue(self, job: "Job", ertp: float, now: float) -> QueuedJob:
        """Enqueue ``job``; EDF refuses jobs without a deadline."""
        if job.deadline is None:
            raise SchedulingError(
                f"job {job.job_id} has no deadline: EDF requires deadlines"
            )
        return super().enqueue(job, ertp, now)

    def execution_order(self, entries: List[QueuedJob]) -> List[QueuedJob]:
        """Sort by deadline, ties by arrival."""
        return sorted(
            entries, key=lambda e: (e.job.deadline, e.enqueue_time)
        )

    def entry_sort_value(self, entry: QueuedJob) -> float:
        """First sort-key component: the job's deadline."""
        return entry.job.deadline

    def probe_sort_value(self, job: "Job", ertp: float) -> float:
        """A probe sorts by its deadline like any entry."""
        return job.deadline

    def cost_of(
        self, job: "Job", ertp: float, now: float, running_remaining: float
    ) -> float:
        """NAL of the queue with ``job`` hypothetically added."""
        if job.deadline is None:
            raise SchedulingError(
                f"job {job.job_id} has no deadline: cannot compute NAL"
            )
        if job.job_id in self._ids:
            order = self.hypothetical_order(job, ertp)
            return nal(order, now, running_remaining)
        index = self._probe_index(job, ertp)
        order = self._ordered()
        fold = self._prefix_fold(running_remaining)
        # One pass over (order[:index], probe, order[index:]) replaying the
        # reference operation order: elapsed += ertp; etc = now + elapsed;
        # gamma = deadline - etc.  Entries before the probe reuse the
        # cached fold (identical left-fold); from the probe on, the fold
        # continues locally.
        gammas = self._gammas
        gammas.clear()
        append = gammas.append
        for k in range(index):
            entry = order[k]
            append(entry.job.deadline - (now + fold[k + 1]))
        elapsed = fold[index] + ertp
        append(job.deadline - (now + elapsed))
        for k in range(index, len(order)):
            entry = order[k]
            elapsed = elapsed + entry.ertp
            append(entry.job.deadline - (now + elapsed))
        any_late = False
        for gamma in gammas:
            if gamma < 0:
                any_late = True
                break
        total = 0.0
        if not any_late:
            for gamma in gammas:
                total += -1.0 * abs(gamma)
        else:
            for gamma in gammas:
                if gamma < 0:
                    total += 1.0 * abs(gamma)
                # on-time entries contribute delta = 0.0: adding 0.0 * |g|
                # to a non-negative-so-far total is exact, so it is skipped
        return total

    def queue_cost_of(
        self, job_id: JobId, now: float, running_remaining: float
    ) -> float:
        """Whole-queue NAL (the deadline family's INFORM quote).

        Independent of ``job_id`` (§III-D quotes the queue, not the job),
        so one evaluation per ``(version, now, running_remaining)`` serves
        every candidate of an INFORM round.
        """
        key = (self._version, now, running_remaining)
        if self._queue_nal_key != key:
            self._queue_nal = nal(self._ordered(), now, running_remaining)
            self._queue_nal_key = key
        return self._queue_nal
