"""Advance reservation and conservative backfill (paper §VI future work).

"Additional local-scheduling policies would need to be considered, such as
advance reservation, backfill or priority scheduling."  This module covers
the first two:

* :class:`ReservationScheduler` — strict arrival order; a job carrying an
  advance reservation (``Job.not_before``) holds the machine: the queue
  blocks (the machine idles) until the reservation time arrives.
* :class:`BackfillScheduler` — same order, but while the head's
  reservation is pending a *later eligible* job may run if its ERTp fits
  entirely inside the idle gap, so the reservation is never delayed
  (conservative backfill).

Both are batch policies (ETTC cost family); their ETTC accounts for the
idle gaps that reservations introduce.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional

from ..errors import SchedulingError
from .base import QueuedJob
from .batch import BatchScheduler

if TYPE_CHECKING:
    from ..workload.jobs import Job

__all__ = [
    "ReservationScheduler",
    "BackfillScheduler",
    "reservation_completion_times",
]


def reservation_completion_times(
    order: List[QueuedJob], now: float, running_remaining: float
) -> List[float]:
    """Expected completion times under strict reservation order.

    Like :func:`~repro.scheduling.costs.completion_times` but each job
    starts no earlier than its reservation, inserting idle gaps.
    """
    if running_remaining < 0:
        raise SchedulingError(f"negative running_remaining {running_remaining!r}")
    etcs: List[float] = []
    cursor = now + running_remaining
    for entry in order:
        if entry.job.not_before is not None:
            cursor = max(cursor, entry.job.not_before)
        cursor += entry.ertp
        etcs.append(cursor)
    return etcs


class ReservationScheduler(BatchScheduler):
    """Strict arrival order with honoured advance reservations."""

    name = "RESERVATION"
    supports_reservations = True
    # Reservation ETTC depends on idle gaps, not just the prefix fold, so
    # cost probes use the reference path below; probe_mode is irrelevant.

    def pop_next(self, now: float = float("inf")) -> Optional[QueuedJob]:
        """Pop the head unless its reservation still holds the machine."""
        if not self._queue:
            return None
        head = self._ordered()[0]
        if not head.job.eligible_at(now):
            return None  # the machine is being held for the reservation
        self._remove_entry(head)
        return head

    def next_wakeup(self, now: float) -> Optional[float]:
        """The head's reservation time, when it is what blocks the queue."""
        if not self._queue:
            return None
        head = self._ordered()[0]
        if head.job.eligible_at(now):
            return None
        return head.job.not_before

    def cost_of(
        self, job: "Job", ertp: float, now: float, running_remaining: float
    ) -> float:
        """ETTC of ``job`` under reservation-aware completion times."""
        order = self.hypothetical_order(job, ertp)
        etcs = reservation_completion_times(order, now, running_remaining)
        for entry, etc in zip(order, etcs):
            if entry.job.job_id == job.job_id:
                return etc - now
        raise SchedulingError(  # pragma: no cover - probe always present
            f"probe job {job.job_id} missing from hypothetical order"
        )


class BackfillScheduler(ReservationScheduler):
    """Reservation order with conservative backfilling of idle gaps.

    While the head job waits for its reservation, the earliest-arrived
    eligible job whose ERTp fits inside the gap runs instead.  The fit test
    uses ERTp against the gap, so (up to ERT estimation error) the reserved
    job is never delayed.
    """

    name = "BACKFILL"

    def pop_next(self, now: float = float("inf")) -> Optional[QueuedJob]:
        """Pop the head, or the earliest job that fits the reservation gap."""
        if not self._queue:
            return None
        order = self._ordered()
        head = order[0]
        if head.job.eligible_at(now):
            self._remove_entry(head)
            return head
        gap = head.job.not_before - now
        for entry in order[1:]:
            if entry.job.eligible_at(now) and entry.ertp <= gap:
                self._remove_entry(entry)
                return entry
        return None

    def next_wakeup(self, now: float) -> Optional[float]:
        # If nothing could backfill right now, the next state change is the
        # head's reservation time (new arrivals re-trigger the executor
        # anyway).
        return super().next_wakeup(now)
