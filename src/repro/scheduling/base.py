"""Local-scheduler interface.

ARiA "does not enforce any particular local scheduling policy" (§III-A);
every node runs one :class:`LocalScheduler` that owns the node's waiting
queue.  A scheduler is *batch* (cost = ETTC) or *deadline* (cost = NAL);
the two families are never mixed in one cost comparison (§III-C).

Schedulers are deliberately simulator-agnostic: they know nothing about the
kernel or the network, only about jobs, their node-scaled estimates (ERTp)
and the current time — which keeps them unit-testable in isolation and
reusable by the centralized baselines.

Cost evaluation is the protocol's hot path (every REQUEST and INFORM a node
answers probes the queue), so the base class maintains *exact* incremental
caches keyed by a queue version counter: the policy execution order, the
sorted first-key components used to bisect a probe into position, and the
left-folded completion-time prefix (seeded with ``running_remaining``).
Every fast path replays the reference float operations in the reference
order, so cached and uncached evaluation are bit-identical — see
``docs/PERFORMANCE.md``.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import TYPE_CHECKING, Any, ClassVar, Dict, List, Optional, Tuple

from ..accel import MIN_VECTOR_LEN, prefix_fold
from ..errors import SchedulingError
from ..types import JobId

if TYPE_CHECKING:  # imported lazily to avoid a workload<->scheduling cycle
    from ..workload.jobs import Job

__all__ = ["QueuedJob", "LocalScheduler", "BATCH", "DEADLINE"]

#: Scheduler family labels.
BATCH = "batch"
DEADLINE = "deadline"


class QueuedJob:
    """A job waiting in a node's queue, with node-local bookkeeping."""

    __slots__ = ("job", "ertp", "enqueue_time")

    def __init__(self, job: "Job", ertp: float, enqueue_time: float) -> None:
        self.job = job
        self.ertp = ertp
        self.enqueue_time = enqueue_time

    def waiting_time(self, now: float) -> float:
        """How long the job has been waiting on this node."""
        return now - self.enqueue_time

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<QueuedJob {self.job.job_id} ertp={self.ertp:.0f}s>"


class LocalScheduler:
    """Base class: a policy-ordered waiting queue for one node."""

    #: ``BATCH`` or ``DEADLINE`` — selects the cost function family.
    kind: ClassVar[str] = BATCH
    #: Human-readable policy name ("FCFS", "SJF", "EDF", ...).
    name: ClassVar[str] = "?"
    #: Whether the policy honours advance reservations (``Job.not_before``).
    #: Jobs carrying a reservation may only be hosted by such schedulers.
    supports_reservations: ClassVar[bool] = False
    #: How cost probes locate the hypothetical entry's position:
    #: ``"arrival"`` appends it last (arrival-ordered policies), ``"keyed"``
    #: bisects the cached sort keys (policies sorted by
    #: ``(sort_value, enqueue_time)``), ``"generic"`` re-sorts via
    #: :meth:`hypothetical_order` (order depends on more than a per-entry
    #: key).
    probe_mode: ClassVar[str] = "arrival"

    def __init__(self) -> None:
        self._queue: List[QueuedJob] = []
        self._ids: set = set()
        #: Bumped on every queue mutation; all caches below key off it.
        self._version = 0
        self._order_version = -1
        self._order: List[QueuedJob] = []
        self._keys_version = -1
        self._keys: List[Any] = []
        self._pos_version = -1
        self._pos: Dict[JobId, int] = {}
        self._fold_key: Optional[Tuple[int, float]] = None
        self._fold: List[float] = []

    # ------------------------------------------------------------------
    # Policy hooks
    # ------------------------------------------------------------------
    def execution_order(self, entries: List[QueuedJob]) -> List[QueuedJob]:
        """Return ``entries`` in the order this policy would run them.

        Subclasses override this single hook; enqueueing, removal, cost and
        candidate selection all derive from it.  The default is arrival
        order (FCFS).
        """
        return list(entries)

    def entry_sort_value(self, entry: QueuedJob) -> Any:
        """First sort-key component of a queued entry (``keyed`` mode only).

        Must match the first component of the :meth:`execution_order` sort
        key exactly; the second component must be ``enqueue_time``.
        """
        raise NotImplementedError

    def probe_sort_value(self, job: "Job", ertp: float) -> Any:
        """First sort-key component a cost probe for ``job`` would get."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Queue operations
    # ------------------------------------------------------------------
    def enqueue(self, job: "Job", ertp: float, now: float) -> QueuedJob:
        """Append a newly assigned job to the waiting queue."""
        if job.job_id in self._ids:
            raise SchedulingError(f"job {job.job_id} already queued")
        entry = QueuedJob(job, ertp, now)
        self._queue.append(entry)
        self._ids.add(job.job_id)
        self._version += 1
        return entry

    def remove(self, job_id: JobId) -> QueuedJob:
        """Remove a waiting job (it is being rescheduled elsewhere)."""
        if job_id in self._ids:
            for index, entry in enumerate(self._queue):
                if entry.job.job_id == job_id:
                    del self._queue[index]
                    self._ids.discard(job_id)
                    self._version += 1
                    return entry
        raise SchedulingError(f"job {job_id} not in queue")

    def find(self, job_id: JobId) -> Optional[QueuedJob]:
        """The queue entry for ``job_id``, or ``None``."""
        if job_id not in self._ids:
            return None
        for entry in self._queue:
            if entry.job.job_id == job_id:
                return entry
        return None  # pragma: no cover - _ids mirrors the queue

    def _remove_entry(self, entry: QueuedJob) -> None:
        """Remove a known queue entry, keeping id set and caches in sync."""
        self._queue.remove(entry)
        self._ids.discard(entry.job.job_id)
        self._version += 1

    def pop_next(self, now: float = float("inf")) -> Optional[QueuedJob]:
        """Remove and return the job the policy runs next.

        Returns ``None`` when the queue is empty — or, for
        reservation-aware policies, when nothing may start at ``now``
        (see :meth:`next_wakeup`).
        """
        if not self._queue:
            return None
        entry = self._ordered()[0]
        self._remove_entry(entry)
        return entry

    def next_wakeup(self, now: float) -> Optional[float]:
        """Earliest future time at which :meth:`pop_next` could succeed
        even without new arrivals (``None`` for non-reservation policies,
        whose queues never block)."""
        return None

    def ordered_queue(self) -> List[QueuedJob]:
        """The current queue in execution order (non-destructive)."""
        return list(self._ordered())

    def queued(self) -> List[QueuedJob]:
        """The current queue in arrival order (non-destructive)."""
        return list(self._queue)

    def __len__(self) -> int:
        return len(self._queue)

    def __contains__(self, job_id: JobId) -> bool:
        return job_id in self._ids

    # ------------------------------------------------------------------
    # Version-keyed caches (exact — see module docstring)
    # ------------------------------------------------------------------
    def _ordered(self) -> List[QueuedJob]:
        """The execution order of the current queue, cached per version.

        Callers must not mutate the returned list; any queue mutation
        invalidates it on the next call.
        """
        if self._order_version != self._version:
            self._order = self.execution_order(self._queue)
            self._order_version = self._version
        return self._order

    def _sorted_keys(self) -> List[Any]:
        """First sort-key component of each ordered entry (``keyed`` mode)."""
        if self._keys_version != self._version:
            value_of = self.entry_sort_value
            self._keys = [value_of(e) for e in self._ordered()]
            self._keys_version = self._version
        return self._keys

    def _positions(self) -> Dict[JobId, int]:
        """Map job id -> index in the execution order, cached per version."""
        if self._pos_version != self._version:
            self._pos = {
                entry.job.job_id: index
                for index, entry in enumerate(self._ordered())
            }
            self._pos_version = self._version
        return self._pos

    def _prefix_fold(self, running_remaining: float) -> List[float]:
        """Left-folded busy time: ``fold[k] = rr + ertp_0 + ... + ertp_{k-1}``.

        The fold accumulates in execution order with the exact operation
        sequence of :func:`~repro.scheduling.costs.completion_times`
        (``elapsed = elapsed + ertp``), so ``now + fold[k]`` reproduces the
        reference ETC of entry ``k-1`` bit for bit.  Cached per
        ``(version, running_remaining)``.
        """
        if running_remaining < 0:
            raise SchedulingError(
                f"negative running_remaining {running_remaining!r}"
            )
        key = (self._version, running_remaining)
        if self._fold_key != key:
            ordered = self._ordered()
            if len(ordered) >= MIN_VECTOR_LEN:
                # Bit-identical vectorized accumulate (repro.accel).
                fold = [running_remaining]
                fold.extend(
                    prefix_fold(
                        [entry.ertp for entry in ordered], running_remaining
                    )
                )
            else:
                elapsed = running_remaining
                fold = [elapsed]
                append = fold.append
                for entry in ordered:
                    elapsed = elapsed + entry.ertp
                    append(elapsed)
            self._fold = fold
            self._fold_key = key
        return self._fold

    def _probe_index(self, job: "Job", ertp: float) -> Optional[int]:
        """Index a cost probe for ``job`` would occupy in execution order.

        Exactly equivalent to where :meth:`hypothetical_order` places the
        probe: the probe's ``enqueue_time`` is ``+inf``, so a stable sort
        by ``(sort_value, enqueue_time)`` puts it after every entry whose
        first component is <= the probe's — i.e. at ``bisect_right`` of the
        cached keys.  Returns ``None`` when the policy needs the generic
        re-sort (``probe_mode == "generic"``).
        """
        mode = self.probe_mode
        if mode == "arrival":
            return len(self._queue)
        if mode == "keyed":
            return bisect_right(
                self._sorted_keys(), self.probe_sort_value(job, ertp)
            )
        return None

    # ------------------------------------------------------------------
    # Cost (dispatches to repro.scheduling.costs; see subclasses)
    # ------------------------------------------------------------------
    def cost_of(
        self, job: "Job", ertp: float, now: float, running_remaining: float
    ) -> float:
        """Cost of accepting ``job`` given the current queue and load.

        Lower values are better offers (§III-C).  Implemented by the two
        family mixins in :mod:`repro.scheduling.costs`.
        """
        raise NotImplementedError

    def queue_cost_of(
        self, job_id: JobId, now: float, running_remaining: float
    ) -> float:
        """Cost the node quotes for a job *already* in its queue.

        This is the value carried inside INFORM messages (§III-D).  The
        base implementation is the batch family's: the job's ETTC within
        the current queue, read off the cached completion-time fold —
        bit-identical to ``ettc(ordered_queue(), job_id, ...)``.  The
        deadline family (EDF) overrides it with the whole-queue NAL.
        """
        index = self._positions().get(job_id)
        if index is None:
            raise SchedulingError(f"job {job_id} not in hypothetical order")
        fold = self._prefix_fold(running_remaining)
        return (now + fold[index + 1]) - now

    def hypothetical_order(self, job: "Job", ertp: float) -> List[QueuedJob]:
        """Execution order if ``job`` were enqueued now (for cost probes).

        The probe entry uses ``enqueue_time = +inf`` so arrival-ordered
        policies place it last, matching a real enqueue.
        """
        probe = QueuedJob(job, ertp, float("inf"))
        return self.execution_order(self._queue + [probe])
