"""Local-scheduler interface.

ARiA "does not enforce any particular local scheduling policy" (§III-A);
every node runs one :class:`LocalScheduler` that owns the node's waiting
queue.  A scheduler is *batch* (cost = ETTC) or *deadline* (cost = NAL);
the two families are never mixed in one cost comparison (§III-C).

Schedulers are deliberately simulator-agnostic: they know nothing about the
kernel or the network, only about jobs, their node-scaled estimates (ERTp)
and the current time — which keeps them unit-testable in isolation and
reusable by the centralized baselines.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, ClassVar, List, Optional

from ..errors import SchedulingError
from ..types import JobId

if TYPE_CHECKING:  # imported lazily to avoid a workload<->scheduling cycle
    from ..workload.jobs import Job

__all__ = ["QueuedJob", "LocalScheduler", "BATCH", "DEADLINE"]

#: Scheduler family labels.
BATCH = "batch"
DEADLINE = "deadline"


class QueuedJob:
    """A job waiting in a node's queue, with node-local bookkeeping."""

    __slots__ = ("job", "ertp", "enqueue_time")

    def __init__(self, job: "Job", ertp: float, enqueue_time: float) -> None:
        self.job = job
        self.ertp = ertp
        self.enqueue_time = enqueue_time

    def waiting_time(self, now: float) -> float:
        """How long the job has been waiting on this node."""
        return now - self.enqueue_time

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<QueuedJob {self.job.job_id} ertp={self.ertp:.0f}s>"


class LocalScheduler:
    """Base class: a policy-ordered waiting queue for one node."""

    #: ``BATCH`` or ``DEADLINE`` — selects the cost function family.
    kind: ClassVar[str] = BATCH
    #: Human-readable policy name ("FCFS", "SJF", "EDF", ...).
    name: ClassVar[str] = "?"
    #: Whether the policy honours advance reservations (``Job.not_before``).
    #: Jobs carrying a reservation may only be hosted by such schedulers.
    supports_reservations: ClassVar[bool] = False

    def __init__(self) -> None:
        self._queue: List[QueuedJob] = []

    # ------------------------------------------------------------------
    # Policy hooks
    # ------------------------------------------------------------------
    def execution_order(self, entries: List[QueuedJob]) -> List[QueuedJob]:
        """Return ``entries`` in the order this policy would run them.

        Subclasses override this single hook; enqueueing, removal, cost and
        candidate selection all derive from it.  The default is arrival
        order (FCFS).
        """
        return list(entries)

    # ------------------------------------------------------------------
    # Queue operations
    # ------------------------------------------------------------------
    def enqueue(self, job: "Job", ertp: float, now: float) -> QueuedJob:
        """Append a newly assigned job to the waiting queue."""
        if any(e.job.job_id == job.job_id for e in self._queue):
            raise SchedulingError(f"job {job.job_id} already queued")
        entry = QueuedJob(job, ertp, now)
        self._queue.append(entry)
        return entry

    def remove(self, job_id: JobId) -> QueuedJob:
        """Remove a waiting job (it is being rescheduled elsewhere)."""
        for index, entry in enumerate(self._queue):
            if entry.job.job_id == job_id:
                del self._queue[index]
                return entry
        raise SchedulingError(f"job {job_id} not in queue")

    def find(self, job_id: JobId) -> Optional[QueuedJob]:
        """The queue entry for ``job_id``, or ``None``."""
        for entry in self._queue:
            if entry.job.job_id == job_id:
                return entry
        return None

    def pop_next(self, now: float = float("inf")) -> Optional[QueuedJob]:
        """Remove and return the job the policy runs next.

        Returns ``None`` when the queue is empty — or, for
        reservation-aware policies, when nothing may start at ``now``
        (see :meth:`next_wakeup`).
        """
        if not self._queue:
            return None
        entry = self.execution_order(self._queue)[0]
        self._queue.remove(entry)
        return entry

    def next_wakeup(self, now: float) -> Optional[float]:
        """Earliest future time at which :meth:`pop_next` could succeed
        even without new arrivals (``None`` for non-reservation policies,
        whose queues never block)."""
        return None

    def ordered_queue(self) -> List[QueuedJob]:
        """The current queue in execution order (non-destructive)."""
        return self.execution_order(self._queue)

    def queued(self) -> List[QueuedJob]:
        """The current queue in arrival order (non-destructive)."""
        return list(self._queue)

    def __len__(self) -> int:
        return len(self._queue)

    def __contains__(self, job_id: JobId) -> bool:
        return self.find(job_id) is not None

    # ------------------------------------------------------------------
    # Cost (dispatches to repro.scheduling.costs; see subclasses)
    # ------------------------------------------------------------------
    def cost_of(
        self, job: "Job", ertp: float, now: float, running_remaining: float
    ) -> float:
        """Cost of accepting ``job`` given the current queue and load.

        Lower values are better offers (§III-C).  Implemented by the two
        family mixins in :mod:`repro.scheduling.costs`.
        """
        raise NotImplementedError

    def hypothetical_order(self, job: "Job", ertp: float) -> List[QueuedJob]:
        """Execution order if ``job`` were enqueued now (for cost probes).

        The probe entry uses ``enqueue_time = +inf`` so arrival-ordered
        policies place it last, matching a real enqueue.
        """
        probe = QueuedJob(job, ertp, float("inf"))
        return self.execution_order(self._queue + [probe])
