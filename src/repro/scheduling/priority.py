"""Priority local scheduling (a future-work extension of the paper, §VI).

Jobs carry an integer ``priority`` (larger = more urgent); execution order
is by priority, then arrival.  :class:`AgingPriorityScheduler` additionally
promotes long-waiting jobs so low-priority work cannot starve — aging is the
classic remedy and makes the policy a more realistic extension target.

Both are batch policies and interoperate with FCFS/SJF through the shared
ETTC cost.
"""

from __future__ import annotations

from typing import List

from ..errors import ConfigurationError
from .base import QueuedJob
from .batch import BatchScheduler

__all__ = ["PriorityScheduler", "AgingPriorityScheduler"]


class PriorityScheduler(BatchScheduler):
    """Strict priority order, arrival-ordered within one priority level."""

    name = "PRIORITY"
    probe_mode = "keyed"

    def execution_order(self, entries: List[QueuedJob]) -> List[QueuedJob]:
        """Sort by descending priority, ties by arrival."""
        return sorted(
            entries, key=lambda e: (-e.job.priority, e.enqueue_time)
        )

    def entry_sort_value(self, entry: QueuedJob) -> float:
        """First sort-key component: negated priority."""
        return -entry.job.priority

    def probe_sort_value(self, job, ertp: float) -> float:
        """A probe sorts by its negated priority like any entry."""
        return -job.priority


class AgingPriorityScheduler(BatchScheduler):
    """Priority order with linear aging.

    A job's effective priority grows by one level per ``aging_interval``
    seconds spent waiting, evaluated against the latest enqueue times seen;
    the probe entry of cost computations (enqueue_time = +inf) ages zero.
    """

    name = "AGING"
    # Effective priorities depend on the whole queue (the newest enqueue
    # time), so probes take the generic re-sort path.
    probe_mode = "generic"

    def __init__(self, aging_interval: float = 3600.0) -> None:
        super().__init__()
        if aging_interval <= 0:
            raise ConfigurationError(
                f"aging_interval must be positive, got {aging_interval!r}"
            )
        self.aging_interval = aging_interval

    def execution_order(self, entries: List[QueuedJob]) -> List[QueuedJob]:
        if not entries:
            return []
        # The newest (finite) enqueue time approximates "now": schedulers are
        # time-agnostic by design, and ordering only needs relative ages.
        finite = [e.enqueue_time for e in entries if e.enqueue_time != float("inf")]
        now = max(finite) if finite else 0.0

        def effective_priority(entry: QueuedJob) -> float:
            if entry.enqueue_time == float("inf"):
                return float(entry.job.priority)
            age = max(0.0, now - entry.enqueue_time)
            return entry.job.priority + age / self.aging_interval

        return sorted(
            entries, key=lambda e: (-effective_priority(e), e.enqueue_time)
        )
