"""The paper's two cost functions: ETTC and NAL (§III-C).

**Estimated Time To Completion** (batch schedulers)::

    ETTCcost(j) = ETTCj

the *relative* time at which job ``j`` is expected to finish under the local
policy and the node's current load (running job + waiting queue).

**Negative Accumulated Lateness** (deadline schedulers)::

    NALcost(j) = Σ_{job ∈ Q'} δ(job, Q') · |γ_job|       with Q' = Q ∪ {j}
    γ_job = deadline_job − ETC_job
    δ(job, S) = −1  if γ_w ≥ 0 for every w in S
                 0  if γ_job ≥ 0 but some w in S has γ_w < 0
                 1  otherwise (γ_job < 0)

ETC is the *absolute* expected completion time of each job in Q' under the
policy order.  When every deadline holds, NAL is the negated total slack
(more slack = lower = better); each missed deadline contributes its lateness
positively, and on-time jobs in a missing queue contribute nothing.
"""

from __future__ import annotations

from typing import List, Sequence

from ..accel import MIN_VECTOR_LEN, completion_etcs, slack_values
from ..errors import SchedulingError
from .base import QueuedJob

__all__ = ["ettc", "completion_times", "nal"]


def completion_times(
    order: Sequence[QueuedJob], now: float, running_remaining: float
) -> List[float]:
    """Absolute expected completion time of each entry of ``order``.

    The machine runs one job at a time, so entry *k* completes after the
    running job's remaining time plus the ERTp of entries 0..k.

    Long queues take the (bit-identical) vectorized prefix-sum path of
    :mod:`repro.accel`; short ones — the overwhelmingly common case —
    stay on the inline loop to avoid the delegation overhead.
    """
    if running_remaining < 0:
        raise SchedulingError(f"negative running_remaining {running_remaining!r}")
    if len(order) >= MIN_VECTOR_LEN:
        return completion_etcs(
            [entry.ertp for entry in order], now, running_remaining
        )
    etcs: List[float] = []
    elapsed = running_remaining
    for entry in order:
        elapsed += entry.ertp
        etcs.append(now + elapsed)
    return etcs


def ettc(
    order: Sequence[QueuedJob],
    job_id: int,
    now: float,
    running_remaining: float,
) -> float:
    """Relative expected completion time of ``job_id`` within ``order``."""
    for entry, etc in zip(order, completion_times(order, now, running_remaining)):
        if entry.job.job_id == job_id:
            return etc - now
    raise SchedulingError(f"job {job_id} not in hypothetical order")


def nal(order: Sequence[QueuedJob], now: float, running_remaining: float) -> float:
    """Negative Accumulated Lateness of the whole hypothetical queue."""
    etcs = completion_times(order, now, running_remaining)
    deadlines: List[float] = []
    for entry in order:
        if entry.job.deadline is None:
            raise SchedulingError(
                f"job {entry.job.job_id} has no deadline: NAL needs deadlines"
            )
        deadlines.append(entry.job.deadline)
    gammas = slack_values(deadlines, etcs)
    any_late = any(g < 0 for g in gammas)
    # The total stays a scalar left fold: numpy's reductions use pairwise
    # summation, which rounds differently — see repro.accel.
    total = 0.0
    for gamma in gammas:
        if not any_late:
            delta = -1.0
        elif gamma >= 0:
            delta = 0.0
        else:
            delta = 1.0
        total += delta * abs(gamma)
    return total
