"""Live asyncio runtime: run ARiA agents as real networked processes.

The simulator proves the protocol's *logic*; this package proves its
*portability*.  The exact same :class:`~repro.core.protocol.AriaAgent`,
scheduler and cost code runs here unchanged, because both worlds sit
behind two small seams:

* the :class:`~repro.clock.Clock` protocol — implemented by the
  discrete-event :class:`~repro.sim.Simulator` and, here, by
  :class:`WallClock` over an asyncio event loop;
* the :class:`~repro.net.Transport` interface — implemented by
  :class:`~repro.net.SimTransport` and, here, by :class:`LiveTransport`
  over HTTP+JSON between per-node asyncio servers.

``repro serve`` (see :mod:`repro.runtime.serve`) boots an N-node overlay
on localhost, runs a paper scenario against it in scaled wall time, and
emits the same :class:`~repro.experiments.RunSummary`, trace-bus events
and invariant verdicts as a simulated run.

One rung further, :mod:`repro.runtime.proc` (``repro serve --procs``)
runs the overlay as *separate OS processes* under a supervisor with
crash recovery and durable journals — real process deaths, real
recovery from disk and wire.
"""

from .clock import WallClock
from .codec import (
    decode_envelope,
    decode_job,
    decode_message,
    encode_envelope,
    encode_job,
    encode_message,
)
from .proc import (
    ProcRunConfig,
    ProcRunResult,
    ProcessFailureSchedule,
    Supervisor,
    WorkerSpec,
    run_procs,
    worker_main,
)
from .serve import LiveFailureSchedule, LiveRunConfig, run_live
from .transport import (
    HEALTH_PATH,
    METRICS_PATH,
    SUBMIT_PATH,
    LiveTransport,
)

__all__ = [
    "HEALTH_PATH",
    "METRICS_PATH",
    "SUBMIT_PATH",
    "LiveFailureSchedule",
    "LiveRunConfig",
    "LiveTransport",
    "ProcRunConfig",
    "ProcRunResult",
    "ProcessFailureSchedule",
    "Supervisor",
    "WallClock",
    "WorkerSpec",
    "decode_envelope",
    "decode_job",
    "decode_message",
    "encode_envelope",
    "encode_job",
    "encode_message",
    "run_live",
    "run_procs",
    "worker_main",
]
