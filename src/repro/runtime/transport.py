"""Live HTTP+JSON implementation of the :class:`~repro.net.Transport` API.

Each registered node gets its own asyncio HTTP server (an *endpoint*)
that serves three routes:

* ``GET /.well-known/agent.json`` — the node's **agent card**: identity,
  protocol version and inbox route.  Discovery is card-driven: the
  transport learns which node id lives at which address only by fetching
  cards over HTTP, never by peeking at in-process state, so the
  directory is built the way real peers would build it.
* ``POST /message`` — the node's inbox.  The body is one envelope
  (:mod:`repro.runtime.codec`) carrying a protocol message plus its
  delivery kind, reliability tag and incarnation stamp; the server
  decodes it and hands it to the exact same delivery methods
  (``_deliver`` / ``_deliver_tagged`` / stamped variants) the simulated
  transport uses, so drop, staleness and dedup semantics are shared code.
  A body that fails to parse or decode — non-JSON, a truncated envelope,
  an unknown ``kind`` — is answered with HTTP 400 and counted in the
  ``rejected`` counter instead of poisoning the request task.
* ``GET /healthz`` — a liveness snapshot for operators and the soak
  harness: node id, protocol time, whether an inbox handler is attached,
  plus whatever the node's registered health provider reports (queue
  depth, incarnation, last-probe age — see
  :meth:`~repro.core.protocol.AriaAgent.health_snapshot`).

Send-side, every non-local message funnels through the shared
:meth:`~repro.net.Transport._account` choke point (traffic accounting +
loss draw); if a :class:`~repro.net.faults.FaultInjector` is attached it
is consulted next — exactly where :class:`~repro.net.SimTransport`
consults it — so loss bursts, duplication and partitions shape the real
wire with the same model and the same RNG stream as the simulator.  Each
surviving copy is then POSTed from a background task; when an injected
latency model is configured (``transport.latency``, protocol seconds)
the task sleeps the scaled wall delay first, which is how ``FaultPlan``
delay spikes reach real sockets.  The sending handler never blocks on
the network, mirroring the simulator's fire-and-forget sends.  A
destination whose server cannot be reached before ``send_timeout``
counts as ``lost``, exactly like a datagram into a dead link — which is
also how a live *crashed* node manifests: its endpoint is torn down
(:meth:`remove_endpoint`) while its directory entry goes stale, so
in-flight traffic dies on connection refused.  Delivery to a node whose
*handler* is unregistered (departed) still reaches its server and is
dropped there with the usual ``dropped_detached`` / ``dropped_unknown``
accounting.

Retries and acks for control-plane messages come from the standard
:class:`~repro.net.ReliabilityLayer` attached on top — its timers run in
protocol seconds on the :class:`~repro.runtime.WallClock`, giving real
timeouts and exponential backoff over the real network.
"""

from __future__ import annotations

import asyncio
import errno
import json
from typing import Any, Callable, Dict, List, Optional, Set, Tuple

from ..clock import Clock
from ..errors import ConfigurationError, ReproError
from ..net.latency import LatencyModel
from ..net.message import Message
from ..net.transport import Transport
from ..obs.exposition import CONTENT_TYPE, render_prometheus
from ..obs.metrics import MetricsRegistry
from ..net.traffic import TrafficMonitor
from ..types import NodeId
from .codec import decode_envelope, decode_job, encode_envelope
from .http import HttpServer, http_get_json, http_post_json

__all__ = [
    "LiveTransport",
    "AGENT_CARD_PATH",
    "MESSAGE_PATH",
    "HEALTH_PATH",
    "METRICS_PATH",
    "SUBMIT_PATH",
]

AGENT_CARD_PATH = "/.well-known/agent.json"
MESSAGE_PATH = "/message"
HEALTH_PATH = "/healthz"
METRICS_PATH = "/metrics"
SUBMIT_PATH = "/submit"

#: Wall seconds between the two binding attempts on a pinned port that
#: answered ``EADDRINUSE`` — long enough for a dying previous owner to
#: release the socket, short enough not to stall a supervisor restart.
_REBIND_DELAY = 0.2

#: Agent-card protocol tag; bump on wire-format changes.
PROTOCOL_VERSION = "aria/1"


class LiveTransport(Transport):
    """HTTP+JSON transport between per-node asyncio servers."""

    __slots__ = (
        "_loop",
        "_send_timeout",
        "_servers",
        "_directory",
        "_tasks",
        "_latency",
        "_latency_rng",
        "_time_scale",
        "_rejected",
        "_health",
        "_submit",
        "_metrics_provider",
        "last_discovery_failures",
    )

    def __init__(
        self,
        clock: Clock,
        loop: Optional[asyncio.AbstractEventLoop] = None,
        monitor: Optional[TrafficMonitor] = None,
        loss_probability: float = 0.0,
        registry: Optional[MetricsRegistry] = None,
        send_timeout: float = 5.0,
    ) -> None:
        super().__init__(
            clock,
            monitor=monitor,
            loss_probability=loss_probability,
            registry=registry,
        )
        if loop is None:
            try:
                loop = asyncio.get_running_loop()
            except RuntimeError:
                raise ConfigurationError(
                    "LiveTransport must be constructed inside a running "
                    "event loop (or be handed one explicitly)"
                ) from None
        self._loop = loop
        #: Wall-clock seconds before an undeliverable POST counts as lost.
        self._send_timeout = send_timeout
        self._servers: Dict[NodeId, HttpServer] = {}
        #: Discovered node id -> (host, port), populated from agent cards.
        self._directory: Dict[NodeId, Tuple[str, int]] = {}
        self._tasks: Set[asyncio.Task] = set()
        #: Optional injected-delay model in *protocol* seconds (``None``
        #: means only what localhost TCP provides).
        self._latency: Optional[LatencyModel] = None
        self._latency_rng = clock.streams.get("net.latency")
        #: Protocol seconds per wall second, for scaling injected delays.
        self._time_scale = float(getattr(clock, "time_scale", 1.0))
        self._rejected = self.registry.counter("net.rejected")
        #: Per-node health providers backing the ``/healthz`` route.
        self._health: Dict[NodeId, Callable[[], Dict[str, Any]]] = {}
        #: Per-node submission handlers backing the ``POST /submit``
        #: route (the process-isolated runtime's job entry point).
        self._submit: Dict[NodeId, Callable[[Any], None]] = {}
        #: Optional run-level extra samples merged into every node's
        #: ``/metrics`` page (see :meth:`set_metrics_provider`).
        self._metrics_provider: Optional[
            Callable[[], Dict[str, float]]
        ] = None
        #: ``(host, port, reason)`` for seeds the last :meth:`discover`
        #: round could not fetch a card from (after one retry).
        self.last_discovery_failures: List[Tuple[str, int, str]] = []

    # ------------------------------------------------------------------
    # Injected latency
    # ------------------------------------------------------------------
    @property
    def latency(self) -> Optional[LatencyModel]:
        """Injected-delay model in protocol seconds; assignable, e.g. to
        wrap it in a :class:`~repro.net.latency.SpikeLatency` decorator.
        ``None`` (the default) injects nothing — messages travel at raw
        localhost TCP speed."""
        return self._latency

    @latency.setter
    def latency(self, model: Optional[LatencyModel]) -> None:
        self._latency = model

    # ------------------------------------------------------------------
    # Endpoints and discovery
    # ------------------------------------------------------------------
    async def add_endpoint(
        self, node_id: NodeId, host: str = "127.0.0.1", port: int = 0
    ) -> Tuple[str, int]:
        """Start ``node_id``'s HTTP server; returns its bound address.

        Ephemeral binding (``port=0``, the default) can never collide.
        A *pinned* port can — parallel CI jobs, or a supervisor restart
        racing the dying previous incarnation's socket — so it is
        retried once after a short grace, then falls back to an
        ephemeral port rather than failing the node: live discovery
        re-reads the bound address from the agent card either way.
        """
        if node_id in self._servers:
            raise ConfigurationError(f"node {node_id} already has an endpoint")
        server = HttpServer(self._make_handler(node_id))
        if port:
            try:
                await server.start(host=host, port=port)
            except OSError as exc:
                if exc.errno != errno.EADDRINUSE:
                    raise
                await asyncio.sleep(_REBIND_DELAY)
                try:
                    await server.start(host=host, port=port)
                except OSError as retry_exc:
                    if retry_exc.errno != errno.EADDRINUSE:
                        raise
                    await server.start(host=host, port=0)
        else:
            await server.start(host=host, port=port)
        self._servers[node_id] = server
        return server.host, server.port

    async def remove_endpoint(
        self, node_id: NodeId, forget: bool = False
    ) -> None:
        """Tear down ``node_id``'s HTTP server (its health provider goes
        with it).

        With ``forget=False`` (a *crash*) the directory entry stays, so
        peers keep POSTing into a dead address and see ``lost`` — the
        live analogue of datagrams into a crashed host.  With
        ``forget=True`` (a clean *departure*) the entry is removed and
        subsequent sends drop as detached/unknown instead.
        """
        server = self._servers.pop(node_id, None)
        self._health.pop(node_id, None)
        self._submit.pop(node_id, None)
        if server is not None:
            await server.close()
        if forget:
            self._directory.pop(node_id, None)

    def agent_card(self, node_id: NodeId) -> Dict[str, Any]:
        """The agent card served at :data:`AGENT_CARD_PATH`.

        When incarnation stamping is active the card also advertises the
        node's current incarnation: it is how a *remote* process learns
        that a reborn peer moved on — re-discovery max-merges the card
        value into the local slab, and until that happens sends keep
        stamping the dead incarnation and are correctly dropped stale.
        """
        server = self._servers[node_id]
        card: Dict[str, Any] = {
            "name": f"aria-node-{node_id}",
            "node_id": node_id,
            "protocol": PROTOCOL_VERSION,
            "transport": "http+json",
            "url": f"http://{server.host}:{server.port}",
            "endpoints": {
                "message": MESSAGE_PATH,
                "health": HEALTH_PATH,
                "metrics": METRICS_PATH,
                "submit": SUBMIT_PATH,
            },
        }
        incarnations = self._incarnations
        if incarnations is not None:
            card["incarnation"] = incarnations.get(node_id, 0)
        return card

    def set_submit_handler(
        self, node_id: NodeId, handler: Callable[[Any], None]
    ) -> None:
        """Attach the callable ``POST /submit`` hands decoded jobs to
        (typically :meth:`~repro.core.protocol.AriaAgent.submit`)."""
        self._submit[node_id] = handler

    def set_health_provider(
        self, node_id: NodeId, provider: Callable[[], Dict[str, Any]]
    ) -> None:
        """Attach a callable whose dict is merged into ``node_id``'s
        ``/healthz`` response (queue depth, incarnation, probe age...)."""
        self._health[node_id] = provider

    def set_metrics_provider(
        self, provider: Callable[[], Dict[str, float]]
    ) -> None:
        """Attach a callable whose flat ``{key: value}`` dict is merged
        into every node's ``/metrics`` page as extra gauges (run-level
        samples like deadline misses and traffic-by-type counts that are
        not registry metrics)."""
        self._metrics_provider = provider

    def _metrics_page(self, node_id: NodeId) -> str:
        """The Prometheus exposition served at :data:`METRICS_PATH`.

        One page = the shared run registry (protocol counters, transport
        drops, reliability tallies, hop latencies) + this node's health
        snapshot rendered as ``aria_node_*{node="..."}`` gauges + any
        run-level provider samples.
        """
        node = str(node_id)
        extra: Dict[str, float] = {}
        snapshot = self._health_snapshot(node_id)
        for key, value in snapshot.items():
            if isinstance(value, (bool, int, float)):
                extra[f"node_{key}{{node={node}}}"] = float(value)
        if "queue_depth" in snapshot:
            # Derived idleness: nothing running and nothing queued.
            idle = (
                snapshot.get("running_job") is None
                and not snapshot.get("queue_depth")
            )
            extra[f"node_idle{{node={node}}}"] = float(idle)
        monitor = self.monitor
        for name, count in monitor.count_by_type.items():
            extra[f"traffic_messages{{type={name}}}"] = float(count)
        for name, total in monitor.bytes_by_type.items():
            extra[f"traffic_bytes{{type={name}}}"] = float(total)
        provider = self._metrics_provider
        if provider is not None:
            extra.update(provider())
        return render_prometheus(self.registry, extra=extra)

    def _health_snapshot(self, node_id: NodeId) -> Dict[str, Any]:
        snapshot: Dict[str, Any] = {
            "node_id": node_id,
            "protocol": PROTOCOL_VERSION,
            "time": self.clock.now,
            "inbox_registered": node_id in self._handlers,
        }
        provider = self._health.get(node_id)
        if provider is not None:
            snapshot.update(provider())
        return snapshot

    async def discover(self, addresses=None) -> Dict[NodeId, Tuple[str, int]]:
        """Build the node directory by fetching agent cards over HTTP.

        ``addresses`` is an iterable of ``(host, port)`` seeds; by
        default every locally hosted endpoint is probed (the localhost
        overlay's bootstrap list).  Each card's declared ``node_id``
        keys the directory — the transport trusts the wire, not its own
        process state, so the discovery path is exercised end to end.

        Discovery is seed-fault-tolerant: a seed whose card cannot be
        fetched (after one fresh retry on top of the HTTP layer's own
        backoff) is skipped and reported in
        :attr:`last_discovery_failures` rather than failing the round;
        only a round in which *every* seed fails raises.  Two live seeds
        claiming the same ``node_id`` in one round is a configuration
        error (an impersonation / split-brain symptom) and raises instead
        of silently overwriting the directory — while a single seed
        re-claiming an id across rounds stays legal, which is how a
        restarted node re-enters the directory.
        """
        if addresses is None:
            addresses = [
                (server.host, server.port)
                for server in self._servers.values()
            ]
        addresses = list(addresses)

        async def fetch(host: str, port: int):
            for attempt in (0, 1):
                try:
                    return await http_get_json(host, port, AGENT_CARD_PATH)
                except (
                    ConfigurationError,
                    ConnectionError,
                    OSError,
                    ValueError,
                    asyncio.TimeoutError,
                ) as exc:
                    if attempt:
                        return exc

        cards = await asyncio.gather(
            *(fetch(host, port) for host, port in addresses)
        )
        failures: List[Tuple[str, int, str]] = []
        claimed: Dict[NodeId, Tuple[str, int]] = {}
        for (host, port), card in zip(addresses, cards):
            if isinstance(card, Exception):
                failures.append(
                    (host, port, f"{card.__class__.__name__}: {card}")
                )
                continue
            if card.get("protocol") != PROTOCOL_VERSION:
                raise ConfigurationError(
                    f"peer at {host}:{port} speaks "
                    f"{card.get('protocol')!r}, not {PROTOCOL_VERSION!r}"
                )
            node_id = card["node_id"]
            prior = claimed.get(node_id)
            if prior is not None and prior != (host, port):
                raise ConfigurationError(
                    f"node id {node_id} claimed by two peers in one round: "
                    f"{prior[0]}:{prior[1]} and {host}:{port}"
                )
            claimed[node_id] = (host, port)
            incarnation = card.get("incarnation")
            if incarnation is not None and self._incarnations is not None:
                # A reborn peer's card advertises its recovered
                # incarnation; merging it (forward-only) is how senders
                # in *other processes* stop stamping the dead one.
                self.set_incarnation(node_id, incarnation)
        self.last_discovery_failures = failures
        if failures and not claimed:
            host, port, reason = failures[0]
            raise ConfigurationError(
                f"discovery failed for all {len(failures)} seed(s); "
                f"first: {host}:{port} ({reason})"
            )
        self._directory.update(claimed)
        return dict(self._directory)

    async def drain(self) -> None:
        """Wait for every in-flight outbound POST to settle."""
        while self._tasks:
            await asyncio.gather(*tuple(self._tasks), return_exceptions=True)

    async def close(self) -> None:
        """Shut down every endpoint server (after :meth:`drain`)."""
        for server in self._servers.values():
            await server.close()
        self._servers.clear()
        self._health.clear()
        self._submit.clear()

    # ------------------------------------------------------------------
    # Server side
    # ------------------------------------------------------------------
    def _make_handler(self, node_id: NodeId):
        def handle(method: str, path: str, body: bytes):
            if method == "GET" and path == AGENT_CARD_PATH:
                card = json.dumps(self.agent_card(node_id)).encode("utf-8")
                return 200, "OK", card
            if method == "GET" and path == HEALTH_PATH:
                health = json.dumps(self._health_snapshot(node_id))
                return 200, "OK", health.encode("utf-8")
            if method == "GET" and path == METRICS_PATH:
                page = self._metrics_page(node_id).encode("utf-8")
                return 200, "OK", page, CONTENT_TYPE
            if method == "POST" and path == MESSAGE_PATH:
                try:
                    envelope = decode_envelope(json.loads(body.decode("utf-8")))
                except (ValueError, KeyError, TypeError, ConfigurationError):
                    # Non-JSON body, truncated envelope, unknown message
                    # type or envelope kind: a malformed datagram, not a
                    # server bug — reject it and count it.
                    self._rejected.inc()
                    return 400, "Bad Request", b'{"ok":false}'
                self._dispatch(envelope)
                return 200, "OK", b'{"ok":true}'
            if method == "POST" and path == SUBMIT_PATH:
                handler = self._submit.get(node_id)
                if handler is None:
                    return 404, "Not Found", b'{"ok":false}'
                try:
                    job = decode_job(json.loads(body.decode("utf-8"))["job"])
                except (ValueError, KeyError, TypeError, ConfigurationError):
                    self._rejected.inc()
                    return 400, "Bad Request", b'{"ok":false}'
                try:
                    handler(job)
                except ReproError:
                    # Refused (failed / departed / leaving node, or a
                    # duplicate submission of a job some node already
                    # took): the submitter picks another entry point.
                    return 409, "Conflict", b'{"ok":false}'
                return 200, "OK", b'{"ok":true}'
            return 404, "Not Found", b""

        return handle

    def _dispatch(self, envelope: Dict[str, Any]) -> None:
        """Route one decoded envelope through the shared delivery paths.

        The delivery callback is resolved first, then invoked — through
        :meth:`~repro.net.Transport._traced_dispatch` when the envelope
        carries a ``trace`` stamp and tracing is on here too, so the
        receiving process emits the paired ``net.recv`` event and runs
        the handler under the sender's causal context.
        """
        kind = envelope["kind"]
        src = envelope["src"]
        dst = envelope["dst"]
        message = envelope["message"]
        stamp = envelope["stamp"]
        if kind == "send":
            if stamp is None:
                callback, args = self._deliver, (src, dst, message)
            else:
                callback = self._deliver_stamped
                args = (src, dst, message, stamp)
        elif kind == "tagged":
            msg_id = envelope["msg_id"]
            if stamp is None:
                callback = self._deliver_tagged
                args = (src, dst, message, msg_id)
            else:
                callback = self._deliver_tagged_stamped
                args = (src, dst, message, msg_id, stamp)
        else:
            # kind == "ack": settle the sender-side pending entry directly.
            reliability = self.reliability
            if reliability is None:
                return
            if stamp is None:
                callback, args = reliability._on_ack, (envelope["msg_id"],)
            else:
                callback = reliability._on_ack_stamped
                args = (envelope["msg_id"], dst, stamp)
        trace = envelope.get("trace")
        if trace is not None and self._trace is not None:
            self._traced_dispatch(
                (trace["id"], trace["hop"]),
                trace["sent_at"],
                src,
                dst,
                message,
                callback,
                args,
            )
        else:
            callback(*args)

    # ------------------------------------------------------------------
    # Send side (the Transport interface)
    # ------------------------------------------------------------------
    def send(self, src: NodeId, dst: NodeId, message: Message) -> None:
        incarnations = self._incarnations
        if src == dst:
            # Local loopback: free, lossless, delivered on the next loop
            # iteration so handlers never re-enter each other.
            if incarnations is None:
                self._loop.call_soon(self._deliver, src, dst, message)
            else:
                self._loop.call_soon(
                    self._deliver_stamped,
                    src,
                    dst,
                    message,
                    incarnations.get(dst, 0),
                )
            return
        if not self._account(src, dst, message):
            return
        stamp = None if incarnations is None else incarnations.get(dst, 0)
        self._post_envelope(
            dst,
            encode_envelope(
                "send", src, dst, message, stamp=stamp,
                trace=self._wire_trace(),
            ),
            message,
        )

    def send_tagged(
        self,
        src: NodeId,
        dst: NodeId,
        message: Message,
        msg_id: int,
        stamp: Optional[int] = None,
    ) -> None:
        if not self._account(src, dst, message):
            return
        self._post_envelope(
            dst,
            encode_envelope(
                "tagged", src, dst, message, msg_id=msg_id, stamp=stamp,
                trace=self._wire_trace(),
            ),
            message,
        )

    def send_ack(self, src: NodeId, dst: NodeId, message: Message, msg_id: int) -> None:
        if not self._account(src, dst, message):
            return
        stamp = self.incarnation_stamp(dst)
        self._post_envelope(
            dst,
            encode_envelope(
                "ack", src, dst, message, msg_id=msg_id, stamp=stamp,
                trace=self._wire_trace(),
            ),
            message,
        )

    def _wire_trace(self) -> Optional[Dict[str, Any]]:
        """The causal context the preceding :meth:`_account` call stamped
        in ``_last_send_ctx``, shaped as the envelope ``trace`` field —
        ``None`` (field omitted) when transport tracing is off."""
        if self._trace is None:
            return None
        tid, hop, sent_at = self._last_send_ctx
        return {"id": tid, "hop": hop, "sent_at": sent_at}

    def _post_envelope(
        self, dst: NodeId, envelope: Dict[str, Any], message: Message
    ) -> None:
        """Post-``_account`` wire path: fault verdict, injected delay per
        surviving copy, then a background POST per copy."""
        src = envelope["src"]
        faults = self.faults
        copies = 1
        if faults is not None:
            copies = faults.judge(src, dst)
            if not copies:
                self._lost.inc()
                if self._trace is not None:
                    self._emit_msg(
                        "msg.lost", message, src=src, dst=dst, reason="fault"
                    )
                return
            if copies > 1 and self._trace is not None:
                self._emit_msg("msg.duplicated", message, src=src, dst=dst)
        address = self._directory.get(dst)
        if address is None:
            # Never discovered: the live analogue of an unknown/detached
            # destination, with the same drop accounting.
            self._drop(dst, message)
            return
        latency = self._latency
        for _ in range(copies):
            delay = 0.0
            if latency is not None:
                # Latency models speak protocol seconds; the POST task
                # sleeps the equivalent wall time before touching the wire.
                delay = (
                    latency.sample(src, dst, self._latency_rng)
                    / self._time_scale
                )
            task = self._loop.create_task(
                self._post_http(address, envelope, dst, message, delay)
            )
            self._tasks.add(task)
            task.add_done_callback(self._tasks.discard)

    async def _post_http(
        self,
        address: Tuple[str, int],
        envelope: Dict[str, Any],
        dst: NodeId,
        message: Message,
        delay: float = 0.0,
    ) -> None:
        if delay > 0.0:
            await asyncio.sleep(delay)
        host, port = address
        try:
            await http_post_json(
                host, port, MESSAGE_PATH, envelope, timeout=self._send_timeout
            )
        except (ConnectionError, OSError, asyncio.TimeoutError):
            # Unreachable endpoint: a datagram into a dead link.
            self._lost.inc()
            if self._trace is not None:
                self._emit_msg(
                    "msg.lost",
                    message,
                    src=envelope["src"],
                    dst=dst,
                    reason="unreachable",
                )

    # ------------------------------------------------------------------
    # Counters
    # ------------------------------------------------------------------
    @property
    def rejected(self) -> int:
        """Inbound POSTs answered 400 (malformed body / unknown kind)."""
        return self._rejected.value

    def network_counters(self) -> Dict[str, int]:
        """Base counters plus the live-only ``rejected`` count."""
        counters = super().network_counters()
        counters["rejected"] = self._rejected.value
        return counters
