"""Live HTTP+JSON implementation of the :class:`~repro.net.Transport` API.

Each registered node gets its own asyncio HTTP server (an *endpoint*)
that serves two routes:

* ``GET /.well-known/agent.json`` — the node's **agent card**: identity,
  protocol version and inbox route.  Discovery is card-driven: the
  transport learns which node id lives at which address only by fetching
  cards over HTTP, never by peeking at in-process state, so the
  directory is built the way real peers would build it.
* ``POST /message`` — the node's inbox.  The body is one envelope
  (:mod:`repro.runtime.codec`) carrying a protocol message plus its
  delivery kind, reliability tag and incarnation stamp; the server
  decodes it and hands it to the exact same delivery methods
  (``_deliver`` / ``_deliver_tagged`` / stamped variants) the simulated
  transport uses, so drop, staleness and dedup semantics are shared code.

Send-side, every non-local message funnels through the shared
:meth:`~repro.net.Transport._account` choke point (traffic accounting +
loss draw) and is then POSTed from a background task — the sending
handler never blocks on the network, mirroring the simulator's
fire-and-forget sends.  Latency is whatever localhost TCP provides; a
destination whose server cannot be reached before ``send_timeout``
counts as ``lost``, exactly like a datagram into a dead link.  Delivery
to a node whose *handler* is unregistered (crashed / departed) still
reaches its server and is dropped there with the usual
``dropped_detached`` / ``dropped_unknown`` accounting.

Retries and acks for control-plane messages come from the standard
:class:`~repro.net.ReliabilityLayer` attached on top — its timers run in
protocol seconds on the :class:`~repro.runtime.WallClock`, giving real
timeouts and exponential backoff over the real network.
"""

from __future__ import annotations

import asyncio
import json
from typing import Any, Dict, Optional, Set, Tuple

from ..clock import Clock
from ..errors import ConfigurationError
from ..net.message import Message
from ..net.transport import Transport
from ..obs.metrics import MetricsRegistry
from ..net.traffic import TrafficMonitor
from ..types import NodeId
from .codec import decode_envelope, encode_envelope
from .http import HttpServer, http_get_json, http_post_json

__all__ = ["LiveTransport", "AGENT_CARD_PATH", "MESSAGE_PATH"]

AGENT_CARD_PATH = "/.well-known/agent.json"
MESSAGE_PATH = "/message"

#: Agent-card protocol tag; bump on wire-format changes.
PROTOCOL_VERSION = "aria/1"


class LiveTransport(Transport):
    """HTTP+JSON transport between per-node asyncio servers."""

    __slots__ = (
        "_loop",
        "_send_timeout",
        "_servers",
        "_directory",
        "_tasks",
    )

    def __init__(
        self,
        clock: Clock,
        loop: Optional[asyncio.AbstractEventLoop] = None,
        monitor: Optional[TrafficMonitor] = None,
        loss_probability: float = 0.0,
        registry: Optional[MetricsRegistry] = None,
        send_timeout: float = 5.0,
    ) -> None:
        super().__init__(
            clock,
            monitor=monitor,
            loss_probability=loss_probability,
            registry=registry,
        )
        self._loop = loop if loop is not None else asyncio.get_event_loop()
        #: Wall-clock seconds before an undeliverable POST counts as lost.
        self._send_timeout = send_timeout
        self._servers: Dict[NodeId, HttpServer] = {}
        #: Discovered node id -> (host, port), populated from agent cards.
        self._directory: Dict[NodeId, Tuple[str, int]] = {}
        self._tasks: Set[asyncio.Task] = set()

    # ------------------------------------------------------------------
    # Endpoints and discovery
    # ------------------------------------------------------------------
    async def add_endpoint(
        self, node_id: NodeId, host: str = "127.0.0.1", port: int = 0
    ) -> Tuple[str, int]:
        """Start ``node_id``'s HTTP server; returns its bound address."""
        if node_id in self._servers:
            raise ConfigurationError(f"node {node_id} already has an endpoint")
        server = HttpServer(self._make_handler(node_id))
        await server.start(host=host, port=port)
        self._servers[node_id] = server
        return server.host, server.port

    def agent_card(self, node_id: NodeId) -> Dict[str, Any]:
        """The agent card served at :data:`AGENT_CARD_PATH`."""
        server = self._servers[node_id]
        return {
            "name": f"aria-node-{node_id}",
            "node_id": node_id,
            "protocol": PROTOCOL_VERSION,
            "transport": "http+json",
            "url": f"http://{server.host}:{server.port}",
            "endpoints": {"message": MESSAGE_PATH},
        }

    async def discover(self, addresses=None) -> Dict[NodeId, Tuple[str, int]]:
        """Build the node directory by fetching agent cards over HTTP.

        ``addresses`` is an iterable of ``(host, port)`` seeds; by
        default every locally hosted endpoint is probed (the localhost
        overlay's bootstrap list).  Each card's declared ``node_id``
        keys the directory — the transport trusts the wire, not its own
        process state, so the discovery path is exercised end to end.
        """
        if addresses is None:
            addresses = [
                (server.host, server.port)
                for server in self._servers.values()
            ]
        cards = await asyncio.gather(
            *(
                http_get_json(host, port, AGENT_CARD_PATH)
                for host, port in addresses
            )
        )
        for (host, port), card in zip(addresses, cards):
            if card.get("protocol") != PROTOCOL_VERSION:
                raise ConfigurationError(
                    f"peer at {host}:{port} speaks "
                    f"{card.get('protocol')!r}, not {PROTOCOL_VERSION!r}"
                )
            self._directory[card["node_id"]] = (host, port)
        return dict(self._directory)

    async def drain(self) -> None:
        """Wait for every in-flight outbound POST to settle."""
        while self._tasks:
            await asyncio.gather(*tuple(self._tasks), return_exceptions=True)

    async def close(self) -> None:
        """Shut down every endpoint server (after :meth:`drain`)."""
        for server in self._servers.values():
            await server.close()
        self._servers.clear()

    # ------------------------------------------------------------------
    # Server side
    # ------------------------------------------------------------------
    def _make_handler(self, node_id: NodeId):
        def handle(method: str, path: str, body: bytes):
            if method == "GET" and path == AGENT_CARD_PATH:
                card = json.dumps(self.agent_card(node_id)).encode("utf-8")
                return 200, "OK", card
            if method == "POST" and path == MESSAGE_PATH:
                envelope = decode_envelope(json.loads(body.decode("utf-8")))
                self._dispatch(envelope)
                return 200, "OK", b'{"ok":true}'
            return 404, "Not Found", b""

        return handle

    def _dispatch(self, envelope: Dict[str, Any]) -> None:
        """Route one decoded envelope through the shared delivery paths."""
        kind = envelope["kind"]
        src = envelope["src"]
        dst = envelope["dst"]
        message = envelope["message"]
        stamp = envelope["stamp"]
        if kind == "send":
            if stamp is None:
                self._deliver(src, dst, message)
            else:
                self._deliver_stamped(src, dst, message, stamp)
            return
        if kind == "tagged":
            msg_id = envelope["msg_id"]
            if stamp is None:
                self._deliver_tagged(src, dst, message, msg_id)
            else:
                self._deliver_tagged_stamped(src, dst, message, msg_id, stamp)
            return
        # kind == "ack": settle the sender-side pending entry directly.
        reliability = self.reliability
        if reliability is None:
            return
        if stamp is None:
            reliability._on_ack(envelope["msg_id"])
        else:
            reliability._on_ack_stamped(envelope["msg_id"], dst, stamp)

    # ------------------------------------------------------------------
    # Send side (the Transport interface)
    # ------------------------------------------------------------------
    def send(self, src: NodeId, dst: NodeId, message: Message) -> None:
        incarnations = self._incarnations
        if src == dst:
            # Local loopback: free, lossless, delivered on the next loop
            # iteration so handlers never re-enter each other.
            if incarnations is None:
                self._loop.call_soon(self._deliver, src, dst, message)
            else:
                self._loop.call_soon(
                    self._deliver_stamped,
                    src,
                    dst,
                    message,
                    incarnations.get(dst, 0),
                )
            return
        if not self._account(src, dst, message):
            return
        stamp = None if incarnations is None else incarnations.get(dst, 0)
        self._post_envelope(
            dst, encode_envelope("send", src, dst, message, stamp=stamp), message
        )

    def send_tagged(
        self,
        src: NodeId,
        dst: NodeId,
        message: Message,
        msg_id: int,
        stamp: Optional[int] = None,
    ) -> None:
        if not self._account(src, dst, message):
            return
        self._post_envelope(
            dst,
            encode_envelope(
                "tagged", src, dst, message, msg_id=msg_id, stamp=stamp
            ),
            message,
        )

    def send_ack(self, src: NodeId, dst: NodeId, message: Message, msg_id: int) -> None:
        if not self._account(src, dst, message):
            return
        stamp = self.incarnation_stamp(dst)
        self._post_envelope(
            dst,
            encode_envelope(
                "ack", src, dst, message, msg_id=msg_id, stamp=stamp
            ),
            message,
        )

    def _post_envelope(
        self, dst: NodeId, envelope: Dict[str, Any], message: Message
    ) -> None:
        address = self._directory.get(dst)
        if address is None:
            # Never discovered: the live analogue of an unknown/detached
            # destination, with the same drop accounting.
            self._drop(dst, message)
            return
        task = self._loop.create_task(
            self._post_http(address, envelope, dst, message)
        )
        self._tasks.add(task)
        task.add_done_callback(self._tasks.discard)

    async def _post_http(
        self,
        address: Tuple[str, int],
        envelope: Dict[str, Any],
        dst: NodeId,
        message: Message,
    ) -> None:
        host, port = address
        try:
            await http_post_json(
                host, port, MESSAGE_PATH, envelope, timeout=self._send_timeout
            )
        except (ConnectionError, OSError, asyncio.TimeoutError):
            # Unreachable endpoint: a datagram into a dead link.
            self._lost.inc()
            if self._trace is not None:
                self._emit_msg(
                    "msg.lost",
                    message,
                    src=envelope["src"],
                    dst=dst,
                    reason="unreachable",
                )
