"""Boot a live localhost overlay and run a paper scenario against it.

:func:`run_live` is the live counterpart of
:func:`repro.experiments.runner.build_grid` + ``GridSetup.run``: it wires
the *same* agents, schedulers, cost model, workload generator, metrics,
samplers and tracer — only the two seams differ (a
:class:`~repro.runtime.WallClock` instead of the simulator, a
:class:`~repro.runtime.LiveTransport` instead of the simulated one) —
then lets real wall time pass and returns the same
:class:`~repro.experiments.runner.RunResult`, so ``.summary()``,
validation, the invariant checker and every downstream consumer work
unchanged.

Chaos rides the same seams.  A :class:`~repro.experiments.faults.FaultPlan`
on the config attaches a :class:`~repro.net.faults.FaultInjector` to the
live transport (bursts, duplication and partitions shaping real HTTP
traffic) and injects ``FaultPlan`` delay spikes by delaying the
background POST tasks.  A :class:`LiveFailureSchedule` drives the node
lifecycle over real sockets: crash-restart tears an endpoint down and
brings the node back after downtime under a fresh incarnation
(re-discovered from its new agent card), joins start brand-new endpoints
mid-run, and leaves walk the graceful-departure path before the endpoint
is retired.  An :class:`~repro.experiments.OnlineInvariantChecker` can be
teed into the trace stream to check invariants *while* the run is live —
the run stops early on the first confirmed violation, which is what the
``repro soak`` CLI mode builds on.

Timing: everything protocol-side stays in protocol seconds; the
``time_scale`` compression maps them onto wall time (see
:mod:`repro.runtime.clock`).  The defaults compress a ~2.5-hour protocol
scenario into ~30 wall seconds while keeping every wall-clock window an
HTTP round-trip must fit (the ACCEPT collection window, reliability ack
timeouts) hundreds of times wider than a localhost round-trip.  The
knobs that make that true:

* ``accept_wait`` is raised from the paper's 5 s (which at scale 300
  would be a 17 ms wall window) to 60 s protocol = 200 ms wall;
* the reliability ack timeout is derived from ``time_scale`` so its
  wall value starts at ~50 ms and backs off from there;
* the workload's mean ERT is scaled down so a handful of jobs exercises
  queueing and completion within the compressed horizon.

The :class:`LiveFailureSchedule` is deliberately expressed in *wall*
seconds: it narrates what an operator does to real machines ("kill node
3 ten seconds in, bring it back five seconds later"), independent of the
protocol-time compression in force.
"""

from __future__ import annotations

import asyncio
import dataclasses
import signal
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..core.config import AriaConfig
from ..core.protocol import AriaAgent
from ..errors import ConfigurationError
from ..grid.node import GridNode
from ..grid.performance import AccuracyModel
from ..grid.resources import random_node_profile, random_performance_index
from ..metrics.collector import GridMetrics
from ..net.reliability import ReliabilityConfig, ReliabilityLayer
from ..obs.collector import TelemetryCollector, render_dashboard
from ..obs.metrics import MetricsRegistry
from ..obs.trace import MemorySink, TraceConfig, Tracer
from ..overlay.blatant import BlatantConfig, BlatantMaintainer
from ..scheduling.registry import make_scheduler
from ..sim import PeriodicSampler
from ..types import NodeId
from ..workload.generator import ERT_DISTRIBUTION, JobGenerator
from ..workload.submission import SubmissionProcess, SubmissionSchedule
from ..experiments.catalog import get_scenario
from ..experiments.faults import FaultPlan, apply_fault_plan
from ..experiments.invariants import check_invariants
from ..experiments.invariants_online import OnlineInvariantChecker
from ..experiments.runner import RunResult, _build_overlay
from ..experiments.scale import ScenarioScale
from .clock import WallClock
from .transport import LiveTransport

__all__ = ["LiveFailureSchedule", "LiveRunConfig", "run_live"]


@dataclass(frozen=True)
class LiveFailureSchedule:
    """When real node-lifecycle chaos happens, in *wall* seconds.

    ``crash_restarts`` holds ``(at, downtime, victim_index)`` triples:
    at wall second ``at`` the victim's endpoint is torn down and the
    agent crashes; after ``downtime`` wall seconds it comes back under a
    fresh incarnation on a brand-new port, is re-discovered from its
    agent card and rejoins the overlay.  ``joins`` holds wall seconds at
    which a brand-new node (fresh id, fresh endpoint) enters the grid
    mid-run.  ``leaves`` holds ``(at, victim_index)`` pairs starting a
    graceful departure; once the victim has departed its endpoint is
    retired for good.  Victim indexes address the initial agent list
    (wrapped modulo its length, so schedules compose with any node
    count).
    """

    crash_restarts: Tuple[Tuple[float, float, int], ...] = ()
    joins: Tuple[float, ...] = ()
    leaves: Tuple[Tuple[float, int], ...] = ()

    def __post_init__(self) -> None:
        # Normalise (JSON round trips turn the tuples into lists).
        object.__setattr__(
            self,
            "crash_restarts",
            tuple(
                (float(at), float(downtime), int(victim))
                for at, downtime, victim in self.crash_restarts
            ),
        )
        object.__setattr__(
            self, "joins", tuple(float(at) for at in self.joins)
        )
        object.__setattr__(
            self,
            "leaves",
            tuple((float(at), int(victim)) for at, victim in self.leaves),
        )
        for at, downtime, victim in self.crash_restarts:
            if at < 0 or downtime <= 0:
                raise ConfigurationError(
                    f"invalid crash-restart (at={at}, downtime={downtime})"
                )
            if victim < 0:
                raise ConfigurationError(f"negative victim index {victim}")
        for at in self.joins:
            if at < 0:
                raise ConfigurationError(f"negative join time {at}")
        for at, victim in self.leaves:
            if at < 0:
                raise ConfigurationError(f"negative leave time {at}")
            if victim < 0:
                raise ConfigurationError(f"negative victim index {victim}")

    def __bool__(self) -> bool:
        """Whether the schedule contains any lifecycle event at all."""
        return bool(self.crash_restarts or self.joins or self.leaves)

    @classmethod
    def chaos(cls, wall_duration: float) -> "LiveFailureSchedule":
        """A representative lifecycle plan for a run of ``wall_duration``
        wall seconds: one crash-restart a quarter in (down for ~15% of
        the run), one brand-new join at 40%, one graceful leave at 60%.
        """
        if wall_duration <= 0:
            raise ConfigurationError(
                f"non-positive wall_duration {wall_duration}"
            )
        return cls(
            crash_restarts=(
                (0.25 * wall_duration, 0.15 * wall_duration, 1),
            ),
            joins=(0.4 * wall_duration,),
            leaves=((0.6 * wall_duration, 2),),
        )


@dataclass(frozen=True)
class LiveRunConfig:
    """One live overlay run: scenario, size, time compression, chaos."""

    scenario_name: str = "iMixed"
    nodes: int = 8
    jobs: int = 10
    seed: int = 0
    #: Protocol seconds per wall second.
    time_scale: float = 300.0
    #: Protocol-time horizon (like ``ScenarioScale.duration``).
    duration: float = 9_000.0
    #: Mean ERT the workload distribution is rescaled to, so a few jobs
    #: finish within the compressed horizon (paper mean: 2.5 h).
    ert_mean: float = 1_200.0
    submission_start: float = 60.0
    submission_interval: float = 30.0
    #: ACCEPT collection window override (see module docstring).
    accept_wait: float = 60.0
    #: Attach the reliability layer (real acks, timeouts, backoff).
    reliability: bool = True
    host: str = "127.0.0.1"
    #: Deterministic endpoint ports: the i-th initial node listens on
    #: ``port_base + i`` (``None`` = ephemeral ports).  Restarted and
    #: mid-run-joined nodes always bind ephemeral ports — a crash-restart
    #: landing on a new port is part of what re-discovery must handle.
    port_base: Optional[int] = None
    #: Wall seconds between telemetry-collector scrape rounds over the
    #: fleet's ``/metrics`` pages (0 disables the collector).
    scrape_interval: float = 1.0
    #: Render the streaming fleet dashboard (``repro top`` view) to
    #: stdout on every scrape round.
    dashboard: bool = False
    #: Wall seconds before an outbound POST counts as lost.
    send_timeout: float = 5.0
    #: Stop early once every job completed and the grid has been quiet
    #: for this many wall seconds (0 disables early exit).
    early_exit_grace: float = 0.5
    #: Network faults shaping the live wire (``None`` = clean network).
    fault_plan: Optional[FaultPlan] = None
    #: Node-lifecycle chaos in wall seconds (``None`` = stable fleet).
    failure_schedule: Optional[LiveFailureSchedule] = None
    #: Arm §III-D fail-safe tracking/probing plus orphan adoption, with
    #: probe timings that fit the compressed horizon (on by necessity
    #: for crash-restart chaos; off keeps the non-chaos default).
    failsafe: bool = False

    def __post_init__(self) -> None:
        if self.nodes < 2:
            raise ConfigurationError(f"need >= 2 nodes, got {self.nodes}")
        if self.jobs < 1:
            raise ConfigurationError(f"need >= 1 job, got {self.jobs}")
        if self.time_scale <= 0:
            raise ConfigurationError(f"time_scale {self.time_scale} must be > 0")
        if self.duration <= self.submission_start:
            raise ConfigurationError("duration must exceed submission_start")
        window = self.accept_wait / self.time_scale
        if window < 0.01:
            raise ConfigurationError(
                f"accept_wait {self.accept_wait}s at time_scale "
                f"{self.time_scale} leaves a {window * 1000:.1f} ms wall "
                "window — too tight for HTTP round-trips (need >= 10 ms)"
            )
        if self.port_base is not None and not (
            0 < self.port_base <= 65535 - self.nodes
        ):
            raise ConfigurationError(
                f"port_base {self.port_base} leaves no room for "
                f"{self.nodes} ports"
            )
        if self.scrape_interval < 0:
            raise ConfigurationError(
                f"negative scrape_interval {self.scrape_interval}"
            )
        if self.failure_schedule is not None and not isinstance(
            self.failure_schedule, LiveFailureSchedule
        ):
            raise ConfigurationError(
                "failure_schedule must be a LiveFailureSchedule"
            )

    def wall_duration(self) -> float:
        """The run's wall-clock horizon in seconds."""
        return self.duration / self.time_scale


@dataclass
class _LiveSetup:
    """The slice of ``GridSetup`` the invariant checker consumes."""

    metrics: GridMetrics
    scale: ScenarioScale
    agents: List[AriaAgent]


def _reliability_config(time_scale: float) -> ReliabilityConfig:
    """Ack/retry policy whose *wall* timings suit a localhost overlay.

    The first ack timeout lands at ~50 wall milliseconds — roomy against
    a sub-millisecond localhost round-trip, tight enough that a genuine
    loss retries well within the accept window — and backs off to a cap
    of ~2 wall seconds.
    """
    return ReliabilityConfig(
        ack_timeout=0.05 * time_scale,
        backoff=2.0,
        max_timeout=2.0 * time_scale,
        max_retries=5,
        jitter=0.5,
    )


def run_live(
    config: Optional[LiveRunConfig] = None,
    obs: Optional[TraceConfig] = None,
    online_checker: Optional[OnlineInvariantChecker] = None,
    seed_violation: bool = False,
) -> RunResult:
    """Run one live scenario to completion and collect the results.

    Synchronous entry point (owns the event loop); the run's invariant
    verdict lands in ``RunResult.extra_violations`` so ``.summary()``
    folds it into ``RunSummary.violations`` like any simulated run.

    ``online_checker`` tees the trace stream through an
    :class:`~repro.experiments.OnlineInvariantChecker`; the run stops at
    the first violation it confirms, and its findings are prepended to
    the post-run verdict.  ``seed_violation`` deliberately forges a
    duplicate ``job.finished`` mid-run — the soak harness's self-test
    that the online checker actually fires.
    """
    config = config if config is not None else LiveRunConfig()
    return asyncio.run(
        _run_live(config, obs, online_checker, seed_violation)
    )


async def _run_live(
    config: LiveRunConfig,
    obs: Optional[TraceConfig],
    online_checker: Optional[OnlineInvariantChecker] = None,
    seed_violation: bool = False,
) -> RunResult:
    loop = asyncio.get_running_loop()
    clock = WallClock(loop, seed=config.seed, time_scale=config.time_scale)
    registry = MetricsRegistry()
    metrics = GridMetrics(registry)
    scenario = get_scenario(config.scenario_name)
    scale = ScenarioScale(
        nodes=config.nodes,
        jobs=config.jobs,
        duration=config.duration,
        expanding_start=config.duration / 3,
        expanding_end=config.duration * 2 / 3,
        sample_interval=max(1.0, config.duration / 25),
    )
    schedule_plan = config.failure_schedule

    transport = LiveTransport(
        clock,
        loop=loop,
        loss_probability=scenario.message_loss,
        registry=registry,
        send_timeout=config.send_timeout,
    )
    if config.fault_plan is not None:
        apply_fault_plan(transport, config.fault_plan)
    if schedule_plan is not None and schedule_plan.crash_restarts:
        # Armed before any message flies, so in-flight traffic around the
        # first crash already carries incarnation stamps.
        transport.enable_incarnations()

    tracer: Optional[Tracer] = None
    agent_tracer: Optional[Tracer] = None
    if obs is not None and obs.level != "off":
        sink = obs.make_sink()
        if online_checker is not None:
            online_checker.sink = sink
            sink = online_checker
        tracer = Tracer(obs, sink=sink)
        # Live events additionally carry the real wall clock, so
        # ``repro explain-job`` can narrate operator time next to
        # protocol time.
        tracer.wall_source = time.time
    elif online_checker is not None:
        # No recording requested: trace purely to feed the checker (its
        # downstream sink stays None, so events are checked and dropped).
        tracer = Tracer(
            TraceConfig(level="transport", sink="memory"),
            sink=online_checker,
        )
    if tracer is not None:
        if tracer.wants_level("protocol"):
            agent_tracer = tracer
        if tracer.wants_level("transport"):
            transport._trace = tracer
    if config.reliability:
        ReliabilityLayer(transport, _reliability_config(config.time_scale))

    graph = _build_overlay(scenario.overlay, config.nodes, config.seed)
    overrides: Dict[str, object] = {"accept_wait": config.accept_wait}
    if config.failsafe:
        overrides.update(
            failsafe=True,
            probe_interval=600.0,
            probe_timeout=120.0,
            adoption=True,
        )
    aria_config = dataclasses.replace(
        AriaConfig(
            rescheduling=scenario.rescheduling,
            inform_count=scenario.inform_count,
            improvement_threshold=scenario.improvement_threshold,
        ),
        **overrides,
    )
    accuracy = AccuracyModel(
        epsilon=scenario.epsilon, optimistic_only=scenario.optimistic_only
    )

    # One HTTP endpoint per node, then card-driven discovery builds the
    # address directory over the wire before any agent exists.
    for index, node_id in enumerate(graph.nodes()):
        port = 0 if config.port_base is None else config.port_base + index
        await transport.add_endpoint(node_id, host=config.host, port=port)
    await transport.discover()
    transport.set_metrics_provider(
        lambda: {
            "jobs.missed_deadlines": float(metrics.missed_deadline_count())
        }
    )

    profile_rng = clock.streams.get("profiles")
    policy_rng = clock.streams.get("policies")
    nodes: List[GridNode] = []
    agents: List[AriaAgent] = []
    for node_id in graph.nodes():
        node = GridNode(
            node_id=node_id,
            sim=clock,
            profile=random_node_profile(profile_rng),
            performance_index=random_performance_index(profile_rng),
            scheduler=make_scheduler(policy_rng.choice(scenario.policies)),
            accuracy=accuracy,
        )
        agent = AriaAgent(
            node, transport, graph, aria_config, metrics, tracer=agent_tracer
        )
        agent.start()
        transport.set_health_provider(node_id, agent.health_snapshot)
        nodes.append(node)
        agents.append(agent)

    schedule = SubmissionSchedule(
        job_count=config.jobs,
        interval=config.submission_interval,
        start=config.submission_start,
    )
    initial_profiles = [node.profile for node in nodes]
    generator = JobGenerator(
        clock.streams.get("workload"),
        deadline_slack_mean=scenario.deadline_slack_mean,
        ert_distribution=ERT_DISTRIBUTION.scaled_to_mean(config.ert_mean),
        requirements_ok=lambda req: any(
            profile.satisfies(req) for profile in initial_profiles
        ),
        priority_levels=scenario.priority_levels,
        reservation_probability=scenario.reservation_probability,
        reservation_delay_mean=scenario.reservation_delay_mean,
    )
    SubmissionProcess(
        clock,
        agents=lambda: [
            agent
            for agent in agents
            if not agent.failed and not agent.departed
        ],
        generator=generator,
        schedule=schedule,
        rng=clock.streams.get("submission"),
    )

    idle = PeriodicSampler(
        clock,
        lambda: sum(
            agent.node.is_idle
            for agent in agents
            if not agent.failed and not agent.departed
        ),
        interval=scale.sample_interval,
        start=0.0,
    )
    completed = PeriodicSampler(
        clock,
        lambda: metrics.completed_jobs,
        interval=scale.sample_interval,
        start=0.0,
    )
    node_count = PeriodicSampler(
        clock,
        lambda: sum(
            1 for agent in agents if not agent.failed and not agent.departed
        ),
        interval=scale.sample_interval,
        start=0.0,
    )

    # ------------------------------------------------------------------
    # Fleet telemetry: scrape every node's /metrics on an interval and
    # merge the rounds into fleet.* series (the `repro top` feed).
    # ------------------------------------------------------------------
    collector: Optional[TelemetryCollector] = None
    collector_task: Optional[asyncio.Task] = None
    if config.scrape_interval > 0:
        collector = TelemetryCollector(
            registry,
            targets=lambda: dict(transport._directory),
            now=lambda: clock.now,
        )
        on_round = None
        if config.dashboard:

            def on_round(c: TelemetryCollector) -> None:
                # Clear + home, then the whole frame in one write.
                print(
                    "\x1b[2J\x1b[H" + render_dashboard(c),
                    end="",
                    flush=True,
                )

        collector_task = loop.create_task(
            collector.run(config.scrape_interval, on_round=on_round)
        )

    # ------------------------------------------------------------------
    # Lifecycle chaos: crash-restart / join / leave over real sockets.
    # ------------------------------------------------------------------
    chaos_tasks: List[asyncio.Task] = []
    maintainer: Optional[BlatantMaintainer] = None
    if schedule_plan is not None and schedule_plan:
        maintainer = BlatantMaintainer(
            graph, clock.streams.get("failures.overlay"), BlatantConfig()
        )
        maintainer.start(clock)
        next_join_id = max(graph.nodes()) + 1

        async def _crash_restart(
            at: float, downtime: float, victim: int
        ) -> None:
            await asyncio.sleep(at)
            agent = agents[victim % len(agents)]
            if agent.failed or agent.departed:
                return
            agent.fail()
            await transport.remove_endpoint(agent.node_id)
            await asyncio.sleep(downtime)
            host, port = await transport.add_endpoint(
                agent.node_id, host=config.host
            )
            # Rejoin mirrors the simulator's churn path: re-discovery
            # from the fresh card, overlay bootstrap links, then the
            # agent restarts under its new incarnation.
            await transport.discover([(host, port)])
            maintainer.join(agent.node_id)
            agent.restart()
            transport.set_health_provider(
                agent.node_id, agent.health_snapshot
            )

        async def _join(at: float, node_id: NodeId) -> None:
            await asyncio.sleep(at)
            host, port = await transport.add_endpoint(
                node_id, host=config.host
            )
            maintainer.join(node_id)
            node = GridNode(
                node_id=node_id,
                sim=clock,
                profile=random_node_profile(profile_rng),
                performance_index=random_performance_index(profile_rng),
                scheduler=make_scheduler(
                    policy_rng.choice(scenario.policies)
                ),
                accuracy=accuracy,
            )
            agent = AriaAgent(
                node,
                transport,
                graph,
                aria_config,
                metrics,
                tracer=agent_tracer,
            )
            await transport.discover([(host, port)])
            agent.start()
            transport.set_health_provider(node_id, agent.health_snapshot)
            nodes.append(node)
            agents.append(agent)

        async def _leave(at: float, victim: int) -> None:
            await asyncio.sleep(at)
            agent = agents[victim % len(agents)]
            if agent.failed or agent.departed or agent.leaving:
                return
            agent.leave()
            while not agent.departed:
                if agent.failed:
                    return
                await asyncio.sleep(0.05)
            await transport.remove_endpoint(agent.node_id, forget=True)

        for at, downtime, victim in schedule_plan.crash_restarts:
            chaos_tasks.append(
                loop.create_task(_crash_restart(at, downtime, victim))
            )
        for at in schedule_plan.joins:
            chaos_tasks.append(loop.create_task(_join(at, next_join_id)))
            next_join_id += 1
        for at, victim in schedule_plan.leaves:
            chaos_tasks.append(loop.create_task(_leave(at, victim)))

    if seed_violation and tracer is not None:

        async def _forge_duplicate() -> None:
            await asyncio.sleep(0.3 * config.wall_duration())
            # Two completions of one (bogus) job id: the exact signature
            # the double-execution check must fire on.
            tracer.emit("job.finished", clock.now, job=999_999_999, node=0)
            tracer.emit("job.finished", clock.now, job=999_999_999, node=1)

        chaos_tasks.append(loop.create_task(_forge_duplicate()))

    # ------------------------------------------------------------------
    # Let wall time pass.
    # ------------------------------------------------------------------
    # SIGINT/SIGTERM cut the run short *gracefully*: the wait loop exits,
    # the normal teardown path flushes and closes the trace sink (every
    # recorded segment stays parseable) and the final summary is still
    # produced — an interrupted soak is a shorter soak, not a corrupt
    # one.  Job-conservation checks are relaxed for interrupted runs
    # (in-flight jobs never got their chance to finish).
    interrupted = False
    stop_event = asyncio.Event()

    def _on_signal() -> None:
        nonlocal interrupted
        interrupted = True
        stop_event.set()

    installed_signals: List[int] = []
    for signum in (signal.SIGINT, signal.SIGTERM):
        try:
            loop.add_signal_handler(signum, _on_signal)
        except (NotImplementedError, RuntimeError, ValueError):
            continue  # non-POSIX loop or nested handler: run uncovered
        installed_signals.append(signum)
    try:
        deadline = loop.time() + config.wall_duration()
        quiet_since: Optional[float] = None
        while not stop_event.is_set():
            remaining = deadline - loop.time()
            if remaining <= 0:
                break
            try:
                await asyncio.wait_for(
                    stop_event.wait(), timeout=min(0.1, remaining)
                )
                break
            except asyncio.TimeoutError:
                pass
            if online_checker is not None and online_checker.violations:
                break  # stop on the first confirmed violation
            if not config.early_exit_grace:
                continue
            if (
                metrics.completed_jobs >= config.jobs
                and not transport._tasks
                and not any(not task.done() for task in chaos_tasks)
            ):
                if quiet_since is None:
                    quiet_since = loop.time()
                elif loop.time() - quiet_since >= config.early_exit_grace:
                    break
            else:
                quiet_since = None
        clock.stop()
        await transport.drain()
    finally:
        for signum in installed_signals:
            loop.remove_signal_handler(signum)
        if collector_task is not None:
            collector_task.cancel()
            await asyncio.gather(collector_task, return_exceptions=True)
        for task in chaos_tasks:
            task.cancel()
        if chaos_tasks:
            await asyncio.gather(*chaos_tasks, return_exceptions=True)
        await transport.close()
        if tracer is not None:
            tracer.close()

    allow_lost = bool(schedule_plan is not None and schedule_plan.crash_restarts)
    violations = check_invariants(
        _LiveSetup(metrics=metrics, scale=scale, agents=agents),
        # An interrupted run stopped mid-flight: jobs that never got to
        # run are not conservation violations.
        expected_jobs=None if interrupted else config.jobs,
        allow_lost=allow_lost or interrupted,
    )
    if online_checker is not None:
        violations = list(online_checker.violations) + violations
    telemetry: Dict[str, float] = {}
    if obs is not None and obs.telemetry:
        telemetry = registry.snapshot()
    trace_events: List[Dict[str, object]] = []
    if obs is not None and obs.sink == "memory" and tracer is not None:
        inner = (
            online_checker.sink if online_checker is not None else tracer.sink
        )
        if isinstance(inner, MemorySink):
            trace_events = inner.events

    return RunResult(
        scenario=scenario,
        scale=scale,
        seed=config.seed,
        metrics=metrics,
        traffic=transport.monitor.report(
            node_count=len(nodes), duration=config.duration
        ),
        completed_series=list(completed.samples),
        idle_series=list(idle.samples),
        node_count_series=list(node_count.samples),
        submission_window=(schedule.times()[0], schedule.end),
        final_node_count=sum(
            1 for agent in agents if not agent.failed and not agent.departed
        ),
        executed_events=clock.executed_events,
        network=transport.network_counters(),
        extra_violations=violations,
        telemetry=telemetry,
        trace_events=trace_events,
        fleet_series=(
            collector.series_points() if collector is not None else {}
        ),
        interrupted=interrupted,
    )
