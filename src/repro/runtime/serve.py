"""Boot a live localhost overlay and run a paper scenario against it.

:func:`run_live` is the live counterpart of
:func:`repro.experiments.runner.build_grid` + ``GridSetup.run``: it wires
the *same* agents, schedulers, cost model, workload generator, metrics,
samplers and tracer — only the two seams differ (a
:class:`~repro.runtime.WallClock` instead of the simulator, a
:class:`~repro.runtime.LiveTransport` instead of the simulated one) —
then lets real wall time pass and returns the same
:class:`~repro.experiments.runner.RunResult`, so ``.summary()``,
validation, the invariant checker and every downstream consumer work
unchanged.

Timing: everything protocol-side stays in protocol seconds; the
``time_scale`` compression maps them onto wall time (see
:mod:`repro.runtime.clock`).  The defaults compress a ~2.5-hour protocol
scenario into ~30 wall seconds while keeping every wall-clock window an
HTTP round-trip must fit (the ACCEPT collection window, reliability ack
timeouts) hundreds of times wider than a localhost round-trip.  The
knobs that make that true:

* ``accept_wait`` is raised from the paper's 5 s (which at scale 300
  would be a 17 ms wall window) to 60 s protocol = 200 ms wall;
* the reliability ack timeout is derived from ``time_scale`` so its
  wall value starts at ~50 ms and backs off from there;
* the workload's mean ERT is scaled down so a handful of jobs exercises
  queueing and completion within the compressed horizon.
"""

from __future__ import annotations

import asyncio
import dataclasses
from dataclasses import dataclass
from typing import Dict, List, Optional

from ..core.config import AriaConfig
from ..core.protocol import AriaAgent
from ..errors import ConfigurationError
from ..grid.node import GridNode
from ..grid.performance import AccuracyModel
from ..grid.resources import random_node_profile, random_performance_index
from ..metrics.collector import GridMetrics
from ..net.reliability import ReliabilityConfig, ReliabilityLayer
from ..obs.metrics import MetricsRegistry
from ..obs.trace import TraceConfig, Tracer
from ..scheduling.registry import make_scheduler
from ..sim import PeriodicSampler
from ..types import NodeId
from ..workload.generator import ERT_DISTRIBUTION, JobGenerator
from ..workload.submission import SubmissionProcess, SubmissionSchedule
from ..experiments.catalog import get_scenario
from ..experiments.invariants import check_invariants
from ..experiments.runner import RunResult, _build_overlay
from ..experiments.scale import ScenarioScale
from .clock import WallClock
from .transport import LiveTransport

__all__ = ["LiveRunConfig", "run_live"]


@dataclass(frozen=True)
class LiveRunConfig:
    """One live overlay run: scenario, size, and time compression."""

    scenario_name: str = "iMixed"
    nodes: int = 8
    jobs: int = 10
    seed: int = 0
    #: Protocol seconds per wall second.
    time_scale: float = 300.0
    #: Protocol-time horizon (like ``ScenarioScale.duration``).
    duration: float = 9_000.0
    #: Mean ERT the workload distribution is rescaled to, so a few jobs
    #: finish within the compressed horizon (paper mean: 2.5 h).
    ert_mean: float = 1_200.0
    submission_start: float = 60.0
    submission_interval: float = 30.0
    #: ACCEPT collection window override (see module docstring).
    accept_wait: float = 60.0
    #: Attach the reliability layer (real acks, timeouts, backoff).
    reliability: bool = True
    host: str = "127.0.0.1"
    #: Wall seconds before an outbound POST counts as lost.
    send_timeout: float = 5.0
    #: Stop early once every job completed and the grid has been quiet
    #: for this many wall seconds (0 disables early exit).
    early_exit_grace: float = 0.5

    def __post_init__(self) -> None:
        if self.nodes < 2:
            raise ConfigurationError(f"need >= 2 nodes, got {self.nodes}")
        if self.jobs < 1:
            raise ConfigurationError(f"need >= 1 job, got {self.jobs}")
        if self.time_scale <= 0:
            raise ConfigurationError(f"time_scale {self.time_scale} must be > 0")
        if self.duration <= self.submission_start:
            raise ConfigurationError("duration must exceed submission_start")
        window = self.accept_wait / self.time_scale
        if window < 0.01:
            raise ConfigurationError(
                f"accept_wait {self.accept_wait}s at time_scale "
                f"{self.time_scale} leaves a {window * 1000:.1f} ms wall "
                "window — too tight for HTTP round-trips (need >= 10 ms)"
            )

    def wall_duration(self) -> float:
        """The run's wall-clock horizon in seconds."""
        return self.duration / self.time_scale


@dataclass
class _LiveSetup:
    """The slice of ``GridSetup`` the invariant checker consumes."""

    metrics: GridMetrics
    scale: ScenarioScale
    agents: List[AriaAgent]


def _reliability_config(time_scale: float) -> ReliabilityConfig:
    """Ack/retry policy whose *wall* timings suit a localhost overlay.

    The first ack timeout lands at ~50 wall milliseconds — roomy against
    a sub-millisecond localhost round-trip, tight enough that a genuine
    loss retries well within the accept window — and backs off to a cap
    of ~2 wall seconds.
    """
    return ReliabilityConfig(
        ack_timeout=0.05 * time_scale,
        backoff=2.0,
        max_timeout=2.0 * time_scale,
        max_retries=5,
        jitter=0.5,
    )


def run_live(
    config: Optional[LiveRunConfig] = None,
    obs: Optional[TraceConfig] = None,
) -> RunResult:
    """Run one live scenario to completion and collect the results.

    Synchronous entry point (owns the event loop); the run's invariant
    verdict lands in ``RunResult.extra_violations`` so ``.summary()``
    folds it into ``RunSummary.violations`` like any simulated run.
    """
    config = config if config is not None else LiveRunConfig()
    return asyncio.run(_run_live(config, obs))


async def _run_live(config: LiveRunConfig, obs: Optional[TraceConfig]) -> RunResult:
    loop = asyncio.get_running_loop()
    clock = WallClock(loop, seed=config.seed, time_scale=config.time_scale)
    registry = MetricsRegistry()
    metrics = GridMetrics(registry)
    scenario = get_scenario(config.scenario_name)
    scale = ScenarioScale(
        nodes=config.nodes,
        jobs=config.jobs,
        duration=config.duration,
        expanding_start=config.duration / 3,
        expanding_end=config.duration * 2 / 3,
        sample_interval=max(1.0, config.duration / 25),
    )

    transport = LiveTransport(
        clock,
        loop=loop,
        loss_probability=scenario.message_loss,
        registry=registry,
        send_timeout=config.send_timeout,
    )
    tracer: Optional[Tracer] = None
    agent_tracer: Optional[Tracer] = None
    if obs is not None and obs.level != "off":
        tracer = Tracer(obs)
        if tracer.wants_level("protocol"):
            agent_tracer = tracer
        if tracer.wants_level("transport"):
            transport._trace = tracer
    if config.reliability:
        ReliabilityLayer(transport, _reliability_config(config.time_scale))

    graph = _build_overlay(scenario.overlay, config.nodes, config.seed)
    aria_config = dataclasses.replace(
        AriaConfig(
            rescheduling=scenario.rescheduling,
            inform_count=scenario.inform_count,
            improvement_threshold=scenario.improvement_threshold,
        ),
        accept_wait=config.accept_wait,
    )
    accuracy = AccuracyModel(
        epsilon=scenario.epsilon, optimistic_only=scenario.optimistic_only
    )

    # One HTTP endpoint per node, then card-driven discovery builds the
    # address directory over the wire before any agent exists.
    for node_id in graph.nodes():
        await transport.add_endpoint(node_id, host=config.host)
    await transport.discover()

    profile_rng = clock.streams.get("profiles")
    policy_rng = clock.streams.get("policies")
    nodes: List[GridNode] = []
    agents: List[AriaAgent] = []
    for node_id in graph.nodes():
        node = GridNode(
            node_id=node_id,
            sim=clock,
            profile=random_node_profile(profile_rng),
            performance_index=random_performance_index(profile_rng),
            scheduler=make_scheduler(policy_rng.choice(scenario.policies)),
            accuracy=accuracy,
        )
        agent = AriaAgent(
            node, transport, graph, aria_config, metrics, tracer=agent_tracer
        )
        agent.start()
        nodes.append(node)
        agents.append(agent)

    schedule = SubmissionSchedule(
        job_count=config.jobs,
        interval=config.submission_interval,
        start=config.submission_start,
    )
    initial_profiles = [node.profile for node in nodes]
    generator = JobGenerator(
        clock.streams.get("workload"),
        deadline_slack_mean=scenario.deadline_slack_mean,
        ert_distribution=ERT_DISTRIBUTION.scaled_to_mean(config.ert_mean),
        requirements_ok=lambda req: any(
            profile.satisfies(req) for profile in initial_profiles
        ),
        priority_levels=scenario.priority_levels,
        reservation_probability=scenario.reservation_probability,
        reservation_delay_mean=scenario.reservation_delay_mean,
    )
    SubmissionProcess(
        clock,
        agents=lambda: [
            agent
            for agent in agents
            if not agent.failed and not agent.departed
        ],
        generator=generator,
        schedule=schedule,
        rng=clock.streams.get("submission"),
    )

    idle = PeriodicSampler(
        clock,
        lambda: sum(
            agent.node.is_idle
            for agent in agents
            if not agent.failed and not agent.departed
        ),
        interval=scale.sample_interval,
        start=0.0,
    )
    completed = PeriodicSampler(
        clock,
        lambda: metrics.completed_jobs,
        interval=scale.sample_interval,
        start=0.0,
    )
    node_count = PeriodicSampler(
        clock,
        lambda: sum(
            1 for agent in agents if not agent.failed and not agent.departed
        ),
        interval=scale.sample_interval,
        start=0.0,
    )

    # ------------------------------------------------------------------
    # Let wall time pass.
    # ------------------------------------------------------------------
    try:
        deadline = loop.time() + config.wall_duration()
        quiet_since: Optional[float] = None
        while True:
            remaining = deadline - loop.time()
            if remaining <= 0:
                break
            await asyncio.sleep(min(0.1, remaining))
            if not config.early_exit_grace:
                continue
            if metrics.completed_jobs >= config.jobs and not transport._tasks:
                if quiet_since is None:
                    quiet_since = loop.time()
                elif loop.time() - quiet_since >= config.early_exit_grace:
                    break
            else:
                quiet_since = None
        clock.stop()
        await transport.drain()
    finally:
        await transport.close()
        if tracer is not None:
            tracer.close()

    violations = check_invariants(
        _LiveSetup(metrics=metrics, scale=scale, agents=agents),
        expected_jobs=config.jobs,
    )
    telemetry: Dict[str, float] = {}
    if obs is not None and obs.telemetry:
        telemetry = registry.snapshot()
    trace_events: List[Dict[str, object]] = []
    if tracer is not None and obs.sink == "memory":
        trace_events = tracer.events

    return RunResult(
        scenario=scenario,
        scale=scale,
        seed=config.seed,
        metrics=metrics,
        traffic=transport.monitor.report(
            node_count=len(nodes), duration=config.duration
        ),
        completed_series=list(completed.samples),
        idle_series=list(idle.samples),
        node_count_series=list(node_count.samples),
        submission_window=(schedule.times()[0], schedule.end),
        final_node_count=len(nodes),
        executed_events=clock.executed_events,
        network=transport.network_counters(),
        extra_violations=violations,
        telemetry=telemetry,
        trace_events=trace_events,
    )
