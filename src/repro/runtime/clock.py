"""Wall-clock implementation of the :class:`~repro.clock.Clock` protocol.

:class:`WallClock` maps *protocol seconds* — the unit every ARiA timer,
deadline and ERT is expressed in — onto the asyncio event loop's
monotonic clock, compressed by a ``time_scale`` factor: at
``time_scale=300`` one wall second is five protocol minutes, so a paper
scenario spanning hours of protocol time finishes in seconds of wall
time while every relative timer (accept windows, INFORM rounds, probe
intervals) keeps its protocol-time meaning.

Semantics match the simulator where the protocol can observe them:

* ``now`` is monotone non-decreasing (it inherits monotonicity from
  ``loop.time()``);
* callbacks run on the event loop, one at a time — handlers never
  preempt each other, exactly like kernel event dispatch;
* ``cancel`` is idempotent and safe after the timer fired;
* ``streams`` hands out the same seed-derived named RNGs.

The one deliberate divergence: scheduling *at or before* ``now`` is not
an error but fires as soon as possible.  Real time moved while the
caller computed the target — punishing that race would make every
``call_at(now + x)`` fragile — whereas the simulator's frozen ``now``
makes a past target a genuine bug worth raising on.
"""

from __future__ import annotations

import asyncio
from typing import Callable, Optional

from ..errors import ConfigurationError
from ..sim.rng import RandomStreams

__all__ = ["WallClock"]


class _WallRecurrence:
    """State of one :meth:`WallClock.every` periodic schedule.

    Mirrors the simulator's ``_Recurrence``: fires every ``interval``
    protocol seconds from ``start`` until ``until``, and the returned
    stop function cancels the pending occurrence.
    """

    __slots__ = ("clock", "interval", "callback", "args", "until", "handle", "stopped", "next_time")

    def __init__(self, clock, interval, callback, args, start, until):
        self.clock = clock
        self.interval = interval
        self.callback = callback
        self.args = args
        self.until = until
        self.stopped = False
        self.handle = None
        self.next_time = start
        self._schedule()

    def _schedule(self):
        if self.stopped:
            return
        if self.until is not None and self.next_time > self.until:
            self.handle = None
            return
        self.handle = self.clock.call_at(self.next_time, self._fire)

    def _fire(self):
        if self.stopped:
            return
        self.next_time += self.interval
        self._schedule()
        self.callback(*self.args)

    def stop(self):
        self.stopped = True
        if self.handle is not None:
            self.clock.cancel(self.handle)
            self.handle = None


class WallClock:
    """Protocol-seconds clock over an asyncio event loop.

    ``time_scale`` is the compression factor: protocol seconds per wall
    second.  ``1.0`` runs in real time; the live scenario defaults use a
    few hundred so paper timescales (hours) fit a CI smoke job
    (seconds).
    """

    def __init__(
        self,
        loop: Optional[asyncio.AbstractEventLoop] = None,
        seed: int = 0,
        time_scale: float = 1.0,
        start_at: float = 0.0,
    ) -> None:
        if time_scale <= 0:
            raise ConfigurationError(f"time_scale {time_scale} must be > 0")
        if start_at < 0:
            raise ConfigurationError(f"negative start_at {start_at}")
        if loop is None:
            try:
                loop = asyncio.get_running_loop()
            except RuntimeError:
                raise ConfigurationError(
                    "WallClock must be constructed inside a running event "
                    "loop (or be handed one explicitly)"
                ) from None
        self._loop = loop
        self.time_scale = time_scale
        # ``start_at`` shifts protocol time so ``now`` starts there
        # instead of at 0 — a process worker restarted mid-run resumes on
        # the fleet's shared timeline, so its trace timestamps and timer
        # arithmetic line up with peers that never died.
        self._origin = self._loop.time() - start_at / time_scale
        self.streams = RandomStreams(seed)
        #: Fired timer callbacks (the live analogue of the simulator's
        #: executed-events count surfaced in run summaries).
        self.executed_events = 0
        self._stopped = False

    # ------------------------------------------------------------------
    # Clock protocol
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Elapsed protocol seconds since the clock was created."""
        return (self._loop.time() - self._origin) * self.time_scale

    def call_at(self, time: float, callback: Callable, *args, priority: int = 0):
        """Run ``callback(*args)`` at protocol time ``time``.

        A target at or before ``now`` fires as soon as possible (see the
        module docstring); ``priority`` is accepted for interface parity
        but real time has no same-instant ordering to refine.
        """
        wall_delay = max(0.0, (time - self.now) / self.time_scale)
        return self._loop.call_later(wall_delay, self._run, callback, args)

    def call_after(self, delay: float, callback: Callable, *args, priority: int = 0):
        """Run ``callback(*args)`` after ``delay`` protocol seconds."""
        if delay < 0:
            raise ConfigurationError(f"negative delay {delay}")
        return self._loop.call_later(
            delay / self.time_scale, self._run, callback, args
        )

    def cancel(self, handle) -> None:
        """Cancel a pending timer (idempotent, safe after firing)."""
        handle.cancel()

    def every(
        self,
        interval: float,
        callback: Callable,
        *args,
        start: Optional[float] = None,
        until: Optional[float] = None,
    ) -> Callable[[], None]:
        """Run ``callback(*args)`` every ``interval`` protocol seconds.

        Returns a zero-argument stop function, like
        :meth:`~repro.sim.Simulator.every`.
        """
        if interval <= 0:
            raise ConfigurationError(f"non-positive interval {interval}")
        first = start if start is not None else self.now + interval
        recurrence = _WallRecurrence(
            self, interval, callback, args, first, until
        )
        return recurrence.stop

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def stop(self) -> None:
        """Silence the clock: every timer still pending never fires.

        Used at the end of a live run so periodic protocol loops cannot
        outlive the scenario while in-flight HTTP deliveries drain.
        """
        self._stopped = True

    def _run(self, callback: Callable, args: tuple) -> None:
        if self._stopped:
            return
        self.executed_events += 1
        callback(*args)
