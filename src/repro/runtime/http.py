"""Minimal HTTP/1.1 over asyncio streams — zero dependencies.

Just enough protocol for the live runtime's two exchanges: a GET of the
agent card and a POST of one message envelope.  Every exchange is
one-shot (``Connection: close``): the overlay's message rate at live
scale is far below where connection reuse would matter, and one-shot
connections keep both ends trivially correct under concurrent delivery.

The server accepts any HTTP/1.1 client (``curl`` against a node's agent
card works), and the client only needs to talk to this server, so both
sides implement the intersection honestly: request line + headers +
``Content-Length``-delimited bodies.  No chunked encoding, no
keep-alive, no TLS.
"""

from __future__ import annotations

import asyncio
import json
from typing import Any, Awaitable, Callable, Dict, Optional, Tuple

from ..errors import ConfigurationError

__all__ = ["HttpServer", "http_request", "http_get_json", "http_post_json"]

#: ``handler(method, path, body) -> (status, reason, body)`` or
#: ``(status, reason, body, content_type)`` — the 3-tuple form defaults
#: to ``application/json``; routes serving another format (the
#: Prometheus ``/metrics`` page) return the 4-tuple.
Handler = Callable[[str, str, bytes], Tuple]

_MAX_HEADER_BYTES = 16 * 1024
_MAX_BODY_BYTES = 1024 * 1024


class HttpServer:
    """One node's HTTP endpoint: serves its agent card and inbox."""

    def __init__(self, handler: Handler) -> None:
        self._handler = handler
        self._server: Optional[asyncio.AbstractServer] = None
        self.host: Optional[str] = None
        self.port: Optional[int] = None

    async def start(self, host: str = "127.0.0.1", port: int = 0) -> None:
        """Bind and start serving; ``port=0`` picks an ephemeral port."""
        self._server = await asyncio.start_server(
            self._serve_connection, host=host, port=port
        )
        sockname = self._server.sockets[0].getsockname()
        self.host, self.port = sockname[0], sockname[1]

    async def close(self) -> None:
        """Stop listening and wait for the server socket to shut down."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        content_type = "application/json"
        try:
            method, path, body = await _read_request(reader)
            result = self._handler(method, path, body)
            if len(result) == 4:
                status, reason, payload, content_type = result
            else:
                status, reason, payload = result
        except Exception:
            status, reason, payload = 400, "Bad Request", b""
        try:
            writer.write(
                (
                    f"HTTP/1.1 {status} {reason}\r\n"
                    f"Content-Type: {content_type}\r\n"
                    f"Content-Length: {len(payload)}\r\n"
                    "Connection: close\r\n"
                    "\r\n"
                ).encode("ascii")
                + payload
            )
            await writer.drain()
        except (ConnectionError, BrokenPipeError):
            pass  # client went away; nothing to salvage
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, BrokenPipeError):
                pass


async def _read_request(
    reader: asyncio.StreamReader,
) -> Tuple[str, str, bytes]:
    head = await reader.readuntil(b"\r\n\r\n")
    if len(head) > _MAX_HEADER_BYTES:
        raise ConfigurationError("oversized request head")
    lines = head.decode("latin-1").split("\r\n")
    method, path, _version = lines[0].split(" ", 2)
    length = 0
    for line in lines[1:]:
        if not line:
            continue
        name, _, value = line.partition(":")
        if name.strip().lower() == "content-length":
            length = int(value.strip())
    if length > _MAX_BODY_BYTES:
        raise ConfigurationError("oversized request body")
    body = await reader.readexactly(length) if length else b""
    return method, path, body


async def _read_response(
    reader: asyncio.StreamReader,
) -> Tuple[int, bytes]:
    head = await reader.readuntil(b"\r\n\r\n")
    lines = head.decode("latin-1").split("\r\n")
    status = int(lines[0].split(" ", 2)[1])
    length = 0
    for line in lines[1:]:
        if not line:
            continue
        name, _, value = line.partition(":")
        if name.strip().lower() == "content-length":
            length = int(value.strip())
    body = await reader.readexactly(length) if length else b""
    return status, body


async def http_request(
    host: str,
    port: int,
    method: str,
    path: str,
    body: bytes = b"",
    timeout: float = 5.0,
) -> Tuple[int, bytes]:
    """One HTTP exchange; raises on connect failure or timeout."""

    async def _exchange() -> Tuple[int, bytes]:
        reader, writer = await asyncio.open_connection(host, port)
        try:
            writer.write(
                (
                    f"{method} {path} HTTP/1.1\r\n"
                    f"Host: {host}:{port}\r\n"
                    "Content-Type: application/json\r\n"
                    f"Content-Length: {len(body)}\r\n"
                    "Connection: close\r\n"
                    "\r\n"
                ).encode("ascii")
                + body
            )
            await writer.drain()
            return await _read_response(reader)
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, BrokenPipeError):
                pass

    return await asyncio.wait_for(_exchange(), timeout)


async def http_get_json(
    host: str,
    port: int,
    path: str,
    timeout: float = 5.0,
    retries: int = 5,
    backoff: float = 0.05,
) -> Dict[str, Any]:
    """GET a JSON document, retrying with exponential backoff.

    Discovery races server startup, so connect failures back off and
    retry (``backoff``, doubling per attempt) before giving up.
    """
    delay = backoff
    for attempt in range(retries + 1):
        try:
            status, body = await http_request(
                host, port, "GET", path, timeout=timeout
            )
            if status == 200:
                return json.loads(body.decode("utf-8"))
            raise ConfigurationError(f"GET {path} returned HTTP {status}")
        except (ConnectionError, OSError, asyncio.TimeoutError):
            if attempt >= retries:
                raise
            await asyncio.sleep(delay)
            delay *= 2


async def http_post_json(
    host: str,
    port: int,
    path: str,
    payload: Dict[str, Any],
    timeout: float = 5.0,
) -> int:
    """POST a JSON document once; returns the HTTP status."""
    body = json.dumps(payload, separators=(",", ":")).encode("utf-8")
    status, _ = await http_request(
        host, port, "POST", path, body=body, timeout=timeout
    )
    return status
