"""JSON wire codec for protocol messages and transport envelopes.

The simulator passes message *objects* between agents; the live runtime
has to put them on an actual wire.  Every registered
:class:`~repro.net.Message` subclass is encoded generically by walking
its ``__slots__`` (the classes are plain slotted records, and their
constructors take the slots in order), with two typed special cases:

* :class:`~repro.workload.jobs.Job` payloads (carried by REQUEST /
  INFORM / ASSIGN) expand into a nested object, their
  :class:`~repro.grid.profiles.JobRequirements` enums serialized by
  value;
* everything else must already be JSON-representable (ints, floats,
  bools, ``None``) — the codec refuses silently lossy encodings.

The envelope wraps one encoded message with its routing metadata —
source, destination, delivery kind (plain / reliability-tagged / ack),
``msg_id`` and incarnation ``stamp`` — mirroring exactly the four
delivery paths of the :class:`~repro.net.Transport` interface.

Note the declared ``SIZE_BYTES`` wire sizes stay authoritative for
traffic accounting even live: the JSON encoding is a convenience
format, not a claim about an optimized binary protocol.
"""

from __future__ import annotations

from typing import Any, Dict, Type

from ..core.messages import Accept, Assign, Done, Inform, Probe, ProbeReply, Request, Track
from ..errors import ConfigurationError
from ..grid.profiles import Architecture, JobRequirements, OperatingSystem
from ..net.message import Message
from ..net.reliability import Ack
from ..workload.jobs import Job

__all__ = [
    "MESSAGE_TYPES",
    "decode_envelope",
    "decode_job",
    "decode_message",
    "encode_envelope",
    "encode_job",
    "encode_message",
]

#: Every message type the live wire can carry, by class name.
MESSAGE_TYPES: Dict[str, Type[Message]] = {
    cls.__name__: cls
    for cls in (Request, Accept, Inform, Assign, Track, Probe, ProbeReply, Done, Ack)
}


def encode_job(job: Job) -> Dict[str, Any]:
    """Encode one :class:`~repro.workload.jobs.Job` descriptor.

    Public alongside the message codec because the process-isolated
    runtime submits jobs over the wire too (``POST /submit`` carries a
    bare job, not a protocol message).
    """
    req = job.requirements
    return {
        "job_id": job.job_id,
        "requirements": {
            "architecture": req.architecture.value,
            "memory_gb": req.memory_gb,
            "disk_gb": req.disk_gb,
            "os": req.os.value,
        },
        "ert": job.ert,
        "deadline": job.deadline,
        "submit_time": job.submit_time,
        "priority": job.priority,
        "not_before": job.not_before,
    }


def decode_job(payload: Dict[str, Any]) -> Job:
    """Rebuild a job descriptor from :func:`encode_job` output."""
    req = payload["requirements"]
    return Job(
        job_id=payload["job_id"],
        requirements=JobRequirements(
            architecture=Architecture(req["architecture"]),
            memory_gb=req["memory_gb"],
            disk_gb=req["disk_gb"],
            os=OperatingSystem(req["os"]),
        ),
        ert=payload["ert"],
        deadline=payload["deadline"],
        submit_time=payload["submit_time"],
        priority=payload["priority"],
        not_before=payload["not_before"],
    )


def encode_message(message: Message) -> Dict[str, Any]:
    """Encode one message as ``{"type": ..., "fields": {...}}``."""
    name = message.__class__.__name__
    if name not in MESSAGE_TYPES:
        raise ConfigurationError(f"unregistered message type {name!r}")
    fields: Dict[str, Any] = {}
    for slot in message.__slots__:
        value = getattr(message, slot)
        if isinstance(value, Job):
            fields[slot] = {"__job__": encode_job(value)}
        elif isinstance(value, tuple):
            # e.g. broadcast ids: (origin node, sequence number).  JSON
            # has no tuple, and a plain list would decode as unhashable.
            if not all(
                item is None or isinstance(item, (bool, int, float, str))
                for item in value
            ):
                raise ConfigurationError(
                    f"cannot encode non-scalar tuple in {name}.{slot}"
                )
            fields[slot] = {"__tuple__": list(value)}
        elif value is None or isinstance(value, (bool, int, float, str)):
            fields[slot] = value
        else:
            raise ConfigurationError(
                f"cannot encode field {name}.{slot} of type "
                f"{type(value).__name__}"
            )
    return {"type": name, "fields": fields}


def decode_message(payload: Dict[str, Any]) -> Message:
    """Rebuild a message object from :func:`encode_message` output."""
    cls = MESSAGE_TYPES.get(payload["type"])
    if cls is None:
        raise ConfigurationError(
            f"unknown message type {payload['type']!r} on the wire"
        )
    fields = payload["fields"]
    args = []
    for slot in cls.__slots__:
        value = fields[slot]
        if isinstance(value, dict):
            if "__job__" in value:
                value = decode_job(value["__job__"])
            elif "__tuple__" in value:
                value = tuple(value["__tuple__"])
        args.append(value)
    return cls(*args)


def encode_envelope(
    kind: str,
    src: int,
    dst: int,
    message: Message,
    msg_id: Any = None,
    stamp: Any = None,
    trace: Any = None,
) -> Dict[str, Any]:
    """Wrap one message with its routing metadata.

    ``kind`` is ``"send"`` (plain datagram), ``"tagged"`` (reliable,
    carries ``msg_id`` and optionally the incarnation ``stamp`` of the
    original transmission) or ``"ack"`` (reliability ack, settles
    ``msg_id`` at the receiver).

    ``trace`` is the optional causal context — ``{"id", "hop",
    "sent_at"}`` — stamped on the wire when transport-level tracing is
    active, so the receiving process can emit the paired ``net.recv``
    event and continue the sender's trace chain.  Untraced runs omit the
    field entirely (the wire format is unchanged when tracing is off).
    """
    if kind not in ("send", "tagged", "ack"):
        raise ConfigurationError(f"unknown envelope kind {kind!r}")
    envelope: Dict[str, Any] = {
        "kind": kind,
        "src": src,
        "dst": dst,
        "message": encode_message(message),
    }
    if msg_id is not None:
        envelope["msg_id"] = msg_id
    if stamp is not None:
        envelope["stamp"] = stamp
    if trace is not None:
        envelope["trace"] = trace
    return envelope


def decode_envelope(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Validate and decode an envelope; ``message`` becomes an object."""
    kind = payload.get("kind")
    if kind not in ("send", "tagged", "ack"):
        raise ConfigurationError(f"malformed envelope kind {kind!r}")
    return {
        "kind": kind,
        "src": payload["src"],
        "dst": payload["dst"],
        "message": decode_message(payload["message"]),
        "msg_id": payload.get("msg_id"),
        "stamp": payload.get("stamp"),
        "trace": payload.get("trace"),
    }
