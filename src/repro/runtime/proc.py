"""Process-isolated live overlay: per-node OS processes under a supervisor.

:func:`run_procs` is the third rung of the runtime ladder.  The simulator
shares one Python object graph; :func:`~repro.runtime.serve.run_live`
shares one *process* (real sockets, one event loop); this module shares
nothing.  Every node — or node *group*, see ``group_size`` — runs in its
own OS process with its own event loop, :class:`~repro.runtime.WallClock`
and :class:`~repro.runtime.LiveTransport`, so a crash is a real process
death: no shared heap survives it, and recovery must go through the disk
and the wire exactly as it would on real machines.

Three pieces make that survivable:

* **Durable journals** (:class:`~repro.core.journal.DurableJournal`) —
  every completion is fsync'd *before* it is announced, and the
  incarnation counter lives in the same file.  A respawned worker replays
  the journal into the agent's completion log before its first message,
  so the cross-incarnation no-double-execution invariant holds across
  real SIGKILLs, not just simulated crashes.  The journal's file lock
  doubles as the duplicate-incarnation guard: two live processes can
  never both claim one node.

* **The supervisor** — a parent-side monitor that watches child exit
  codes and ``/healthz`` probes, respawns crashed workers under
  exponential backoff, and trips a circuit breaker after
  ``max_restarts`` so a crash-looping node cannot flap forever.
  ``SIGTERM`` drains gracefully: workers walk the paper's departure
  protocol and flush their trace sinks before exiting 0.

* **Shared-nothing determinism** — workers rebuild the overlay graph,
  node profiles and scheduler policies from ``(scenario, nodes, seed)``
  alone, drawing the *whole* fleet's profile stream in node order and
  keeping only their own slice, so every process agrees on the grid
  without a coordination channel.  The address directory is a directory
  of atomically written files; peers re-discover an address only when
  its ``(host, port, pid, incarnation)`` tuple changes.

Chaos at this level is process chaos: :class:`ProcessFailureSchedule`
SIGKILLs workers (crash-stop — no goodbye, no flush) and SIGSTOPs them
(fail-slow — the process is alive but frozen, the classic gray failure).
Evidence is assembled post-run: every worker's per-boot rotated JSONL
trace segments are merged on ``(wall, t)`` and streamed through an
:class:`~repro.experiments.OnlineInvariantChecker`, and the journals on
disk are the ground truth for completions the killed processes never got
to announce.
"""

from __future__ import annotations

import asyncio
import dataclasses
import glob
import json
import multiprocessing
import os
import signal
import tempfile
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..core.config import AriaConfig
from ..core.journal import DurableJournal
from ..core.protocol import AriaAgent
from ..errors import ConfigurationError, ProtocolError
from ..grid.node import GridNode
from ..grid.performance import AccuracyModel
from ..grid.resources import random_node_profile, random_performance_index
from ..metrics.collector import GridMetrics
from ..net.reliability import ReliabilityLayer
from ..obs.collector import TelemetryCollector, render_dashboard
from ..obs.exposition import render_prometheus
from ..obs.metrics import MetricsRegistry
from ..obs.trace import TraceConfig, Tracer, rotated_trace_paths
from ..scheduling.registry import make_scheduler
from ..sim.rng import RandomStreams
from ..types import NodeId
from ..workload.generator import ERT_DISTRIBUTION, JobGenerator
from ..workload.submission import SubmissionSchedule
from ..experiments.catalog import get_scenario
from ..experiments.faults import FaultPlan, apply_fault_plan
from ..experiments.invariants_online import OnlineInvariantChecker
from ..experiments.runner import _build_overlay
from .clock import WallClock
from .codec import encode_job
from .http import HttpServer, http_get_json, http_post_json
from .serve import _reliability_config
from .transport import HEALTH_PATH, SUBMIT_PATH, LiveTransport

__all__ = [
    "ProcRunConfig",
    "ProcRunResult",
    "ProcessFailureSchedule",
    "Supervisor",
    "WorkerSpec",
    "run_procs",
    "worker_main",
]

#: The bogus job id forged by ``seed_violation`` workers — excluded from
#: the completed-jobs tally, and the id the checker self-test fires on.
FORGE_JOB_ID = 999_999_999

#: Wall seconds a submission keeps retrying for a live entry point
#: before it counts as failed (covers worker boot and crash-restart
#: windows at the default supervisor backoff).
_SUBMIT_RETRY_WINDOW = 8.0


# ----------------------------------------------------------------------
# Process-level chaos schedule
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ProcessFailureSchedule:
    """When process chaos happens, in *wall* seconds.

    ``kills`` holds ``(at, victim_index)`` pairs: at wall second ``at``
    the victim worker is SIGKILLed — crash-stop, no flush, no goodbye —
    and the supervisor respawns it under backoff.  ``stalls`` holds
    ``(at, duration, victim_index)`` triples: SIGSTOP freezes the worker
    for ``duration`` wall seconds, then SIGCONT resumes it — the fail-
    slow gray failure where the process is alive but unresponsive.
    Victim indexes address the worker list modulo its length.
    """

    kills: Tuple[Tuple[float, int], ...] = ()
    stalls: Tuple[Tuple[float, float, int], ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(
            self,
            "kills",
            tuple((float(at), int(victim)) for at, victim in self.kills),
        )
        object.__setattr__(
            self,
            "stalls",
            tuple(
                (float(at), float(duration), int(victim))
                for at, duration, victim in self.stalls
            ),
        )
        for at, victim in self.kills:
            if at < 0:
                raise ConfigurationError(f"negative kill time {at}")
            if victim < 0:
                raise ConfigurationError(f"negative victim index {victim}")
        for at, duration, victim in self.stalls:
            if at < 0 or duration <= 0:
                raise ConfigurationError(
                    f"invalid stall (at={at}, duration={duration})"
                )
            if victim < 0:
                raise ConfigurationError(f"negative victim index {victim}")

    def __bool__(self) -> bool:
        """Whether the schedule contains any chaos at all."""
        return bool(self.kills or self.stalls)

    @classmethod
    def chaos(cls, wall_duration: float) -> "ProcessFailureSchedule":
        """A representative plan for a run of ``wall_duration`` wall
        seconds: one SIGKILL 30 % in, one short SIGSTOP stall at 60 %.
        """
        if wall_duration <= 0:
            raise ConfigurationError(
                f"non-positive wall_duration {wall_duration}"
            )
        return cls(
            kills=((0.3 * wall_duration, 1),),
            stalls=(
                (
                    0.6 * wall_duration,
                    min(1.5, 0.1 * wall_duration),
                    2,
                ),
            ),
        )


# ----------------------------------------------------------------------
# Worker spec + filesystem layout
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class WorkerSpec:
    """Everything one worker process needs — picklable for ``spawn``.

    A spec is pure data: the worker rebuilds the overlay, profiles and
    policies deterministically from it, so a respawned incarnation gets
    byte-identical grid state without talking to anyone.
    """

    index: int
    node_ids: Tuple[NodeId, ...]
    total_nodes: int
    scenario_name: str
    seed: int
    time_scale: float
    duration: float
    accept_wait: float
    reliability: bool
    failsafe: bool
    host: str
    #: Pinned listen ports, aligned with ``node_ids`` (0 = ephemeral).
    ports: Tuple[int, ...]
    run_dir: str
    #: The fleet's shared wall-clock origin (``time.time()`` at launch):
    #: a respawned worker computes its protocol-time offset from it so it
    #: resumes on the same timeline as peers that never died.
    run_epoch: float
    trace_level: str = "transport"
    rotate_bytes: int = 64 * 1024 * 1024
    send_timeout: float = 2.0
    ert_mean: float = 1_200.0
    fault_plan: Optional[FaultPlan] = None
    #: When set, forge one ``job.finished`` for this job id mid-run (the
    #: cross-process checker self-test: two workers forging the same id
    #: is a double execution spanning process boundaries).
    forge_job: Optional[int] = None


def _addr_dir(run_dir: str) -> str:
    return os.path.join(run_dir, "addr")


def _journal_dir(run_dir: str) -> str:
    return os.path.join(run_dir, "journal")


def _trace_dir(run_dir: str) -> str:
    return os.path.join(run_dir, "trace")


def _addr_path(run_dir: str, node_id: NodeId) -> str:
    return os.path.join(_addr_dir(run_dir), f"node-{node_id}.json")


def _journal_path(run_dir: str, node_id: NodeId) -> str:
    return os.path.join(_journal_dir(run_dir), f"node-{node_id}.jsonl")


def _trace_path(run_dir: str, index: int, boot: int) -> str:
    # Per-boot filename: file sinks open with "w", so a respawned worker
    # reusing its predecessor's path would truncate the pre-kill
    # evidence the post-run merge needs.
    return os.path.join(_trace_dir(run_dir), f"worker-{index}.boot{boot}.jsonl")


def _write_atomic(path: str, payload: Dict[str, Any]) -> None:
    """Write JSON so readers never see a half-written file."""
    tmp = path + ".tmp"
    with open(tmp, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, separators=(",", ":"))
    os.replace(tmp, path)


def _read_addr(path: str) -> Optional[Dict[str, Any]]:
    """Read one address file; ``None`` if missing or mid-replace."""
    try:
        with open(path, encoding="utf-8") as handle:
            return json.load(handle)
    except (OSError, ValueError):
        return None


def _read_directory(run_dir: str) -> Dict[NodeId, Tuple[str, int]]:
    """The current fleet address directory from the addr files."""
    directory: Dict[NodeId, Tuple[str, int]] = {}
    for path in glob.glob(os.path.join(_addr_dir(run_dir), "node-*.json")):
        entry = _read_addr(path)
        if entry is not None:
            directory[entry["node_id"]] = (entry["host"], entry["port"])
    return directory


# ----------------------------------------------------------------------
# The worker process
# ----------------------------------------------------------------------
def worker_main(spec: WorkerSpec) -> None:
    """Process entry point (top-level so ``spawn`` can pickle it)."""
    try:
        asyncio.run(_worker(spec))
    except KeyboardInterrupt:
        pass


async def _worker(spec: WorkerSpec) -> None:
    loop = asyncio.get_running_loop()
    drain = asyncio.Event()
    for signum in (signal.SIGTERM, signal.SIGINT):
        try:
            loop.add_signal_handler(signum, drain.set)
        except (NotImplementedError, RuntimeError, ValueError):
            pass

    # Resume on the fleet's shared timeline: a respawned worker's
    # protocol clock starts where the run is, not at zero.
    start_at = max(0.0, (time.time() - spec.run_epoch) * spec.time_scale)
    clock = WallClock(
        loop, seed=spec.seed, time_scale=spec.time_scale, start_at=start_at
    )
    registry = MetricsRegistry()
    metrics = GridMetrics(registry)
    scenario = get_scenario(spec.scenario_name)

    transport = LiveTransport(
        clock,
        loop=loop,
        loss_probability=scenario.message_loss,
        registry=registry,
        send_timeout=spec.send_timeout,
    )
    # Always armed: any worker can die and come back, so every message
    # must carry incarnation stamps from the first send.
    transport.enable_incarnations()
    if spec.fault_plan is not None:
        apply_fault_plan(transport, spec.fault_plan)

    # Journals first: the flock is the duplicate-incarnation guard, so a
    # racing predecessor still holding the lock fails this boot *before*
    # any socket binds or message flies.
    journals: Dict[NodeId, DurableJournal] = {}
    boot = 0
    for node_id in spec.node_ids:
        journal = DurableJournal(_journal_path(spec.run_dir, node_id))
        journals[node_id] = journal
        if journal.incarnation is not None:
            boot = max(boot, journal.incarnation + 1)

    tracer: Optional[Tracer] = None
    agent_tracer: Optional[Tracer] = None
    if spec.trace_level != "off":
        obs = TraceConfig(
            level=spec.trace_level,
            sink="jsonl",
            path=_trace_path(spec.run_dir, spec.index, boot),
            rotate_bytes=spec.rotate_bytes,
        )
        tracer = Tracer(obs, sink=obs.make_sink())
        tracer.wall_source = time.time
        if tracer.wants_level("protocol"):
            agent_tracer = tracer
        if tracer.wants_level("transport"):
            transport._trace = tracer

    if spec.reliability:
        # Disjoint msg_id space per (worker, boot): every process runs
        # its own layer counting from 0, and a respawned incarnation
        # starts a fresh one — without the partition, two senders' ids
        # would collide in a receiver's dedup window and fresh ASSIGNs
        # would be swallowed as duplicates.
        ReliabilityLayer(
            transport,
            _reliability_config(spec.time_scale),
            msg_id_base=((spec.index << 16) | (boot & 0xFFFF)) << 32,
        )

    # Shared-nothing determinism: rebuild the whole grid from the spec.
    # Profiles and policies are drawn for *every* node in graph order
    # from the shared seed streams — each worker keeps only its slice,
    # and all workers agree on everyone's profile without a wire round.
    graph = _build_overlay(scenario.overlay, spec.total_nodes, spec.seed)
    overrides: Dict[str, object] = {"accept_wait": spec.accept_wait}
    if spec.failsafe:
        overrides.update(
            failsafe=True,
            probe_interval=600.0,
            probe_timeout=120.0,
            adoption=True,
        )
    aria_config = dataclasses.replace(
        AriaConfig(
            rescheduling=scenario.rescheduling,
            inform_count=scenario.inform_count,
            improvement_threshold=scenario.improvement_threshold,
        ),
        **overrides,
    )
    accuracy = AccuracyModel(
        epsilon=scenario.epsilon, optimistic_only=scenario.optimistic_only
    )
    profile_rng = clock.streams.get("profiles")
    policy_rng = clock.streams.get("policies")
    own = set(spec.node_ids)
    drawn: Dict[NodeId, Tuple[Any, Any, str]] = {}
    for node_id in graph.nodes():
        profile = random_node_profile(profile_rng)
        perf = random_performance_index(profile_rng)
        policy = policy_rng.choice(scenario.policies)
        if node_id in own:
            drawn[node_id] = (profile, perf, policy)

    bound: Dict[NodeId, Tuple[str, int]] = {}
    for node_id, port in zip(spec.node_ids, spec.ports):
        bound[node_id] = await transport.add_endpoint(
            node_id, host=spec.host, port=port
        )
    # Self-discovery seeds the directory with this worker's own nodes
    # (siblings in one group talk over the wire too); peers arrive via
    # the addr-file refresh loop below.
    await transport.discover(sorted(set(bound.values())))
    transport.set_metrics_provider(
        lambda: {
            "jobs.missed_deadlines": float(metrics.missed_deadline_count())
        }
    )

    agents: List[AriaAgent] = []
    for node_id in spec.node_ids:
        profile, perf, policy = drawn[node_id]
        node = GridNode(
            node_id=node_id,
            sim=clock,
            profile=profile,
            performance_index=perf,
            scheduler=make_scheduler(policy),
            accuracy=accuracy,
        )
        agent = AriaAgent(
            node,
            transport,
            graph,
            aria_config,
            metrics,
            # Per-node RNG stream, so sibling workers' protocol phases
            # decorrelate instead of replaying one shared "aria" stream.
            rng=clock.streams.get(f"aria.{node_id}"),
            tracer=agent_tracer,
        )
        agent.bind_journal(journals[node_id])
        agent.start()
        transport.set_health_provider(node_id, agent.health_snapshot)
        transport.set_submit_handler(node_id, agent.submit)
        agents.append(agent)

    # Publish addresses: the tuple (host, port, pid, incarnation) is the
    # change-detection key peers re-discover on — a respawned worker on
    # the *same* pinned port still changes pid and incarnation, which is
    # what forces peers to fetch its fresh card and unblock stamping.
    pid = os.getpid()
    for agent in agents:
        host, port = bound[agent.node_id]
        _write_atomic(
            _addr_path(spec.run_dir, agent.node_id),
            {
                "node_id": agent.node_id,
                "host": host,
                "port": port,
                "pid": pid,
                "incarnation": agent.incarnation,
            },
        )

    known: Dict[NodeId, Tuple[str, int, int, int]] = {}

    async def _refresh_directory() -> None:
        while True:
            changed: Dict[NodeId, Tuple[str, int, int, int]] = {}
            for path in glob.glob(
                os.path.join(_addr_dir(spec.run_dir), "node-*.json")
            ):
                entry = _read_addr(path)
                if entry is None:
                    continue
                key = (
                    entry["host"],
                    entry["port"],
                    entry.get("pid", 0),
                    entry.get("incarnation", 0),
                )
                node_id = entry["node_id"]
                if known.get(node_id) != key:
                    changed[node_id] = key
            if changed:
                addresses = sorted(
                    {(host, port) for host, port, _pid, _inc in changed.values()}
                )
                try:
                    await transport.discover(addresses)
                except (ConfigurationError, OSError):
                    pass
                else:
                    for node_id, key in changed.items():
                        # Only mark tuples whose card actually landed, so
                        # a worker still booting is retried next round.
                        if transport._directory.get(node_id) == key[:2]:
                            known[node_id] = key
            await asyncio.sleep(0.5)

    refresh_task = loop.create_task(_refresh_directory())

    tasks: List[asyncio.Task] = [refresh_task]
    if spec.forge_job is not None and tracer is not None:

        async def _forge() -> None:
            at = spec.run_epoch + 0.4 * spec.duration / spec.time_scale
            await asyncio.sleep(max(0.0, at - time.time()))
            tracer.emit(
                "job.finished",
                clock.now,
                job=spec.forge_job,
                node=spec.node_ids[0],
            )

        tasks.append(loop.create_task(_forge()))

    try:
        end_wall = spec.run_epoch + spec.duration / spec.time_scale
        while not drain.is_set():
            remaining = end_wall - time.time()
            if remaining <= 0:
                break
            try:
                await asyncio.wait_for(
                    drain.wait(), timeout=min(0.2, remaining)
                )
            except asyncio.TimeoutError:
                pass
        if drain.is_set():
            # Graceful departure: hand waiting jobs off, let the running
            # one finish, then leave — bounded so a wedged peer cannot
            # hold the process hostage past the supervisor's grace.
            for agent in agents:
                if not (agent.failed or agent.departed or agent.leaving):
                    try:
                        agent.leave()
                    except ProtocolError:
                        pass
            depart_deadline = time.time() + 3.0
            while time.time() < depart_deadline and not all(
                agent.departed or agent.failed for agent in agents
            ):
                await asyncio.sleep(0.05)
    finally:
        clock.stop()
        try:
            await asyncio.wait_for(transport.drain(), timeout=2.0)
        except asyncio.TimeoutError:
            pass
        for task in tasks:
            task.cancel()
        await asyncio.gather(*tasks, return_exceptions=True)
        await transport.close()
        if tracer is not None:
            tracer.close()
        for journal in journals.values():
            journal.close()


# ----------------------------------------------------------------------
# The supervisor
# ----------------------------------------------------------------------
class _Worker:
    """Parent-side state of one supervised worker process."""

    __slots__ = (
        "spec",
        "process",
        "state",
        "restarts",
        "restart_at",
        "health_misses",
    )

    def __init__(self, spec: WorkerSpec) -> None:
        self.spec = spec
        self.process = None
        #: new | running | backoff | stopped | broken
        self.state = "new"
        self.restarts = 0
        self.restart_at = 0.0
        self.health_misses = 0


class Supervisor:
    """Spawn, monitor and respawn the worker fleet.

    Crash recovery is exit-code driven (a SIGKILLed child reports a
    negative exit code immediately) with ``/healthz`` probes layered on
    top for fail-slow detection: a worker that is alive but unresponsive
    for ``health_fails`` consecutive probes is SIGKILLed, which folds the
    gray failure into the crash path the journal already survives.
    Respawns back off exponentially (``backoff_base * 2**restarts``,
    capped) and a worker that exhausts ``max_restarts`` is declared
    broken — the circuit breaker that stops a crash loop from burning
    the machine.
    """

    def __init__(
        self,
        specs: List[WorkerSpec],
        *,
        registry: Optional[MetricsRegistry] = None,
        backoff_base: float = 0.5,
        backoff_cap: float = 10.0,
        max_restarts: int = 5,
        health_interval: float = 1.0,
        health_timeout: float = 1.0,
        health_fails: int = 5,
        target: Callable[[WorkerSpec], None] = worker_main,
    ) -> None:
        if backoff_base <= 0 or backoff_cap <= 0:
            raise ConfigurationError("backoff parameters must be > 0")
        if max_restarts < 0:
            raise ConfigurationError(f"negative max_restarts {max_restarts}")
        self._ctx = multiprocessing.get_context("spawn")
        self._target = target
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self.max_restarts = max_restarts
        self.health_interval = health_interval
        self.health_timeout = health_timeout
        self.health_fails = health_fails
        self.workers = [_Worker(spec) for spec in specs]
        self.total_restarts = 0
        self._restarts_counter = (
            registry.counter("supervisor.restarts")
            if registry is not None
            else None
        )

    # -- pure policy ---------------------------------------------------
    def backoff_delay(self, restarts: int) -> float:
        """Wall seconds to wait before restart number ``restarts + 1``."""
        return min(self.backoff_cap, self.backoff_base * (2.0 ** restarts))

    # -- lifecycle -----------------------------------------------------
    def start(self) -> None:
        """Spawn every worker."""
        for worker in self.workers:
            self._spawn(worker)

    def _spawn(self, worker: _Worker) -> None:
        process = self._ctx.Process(
            target=self._target, args=(worker.spec,), daemon=True
        )
        process.start()
        worker.process = process
        worker.state = "running"
        worker.health_misses = 0

    def poll(self, now: Optional[float] = None) -> None:
        """One synchronous supervision step (unit-testable, no loop).

        Reaps exits, schedules backoffs, trips the breaker, respawns.
        """
        if now is None:
            now = time.monotonic()
        for worker in self.workers:
            if worker.state == "running":
                process = worker.process
                if process is not None and process.exitcode is not None:
                    process.join()
                    if process.exitcode == 0:
                        worker.state = "stopped"
                    elif worker.restarts >= self.max_restarts:
                        worker.state = "broken"
                    else:
                        worker.state = "backoff"
                        worker.restart_at = now + self.backoff_delay(
                            worker.restarts
                        )
            if worker.state == "backoff" and now >= worker.restart_at:
                worker.restarts += 1
                self.total_restarts += 1
                if self._restarts_counter is not None:
                    self._restarts_counter.inc()
                self._spawn(worker)

    async def monitor(self, health: bool = True) -> None:
        """Poll forever (cancel to stop); optionally probe ``/healthz``."""
        next_probe = time.monotonic()
        while True:
            self.poll()
            if health and time.monotonic() >= next_probe:
                next_probe = time.monotonic() + self.health_interval
                await self._probe_health()
            await asyncio.sleep(0.1)

    async def _probe_health(self) -> None:
        for index, worker in enumerate(self.workers):
            if worker.state != "running" or worker.process is None:
                continue
            entry = _read_addr(
                _addr_path(worker.spec.run_dir, worker.spec.node_ids[0])
            )
            if entry is None or entry.get("pid") != worker.process.pid:
                continue  # not booted yet (or a predecessor's stale file)
            try:
                await http_get_json(
                    entry["host"],
                    entry["port"],
                    HEALTH_PATH,
                    timeout=self.health_timeout,
                    retries=0,
                )
            except (ConnectionError, OSError, ValueError, asyncio.TimeoutError):
                worker.health_misses += 1
                if worker.health_misses >= self.health_fails:
                    # Fail-slow → crash-stop: SIGKILL folds the gray
                    # failure into the restart path.
                    self.kill(index)
                    worker.health_misses = 0
            else:
                worker.health_misses = 0

    # -- chaos hooks ---------------------------------------------------
    def _victim(self, index: int) -> _Worker:
        return self.workers[index % len(self.workers)]

    def kill(self, index: int) -> None:
        """SIGKILL a worker (crash-stop; the monitor respawns it)."""
        worker = self._victim(index)
        if worker.process is not None and worker.process.is_alive():
            os.kill(worker.process.pid, signal.SIGKILL)

    def stall(self, index: int) -> None:
        """SIGSTOP a worker (fail-slow: alive but frozen)."""
        worker = self._victim(index)
        if worker.process is not None and worker.process.is_alive():
            os.kill(worker.process.pid, signal.SIGSTOP)

    def resume(self, index: int) -> None:
        """SIGCONT a stalled worker."""
        worker = self._victim(index)
        if worker.process is not None and worker.process.is_alive():
            os.kill(worker.process.pid, signal.SIGCONT)

    # -- shutdown ------------------------------------------------------
    async def drain(self, grace: float = 5.0) -> None:
        """SIGTERM everyone, wait ``grace``, SIGKILL stragglers, reap."""
        for worker in self.workers:
            process = worker.process
            if process is not None and process.is_alive():
                # A stalled (SIGSTOPped) worker cannot run its SIGTERM
                # handler; resume it first so the drain is graceful.
                os.kill(process.pid, signal.SIGCONT)
                process.terminate()
        deadline = time.monotonic() + grace
        while time.monotonic() < deadline and any(
            worker.process is not None and worker.process.is_alive()
            for worker in self.workers
        ):
            await asyncio.sleep(0.1)
        for worker in self.workers:
            process = worker.process
            if process is not None and process.is_alive():
                process.kill()
            if process is not None:
                process.join(timeout=2.0)
            if worker.state == "running":
                worker.state = "stopped"

    # -- observability -------------------------------------------------
    def metrics_extra(self) -> Dict[str, float]:
        """Per-worker supervision gauges for the coordinator ``/metrics``."""
        now = time.monotonic()
        extra: Dict[str, float] = {}
        for index, worker in enumerate(self.workers):
            label = f'{{worker="{index}"}}'
            extra[f"supervisor_worker_restarts{label}"] = float(
                worker.restarts
            )
            extra[f"supervisor_worker_up{label}"] = float(
                worker.state == "running"
                and worker.process is not None
                and worker.process.is_alive()
            )
            extra[f"supervisor_worker_backoff_seconds{label}"] = (
                max(0.0, worker.restart_at - now)
                if worker.state == "backoff"
                else 0.0
            )
            extra[f"supervisor_worker_broken{label}"] = float(
                worker.state == "broken"
            )
        return extra

    def stats(self) -> Dict[str, Any]:
        """Summary for run results and CLI reporting."""
        return {
            "restarts": self.total_restarts,
            "states": [worker.state for worker in self.workers],
            "broken": [
                index
                for index, worker in enumerate(self.workers)
                if worker.state == "broken"
            ],
        }


# ----------------------------------------------------------------------
# The coordinated run
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ProcRunConfig:
    """One process-isolated overlay run."""

    scenario_name: str = "iMixed"
    nodes: int = 6
    jobs: int = 8
    seed: int = 0
    time_scale: float = 600.0
    duration: float = 12_000.0
    ert_mean: float = 1_200.0
    submission_start: float = 60.0
    submission_interval: float = 30.0
    accept_wait: float = 60.0
    reliability: bool = True
    #: Fail-safe tracking is on by default here: process chaos *is*
    #: crash-restart chaos, and §III-D is what recovers the jobs.
    failsafe: bool = True
    host: str = "127.0.0.1"
    #: Deterministic ports: node i listens on ``port_base + i`` and the
    #: coordinator's ``/metrics`` on ``port_base + nodes``.  ``None`` =
    #: everything ephemeral (addresses flow through the addr files).
    port_base: Optional[int] = None
    #: Nodes per worker process (1 = full per-node isolation).
    group_size: int = 1
    #: Scratch directory (addr files, journals, traces); ``None`` makes
    #: a fresh temp dir.  Reusing a dir resumes its journals.
    run_dir: Optional[str] = None
    trace_level: str = "transport"
    rotate_bytes: int = 64 * 1024 * 1024
    send_timeout: float = 2.0
    scrape_interval: float = 1.0
    dashboard: bool = False
    #: Wall seconds SIGTERMed workers get to depart before SIGKILL.
    drain_grace: float = 5.0
    max_restarts: int = 5
    backoff_base: float = 0.5
    #: Stop early once the fleet reports every job complete and stays
    #: quiet this long (0 disables early exit).
    early_exit_grace: float = 1.0
    fault_plan: Optional[FaultPlan] = None
    failure_schedule: Optional[ProcessFailureSchedule] = None
    #: Forge a cross-process duplicate completion (checker self-test).
    seed_violation: bool = False
    #: Where the merged fleet trace lands (default: ``run_dir``).
    merged_trace_path: Optional[str] = None

    def __post_init__(self) -> None:
        if self.nodes < 2:
            raise ConfigurationError(f"need >= 2 nodes, got {self.nodes}")
        if self.jobs < 1:
            raise ConfigurationError(f"need >= 1 job, got {self.jobs}")
        if self.time_scale <= 0:
            raise ConfigurationError(
                f"time_scale {self.time_scale} must be > 0"
            )
        if self.duration <= self.submission_start:
            raise ConfigurationError("duration must exceed submission_start")
        window = self.accept_wait / self.time_scale
        if window < 0.01:
            raise ConfigurationError(
                f"accept_wait {self.accept_wait}s at time_scale "
                f"{self.time_scale} leaves a {window * 1000:.1f} ms wall "
                "window — too tight for HTTP round-trips (need >= 10 ms)"
            )
        if self.group_size < 1:
            raise ConfigurationError(
                f"group_size {self.group_size} must be >= 1"
            )
        if self.port_base is not None and not (
            0 < self.port_base <= 65535 - self.nodes - 1
        ):
            raise ConfigurationError(
                f"port_base {self.port_base} leaves no room for "
                f"{self.nodes} node ports plus the coordinator"
            )
        if self.scrape_interval < 0:
            raise ConfigurationError(
                f"negative scrape_interval {self.scrape_interval}"
            )
        if self.failure_schedule is not None and not isinstance(
            self.failure_schedule, ProcessFailureSchedule
        ):
            raise ConfigurationError(
                "failure_schedule must be a ProcessFailureSchedule"
            )
        if self.seed_violation:
            if self.worker_count() < 2:
                raise ConfigurationError(
                    "seed_violation needs >= 2 worker processes (the "
                    "forged duplicate must span a process boundary)"
                )
            if self.trace_level == "off":
                raise ConfigurationError(
                    "seed_violation needs tracing (the forged events "
                    "ride the trace stream)"
                )

    def wall_duration(self) -> float:
        """The run's wall-clock horizon in seconds."""
        return self.duration / self.time_scale

    def worker_count(self) -> int:
        """How many worker processes the fleet decomposes into."""
        return (self.nodes + self.group_size - 1) // self.group_size


@dataclass
class ProcRunResult:
    """What a process-isolated run produced."""

    config: ProcRunConfig
    run_dir: str
    merged_trace_path: str
    #: Jobs a node accepted over ``POST /submit``.
    submitted: int
    #: Distinct real jobs completed (trace ∪ journals; forge id excluded).
    completed: int
    violations: List[str]
    checked_events: int
    #: Trace lines no segment could parse (torn tails from SIGKILLs).
    torn_lines: int
    supervisor: Dict[str, Any]
    #: ``journal.recovered`` events found in the merged trace.
    recovered: List[Dict[str, Any]]
    fleet_series: Dict[str, List[Tuple[float, float]]]
    interrupted: bool = False
    #: Per-journal recovered incarnation counters (node -> incarnation).
    journal_incarnations: Dict[NodeId, int] = field(default_factory=dict)


def _load_trace_tolerant(path: str) -> Tuple[List[Dict[str, Any]], int]:
    """Load rotated segments, tolerating SIGKILL-torn lines."""
    events: List[Dict[str, Any]] = []
    torn = 0
    for segment in rotated_trace_paths(path):
        with open(segment, encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    events.append(json.loads(line))
                except ValueError:
                    torn += 1
    return events, torn


def _read_journal_state(
    run_dir: str,
) -> Tuple[Dict[NodeId, int], Dict[NodeId, set]]:
    """Ground truth from the fsync'd journals: incarnations, completions.

    SIGKILLed workers lose buffered trace lines but never journal
    entries — the durable record is what the acceptance evidence and the
    completed tally lean on.
    """
    incarnations: Dict[NodeId, int] = {}
    completions: Dict[NodeId, set] = {}
    for path in glob.glob(os.path.join(_journal_dir(run_dir), "node-*.jsonl")):
        node_id = int(os.path.basename(path)[len("node-"):-len(".jsonl")])
        journal = DurableJournal(path, fsync=False)
        try:
            if journal.incarnation is not None:
                incarnations[node_id] = journal.incarnation
            completions[node_id] = {
                job_id for job_id, _t, _inc in journal.completions
            }
        finally:
            journal.close()
    return incarnations, completions


def run_procs(
    config: Optional[ProcRunConfig] = None,
    online_checker: Optional[OnlineInvariantChecker] = None,
) -> ProcRunResult:
    """Run one process-isolated scenario and assemble the evidence.

    Synchronous entry point (owns the coordinator's event loop).  The
    merged per-process traces are streamed through ``online_checker``
    (or a fresh :class:`~repro.experiments.OnlineInvariantChecker`)
    post-run — the checker's streaming contract makes the merge order
    the only thing the coordinator has to get right.
    """
    config = config if config is not None else ProcRunConfig()
    return asyncio.run(_run_procs(config, online_checker))


async def _run_procs(
    config: ProcRunConfig,
    online_checker: Optional[OnlineInvariantChecker],
) -> ProcRunResult:
    loop = asyncio.get_running_loop()
    run_dir = config.run_dir or tempfile.mkdtemp(prefix="aria-procs-")
    for sub in (_addr_dir(run_dir), _journal_dir(run_dir), _trace_dir(run_dir)):
        os.makedirs(sub, exist_ok=True)

    scenario = get_scenario(config.scenario_name)
    graph = _build_overlay(scenario.overlay, config.nodes, config.seed)
    node_order: List[NodeId] = list(graph.nodes())
    run_epoch = time.time()

    groups: List[List[NodeId]] = [
        node_order[i : i + config.group_size]
        for i in range(0, len(node_order), config.group_size)
    ]
    node_to_worker: Dict[NodeId, int] = {
        node_id: index
        for index, group in enumerate(groups)
        for node_id in group
    }
    global_index = {node_id: i for i, node_id in enumerate(node_order)}
    specs: List[WorkerSpec] = []
    for index, group in enumerate(groups):
        ports = tuple(
            0
            if config.port_base is None
            else config.port_base + global_index[node_id]
            for node_id in group
        )
        specs.append(
            WorkerSpec(
                index=index,
                node_ids=tuple(group),
                total_nodes=config.nodes,
                scenario_name=config.scenario_name,
                seed=config.seed,
                time_scale=config.time_scale,
                duration=config.duration,
                accept_wait=config.accept_wait,
                reliability=config.reliability,
                failsafe=config.failsafe,
                host=config.host,
                ports=ports,
                run_dir=run_dir,
                run_epoch=run_epoch,
                trace_level=config.trace_level,
                rotate_bytes=config.rotate_bytes,
                send_timeout=config.send_timeout,
                ert_mean=config.ert_mean,
                fault_plan=config.fault_plan,
                forge_job=(
                    FORGE_JOB_ID
                    if config.seed_violation and index < 2
                    else None
                ),
            )
        )

    registry = MetricsRegistry()
    supervisor = Supervisor(
        specs,
        registry=registry,
        backoff_base=config.backoff_base,
        max_restarts=config.max_restarts,
    )
    supervisor.start()
    monitor_task = loop.create_task(supervisor.monitor())

    # Coordinator endpoint: fleet-level /metrics (merged series plus the
    # supervision gauges) and a /healthz stating the fleet's shape.
    def _coordinator_handler(method: str, path: str, body: bytes):
        if method == "GET" and path == "/metrics":
            page = render_prometheus(
                registry, extra=supervisor.metrics_extra()
            )
            return (
                200,
                "OK",
                page.encode("utf-8"),
                "text/plain; version=0.0.4; charset=utf-8",
            )
        if method == "GET" and path == "/healthz":
            stats = supervisor.stats()
            return (
                200,
                "OK",
                json.dumps(
                    {
                        "role": "coordinator",
                        "workers": len(supervisor.workers),
                        "states": stats["states"],
                        "restarts": stats["restarts"],
                    }
                ).encode("utf-8"),
            )
        return 404, "Not Found", b""

    coordinator = HttpServer(_coordinator_handler)
    await coordinator.start(
        host=config.host,
        port=0 if config.port_base is None else config.port_base + config.nodes,
    )

    collector: Optional[TelemetryCollector] = None
    collector_task: Optional[asyncio.Task] = None
    if config.scrape_interval > 0:
        collector = TelemetryCollector(
            registry,
            targets=lambda: _read_directory(run_dir),
            now=lambda: (time.time() - run_epoch) * config.time_scale,
            group_of=node_to_worker.get,
        )
        on_round = None
        if config.dashboard:

            def on_round(c: TelemetryCollector) -> None:
                print(
                    "\x1b[2J\x1b[H" + render_dashboard(c),
                    end="",
                    flush=True,
                )

        collector_task = loop.create_task(
            collector.run(config.scrape_interval, on_round=on_round)
        )

    # Submission rides the wire: the coordinator redraws the fleet's
    # profile stream exactly as the workers do, so requirements_ok
    # matches what the distributed grid can actually host.
    streams = RandomStreams(config.seed)
    profile_rng = streams.get("profiles")
    fleet_profiles = []
    for _node_id in node_order:
        fleet_profiles.append(random_node_profile(profile_rng))
        random_performance_index(profile_rng)
    generator = JobGenerator(
        streams.get("workload"),
        deadline_slack_mean=scenario.deadline_slack_mean,
        ert_distribution=ERT_DISTRIBUTION.scaled_to_mean(config.ert_mean),
        requirements_ok=lambda req: any(
            profile.satisfies(req) for profile in fleet_profiles
        ),
        priority_levels=scenario.priority_levels,
        reservation_probability=scenario.reservation_probability,
        reservation_delay_mean=scenario.reservation_delay_mean,
    )
    schedule = SubmissionSchedule(
        job_count=config.jobs,
        interval=config.submission_interval,
        start=config.submission_start,
    )
    submission_rng = streams.get("submission")
    submitted = 0
    submit_failures = 0

    async def _submit_one(job) -> bool:
        # Early submissions race worker boot (the first submission time
        # can be milliseconds after launch at high compression), and any
        # submission can race a crash — so a round that finds no taker
        # backs off and retries until the window closes, like a user
        # resubmitting against a flaky front-end.
        deadline = time.time() + _SUBMIT_RETRY_WINDOW
        while True:
            directory = _read_directory(run_dir)
            candidates = sorted(directory)
            submission_rng.shuffle(candidates)
            for node_id in candidates:
                host, port = directory[node_id]
                try:
                    status = await http_post_json(
                        host,
                        port,
                        SUBMIT_PATH,
                        {"job": encode_job(job)},
                        timeout=config.send_timeout,
                    )
                except (ConnectionError, OSError, asyncio.TimeoutError):
                    continue  # dead or restarting node: try the next
                if status == 200:
                    return True
            if time.time() >= deadline:
                return False
            await asyncio.sleep(0.3)

    async def _submit_jobs() -> None:
        nonlocal submitted, submit_failures
        for submit_time in schedule.times():
            wall_at = run_epoch + submit_time / config.time_scale
            await asyncio.sleep(max(0.0, wall_at - time.time()))
            now_protocol = (time.time() - run_epoch) * config.time_scale
            job = generator.make_job(now_protocol)
            if await _submit_one(job):
                submitted += 1
            else:
                submit_failures += 1

    submit_task = loop.create_task(_submit_jobs())

    chaos_tasks: List[asyncio.Task] = []
    if config.failure_schedule is not None and config.failure_schedule:

        async def _kill(at: float, victim: int) -> None:
            await asyncio.sleep(at)
            supervisor.kill(victim)

        async def _stall(at: float, duration: float, victim: int) -> None:
            await asyncio.sleep(at)
            supervisor.stall(victim)
            await asyncio.sleep(duration)
            supervisor.resume(victim)

        for at, victim in config.failure_schedule.kills:
            chaos_tasks.append(loop.create_task(_kill(at, victim)))
        for at, duration, victim in config.failure_schedule.stalls:
            chaos_tasks.append(loop.create_task(_stall(at, duration, victim)))

    interrupted = False
    stop_event = asyncio.Event()

    def _on_signal() -> None:
        nonlocal interrupted
        interrupted = True
        stop_event.set()

    installed_signals: List[int] = []
    for signum in (signal.SIGINT, signal.SIGTERM):
        try:
            loop.add_signal_handler(signum, _on_signal)
        except (NotImplementedError, RuntimeError, ValueError):
            continue
        installed_signals.append(signum)

    try:
        deadline = loop.time() + config.wall_duration()
        quiet_since: Optional[float] = None
        while not stop_event.is_set():
            remaining = deadline - loop.time()
            if remaining <= 0:
                break
            try:
                await asyncio.wait_for(
                    stop_event.wait(), timeout=min(0.2, remaining)
                )
                break
            except asyncio.TimeoutError:
                pass
            if not config.early_exit_grace or collector is None:
                continue
            points = collector.series_points().get("fleet.completed_jobs", [])
            fleet_completed = max(
                (value for _t, value in points), default=0.0
            )
            if (
                fleet_completed >= config.jobs
                and submit_task.done()
                and not any(not task.done() for task in chaos_tasks)
            ):
                if quiet_since is None:
                    quiet_since = loop.time()
                elif loop.time() - quiet_since >= config.early_exit_grace:
                    break
            else:
                quiet_since = None
    finally:
        for signum in installed_signals:
            loop.remove_signal_handler(signum)
        for task in [submit_task, *chaos_tasks]:
            task.cancel()
        await asyncio.gather(
            submit_task, *chaos_tasks, return_exceptions=True
        )
        monitor_task.cancel()
        await asyncio.gather(monitor_task, return_exceptions=True)
        await supervisor.drain(config.drain_grace)
        if collector_task is not None:
            collector_task.cancel()
            await asyncio.gather(collector_task, return_exceptions=True)
        await coordinator.close()

    # ------------------------------------------------------------------
    # Evidence assembly: merge every boot's trace segments on the shared
    # timeline and stream them through the invariant checker.
    # ------------------------------------------------------------------
    events: List[Dict[str, Any]] = []
    torn_lines = 0
    for base in sorted(glob.glob(os.path.join(_trace_dir(run_dir), "*.jsonl"))):
        segment_events, torn = _load_trace_tolerant(base)
        events.extend(segment_events)
        torn_lines += torn
    events.sort(key=lambda e: (e.get("wall", 0.0), e.get("t", 0.0)))

    checker = (
        online_checker
        if online_checker is not None
        else OnlineInvariantChecker()
    )
    merged_trace_path = config.merged_trace_path or os.path.join(
        run_dir, "merged-trace.jsonl"
    )
    with open(merged_trace_path, "w", encoding="utf-8") as handle:
        for event in events:
            checker.append(event)
            handle.write(json.dumps(event, separators=(",", ":")))
            handle.write("\n")
    checker.close()

    journal_incarnations, journal_completions = _read_journal_state(run_dir)
    completed_ids = set()
    for node_completions in journal_completions.values():
        completed_ids |= node_completions
    for event in events:
        if event.get("ev") == "job.finished":
            completed_ids.add(event["job"])
    completed_ids.discard(FORGE_JOB_ID)
    recovered = [
        event for event in events if event.get("ev") == "journal.recovered"
    ]

    violations = list(checker.violations)
    if submit_failures and not interrupted:
        violations.append(
            f"submission: {submit_failures} job(s) found no live entry "
            f"point (every candidate node refused or was unreachable)"
        )

    return ProcRunResult(
        config=config,
        run_dir=run_dir,
        merged_trace_path=merged_trace_path,
        submitted=submitted,
        completed=len(completed_ids),
        violations=violations,
        checked_events=checker.checked,
        torn_lines=torn_lines,
        supervisor=supervisor.stats(),
        recovered=recovered,
        fleet_series=(
            collector.series_points() if collector is not None else {}
        ),
        interrupted=interrupted,
        journal_incarnations=journal_incarnations,
    )
