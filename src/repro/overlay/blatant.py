"""BLATANT-S-style self-organized overlay maintenance.

The paper connects its 500 grid nodes with BLATANT-S [28], a fully
distributed algorithm that keeps the overlay's *average path length bounded*
with a *minimal number of links*: "new logical links are added if required
to reduce the diameter, while existing links that do not contribute to the
solution are removed" (§IV-A).

:class:`BlatantMaintainer` reproduces that behaviour with the two ant
species of :mod:`repro.overlay.ants`.  It can be driven in two ways:

* **offline convergence** (:meth:`converge`), used during scenario setup to
  produce the initial 500-node overlay with average path length ≈ 9 and
  average degree ≈ 4;
* **online maintenance** (:meth:`start`), a periodic simulator activity
  that keeps integrating newly joined nodes (the Expanding scenarios).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Optional

from ..errors import ConfigurationError, TopologyError
from ..clock import Clock
from ..types import NodeId
from .ants import DiscoveryAnt, PruningAnt
from .graph import OverlayGraph
from .metrics import average_path_length, is_connected

__all__ = ["BlatantConfig", "BlatantMaintainer", "build_blatant_overlay"]


@dataclass(frozen=True)
class BlatantConfig:
    """Tuning knobs of the maintainer.

    ``target_path_length`` matches the paper's evaluation overlay (9 hops).
    ``min_degree`` prevents pruning from disconnecting sparse nodes, and
    ``bootstrap_degree`` is the number of random peers a joining node
    initially links to.
    """

    target_path_length: float = 9.0
    min_degree: int = 2
    bootstrap_degree: int = 2
    discovery_ants_per_tick: int = 4
    pruning_ants_per_tick: int = 2
    walk_length: int = 12
    tick_interval: float = 30.0

    def __post_init__(self) -> None:
        if self.target_path_length <= 1:
            raise ConfigurationError("target_path_length must exceed 1 hop")
        if self.min_degree < 1 or self.bootstrap_degree < 1:
            raise ConfigurationError("degrees must be >= 1")


class BlatantMaintainer:
    """Ant-based topology optimizer for one :class:`OverlayGraph`."""

    def __init__(
        self,
        graph: OverlayGraph,
        rng: random.Random,
        config: Optional[BlatantConfig] = None,
    ) -> None:
        self.graph = graph
        self.config = config if config is not None else BlatantConfig()
        self._rng = rng
        self._stop: Optional[Callable[[], None]] = None
        #: Links added / removed so far, for reporting.
        self.links_added = 0
        self.links_removed = 0

    # ------------------------------------------------------------------
    # Node membership
    # ------------------------------------------------------------------
    def join(self, node: NodeId) -> None:
        """Connect a new node to ``bootstrap_degree`` random existing peers.

        Mirrors a node joining the swarm: it starts with a couple of random
        contacts and the ants integrate it into the bounded topology over
        the following ticks.
        """
        existing = [n for n in self.graph.nodes() if n != node]
        if not self.graph.has_node(node):
            self.graph.add_node(node)
        if not existing:
            return
        peers = self._rng.sample(
            existing, min(self.config.bootstrap_degree, len(existing))
        )
        for peer in peers:
            if self.graph.add_link(node, peer):
                self.links_added += 1

    # ------------------------------------------------------------------
    # Ant activity
    # ------------------------------------------------------------------
    def tick(self) -> None:
        """One maintenance round: discovery ants then pruning ants."""
        nodes = self.graph.nodes()
        if len(nodes) < 2:
            return
        cfg = self.config
        for _ in range(cfg.discovery_ants_per_tick):
            nest = self._rng.choice(nodes)
            ant = DiscoveryAnt(self.graph, nest, cfg.walk_length, self._rng)
            if ant.suggests_link(cfg.target_path_length):
                if self.graph.add_link(nest, ant.endpoint):
                    self.links_added += 1
        for _ in range(cfg.pruning_ants_per_tick):
            nest = self._rng.choice(nodes)
            neighbors = self.graph.neighbors(nest)
            if len(neighbors) <= cfg.min_degree:
                continue
            neighbor = self._rng.choice(neighbors)
            if self.graph.degree(neighbor) <= cfg.min_degree:
                continue
            ant = PruningAnt(
                self.graph, nest, neighbor, cfg.target_path_length
            )
            if ant.redundant:
                self.graph.remove_link(nest, neighbor)
                self.links_removed += 1

    def start(self, sim: Clock) -> Callable[[], None]:
        """Begin periodic online maintenance; returns a stop function."""
        if self._stop is not None:
            raise ConfigurationError("maintainer already started")
        self._stop = sim.every(self.config.tick_interval, self.tick)
        return self._stop

    # ------------------------------------------------------------------
    # Offline convergence (scenario setup)
    # ------------------------------------------------------------------
    def _beyond_target_fraction(self, sources: int) -> float:
        """Fraction of sampled ordered pairs farther apart than the target."""
        from .metrics import bfs_distances

        nodes = self.graph.nodes()
        if len(nodes) < 2:
            return 0.0
        if sources < len(nodes):
            sample = self._rng.sample(nodes, sources)
        else:
            sample = nodes
        target = self.config.target_path_length
        beyond = 0
        pairs = 0
        for source in sample:
            distances = bfs_distances(self.graph, source)
            pairs += len(nodes) - 1
            beyond += len(nodes) - len(distances)  # unreachable count as far
            beyond += sum(1 for d in distances.values() if d > target)
        return beyond / pairs if pairs else 0.0

    def converge(
        self,
        max_rounds: int = 5000,
        beyond_tolerance: float = 0.05,
        sources: int = 24,
        check_every: int = 4,
    ) -> float:
        """Run ticks until the path length is *bounded* by the target.

        BLATANT-S keeps a bounded path length, not merely a bounded mean:
        convergence requires that at most ``beyond_tolerance`` of sampled
        node pairs sit farther apart than the target.  This also drives the
        average degree to the paper's ≈4 on the 500-node overlay (minimal
        links for the bound, not fewer).

        Returns the final sampled average path length.  Raises
        :class:`TopologyError` if the graph is disconnected or the bound is
        not reached within ``max_rounds`` ticks.
        """
        if not is_connected(self.graph):
            raise TopologyError("cannot converge a disconnected overlay")
        for round_index in range(max_rounds):
            if round_index % check_every == 0:
                if self._beyond_target_fraction(sources) <= beyond_tolerance:
                    return average_path_length(
                        self.graph, self._rng, sources=sources
                    )
            self.tick()
        raise TopologyError(
            f"overlay did not converge within {max_rounds} rounds "
            f"(target {self.config.target_path_length})"
        )


def build_blatant_overlay(
    size: int,
    rng: random.Random,
    config: Optional[BlatantConfig] = None,
) -> OverlayGraph:
    """Build a converged BLATANT-style overlay of ``size`` nodes.

    Starts from a ring (guaranteed connected, degree 2 — the minimal-link
    configuration) and lets the ants add shortcuts until the average path
    length falls under the configured target, reproducing the paper's
    evaluation overlay (500 nodes, APL ≈ 9, average degree ≈ 4).
    """
    if size < 2:
        raise ConfigurationError(f"overlay needs at least 2 nodes, got {size}")
    graph = OverlayGraph()
    for node in range(size):
        graph.add_node(NodeId(node))
    for node in range(size):
        graph.add_link(NodeId(node), NodeId((node + 1) % size))
    maintainer = BlatantMaintainer(graph, rng, config)
    maintainer.converge()
    return graph
