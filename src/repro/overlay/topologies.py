"""Static overlay topology builders.

The paper's future work calls for "experiments with different types of
peer-to-peer overlay networks in order to gain a better understanding of its
correlation to the meta-scheduling performance" (§VI).  These generators
provide that axis: ring, random-regular, Watts–Strogatz small-world and
Barabási–Albert scale-free topologies, all built on
:class:`~repro.overlay.graph.OverlayGraph` with a caller-supplied RNG so
experiments stay reproducible.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, List

from ..errors import ConfigurationError, TopologyError
from ..types import NodeId
from .graph import OverlayGraph
from .metrics import is_connected

__all__ = [
    "ring",
    "chordal_ring",
    "random_regular",
    "small_world",
    "scale_free",
    "TOPOLOGY_BUILDERS",
]


def _empty(size: int) -> OverlayGraph:
    if size < 2:
        raise ConfigurationError(f"topology needs at least 2 nodes, got {size}")
    graph = OverlayGraph()
    for node in range(size):
        graph.add_node(NodeId(node))
    return graph


def ring(size: int, rng: random.Random = None) -> OverlayGraph:  # noqa: ARG001
    """A simple cycle: degree 2, average path length ≈ size/4."""
    graph = _empty(size)
    for node in range(size):
        graph.add_link(NodeId(node), NodeId((node + 1) % size))
    return graph


def chordal_ring(
    size: int, rng: random.Random, chords_per_node: int = 1
) -> OverlayGraph:
    """A ring plus ``chords_per_node`` random chords per node — O(size).

    The cycle guarantees connectivity; the random chords act as the
    shortcuts BLATANT-S's discovery ants would add, bringing the average
    path length down to O(log size) at average degree
    ``2 + 2 * chords_per_node`` (≈ 4 for the default, matching the paper's
    converged overlay).  Unlike :func:`random_regular` and
    :func:`small_world` this needs no connectivity checks or retries, so it
    stays linear and is the stand-in used for 10k–100k-node overlays where
    ant convergence is infeasible.
    """
    if chords_per_node < 1:
        raise ConfigurationError("chordal_ring needs chords_per_node >= 1")
    graph = _empty(size)
    for node in range(size):
        graph.add_link(NodeId(node), NodeId((node + 1) % size))
    for node in range(size):
        for _ in range(chords_per_node):
            peer = rng.randrange(size)
            if peer != node:
                graph.add_link(NodeId(node), NodeId(peer))
    return graph


def random_regular(size: int, degree: int, rng: random.Random) -> OverlayGraph:
    """A (near-)random regular graph via the pairing model with retries.

    Every node gets exactly ``degree`` links (``size * degree`` must be
    even).  Retries draw fresh pairings until a simple, connected graph
    appears.  For small, relatively dense graphs the per-attempt success
    probability of the pairing model drops to a few percent
    (≈ exp(-(d-1)/2 - (d²-1)/4)), hence the generous retry budget — each
    attempt is only O(size · degree) work.
    """
    if degree < 2:
        raise ConfigurationError("random_regular needs degree >= 2")
    if degree >= size:
        raise ConfigurationError(f"degree {degree} too large for {size} nodes")
    if (size * degree) % 2:
        raise ConfigurationError("size * degree must be even")
    for _ in range(5000):
        graph = _empty(size)
        stubs: List[int] = [node for node in range(size) for _ in range(degree)]
        rng.shuffle(stubs)
        ok = True
        for i in range(0, len(stubs), 2):
            a, b = stubs[i], stubs[i + 1]
            if a == b or graph.has_link(NodeId(a), NodeId(b)):
                ok = False
                break
            graph.add_link(NodeId(a), NodeId(b))
        if ok and is_connected(graph):
            return graph
    raise TopologyError(
        f"failed to build a connected {degree}-regular graph on {size} nodes"
    )


def small_world(
    size: int, degree: int, rng: random.Random, rewire_p: float = 0.1
) -> OverlayGraph:
    """Watts–Strogatz small-world graph (ring lattice + random rewiring)."""
    if degree % 2 or degree < 2:
        raise ConfigurationError("small_world needs an even degree >= 2")
    if degree >= size:
        raise ConfigurationError(f"degree {degree} too large for {size} nodes")
    if not 0 <= rewire_p <= 1:
        raise ConfigurationError(f"rewire probability {rewire_p} out of [0,1]")
    graph = _empty(size)
    half = degree // 2
    for node in range(size):
        for offset in range(1, half + 1):
            graph.add_link(NodeId(node), NodeId((node + offset) % size))
    # Rewire each lattice link with probability rewire_p.
    for a, b in list(graph.links()):
        if rng.random() >= rewire_p:
            continue
        candidates = [
            n
            for n in range(size)
            if n != a and not graph.has_link(NodeId(a), NodeId(n))
        ]
        if not candidates:
            continue
        new_b = rng.choice(candidates)
        graph.remove_link(a, b)
        graph.add_link(a, NodeId(new_b))
        if not is_connected(graph):  # undo a disconnecting rewire
            graph.remove_link(a, NodeId(new_b))
            graph.add_link(a, b)
    return graph


def scale_free(size: int, links_per_node: int, rng: random.Random) -> OverlayGraph:
    """Barabási–Albert preferential attachment graph."""
    if links_per_node < 1:
        raise ConfigurationError("scale_free needs links_per_node >= 1")
    if links_per_node >= size:
        raise ConfigurationError(
            f"links_per_node {links_per_node} too large for {size} nodes"
        )
    graph = _empty(size)
    # Seed clique of links_per_node + 1 nodes.
    seed = links_per_node + 1
    for a in range(seed):
        for b in range(a + 1, seed):
            graph.add_link(NodeId(a), NodeId(b))
    # Attachment pool: node ids repeated once per link endpoint.
    pool: List[int] = []
    for a, b in graph.links():
        pool.extend((a, b))
    for node in range(seed, size):
        targets: Dict[int, None] = {}
        while len(targets) < links_per_node:
            targets[rng.choice(pool)] = None
        for target in targets:
            graph.add_link(NodeId(node), NodeId(target))
            pool.extend((node, target))
    return graph


#: Registry used by the overlay-sensitivity ablation benchmark.
TOPOLOGY_BUILDERS: Dict[str, Callable[..., OverlayGraph]] = {
    "ring": lambda size, rng: ring(size, rng),
    "chordal_ring": lambda size, rng: chordal_ring(size, rng),
    "random_regular": lambda size, rng: random_regular(size, 4, rng),
    "small_world": lambda size, rng: small_world(size, 4, rng),
    "scale_free": lambda size, rng: scale_free(size, 2, rng),
}
