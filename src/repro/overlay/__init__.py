"""Peer-to-peer overlay substrate: graph, BLATANT-S maintenance, flooding."""

from .ants import DiscoveryAnt, PruningAnt, random_walk
from .blatant import BlatantConfig, BlatantMaintainer, build_blatant_overlay
from .flooding import FloodPolicy, FloodReach, SeenCache, choose_targets
from .graph import OverlayGraph
from .metrics import (
    average_path_length,
    bfs_distances,
    estimated_diameter,
    hop_distance,
    is_connected,
)
from .topologies import (
    TOPOLOGY_BUILDERS,
    random_regular,
    ring,
    scale_free,
    small_world,
)

__all__ = [
    "BlatantConfig",
    "BlatantMaintainer",
    "DiscoveryAnt",
    "FloodPolicy",
    "FloodReach",
    "OverlayGraph",
    "PruningAnt",
    "SeenCache",
    "TOPOLOGY_BUILDERS",
    "average_path_length",
    "bfs_distances",
    "build_blatant_overlay",
    "choose_targets",
    "estimated_diameter",
    "hop_distance",
    "is_connected",
    "random_regular",
    "random_walk",
    "ring",
    "scale_free",
    "small_world",
]
