"""Topology metrics: path lengths, diameter, connectivity.

BLATANT-S maintains "an overlay network with bounded average path length and
minimal number of links" (§IV-A); these helpers measure exactly those
observables, both exactly (BFS from every node) and by source sampling for
large graphs.
"""

from __future__ import annotations

import random
from collections import deque
from typing import Dict, Optional, Sequence

from ..types import NodeId
from .graph import OverlayGraph

__all__ = [
    "bfs_distances",
    "hop_distance",
    "average_path_length",
    "estimated_diameter",
    "is_connected",
]


def bfs_distances(
    graph: OverlayGraph, source: NodeId, max_depth: Optional[int] = None
) -> Dict[NodeId, int]:
    """Hop distances from ``source`` to every reachable node (BFS).

    ``max_depth`` bounds the search radius; nodes farther away are omitted.

    Runs over the graph's flat CSR slab
    (:meth:`~repro.overlay.graph.OverlayGraph.neighbor_slab`): the search
    walks integer offsets and a flat distance array instead of hashing node
    ids through nested dicts.  Visit order matches the adjacency insertion
    order, so the returned dict is identical (contents *and* order) to a
    dict-based BFS.
    """
    ids, index_of, offsets, targets = graph.neighbor_slab()
    start = index_of.get(source)
    if start is None:
        from ..errors import TopologyError

        raise TopologyError(f"node {source} not in overlay")
    dist = [-1] * len(ids)
    dist[start] = 0
    order = [start]
    frontier = deque((start,))
    while frontier:
        index = frontier.popleft()
        depth = dist[index]
        if max_depth is not None and depth >= max_depth:
            continue
        next_depth = depth + 1
        for target in targets[offsets[index] : offsets[index + 1]]:
            if dist[target] < 0:
                dist[target] = next_depth
                order.append(target)
                frontier.append(target)
    return {ids[index]: dist[index] for index in order}


def hop_distance(
    graph: OverlayGraph, a: NodeId, b: NodeId, max_depth: Optional[int] = None
) -> Optional[int]:
    """Hop distance between two nodes, or ``None`` if unreachable in bound."""
    if a == b:
        return 0
    ids, index_of, offsets, targets = graph.neighbor_slab()
    start = index_of.get(a)
    if start is None:
        from ..errors import TopologyError

        raise TopologyError(f"node {a} not in overlay")
    goal = index_of.get(b, -1)
    dist = [-1] * len(ids)
    dist[start] = 0
    frontier = deque((start,))
    while frontier:
        index = frontier.popleft()
        depth = dist[index]
        if max_depth is not None and depth >= max_depth:
            continue
        next_depth = depth + 1
        for target in targets[offsets[index] : offsets[index + 1]]:
            if target == goal:
                return next_depth
            if dist[target] < 0:
                dist[target] = next_depth
                frontier.append(target)
    return None


def average_path_length(
    graph: OverlayGraph,
    rng: Optional[random.Random] = None,
    sources: Optional[int] = None,
) -> float:
    """Average shortest-path length over reachable pairs.

    With ``sources`` set, BFS runs only from that many sampled source nodes
    (an unbiased estimator for connected graphs); otherwise from every node.
    Returns 0.0 for graphs with fewer than two nodes.
    """
    nodes = graph.nodes()
    if len(nodes) < 2:
        return 0.0
    if sources is not None and sources < len(nodes):
        if rng is None:
            rng = random.Random(0)
        sample: Sequence[NodeId] = rng.sample(nodes, sources)
    else:
        sample = nodes
    total = 0
    pairs = 0
    for source in sample:
        for node, dist in bfs_distances(graph, source).items():
            if node != source:
                total += dist
                pairs += 1
    return total / pairs if pairs else 0.0


def estimated_diameter(
    graph: OverlayGraph,
    rng: Optional[random.Random] = None,
    sources: Optional[int] = None,
) -> int:
    """Largest eccentricity observed from (sampled) BFS sources."""
    nodes = graph.nodes()
    if len(nodes) < 2:
        return 0
    if sources is not None and sources < len(nodes):
        if rng is None:
            rng = random.Random(0)
        sample: Sequence[NodeId] = rng.sample(nodes, sources)
    else:
        sample = nodes
    diameter = 0
    for source in sample:
        distances = bfs_distances(graph, source)
        if distances:
            diameter = max(diameter, max(distances.values()))
    return diameter


def is_connected(graph: OverlayGraph) -> bool:
    """Whether every node is reachable from the first one."""
    nodes = graph.nodes()
    if len(nodes) <= 1:
        return True
    return len(bfs_distances(graph, nodes[0])) == len(nodes)
