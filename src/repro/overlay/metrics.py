"""Topology metrics: path lengths, diameter, connectivity.

BLATANT-S maintains "an overlay network with bounded average path length and
minimal number of links" (§IV-A); these helpers measure exactly those
observables, both exactly (BFS from every node) and by source sampling for
large graphs.
"""

from __future__ import annotations

import random
from collections import deque
from typing import Dict, Optional, Sequence

from ..types import NodeId
from .graph import OverlayGraph

__all__ = [
    "bfs_distances",
    "hop_distance",
    "average_path_length",
    "estimated_diameter",
    "is_connected",
]


def bfs_distances(
    graph: OverlayGraph, source: NodeId, max_depth: Optional[int] = None
) -> Dict[NodeId, int]:
    """Hop distances from ``source`` to every reachable node (BFS).

    ``max_depth`` bounds the search radius; nodes farther away are omitted.
    """
    distances: Dict[NodeId, int] = {source: 0}
    frontier = deque((source,))
    while frontier:
        node = frontier.popleft()
        depth = distances[node]
        if max_depth is not None and depth >= max_depth:
            continue
        for neighbor in graph.neighbors(node):
            if neighbor not in distances:
                distances[neighbor] = depth + 1
                frontier.append(neighbor)
    return distances


def hop_distance(
    graph: OverlayGraph, a: NodeId, b: NodeId, max_depth: Optional[int] = None
) -> Optional[int]:
    """Hop distance between two nodes, or ``None`` if unreachable in bound."""
    if a == b:
        return 0
    distances: Dict[NodeId, int] = {a: 0}
    frontier = deque((a,))
    while frontier:
        node = frontier.popleft()
        depth = distances[node]
        if max_depth is not None and depth >= max_depth:
            continue
        for neighbor in graph.neighbors(node):
            if neighbor == b:
                return depth + 1
            if neighbor not in distances:
                distances[neighbor] = depth + 1
                frontier.append(neighbor)
    return None


def average_path_length(
    graph: OverlayGraph,
    rng: Optional[random.Random] = None,
    sources: Optional[int] = None,
) -> float:
    """Average shortest-path length over reachable pairs.

    With ``sources`` set, BFS runs only from that many sampled source nodes
    (an unbiased estimator for connected graphs); otherwise from every node.
    Returns 0.0 for graphs with fewer than two nodes.
    """
    nodes = graph.nodes()
    if len(nodes) < 2:
        return 0.0
    if sources is not None and sources < len(nodes):
        if rng is None:
            rng = random.Random(0)
        sample: Sequence[NodeId] = rng.sample(nodes, sources)
    else:
        sample = nodes
    total = 0
    pairs = 0
    for source in sample:
        for node, dist in bfs_distances(graph, source).items():
            if node != source:
                total += dist
                pairs += 1
    return total / pairs if pairs else 0.0


def estimated_diameter(
    graph: OverlayGraph,
    rng: Optional[random.Random] = None,
    sources: Optional[int] = None,
) -> int:
    """Largest eccentricity observed from (sampled) BFS sources."""
    nodes = graph.nodes()
    if len(nodes) < 2:
        return 0
    if sources is not None and sources < len(nodes):
        if rng is None:
            rng = random.Random(0)
        sample: Sequence[NodeId] = rng.sample(nodes, sources)
    else:
        sample = nodes
    diameter = 0
    for source in sample:
        distances = bfs_distances(graph, source)
        if distances:
            diameter = max(diameter, max(distances.values()))
    return diameter


def is_connected(graph: OverlayGraph) -> bool:
    """Whether every node is reachable from the first one."""
    nodes = graph.nodes()
    if len(nodes) <= 1:
        return True
    return len(bfs_distances(graph, nodes[0])) == len(nodes)
