"""Ant-like agents used by the BLATANT-S-style topology maintainer.

The original BLATANT-S algorithm [28] maintains the overlay through "the
autonomic behavior of different species of ant-like agents, which are
exchanged between nodes of the network": some species discover distant peers
and create shortcut links, others prune links that no longer contribute to
the bounded-diameter solution.  We reproduce both species:

* :class:`DiscoveryAnt` — performs a bounded random walk from its nest and
  reports the endpoint together with the true hop distance from the nest;
  the maintainer turns far-away endpoints into new links.
* :class:`PruningAnt` — inspects one link of its nest and reports whether
  the link is *redundant*, i.e. removing it leaves its two ends within the
  target distance of each other via an alternative path.
"""

from __future__ import annotations

import random
from typing import List, Optional

from ..types import NodeId
from .graph import OverlayGraph
from .metrics import hop_distance

__all__ = ["DiscoveryAnt", "PruningAnt", "random_walk"]


def random_walk(
    graph: OverlayGraph, start: NodeId, length: int, rng: random.Random
) -> List[NodeId]:
    """A simple random walk of at most ``length`` steps; returns the path.

    The walk avoids immediately backtracking when the current node has
    another option, which spreads ants faster over the topology.
    """
    path = [start]
    current = start
    previous: Optional[NodeId] = None
    for _ in range(length):
        neighbors = graph.neighbors(current)
        if not neighbors:
            break
        if previous is not None and len(neighbors) > 1:
            choices = [n for n in neighbors if n != previous]
        else:
            choices = neighbors
        nxt = rng.choice(choices)
        path.append(nxt)
        previous = current
        current = nxt
    return path


class DiscoveryAnt:
    """Walks away from its nest and measures how far it ended up.

    Attributes
    ----------
    nest:
        The node that emitted the ant.
    endpoint:
        Where the walk stopped.
    distance:
        True hop distance nest→endpoint (``None`` if disconnected), measured
        on arrival; the maintainer compares it with the target path length.
    """

    __slots__ = ("nest", "endpoint", "distance")

    def __init__(
        self,
        graph: OverlayGraph,
        nest: NodeId,
        walk_length: int,
        rng: random.Random,
    ) -> None:
        self.nest = nest
        path = random_walk(graph, nest, walk_length, rng)
        self.endpoint = path[-1]
        if self.endpoint == nest:
            self.distance: Optional[int] = 0
        else:
            self.distance = hop_distance(graph, nest, self.endpoint)

    def suggests_link(self, target_path_length: float) -> bool:
        """Whether the nest should open a shortcut to the endpoint."""
        if self.endpoint == self.nest:
            return False
        return self.distance is None or self.distance > target_path_length


class PruningAnt:
    """Checks whether one link of its nest is redundant.

    A link (nest, neighbour) is redundant when an alternative path of at
    most ``ceil(target_path_length)`` hops connects the two ends, so its
    removal cannot push their distance beyond the bound.
    """

    __slots__ = ("nest", "neighbor", "redundant")

    def __init__(
        self,
        graph: OverlayGraph,
        nest: NodeId,
        neighbor: NodeId,
        target_path_length: float,
    ) -> None:
        self.nest = nest
        self.neighbor = neighbor
        bound = int(target_path_length)
        # Evaluate the alternative route with the link temporarily removed.
        graph.remove_link(nest, neighbor)
        try:
            alt = hop_distance(graph, nest, neighbor, max_depth=bound)
        finally:
            graph.add_link(nest, neighbor)
        self.redundant = alt is not None
