"""Undirected overlay graph with deterministic iteration order.

The overlay is the logical peer-to-peer network connecting grid nodes
(§III-A: "all nodes are connected through some sort of peer-to-peer overlay
network").  The graph object holds the global adjacency; protocol code only
ever reads a node's own neighbour list, preserving the fully distributed
semantics of the paper.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Set, Tuple

from ..errors import TopologyError
from ..types import NodeId

__all__ = ["OverlayGraph"]


class OverlayGraph:
    """An undirected graph keyed by :class:`~repro.types.NodeId`.

    Neighbour lists are kept in insertion order (Python dicts) so that a
    seeded simulation replays identically.  Per-node neighbour tuples are
    cached (:meth:`neighbors_view`) and invalidated on mutation, so the
    flooding hot path never re-materializes an unchanged adjacency list.
    """

    __slots__ = ("_adj", "_link_count", "_views", "_version", "_slab")

    def __init__(self) -> None:
        self._adj: Dict[NodeId, Dict[NodeId, None]] = {}
        self._link_count = 0
        self._views: Dict[NodeId, Tuple[NodeId, ...]] = {}
        #: Bumped on every structural mutation; keys the slab cache.
        self._version = 0
        self._slab = None

    # ------------------------------------------------------------------
    # Nodes
    # ------------------------------------------------------------------
    def add_node(self, node: NodeId) -> None:
        """Add an isolated node (it must not already exist)."""
        if node in self._adj:
            raise TopologyError(f"node {node} already in overlay")
        self._adj[node] = {}
        self._version += 1

    def remove_node(self, node: NodeId) -> None:
        """Remove a node and all its links."""
        neighbors = self._adj.pop(node, None)
        if neighbors is None:
            raise TopologyError(f"node {node} not in overlay")
        views = self._views
        views.pop(node, None)
        for other in neighbors:
            del self._adj[other][node]
            views.pop(other, None)
        self._link_count -= len(neighbors)
        self._version += 1

    def has_node(self, node: NodeId) -> bool:
        """Whether ``node`` is part of the overlay."""
        return node in self._adj

    def nodes(self) -> List[NodeId]:
        """All node ids, in insertion order."""
        return list(self._adj)

    def __len__(self) -> int:
        return len(self._adj)

    def __contains__(self, node: NodeId) -> bool:
        return node in self._adj

    # ------------------------------------------------------------------
    # Links
    # ------------------------------------------------------------------
    def _check_nodes(self, a: NodeId, b: NodeId) -> None:
        if a == b:
            raise TopologyError(f"self-link on node {a}")
        if a not in self._adj:
            raise TopologyError(f"node {a} not in overlay")
        if b not in self._adj:
            raise TopologyError(f"node {b} not in overlay")

    def add_link(self, a: NodeId, b: NodeId) -> bool:
        """Add an undirected link; returns ``False`` if it already existed."""
        self._check_nodes(a, b)
        if b in self._adj[a]:
            return False
        self._adj[a][b] = None
        self._adj[b][a] = None
        self._views.pop(a, None)
        self._views.pop(b, None)
        self._link_count += 1
        self._version += 1
        return True

    def remove_link(self, a: NodeId, b: NodeId) -> None:
        """Remove an existing undirected link."""
        self._check_nodes(a, b)
        if b not in self._adj[a]:
            raise TopologyError(f"no link {a}--{b}")
        del self._adj[a][b]
        del self._adj[b][a]
        self._views.pop(a, None)
        self._views.pop(b, None)
        self._link_count -= 1
        self._version += 1

    def has_link(self, a: NodeId, b: NodeId) -> bool:
        """Whether the undirected link ``a -- b`` exists."""
        adj = self._adj.get(a)
        return adj is not None and b in adj

    def neighbors(self, node: NodeId) -> List[NodeId]:
        """Neighbour ids of ``node``, in link-insertion order (fresh list)."""
        return list(self.neighbors_view(node))

    def neighbors_view(self, node: NodeId) -> Tuple[NodeId, ...]:
        """Cached immutable neighbour tuple of ``node`` (insertion order).

        The tuple is shared across calls until a mutation touches ``node``,
        so hot paths (flood target selection) avoid allocating a fresh list
        per message.  Callers must not rely on identity across mutations.
        """
        view = self._views.get(node)
        if view is not None:
            return view
        adj = self._adj.get(node)
        if adj is None:
            raise TopologyError(f"node {node} not in overlay")
        view = tuple(adj)
        self._views[node] = view
        return view

    def degree(self, node: NodeId) -> int:
        """Number of links incident to ``node``."""
        adj = self._adj.get(node)
        if adj is None:
            raise TopologyError(f"node {node} not in overlay")
        return len(adj)

    @property
    def link_count(self) -> int:
        """Number of undirected links."""
        return self._link_count

    def links(self) -> Iterable[Tuple[NodeId, NodeId]]:
        """Iterate undirected links once each, as ``(a, b)`` with a first seen."""
        seen: Set[Tuple[NodeId, NodeId]] = set()
        for a, adj in self._adj.items():
            for b in adj:
                key = (a, b) if a <= b else (b, a)
                if key not in seen:
                    seen.add(key)
                    yield key

    def average_degree(self) -> float:
        """Mean node degree (2 * links / nodes)."""
        if not self._adj:
            return 0.0
        return 2.0 * self._link_count / len(self._adj)

    def neighbor_slab(self) -> Tuple[List[NodeId], Dict[NodeId, int], List[int], List[int]]:
        """Flat CSR adjacency: ``(ids, index_of, offsets, targets)``.

        ``ids[i]`` is the i-th node in insertion order, ``index_of`` its
        inverse, and ``targets[offsets[i]:offsets[i+1]]`` the dense
        indices of ``ids[i]``'s neighbours in link-insertion order —
        the same order :meth:`neighbors` yields.  Cached until the next
        structural mutation, so BFS-heavy consumers (topology metrics,
        BLATANT convergence checks) traverse integer arrays instead of
        hashing node ids through nested dicts.
        """
        slab = self._slab
        if slab is not None and slab[0] == self._version:
            return slab[1]
        adj = self._adj
        ids = list(adj)
        index_of = {node: index for index, node in enumerate(ids)}
        offsets = [0] * (len(ids) + 1)
        targets: List[int] = []
        extend = targets.extend
        for index, node in enumerate(ids):
            extend(map(index_of.__getitem__, adj[node]))
            offsets[index + 1] = len(targets)
        csr = (ids, index_of, offsets, targets)
        self._slab = (self._version, csr)
        return csr

    def copy(self) -> "OverlayGraph":
        """Deep copy (used by pruning checks and what-if analyses)."""
        clone = OverlayGraph()
        clone._adj = {node: dict(adj) for node, adj in self._adj.items()}
        clone._link_count = self._link_count
        clone._views = {}
        return clone
