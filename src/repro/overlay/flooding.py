"""Bounded selective flooding over the overlay.

ARiA disseminates REQUEST and INFORM messages with "a low-overhead selective
flooding protocol" (§III-D): a message is forwarded for a bounded number of
hops, each node relaying it to a bounded number of random neighbours, and
duplicates are suppressed.  The paper's evaluation uses ≤9 hops / ≤4
neighbours for REQUEST and ≤8 hops / ≤2 neighbours for INFORM (§IV-E).

This module provides the policy object, the neighbour-selection helper and
the per-node duplicate cache; the protocol agents in :mod:`repro.core` wire
them to the transport.
"""

from __future__ import annotations

import random
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional, Set

from ..errors import ConfigurationError
from ..types import NodeId
from .graph import OverlayGraph

__all__ = ["FloodPolicy", "FloodReach", "choose_targets", "SeenCache"]


@dataclass(frozen=True)
class FloodPolicy:
    """Hop and fan-out bounds of a selective flood."""

    max_hops: int
    fanout: int

    def __post_init__(self) -> None:
        if self.max_hops < 1:
            raise ConfigurationError(f"max_hops must be >= 1, got {self.max_hops}")
        if self.fanout < 1:
            raise ConfigurationError(f"fanout must be >= 1, got {self.fanout}")


def choose_targets(
    graph: OverlayGraph,
    node: NodeId,
    fanout: int,
    rng: random.Random,
    exclude: Optional[NodeId] = None,
) -> List[NodeId]:
    """Pick up to ``fanout`` random distinct neighbours of ``node``.

    ``exclude`` (typically the hop the message arrived from) is skipped
    when other neighbours exist, which avoids trivially bouncing messages
    back and forth.
    """
    # The cached view avoids a fresh list per flooded message; random.sample
    # draws identically from a tuple and a list of the same contents.  The
    # cache dict is probed directly — one method call per relayed message
    # adds up — falling back to neighbors_view() on a miss (which also
    # raises TopologyError for unknown nodes).
    neighbors = graph._views.get(node)
    if neighbors is None:
        neighbors = graph.neighbors_view(node)
    if exclude is not None and len(neighbors) > 1:
        neighbors = [n for n in neighbors if n != exclude]
    if len(neighbors) <= fanout:
        return list(neighbors)
    return rng.sample(neighbors, fanout)


class SeenCache:
    """Bounded LRU set of message identifiers for duplicate suppression."""

    __slots__ = ("_capacity", "_entries")

    def __init__(self, capacity: int = 4096) -> None:
        if capacity < 1:
            raise ConfigurationError(f"capacity must be >= 1, got {capacity}")
        self._capacity = capacity
        self._entries: "OrderedDict[Hashable, None]" = OrderedDict()

    def seen_before(self, key: Hashable) -> bool:
        """Record ``key``; return ``True`` if it had been recorded already."""
        entries = self._entries
        if key in entries:
            entries.move_to_end(key)
            return True
        entries[key] = None
        if len(entries) > self._capacity:
            entries.popitem(last=False)
        return False

    def __contains__(self, key: Hashable) -> bool:
        return key in self._entries

    def __len__(self) -> int:
        return len(self._entries)


class FloodReach:
    """Reusable evaluator of the node set a selective flood reaches.

    Computes, level by level, which nodes receive a flood started at an
    initiator under a :class:`FloodPolicy` — the same dissemination shape
    the protocol agents produce (each node relays to ``fanout`` random
    neighbours excluding the hop it heard from, for at most ``max_hops``
    hops, duplicates suppressed).

    The evaluator is built for repeated calls (e.g. sweeping initiators to
    measure coverage): the visited set and the two frontier buffers are
    allocated once and reused across :meth:`reach` calls via a generation
    stamp, so a sweep over thousands of initiators does no per-call
    allocation beyond the result set.
    """

    __slots__ = ("_stamp", "_visited", "_frontier", "_next")

    def __init__(self) -> None:
        self._stamp = 0
        self._visited: Dict[NodeId, int] = {}
        self._frontier: List[tuple] = []
        self._next: List[tuple] = []

    def reach(
        self,
        graph: OverlayGraph,
        initiator: NodeId,
        policy: FloodPolicy,
        rng: random.Random,
    ) -> Set[NodeId]:
        """Nodes (including ``initiator``) reached by one flood.

        ``rng`` drives the per-hop neighbour sampling; seeding it
        identically replays the identical flood.
        """
        stamp = self._stamp = self._stamp + 1
        visited = self._visited
        frontier = self._frontier
        next_frontier = self._next
        frontier.clear()
        next_frontier.clear()

        visited[initiator] = stamp
        reached = {initiator}
        # The initiator's own send excludes nobody (it has no previous hop).
        frontier.append((initiator, None))
        for _ in range(policy.max_hops):
            if not frontier:
                break
            for node, came_from in frontier:
                for target in choose_targets(
                    graph, node, policy.fanout, rng, exclude=came_from
                ):
                    if visited.get(target) == stamp:
                        continue
                    visited[target] = stamp
                    reached.add(target)
                    next_frontier.append((target, node))
            frontier, next_frontier = next_frontier, frontier
            next_frontier.clear()
        self._frontier = frontier
        self._next = next_frontier
        return reached
