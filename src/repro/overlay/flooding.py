"""Bounded selective flooding over the overlay.

ARiA disseminates REQUEST and INFORM messages with "a low-overhead selective
flooding protocol" (§III-D): a message is forwarded for a bounded number of
hops, each node relaying it to a bounded number of random neighbours, and
duplicates are suppressed.  The paper's evaluation uses ≤9 hops / ≤4
neighbours for REQUEST and ≤8 hops / ≤2 neighbours for INFORM (§IV-E).

This module provides the policy object, the neighbour-selection helper and
the per-node duplicate cache; the protocol agents in :mod:`repro.core` wire
them to the transport.
"""

from __future__ import annotations

import random
from collections import OrderedDict
from dataclasses import dataclass
from typing import Hashable, List, Optional

from ..errors import ConfigurationError
from ..types import NodeId
from .graph import OverlayGraph

__all__ = ["FloodPolicy", "choose_targets", "SeenCache"]


@dataclass(frozen=True)
class FloodPolicy:
    """Hop and fan-out bounds of a selective flood."""

    max_hops: int
    fanout: int

    def __post_init__(self) -> None:
        if self.max_hops < 1:
            raise ConfigurationError(f"max_hops must be >= 1, got {self.max_hops}")
        if self.fanout < 1:
            raise ConfigurationError(f"fanout must be >= 1, got {self.fanout}")


def choose_targets(
    graph: OverlayGraph,
    node: NodeId,
    fanout: int,
    rng: random.Random,
    exclude: Optional[NodeId] = None,
) -> List[NodeId]:
    """Pick up to ``fanout`` random distinct neighbours of ``node``.

    ``exclude`` (typically the hop the message arrived from) is skipped
    when other neighbours exist, which avoids trivially bouncing messages
    back and forth.
    """
    neighbors = graph.neighbors(node)
    if exclude is not None and len(neighbors) > 1:
        neighbors = [n for n in neighbors if n != exclude]
    if len(neighbors) <= fanout:
        return list(neighbors)
    return rng.sample(neighbors, fanout)


class SeenCache:
    """Bounded LRU set of message identifiers for duplicate suppression."""

    def __init__(self, capacity: int = 4096) -> None:
        if capacity < 1:
            raise ConfigurationError(f"capacity must be >= 1, got {capacity}")
        self._capacity = capacity
        self._entries: "OrderedDict[Hashable, None]" = OrderedDict()

    def seen_before(self, key: Hashable) -> bool:
        """Record ``key``; return ``True`` if it had been recorded already."""
        if key in self._entries:
            self._entries.move_to_end(key)
            return True
        self._entries[key] = None
        if len(self._entries) > self._capacity:
            self._entries.popitem(last=False)
        return False

    def __contains__(self, key: Hashable) -> bool:
        return key in self._entries

    def __len__(self) -> int:
        return len(self._entries)
