"""Shared plumbing for the comparison meta-schedulers.

The paper's own baseline is ARiA-without-rescheduling (every non-``i``
scenario).  This package adds three external comparators spanning the
design space the related-work section discusses (§II):

* :class:`~repro.baselines.centralized.CentralizedMetaScheduler` — an
  idealized centralized scheduler with a global, instantaneous view of all
  resources (the upper bound of [14]);
* :class:`~repro.baselines.multirequest.MultiRequestScheduler` — the
  multiple-simultaneous-requests model of Subramani et al. [13];
* :class:`~repro.baselines.randomassign.RandomAssignScheduler` — uniform
  random placement over matching nodes (the lower bound).

All expose ``submit(job)`` so the standard
:class:`~repro.workload.SubmissionProcess` can drive them exactly like an
ARiA agent pool.
"""

from __future__ import annotations

from typing import List

from ..grid.node import GridNode, RunningJob
from ..metrics.collector import GridMetrics
from ..workload.jobs import Job

__all__ = ["BaselineScheduler", "wire_node_metrics"]


def wire_node_metrics(node: GridNode, metrics: GridMetrics) -> None:
    """Connect a node's executor events to the metrics hub."""

    def started(n: GridNode, running: RunningJob) -> None:
        metrics.job_started(running.job.job_id, n.node_id, n.sim.now)

    def finished(n: GridNode, finished_job: RunningJob) -> None:
        metrics.job_finished(finished_job.job.job_id, n.node_id, n.sim.now)

    node.on_job_started.append(started)
    node.on_job_finished.append(finished)


class BaselineScheduler:
    """Base class: holds the node pool and the metrics hub."""

    def __init__(self, nodes: List[GridNode], metrics: GridMetrics) -> None:
        if not nodes:
            raise ValueError("baseline needs at least one node")
        self.nodes = list(nodes)
        self.metrics = metrics
        self.sim = nodes[0].sim
        for node in self.nodes:
            wire_node_metrics(node, metrics)

    def matching_nodes(self, job: Job) -> List[GridNode]:
        """Nodes whose profile can host ``job``."""
        return [node for node in self.nodes if node.can_execute(job)]

    def submit(self, job: Job) -> None:
        """Schedule one submitted job (implemented by each baseline)."""
        raise NotImplementedError
