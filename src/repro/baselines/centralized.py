"""Idealized centralized meta-scheduler (upper-bound comparator).

Models the "very efficient centralized meta-scheduling mechanisms that can
take full advantage of a global view of the grid" the paper contrasts
itself with (§II, [14]): every submission instantly inspects the true cost
of *every* node and delegates to the cheapest one.  No discovery traffic,
no stale information, no network latency in the decision — deliberately
better-informed than any distributed protocol can be, which is exactly what
makes it a useful upper bound (its scalability/robustness drawbacks are
architectural and outside the simulation).

Traffic accounting still charges one submission (1 KB, client → scheduler)
and one delegation (1 KB, scheduler → node) per job so overhead comparisons
against ARiA remain meaningful.
"""

from __future__ import annotations

from typing import List, Optional

from ..grid.node import GridNode
from ..metrics.collector import GridMetrics
from ..net.traffic import TrafficMonitor
from ..workload.jobs import Job
from .base import BaselineScheduler

__all__ = ["CentralizedMetaScheduler"]


class CentralizedMetaScheduler(BaselineScheduler):
    """Assigns every job to the globally cheapest matching node."""

    def __init__(
        self,
        nodes: List[GridNode],
        metrics: GridMetrics,
        monitor: Optional[TrafficMonitor] = None,
    ) -> None:
        super().__init__(nodes, metrics)
        self.monitor = monitor if monitor is not None else TrafficMonitor()

    def submit(self, job: Job) -> None:
        """Assign ``job`` to the globally cheapest matching node, instantly."""
        self.metrics.job_submitted(job, initiator=-1, time=self.sim.now)
        self.monitor.record("Request", 1024)
        candidates = self.matching_nodes(job)
        if not candidates:
            self.metrics.job_unschedulable(job.job_id, self.sim.now)
            return
        best = min(candidates, key=lambda n: (n.cost_for(job), n.node_id))
        self.monitor.record("Assign", 1024)
        self.metrics.job_assigned(
            job.job_id, best.node_id, self.sim.now, reschedule=False
        )
        best.accept_job(job)
