"""Uniform random placement (lower-bound comparator).

Every job goes to a uniformly random node among those whose profile matches
— discovery without any cost information.  Any scheduler that does worse
than this is actively harmful; ARiA's gain over it quantifies the value of
cost-based delegation.
"""

from __future__ import annotations

import random
from typing import List, Optional

from ..grid.node import GridNode
from ..metrics.collector import GridMetrics
from ..net.traffic import TrafficMonitor
from ..workload.jobs import Job
from .base import BaselineScheduler

__all__ = ["RandomAssignScheduler"]


class RandomAssignScheduler(BaselineScheduler):
    """Assigns each job to a uniformly random matching node."""

    def __init__(
        self,
        nodes: List[GridNode],
        metrics: GridMetrics,
        rng: random.Random,
        monitor: Optional[TrafficMonitor] = None,
    ) -> None:
        super().__init__(nodes, metrics)
        self._rng = rng
        self.monitor = monitor if monitor is not None else TrafficMonitor()

    def submit(self, job: Job) -> None:
        """Assign ``job`` to a uniformly random matching node."""
        self.metrics.job_submitted(job, initiator=-1, time=self.sim.now)
        self.monitor.record("Request", 1024)
        candidates = self.matching_nodes(job)
        if not candidates:
            self.metrics.job_unschedulable(job.job_id, self.sim.now)
            return
        target = self._rng.choice(candidates)
        self.monitor.record("Assign", 1024)
        self.metrics.job_assigned(
            job.job_id, target.node_id, self.sim.now, reschedule=False
        )
        target.accept_job(job)
