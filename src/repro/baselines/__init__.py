"""Comparison meta-schedulers: centralized, multi-request, random."""

from .base import BaselineScheduler, wire_node_metrics
from .centralized import CentralizedMetaScheduler
from .gossip import GossipAgent, GossipConfig
from .multirequest import MultiRequestScheduler
from .randomassign import RandomAssignScheduler
from .runner import BASELINE_NAMES, BaselineRunResult, run_baseline

__all__ = [
    "BASELINE_NAMES",
    "BaselineRunResult",
    "BaselineScheduler",
    "CentralizedMetaScheduler",
    "GossipAgent",
    "GossipConfig",
    "MultiRequestScheduler",
    "RandomAssignScheduler",
    "run_baseline",
    "wire_node_metrics",
]
