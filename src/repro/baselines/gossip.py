"""Gossip-based decentralized scheduling (after Erdil & Lewis [25]).

The paper's related work contrasts ARiA with designs that "disseminate the
state of the available resources across the grid; this information is
cached by remote nodes and used to optimally allocate incoming jobs"
(§II, [25]).  This baseline implements that family:

* every node periodically gossips a **state digest** — the freshest cache
  entries it knows (node id, profile, speed, queue backlog, timestamp) —
  to a few random overlay neighbours;
* an initiator serves a submission **instantly from its cache**: it
  estimates each cached candidate's cost as ``backlog + ERT/speed`` and
  assigns directly (no discovery round-trip);
* there is no rescheduling: once assigned, a job stays put.

The interesting failure mode is *staleness herding*: several initiators
may dump jobs on the same recently-idle node before its next gossip round
advertises the new backlog — exactly the coupling the INFORM phase of
ARiA sidesteps by pulling fresh costs on demand.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional

from ..errors import ConfigurationError
from ..grid.node import GridNode
from ..grid.profiles import NodeProfile
from ..metrics.collector import GridMetrics
from ..net.message import Message
from ..net.transport import Transport
from ..overlay.flooding import choose_targets
from ..overlay.graph import OverlayGraph
from ..types import MINUTE, NodeId
from ..workload.jobs import Job
from .base import wire_node_metrics

__all__ = ["GossipConfig", "CacheEntry", "GossipAgent", "GossipDigest"]


@dataclass(frozen=True)
class GossipConfig:
    """Dissemination parameters of the gossip scheduler."""

    #: Period of the gossip rounds.
    interval: float = 1 * MINUTE
    #: Random neighbours contacted per round.
    fanout: int = 2
    #: Cache entries carried per digest message.
    digest_size: int = 8
    #: Cached entries kept per node.
    cache_capacity: int = 128
    #: How often a submission with no matching cache entry is retried
    #: (waiting for gossip to surface a candidate), and how many times.
    retry_interval: float = 1 * MINUTE
    max_retries: int = 30

    def __post_init__(self) -> None:
        if self.interval <= 0 or self.fanout < 1:
            raise ConfigurationError("invalid gossip interval/fanout")
        if self.digest_size < 1 or self.cache_capacity < self.digest_size:
            raise ConfigurationError("invalid digest/cache sizes")
        if self.retry_interval <= 0 or self.max_retries < 0:
            raise ConfigurationError("invalid retry settings")


class CacheEntry:
    """One node's advertised state at some past moment."""

    __slots__ = ("node_id", "profile", "speed", "backlog", "timestamp")

    def __init__(
        self,
        node_id: NodeId,
        profile: NodeProfile,
        speed: float,
        backlog: float,
        timestamp: float,
    ) -> None:
        self.node_id = node_id
        self.profile = profile
        self.speed = speed
        self.backlog = backlog
        self.timestamp = timestamp


class GossipDigest(Message):
    """A bundle of cache entries (1 KB like the other state messages)."""

    SIZE_BYTES = 1024
    __slots__ = ("entries",)

    def __init__(self, entries: List[CacheEntry]) -> None:
        self.entries = entries


class GossipAssign(Message):
    """Direct delegation under the gossip scheduler."""

    SIZE_BYTES = 1024
    __slots__ = ("job",)

    def __init__(self, job: Job) -> None:
        self.job = job


class GossipAgent:
    """One node of the gossip-scheduled grid."""

    def __init__(
        self,
        node: GridNode,
        transport: Transport,
        graph: OverlayGraph,
        config: GossipConfig,
        metrics: GridMetrics,
        rng: Optional[random.Random] = None,
    ) -> None:
        self.node = node
        self.transport = transport
        self.graph = graph
        self.config = config
        self.metrics = metrics
        self.sim = node.sim
        self._rng = rng if rng is not None else self.sim.streams.get("gossip")
        self._cache: Dict[NodeId, CacheEntry] = {}
        transport.register(node.node_id, self._on_message)
        wire_node_metrics(node, metrics)

    @property
    def node_id(self) -> NodeId:
        return self.node.node_id

    # ------------------------------------------------------------------
    # State advertisement
    # ------------------------------------------------------------------
    def _own_entry(self) -> CacheEntry:
        backlog = self.node.running_remaining() + sum(
            entry.ertp for entry in self.node.scheduler.queued()
        )
        return CacheEntry(
            node_id=self.node_id,
            profile=self.node.profile,
            speed=self.node.performance_index,
            backlog=backlog,
            timestamp=self.sim.now,
        )

    def start(self) -> None:
        """Begin the periodic gossip rounds (random phase per node)."""
        phase = self._rng.uniform(0.0, self.config.interval)
        self.sim.every(
            self.config.interval, self._gossip_round, start=self.sim.now + phase
        )

    def _gossip_round(self) -> None:
        self._merge(self._own_entry())
        # Anti-entropy selection: always carry our own fresh entry, fill
        # the rest of the digest with a *random* cache sample — random
        # selection propagates rarely-updated entries too, which pure
        # "freshest first" digests starve.
        own = self._cache[self.node_id]
        others = [e for e in self._cache.values() if e.node_id != self.node_id]
        sample_size = min(len(others), self.config.digest_size - 1)
        entries = [own] + self._rng.sample(others, sample_size)
        digest = GossipDigest(entries)
        for target in choose_targets(
            self.graph, self.node_id, self.config.fanout, self._rng
        ):
            self.transport.send(self.node_id, target, digest)

    def _merge(self, entry: CacheEntry) -> None:
        known = self._cache.get(entry.node_id)
        if known is None or entry.timestamp > known.timestamp:
            self._cache[entry.node_id] = entry
        if len(self._cache) > self.config.cache_capacity:
            stalest = min(self._cache.values(), key=lambda e: e.timestamp)
            del self._cache[stalest.node_id]

    # ------------------------------------------------------------------
    # Scheduling from the cache
    # ------------------------------------------------------------------
    def submit(self, job: Job) -> None:
        """Assign ``job`` using cached state (plus our own fresh state)."""
        self.metrics.job_submitted(job, self.node_id, self.sim.now)
        self._try_place(job, retries_left=self.config.max_retries)

    def _try_place(self, job: Job, retries_left: int) -> None:
        self._merge(self._own_entry())
        candidates = [
            entry
            for entry in self._cache.values()
            if entry.profile.satisfies(job.requirements)
        ]
        if not candidates:
            if retries_left > 0:
                # No matching state cached yet: wait for gossip to surface
                # a candidate and try again.
                self.sim.call_after(
                    self.config.retry_interval,
                    self._try_place,
                    job,
                    retries_left - 1,
                )
            else:
                self.metrics.job_unschedulable(job.job_id, self.sim.now)
            return
        best = min(
            candidates,
            key=lambda e: (e.backlog + job.ert / e.speed, e.node_id),
        )
        # Optimistically age the cached backlog so immediate follow-up
        # submissions do not all pile onto the same entry.
        self._cache[best.node_id] = CacheEntry(
            node_id=best.node_id,
            profile=best.profile,
            speed=best.speed,
            backlog=best.backlog + job.ert / best.speed,
            timestamp=best.timestamp,
        )
        self.metrics.job_assigned(
            job.job_id, best.node_id, self.sim.now, reschedule=False
        )
        self.transport.send(self.node_id, best.node_id, GossipAssign(job))

    # ------------------------------------------------------------------
    def _on_message(self, src: NodeId, message: Message) -> None:
        if isinstance(message, GossipDigest):
            for entry in message.entries:
                if entry.node_id != self.node_id:
                    self._merge(entry)
        elif isinstance(message, GossipAssign):
            self.node.accept_job(message.job)
        else:  # pragma: no cover - defensive
            raise ConfigurationError(f"unexpected message {message!r}")
