"""Multiple-simultaneous-requests meta-scheduling (Subramani et al. [13]).

"The distributed meta-scheduling model presented in [13] operates on the
principle of submitting a job to the least loaded sites and subsequently
revoking it on all but the one that has commenced its execution.  An
evident drawback of this model is the overloading of a large number of
schedulers with jobs that are frequently cancelled." (§II)

Implementation: each job is enqueued on the ``k`` cheapest matching nodes;
the first copy that starts executing wins and the remaining copies are
revoked synchronously (so no two copies ever run).  ``revoked_copies``
counts the wasted queue slots — the drawback the paper calls out — and the
traffic monitor charges the duplicate ASSIGN and CANCEL messages.

Site selection reuses the centralized cost probe for simplicity; the
interesting behaviour of this baseline is the duplicate-queueing dynamics,
not its discovery mechanism.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..errors import ProtocolError
from ..grid.node import GridNode, RunningJob
from ..metrics.collector import GridMetrics
from ..net.traffic import TrafficMonitor
from ..types import JobId
from ..workload.jobs import Job
from .base import BaselineScheduler

__all__ = ["MultiRequestScheduler"]


class MultiRequestScheduler(BaselineScheduler):
    """Enqueue each job on the k best nodes; revoke losers on first start."""

    def __init__(
        self,
        nodes: List[GridNode],
        metrics: GridMetrics,
        k: int = 3,
        monitor: Optional[TrafficMonitor] = None,
    ) -> None:
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        super().__init__(nodes, metrics)
        self.k = k
        self.monitor = monitor if monitor is not None else TrafficMonitor()
        #: job id -> nodes still holding a copy
        self._copies: Dict[JobId, List[GridNode]] = {}
        #: Queue entries cancelled after another copy started.
        self.revoked_copies = 0
        for node in self.nodes:
            node.on_job_started.append(self._on_copy_started)

    def submit(self, job: Job) -> None:
        """Enqueue ``job`` on the k cheapest matching nodes."""
        self.metrics.job_submitted(job, initiator=-1, time=self.sim.now)
        self.monitor.record("Request", 1024)
        candidates = self.matching_nodes(job)
        if not candidates:
            self.metrics.job_unschedulable(job.job_id, self.sim.now)
            return
        ranked = sorted(candidates, key=lambda n: (n.cost_for(job), n.node_id))
        chosen = ranked[: self.k]
        # Record the nominally best node as the assignment; execution may
        # end up on any of the k copies.
        self.metrics.job_assigned(
            job.job_id, chosen[0].node_id, self.sim.now, reschedule=False
        )
        # Copies are delivered as separate (zero-delay) events: enqueueing a
        # copy on an idle node starts it *synchronously*, and the resulting
        # revocation must be able to see — and cancel — the deliveries that
        # have not happened yet.
        self._copies[job.job_id] = []
        for node in chosen:
            self.monitor.record("Assign", 1024)
            self.sim.call_after(0.0, self._deliver_copy, node, job)

    def _deliver_copy(self, node: GridNode, job: Job) -> None:
        holders = self._copies.get(job.job_id)
        if holders is None:
            # Another copy already commenced execution: this delivery is
            # revoked before it ever reaches the queue.
            self.revoked_copies += 1
            self.monitor.record("Cancel", 128)
            return
        holders.append(node)
        node.accept_job(job)

    def _on_copy_started(self, node: GridNode, running: RunningJob) -> None:
        job_id = running.job.job_id
        holders = self._copies.pop(job_id, None)
        if holders is None:
            raise ProtocolError(
                f"job {job_id} started twice under multi-request scheduling"
            )
        for other in holders:
            if other is node:
                continue
            removed = other.withdraw_job(job_id)
            if removed is None:  # pragma: no cover - prevented by sync revoke
                raise ProtocolError(
                    f"could not revoke duplicate of job {job_id} "
                    f"on node {other.node_id}"
                )
            self.revoked_copies += 1
            self.monitor.record("Cancel", 128)
