"""Run the comparison meta-schedulers on the standard workload.

Builds the same heterogeneous node pool and §IV-D workload as the ARiA
scenario runner, but drives one of the baseline schedulers instead of the
distributed protocol, so baseline and ARiA numbers are directly comparable
(same seeds → same node profiles and jobs).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List

from ..errors import ConfigurationError
from ..grid.node import GridNode
from ..grid.performance import AccuracyModel
from ..grid.resources import random_node_profile, random_performance_index
from ..metrics.collector import GridMetrics
from ..net.traffic import TrafficReport
from ..scheduling.registry import make_scheduler
from ..sim import Simulator
from ..workload.generator import JobGenerator
from ..workload.submission import SubmissionProcess, SubmissionSchedule
from .centralized import CentralizedMetaScheduler
from .multirequest import MultiRequestScheduler
from .randomassign import RandomAssignScheduler

__all__ = ["BaselineRunResult", "run_baseline", "BASELINE_NAMES"]

BASELINE_NAMES = ("centralized", "multirequest", "random", "gossip")


@dataclass
class BaselineRunResult:
    """Outcome of one baseline run."""

    baseline: str
    seed: int
    metrics: GridMetrics
    traffic: TrafficReport
    #: Duplicate queue entries cancelled (multirequest only, else 0).
    revoked_copies: int
    #: The :class:`~repro.experiments.scale.ScenarioScale` of the run.
    scale: object = None
    executed_events: int = 0

    def summary(self, validate: bool = True):
        """Condense this run into a picklable
        :class:`~repro.experiments.summary.RunSummary` (the unified
        hand-off consumed by the batch engine and its cache)."""
        import dataclasses

        from ..experiments.summary import RunSummary
        from ..experiments.validation import validate_run

        return RunSummary.from_metrics(
            kind="baseline",
            name=self.baseline,
            seed=self.seed,
            scale=dataclasses.asdict(self.scale) if self.scale else {},
            metrics=self.metrics,
            traffic=self.traffic,
            final_node_count=self.traffic.node_count,
            executed_events=self.executed_events,
            violations=validate_run(self) if validate else (),
            extras={"revoked_copies": float(self.revoked_copies)},
        )


def run_baseline(
    baseline: str,
    scale=None,
    seed: int = 0,
    policies=("FCFS", "SJF"),
    submission_interval: float = 10.0,
    multirequest_k: int = 3,
) -> BaselineRunResult:
    """Simulate one baseline run mirroring the Mixed workload setup.

    .. deprecated:: 1.1
        Use :func:`repro.experiments.run` with the baseline name as spec:
        ``run("centralized", scale, seed=...)``.

    .. versionchanged:: 1.2
        Calling this wrapper is now an error.
    """
    raise DeprecationWarning(
        'run_baseline() was removed; use repro.experiments.run('
        '"centralized" | "multirequest" | "random" | "gossip", scale, '
        "seed=...) instead"
    )


def _run_baseline(
    baseline: str,
    scale=None,
    seed: int = 0,
    policies=("FCFS", "SJF"),
    submission_interval: float = 10.0,
    multirequest_k: int = 3,
) -> BaselineRunResult:
    """Simulate one baseline run (internal, non-deprecated impl)."""
    from ..experiments.scale import ScenarioScale

    scale = scale if scale is not None else ScenarioScale.paper()
    if baseline not in BASELINE_NAMES:
        raise ConfigurationError(
            f"unknown baseline {baseline!r}; known: {BASELINE_NAMES}"
        )
    sim = Simulator(seed=seed)
    metrics = GridMetrics()
    profile_rng = sim.streams.get("profiles")
    policy_rng = sim.streams.get("policies")
    accuracy = AccuracyModel(epsilon=0.1)
    nodes: List[GridNode] = [
        GridNode(
            node_id=node_id,
            sim=sim,
            profile=random_node_profile(profile_rng),
            performance_index=random_performance_index(profile_rng),
            scheduler=make_scheduler(policy_rng.choice(policies)),
            accuracy=accuracy,
        )
        for node_id in range(scale.nodes)
    ]

    if baseline == "gossip":
        return _run_gossip(
            scale, seed, sim, metrics, nodes, submission_interval
        )
    if baseline == "centralized":
        scheduler = CentralizedMetaScheduler(nodes, metrics)
    elif baseline == "multirequest":
        scheduler = MultiRequestScheduler(nodes, metrics, k=multirequest_k)
    else:
        scheduler = RandomAssignScheduler(
            nodes, metrics, rng=sim.streams.get("baseline.random")
        )

    profiles = [node.profile for node in nodes]
    generator = JobGenerator(
        sim.streams.get("workload"),
        requirements_ok=lambda req: any(p.satisfies(req) for p in profiles),
    )
    schedule = SubmissionSchedule(
        job_count=scale.jobs,
        interval=submission_interval * scale.interval_factor,
    )
    SubmissionProcess(
        sim,
        agents=lambda: [scheduler],
        generator=generator,
        schedule=schedule,
        rng=sim.streams.get("submission"),
    )
    sim.run_until(scale.duration)
    return BaselineRunResult(
        baseline=baseline,
        seed=seed,
        metrics=metrics,
        traffic=scheduler.monitor.report(
            node_count=scale.nodes, duration=scale.duration
        ),
        revoked_copies=getattr(scheduler, "revoked_copies", 0),
        scale=scale,
        executed_events=sim.executed_events,
    )


def _run_gossip(
    scale, seed, sim, metrics, nodes, submission_interval
) -> BaselineRunResult:
    """The gossip baseline is itself decentralized: one agent per node,
    random initiators, a real overlay and transport underneath."""
    from ..experiments.runner import _converged_overlay
    from ..net.transport import SimTransport
    from .gossip import GossipAgent, GossipConfig

    transport = SimTransport(sim)
    graph = _converged_overlay(scale.nodes, seed)
    config = GossipConfig()
    agents = [
        GossipAgent(node, transport, graph, config, metrics)
        for node in nodes
    ]
    for agent in agents:
        agent.start()

    profiles = [node.profile for node in nodes]
    generator = JobGenerator(
        sim.streams.get("workload"),
        requirements_ok=lambda req: any(p.satisfies(req) for p in profiles),
    )
    schedule = SubmissionSchedule(
        job_count=scale.jobs,
        interval=submission_interval * scale.interval_factor,
    )
    SubmissionProcess(
        sim,
        agents=lambda: agents,
        generator=generator,
        schedule=schedule,
        rng=sim.streams.get("submission"),
    )
    sim.run_until(scale.duration)
    return BaselineRunResult(
        baseline="gossip",
        seed=seed,
        metrics=metrics,
        traffic=transport.monitor.report(
            node_count=scale.nodes, duration=scale.duration
        ),
        revoked_copies=0,
        scale=scale,
        executed_events=sim.executed_events,
    )
