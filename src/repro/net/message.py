"""Wire-message base class and size accounting.

The paper's traffic evaluation (§V-E) assigns fixed on-the-wire sizes to
each message type: REQUEST, INFORM and ASSIGN carry 1 KiB, ACCEPT only
128 bytes.  Concrete message classes (in :mod:`repro.core.messages`) declare
their size through the ``SIZE_BYTES`` class attribute.
"""

from __future__ import annotations

__all__ = ["Message", "wire_size"]


class Message:
    """Base class for anything sent through the :class:`~repro.net.Transport`.

    Subclasses set ``SIZE_BYTES`` to their fixed wire size and get their
    traffic-accounting label from the class name.
    """

    #: Fixed serialized size in bytes, used for traffic accounting.
    SIZE_BYTES: int = 0

    __slots__ = ()

    @classmethod
    def type_name(cls) -> str:
        """Label under which this message type is accounted (class name)."""
        return cls.__name__


def wire_size(message: "Message") -> int:
    """Serialized size of ``message`` in bytes."""
    return message.SIZE_BYTES
