"""Simulated network: messages, latency models, transport, traffic stats."""

from .latency import (
    ConstantLatency,
    LatencyModel,
    PairwiseLogNormalLatency,
    UniformLatency,
)
from .message import Message, wire_size
from .traffic import TrafficMonitor, TrafficReport
from .transport import Transport

__all__ = [
    "ConstantLatency",
    "LatencyModel",
    "Message",
    "PairwiseLogNormalLatency",
    "TrafficMonitor",
    "TrafficReport",
    "Transport",
    "UniformLatency",
    "wire_size",
]
