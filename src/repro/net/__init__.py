"""Simulated network: messages, latency models, transport, traffic stats,
fault injection, and reliable delivery."""

from .faults import FaultInjector
from .latency import (
    ConstantLatency,
    LatencyModel,
    PairwiseLogNormalLatency,
    SpikeLatency,
    UniformLatency,
)
from .message import Message, wire_size
from .reliability import Ack, ReliabilityConfig, ReliabilityLayer
from .traffic import TrafficMonitor, TrafficReport
from .transport import Transport

__all__ = [
    "Ack",
    "ConstantLatency",
    "FaultInjector",
    "LatencyModel",
    "Message",
    "PairwiseLogNormalLatency",
    "ReliabilityConfig",
    "ReliabilityLayer",
    "SpikeLatency",
    "TrafficMonitor",
    "TrafficReport",
    "Transport",
    "UniformLatency",
    "wire_size",
]
