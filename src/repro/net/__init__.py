"""Networking: messages, latency models, the abstract :class:`Transport`
interface and its simulated implementation, traffic stats, fault
injection, and reliable delivery.

The live (asyncio, HTTP+JSON) implementation lives in
:mod:`repro.runtime`."""

from .faults import FaultInjector
from .latency import (
    ConstantLatency,
    LatencyModel,
    PairwiseLogNormalLatency,
    SpikeLatency,
    UniformLatency,
)
from .message import Message, wire_size
from .reliability import Ack, ReliabilityConfig, ReliabilityLayer
from .traffic import TrafficMonitor, TrafficReport
from .transport import SimTransport, Transport

__all__ = [
    "Ack",
    "ConstantLatency",
    "FaultInjector",
    "LatencyModel",
    "Message",
    "PairwiseLogNormalLatency",
    "ReliabilityConfig",
    "ReliabilityLayer",
    "SimTransport",
    "SpikeLatency",
    "TrafficMonitor",
    "TrafficReport",
    "Transport",
    "UniformLatency",
    "wire_size",
]
