"""Per-message-type traffic accounting.

Reproduces the bookkeeping behind the paper's Figure 10 (network overhead
comparison): total bytes and message counts per protocol message type, plus
derived per-node and bandwidth figures (the paper reports ≈3 MB per node
over ≈42 h, i.e. ≈149 bps).
"""

from __future__ import annotations

from typing import Dict, Mapping

__all__ = ["TrafficMonitor", "TrafficReport"]


class TrafficMonitor:
    """Accumulates message counts and byte totals keyed by message type."""

    __slots__ = ("bytes_by_type", "count_by_type")

    def __init__(self) -> None:
        self.bytes_by_type: Dict[str, int] = {}
        self.count_by_type: Dict[str, int] = {}

    def record(self, type_name: str, size_bytes: int) -> None:
        """Account one message of ``type_name`` of ``size_bytes`` bytes."""
        self.bytes_by_type[type_name] = (
            self.bytes_by_type.get(type_name, 0) + size_bytes
        )
        self.count_by_type[type_name] = self.count_by_type.get(type_name, 0) + 1

    @property
    def total_bytes(self) -> int:
        return sum(self.bytes_by_type.values())

    @property
    def total_messages(self) -> int:
        return sum(self.count_by_type.values())

    def report(self, node_count: int, duration: float) -> "TrafficReport":
        """Summarize totals into the paper's per-node / bandwidth figures."""
        return TrafficReport(
            bytes_by_type=dict(self.bytes_by_type),
            count_by_type=dict(self.count_by_type),
            node_count=node_count,
            duration=duration,
        )


class TrafficReport:
    """Immutable summary of a run's traffic (the data behind Figure 10)."""

    def __init__(
        self,
        bytes_by_type: Mapping[str, int],
        count_by_type: Mapping[str, int],
        node_count: int,
        duration: float,
    ) -> None:
        self.bytes_by_type = dict(bytes_by_type)
        self.count_by_type = dict(count_by_type)
        self.node_count = node_count
        self.duration = duration

    @property
    def total_bytes(self) -> int:
        return sum(self.bytes_by_type.values())

    @property
    def bytes_per_node(self) -> float:
        """Average traffic share per node, in bytes."""
        if self.node_count == 0:
            return 0.0
        return self.total_bytes / self.node_count

    @property
    def bandwidth_bps(self) -> float:
        """Average per-node bandwidth consumption in bits per second."""
        if self.duration <= 0 or self.node_count == 0:
            return 0.0
        return self.bytes_per_node * 8.0 / self.duration

    def megabytes(self, type_name: str) -> float:
        """Total traffic of one message type, in megabytes (10^6 bytes)."""
        return self.bytes_by_type.get(type_name, 0) / 1e6

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        per_type = ", ".join(
            f"{name}={total / 1e6:.2f}MB"
            for name, total in sorted(self.bytes_by_type.items())
        )
        return f"<TrafficReport {per_type} bw={self.bandwidth_bps:.0f}bps>"
