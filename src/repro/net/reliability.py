"""At-least-once delivery for control-plane-critical messages.

The ARiA data plane (REQUEST/INFORM floods, ACCEPT offers) tolerates loss
by construction: floods are redundant and discovery retries re-broadcast.
The *control plane* does not — a dropped ASSIGN strands a job, a dropped
Track leaves the fail-safe tracking stale, a dropped Done keeps a finished
job tracked forever.  :class:`ReliabilityLayer` gives those messages
datagram-friendly at-least-once semantics:

* every reliable send carries a fresh ``msg_id`` (a header field, like the
  ``broadcast_id`` of flooded messages — covered by the message's fixed
  wire size);
* the receiver acknowledges each copy with a 64-byte :class:`Ack` and
  suppresses duplicate ``msg_id`` deliveries, which makes the protocol
  handlers idempotent under duplicated and reordered delivery;
* the sender retransmits on ack timeout with exponential backoff plus
  jitter (drawn from the dedicated ``"net.reliability"`` stream, so the
  layer is deterministic and never perturbs other streams), giving up
  after ``max_retries`` retransmissions.

Retransmit timers live on the simulator's slab event queue and are lazily
cancelled when the ack arrives, exactly like the protocol's own timeouts.

The bounded retry budget is a *safety* feature, not just an optimisation:
a reliable ASSIGN must be provably dead (given up) before the fail-safe
probing could resubmit the job, or both nodes would execute it.  With the
defaults the worst-case give-up horizon is ``sum(min(1·2^k, 30)·1.5) ≈
180 s`` — far below the fail-safe ``probe_interval`` (600 s by default in
fault experiments).  See ``docs/FAULTS.md`` for the full argument.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Optional

from ..errors import ConfigurationError
from ..obs.trace import message_job_id
from ..types import NodeId
from .message import Message
from .transport import Transport

__all__ = ["Ack", "ReliabilityConfig", "ReliabilityLayer"]


class Ack(Message):
    """Per-message acknowledgement of a reliable delivery."""

    SIZE_BYTES = 64
    __slots__ = ("msg_id",)

    def __init__(self, msg_id: int) -> None:
        self.msg_id = msg_id


@dataclass(frozen=True)
class ReliabilityConfig:
    """Retransmission policy of a :class:`ReliabilityLayer`.

    ``ack_timeout`` doubles per attempt (``backoff``) up to ``max_timeout``
    and is stretched by a uniform jitter in ``[0, jitter]`` of itself so
    retransmissions never synchronise.  After ``max_retries``
    retransmissions without an ack the message is abandoned (``gave_up``)
    — recovery is then the fail-safe layer's job.
    """

    ack_timeout: float = 1.0
    backoff: float = 2.0
    max_timeout: float = 30.0
    max_retries: int = 7
    jitter: float = 0.5

    def __post_init__(self) -> None:
        if self.ack_timeout <= 0 or self.max_timeout < self.ack_timeout:
            raise ConfigurationError(
                f"invalid ack timeouts [{self.ack_timeout}, {self.max_timeout}]"
            )
        if self.backoff < 1.0:
            raise ConfigurationError(f"backoff {self.backoff} must be >= 1")
        if self.max_retries < 0:
            raise ConfigurationError(f"negative max_retries {self.max_retries}")
        if self.jitter < 0:
            raise ConfigurationError(f"negative jitter {self.jitter}")

    def give_up_horizon(self) -> float:
        """Worst-case seconds from first transmission to giving up."""
        total = 0.0
        for attempt in range(self.max_retries + 1):
            timeout = min(
                self.ack_timeout * self.backoff**attempt, self.max_timeout
            )
            total += timeout * (1.0 + self.jitter)
        return total


class _Pending:
    """One reliable message awaiting its ack.

    ``stamp`` is the destination's incarnation number captured at the
    original send (``None`` while incarnation stamping is disabled).
    Retransmissions reuse it on purpose: a copy of a message composed for
    incarnation *k* must never reach incarnation *k+1*.
    """

    __slots__ = ("src", "dst", "message", "attempt", "timer", "stamp", "sent_at")

    def __init__(
        self,
        src: NodeId,
        dst: NodeId,
        message: Message,
        stamp: Optional[int] = None,
        sent_at: float = 0.0,
    ) -> None:
        self.src = src
        self.dst = dst
        self.message = message
        self.attempt = 0
        self.timer = None
        self.stamp = stamp
        self.sent_at = sent_at


class ReliabilityLayer:
    """Ack/retransmit/dedup layer on top of a :class:`Transport`.

    Constructing the layer attaches it (``transport.reliability = self``);
    the transport then routes tagged deliveries and acks through it.
    """

    def __init__(
        self,
        transport: Transport,
        config: Optional[ReliabilityConfig] = None,
        rng: Optional[random.Random] = None,
        msg_id_base: int = 0,
    ) -> None:
        self.transport = transport
        self.config = config if config is not None else ReliabilityConfig()
        self._clock = transport.clock
        self._rng = (
            rng
            if rng is not None
            else self._clock.streams.get("net.reliability")
        )
        #: msg_ids count up from ``msg_id_base``.  When several layers
        #: share one wire — the process-isolated runtime runs one layer
        #: per OS process — each layer must be given a disjoint id space
        #: (e.g. keyed by worker index and incarnation), or two senders'
        #: ids would collide at a common receiver.
        self._next_id = msg_id_base
        self._pending: Dict[int, _Pending] = {}
        #: Receiver-side dedup state: ``(src, msg_id)`` pairs already
        #: delivered, per local endpoint (so one layer serves every node
        #: of the grid).  Keying by sender matters once peers live in
        #: other processes: their layers allocate msg_ids independently,
        #: and a bare msg_id from one sender must not suppress a fresh
        #: message from another.
        self._seen: Dict[NodeId, set] = {}
        registry = transport.registry
        self._retransmissions = registry.counter("reliable.retransmissions")
        self._acks_sent = registry.counter("reliable.acks_sent")
        self._delivered = registry.counter("reliable.delivered")
        self._duplicates_suppressed = registry.counter(
            "reliable.duplicates_suppressed"
        )
        self._gave_up = registry.counter("reliable.gave_up")
        #: Send-to-ack round-trip time of confirmed deliveries, in
        #: protocol seconds — the live fleet's end-to-end reliability
        #: latency signal on ``/metrics``.  Buckets sized for both the
        #: simulator (multi-second latency draws) and the compressed live
        #: wall clock (sub-second protocol-time round trips).
        self._ack_rtt = registry.histogram(
            "reliable.ack_rtt",
            buckets=(0.1, 0.5, 2.0, 10.0, 60.0, 300.0, 1800.0),
        )
        #: The transport's tracer (attached to it before this layer is
        #: constructed); ``None`` unless transport-level tracing is on.
        self._trace = transport._trace
        transport.reliability = self

    @property
    def retransmissions(self) -> int:
        """Retransmitted copies sent after ack timeouts."""
        return self._retransmissions.value

    @property
    def acks_sent(self) -> int:
        """Acks sent by receivers (one per tagged delivery)."""
        return self._acks_sent.value

    @property
    def delivered(self) -> int:
        """Reliable sends confirmed by an ack."""
        return self._delivered.value

    @property
    def duplicates_suppressed(self) -> int:
        """Tagged deliveries dropped as already-seen duplicates."""
        return self._duplicates_suppressed.value

    @property
    def gave_up(self) -> int:
        """Reliable sends abandoned after the retry budget ran out."""
        return self._gave_up.value

    def _emit_retry(self, event: str, msg_id: int, pending: _Pending) -> None:
        """Record a retransmission event, annotated with the job when known."""
        fields = {
            "src": pending.src,
            "dst": pending.dst,
            "type": pending.message.__class__.__name__,
            "msg_id": msg_id,
        }
        if event == "retry.sent":
            fields["attempt"] = pending.attempt
        job = message_job_id(pending.message)
        if job is not None:
            fields["job"] = job
        self._trace.emit(event, self._clock.now, **fields)

    # ------------------------------------------------------------------
    # Sender side
    # ------------------------------------------------------------------
    def send(self, src: NodeId, dst: NodeId, message: Message) -> None:
        """Send ``message`` with at-least-once semantics.

        Local sends (``src == dst``) bypass the layer entirely: the
        simulated loopback is lossless by construction, so acking it
        would only add events.
        """
        if src == dst:
            self.transport.send(src, dst, message)
            return
        msg_id = self._next_id
        self._next_id += 1
        pending = _Pending(
            src,
            dst,
            message,
            self.transport.incarnation_stamp(dst),
            sent_at=self._clock.now,
        )
        self._pending[msg_id] = pending
        self._transmit(msg_id, pending)

    def _transmit(self, msg_id: int, pending: _Pending) -> None:
        config = self.config
        if pending.attempt and self._trace is not None:
            self._emit_retry("retry.sent", msg_id, pending)
        self.transport.send_tagged(
            pending.src, pending.dst, pending.message, msg_id,
            stamp=pending.stamp,
        )
        timeout = min(
            config.ack_timeout * config.backoff**pending.attempt,
            config.max_timeout,
        )
        if config.jitter:
            timeout *= 1.0 + config.jitter * self._rng.random()
        pending.timer = self._clock.call_after(
            timeout, self._on_timeout, msg_id
        )

    def _on_timeout(self, msg_id: int) -> None:
        pending = self._pending.get(msg_id)
        if pending is None:  # pragma: no cover - timer raced the ack
            return
        if pending.attempt >= self.config.max_retries:
            del self._pending[msg_id]
            self._gave_up.inc()
            if self._trace is not None:
                self._emit_retry("retry.gave_up", msg_id, pending)
            return
        pending.attempt += 1
        self._retransmissions.inc()
        self._transmit(msg_id, pending)

    def _on_ack(self, msg_id: int) -> None:
        pending = self._pending.pop(msg_id, None)
        if pending is None:
            return  # duplicate or late ack: already settled
        if pending.timer is not None:
            self._clock.cancel(pending.timer)
        self._delivered.inc()
        self._ack_rtt.observe(self._clock.now - pending.sent_at)

    def _on_ack_stamped(self, msg_id: int, dst: NodeId, stamp: int) -> None:
        """Deliver an ack only if the acked sender's incarnation still
        matches the one the ack was addressed to."""
        incarnations = self.transport._incarnations
        if incarnations is not None and incarnations.get(dst, 0) != stamp:
            self.transport._dropped_stale.inc()
            return
        self._on_ack(msg_id)

    # ------------------------------------------------------------------
    # Receiver side (called by Transport._deliver_tagged)
    # ------------------------------------------------------------------
    def accept(self, src: NodeId, dst: NodeId, msg_id: int) -> bool:
        """Ack a tagged delivery at ``dst``; ``False`` if it is a duplicate.

        Duplicates are acked too — the payload may have arrived while all
        previous acks were lost, and the sender must stop retransmitting.
        """
        self._acks_sent.inc()
        self.transport.send_ack(dst, src, Ack(msg_id), msg_id)
        seen = self._seen.get(dst)
        if seen is None:
            seen = self._seen[dst] = set()
        if (src, msg_id) in seen:
            self._duplicates_suppressed.inc()
            return False
        seen.add((src, msg_id))
        return True

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def forget(self, node_id: NodeId) -> None:
        """Drop state tied to a node leaving the grid (crash/departure).

        Outstanding sends *from* the node stop retransmitting — a dead
        node cannot talk — and its dedup window is released.  Sends *to*
        the node keep retrying until the bounded budget runs out, exactly
        like real datagrams chasing a silent host.
        """
        stale = [
            msg_id
            for msg_id, pending in self._pending.items()
            if pending.src == node_id
        ]
        for msg_id in stale:
            pending = self._pending.pop(msg_id)
            if pending.timer is not None:
                self._clock.cancel(pending.timer)
        self._seen.pop(node_id, None)

    def counters(self) -> Dict[str, int]:
        """Layer counters (for ``RunSummary.extras``)."""
        return {
            "reliable_delivered": self.delivered,
            "reliable_retransmissions": self.retransmissions,
            "reliable_acks": self.acks_sent,
            "reliable_duplicates_suppressed": self.duplicates_suppressed,
            "reliable_gave_up": self.gave_up,
            "reliable_pending": len(self._pending),
        }
