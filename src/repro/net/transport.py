"""Point-to-point message transport between protocol endpoints.

Nodes register a receive handler under their :class:`~repro.types.NodeId`;
:meth:`Transport.send` delivers a payload to the destination's handler and
accounts its wire size in the :class:`~repro.net.traffic.TrafficMonitor`.

:class:`Transport` is the abstract interface the protocol layer is written
against — send / send_tagged / register / counters / incarnation hooks —
with two implementations:

* :class:`SimTransport` (this module) delivers over the discrete-event
  kernel after a latency drawn from the configured
  :class:`~repro.net.latency.LatencyModel`;
* :class:`repro.runtime.LiveTransport` delivers over real HTTP+JSON
  between asyncio node servers on localhost.

Messages to unregistered (departed / crashed) nodes are counted as sent but
silently dropped on delivery, mirroring a real datagram overlay.  The drop
counter distinguishes destinations that *were* registered once
(``dropped_detached`` — in-flight messages that raced a departure) from
destinations the transport never knew (``dropped_unknown``).

Two optional collaborators extend the base datagram service:

* ``transport.faults`` — a :class:`~repro.net.faults.FaultInjector`
  consulted once per non-local message for loss bursts, duplication and
  partition drops (simulated transport only);
* ``transport.reliability`` — a
  :class:`~repro.net.reliability.ReliabilityLayer` providing at-least-once
  delivery for control-plane messages via :meth:`Transport.send_tagged`.

Both default to ``None`` and the hot path pays a single ``is None`` check
for them, keeping fault-free runs at full speed.

Crash-restart experiments additionally enable **incarnation stamping**
(:meth:`Transport.enable_incarnations`): every message is stamped at send
time with the destination's current incarnation number, and delivery
drops the message (``dropped_stale``) if the destination has restarted
since.  That makes a restarted node unreachable by its past — in-flight
ASSIGNs, Tracks, retransmitted copies and acks addressed to the dead
incarnation can never corrupt the fresh one's state.  Like the other
collaborators, the stamping path costs a single ``is None`` check when
disabled, which is the only cost fault-free runs ever pay.
"""

from __future__ import annotations

from heapq import heappush
from typing import Callable, Dict, Optional, Set

from ..clock import Clock
from ..errors import ConfigurationError
from ..obs.metrics import MetricsRegistry
from ..obs.trace import message_job_id
from .latency import LatencyModel, PairwiseLogNormalLatency
from .message import Message
from .traffic import TrafficMonitor

from ..types import NodeId

__all__ = ["Transport", "SimTransport"]

#: Signature of a node's message handler: ``handler(src, message)``.
Handler = Callable[[NodeId, Message], None]


class Transport:
    """Abstract message service between registered protocol endpoints.

    Subclasses provide the wire — :meth:`send`, :meth:`send_tagged` and
    :meth:`send_ack` — while this base owns everything both backends
    share: the handler registry, traffic accounting and loss judgment
    (:meth:`_account`, the single choke point every outbound message
    passes through), delivery-side bookkeeping (drop / staleness
    counters), incarnation stamping, and the counter snapshot consumed by
    run summaries.
    """

    __slots__ = (
        "clock",
        "monitor",
        "_handlers",
        "_known",
        "_loss_rng",
        "loss_probability",
        "registry",
        "_dropped_detached",
        "_dropped_unknown",
        "_lost",
        "faults",
        "reliability",
        "_incarnations",
        "_dropped_stale",
        "_trace",
        "_trace_ctx",
        "_job_traces",
        "_next_trace",
        "_last_send_ctx",
        "_hop_latency",
    )

    def __init__(
        self,
        clock: Clock,
        monitor: Optional[TrafficMonitor] = None,
        loss_probability: float = 0.0,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        if not 0.0 <= loss_probability < 1.0:
            raise ConfigurationError(
                f"loss_probability {loss_probability} out of [0, 1)"
            )
        #: The timing substrate (a :class:`~repro.sim.Simulator` or a
        #: :class:`~repro.runtime.WallClock`) — collaborators like the
        #: reliability layer schedule their timers through it.
        self.clock = clock
        self.monitor = monitor if monitor is not None else TrafficMonitor()
        self._handlers: Dict[NodeId, Handler] = {}
        #: Every node id that was ever registered, so drops can tell a
        #: departed destination from one that never existed.
        self._known: Set[NodeId] = set()
        self._loss_rng = clock.streams.get("net.loss")
        self.loss_probability = loss_probability
        #: Shared per-run metrics registry (created here when standalone).
        self.registry = registry if registry is not None else MetricsRegistry()
        self._dropped_detached = self.registry.counter("net.dropped_detached")
        self._dropped_unknown = self.registry.counter("net.dropped_unknown")
        self._lost = self.registry.counter("net.lost")
        #: Optional :class:`~repro.net.faults.FaultInjector`.
        self.faults = None
        #: Optional :class:`~repro.net.reliability.ReliabilityLayer`.
        self.reliability = None
        #: ``None`` until :meth:`enable_incarnations`; then an
        #: :class:`~repro.grid.state.IncarnationSlab` mapping node id ->
        #: current incarnation number (missing means 0).
        self._incarnations = None
        self._dropped_stale = self.registry.counter("net.dropped_stale")
        #: Optional :class:`~repro.obs.Tracer`, attached only when
        #: transport-level tracing is active (``None`` costs one check).
        self._trace = None
        #: Causal-trace state, touched only while ``_trace`` is set: the
        #: handler-scoped context restored around traced deliveries, a
        #: per-job continuation map (so chains survive timer-driven sends
        #: like ASSIGN after the accept window), the fresh-id counter, the
        #: context of the message most recently judged by :meth:`_account`
        #: (read back by the backend to stamp the in-flight copy), and the
        #: lazily registered hop-latency histogram.
        self._trace_ctx = None
        self._job_traces: Dict[int, tuple] = {}
        self._next_trace = 0
        self._last_send_ctx = None
        self._hop_latency = None

    # ------------------------------------------------------------------
    # The wire (implementation-specific)
    # ------------------------------------------------------------------
    def send(self, src: NodeId, dst: NodeId, message: Message) -> None:
        """Send ``message`` from ``src`` to ``dst`` (asynchronously).

        Local deliveries (``src == dst``) are free and immediate-but-
        asynchronous: they are delivered at the current time so handlers
        never re-enter each other, and they do not count as network
        traffic.
        """
        raise NotImplementedError

    def send_tagged(
        self,
        src: NodeId,
        dst: NodeId,
        message: Message,
        msg_id: int,
        stamp: Optional[int] = None,
    ) -> None:
        """Send ``message`` carrying the reliability header ``msg_id``.

        The tag is a header field like ``broadcast_id`` on flooded
        messages — covered by the message's fixed wire size, so traffic
        accounting is unchanged.  Delivery routes through the attached
        :class:`~repro.net.reliability.ReliabilityLayer` for ack + dedup.

        ``stamp`` is the incarnation stamp the reliability layer captured
        at the *original* send, so retransmitted copies keep addressing
        the incarnation the sender was talking to — and get rejected once
        it is gone.
        """
        raise NotImplementedError

    def send_ack(self, src: NodeId, dst: NodeId, message: Message, msg_id: int) -> None:
        """Send the reliability ack ``message`` for ``msg_id`` back to the
        original sender ``dst``.

        Acks bypass the handler registry on arrival: they settle the
        sender-side pending entry directly (via
        ``reliability._on_ack`` / ``_on_ack_stamped``), stamped with the
        sender's incarnation when stamping is active so a reborn sender
        never consumes an ack addressed to its past.
        """
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Endpoint registry
    # ------------------------------------------------------------------
    def register(self, node_id: NodeId, handler: Handler) -> None:
        """Attach ``handler`` as the receive callback of ``node_id``."""
        if node_id in self._handlers:
            raise ConfigurationError(f"node {node_id} already registered")
        self._handlers[node_id] = handler
        self._known.add(node_id)

    def unregister(self, node_id: NodeId) -> None:
        """Detach a node; in-flight messages to it will be dropped."""
        self._handlers.pop(node_id, None)
        if self.reliability is not None:
            self.reliability.forget(node_id)

    def is_registered(self, node_id: NodeId) -> bool:
        """Whether ``node_id`` currently has a receive handler attached."""
        return node_id in self._handlers

    # ------------------------------------------------------------------
    # Incarnation stamping
    # ------------------------------------------------------------------
    def enable_incarnations(self) -> None:
        """Turn on incarnation stamping for every subsequent send.

        Crash-restart experiments call this *before* the run starts, so
        that messages already in flight when the first node crashes carry
        a stamp and can be rejected on arrival at the reborn node.
        """
        if self._incarnations is None:
            from ..grid.state import IncarnationSlab

            self._incarnations = IncarnationSlab()

    def bump_incarnation(self, node_id: NodeId) -> int:
        """Advance ``node_id`` to a fresh incarnation and return it.

        Enables stamping if it was off (a restart without prior stamping
        still wants future staleness checks, though messages sent before
        this point are unstamped and pass through).
        """
        if self._incarnations is None:
            self.enable_incarnations()
        value = self._incarnations.get(node_id, 0) + 1
        self._incarnations[node_id] = value
        return value

    def set_incarnation(self, node_id: NodeId, value: int) -> None:
        """Pin ``node_id``'s current incarnation (enabling stamping).

        Two callers: a process worker that recovered its incarnation
        counter from a :class:`~repro.core.journal.DurableJournal` at
        boot, and live discovery when a peer's agent card advertises a
        fresher incarnation than the local slab knows.  Only moves the
        counter forward — a stale card can never roll a node back to a
        dead incarnation.
        """
        if self._incarnations is None:
            self.enable_incarnations()
        value = int(value)
        if value > self._incarnations.get(node_id, 0):
            self._incarnations[node_id] = value

    def incarnation_stamp(self, dst: NodeId) -> Optional[int]:
        """The stamp a message to ``dst`` would carry right now
        (``None`` while stamping is disabled)."""
        incarnations = self._incarnations
        if incarnations is None:
            return None
        return incarnations.get(dst, 0)

    # ------------------------------------------------------------------
    # Counters
    # ------------------------------------------------------------------
    @property
    def dropped_detached(self) -> int:
        """In-flight messages dropped because the destination detached."""
        return self._dropped_detached.value

    @property
    def dropped_unknown(self) -> int:
        """Messages addressed to a node that was never registered."""
        return self._dropped_unknown.value

    @property
    def lost(self) -> int:
        """Messages lost to the datagram network itself."""
        return self._lost.value

    @property
    def dropped(self) -> int:
        """Total messages dropped on delivery (detached + unknown)."""
        return self._dropped_detached.value + self._dropped_unknown.value

    @property
    def dropped_stale(self) -> int:
        """Messages dropped because they were addressed to an incarnation
        that died before they arrived."""
        return self._dropped_stale.value

    def network_counters(self) -> Dict[str, int]:
        """Transport + reliability + fault counters for run summaries.

        ``dropped_stale`` is always present next to ``dropped_detached``
        and ``dropped_unknown`` — the three delivery-drop counters travel
        together, whichever backend produced them.
        """
        counters = {
            "lost": self.lost,
            "dropped_detached": self.dropped_detached,
            "dropped_unknown": self.dropped_unknown,
            "dropped_stale": self.dropped_stale,
        }
        if self.reliability is not None:
            counters.update(self.reliability.counters())
        if self.faults is not None:
            counters.update(self.faults.counters())
        return counters

    # ------------------------------------------------------------------
    # Shared send-side preamble (the single choke point)
    # ------------------------------------------------------------------
    def _account(self, src: NodeId, dst: NodeId, message: Message) -> bool:
        """Traffic-account one non-local message and judge link loss.

        Every outbound message of every backend funnels through here
        exactly once: wire-size accounting, the ``msg.sent`` trace event,
        and the Bernoulli loss draw.  Returns ``False`` when the message
        was lost (accounted as sent, never delivered).
        """
        cls = message.__class__
        name = cls.__name__
        monitor = self.monitor
        by_bytes = monitor.bytes_by_type
        by_bytes[name] = by_bytes.get(name, 0) + cls.SIZE_BYTES
        by_count = monitor.count_by_type
        by_count[name] = by_count.get(name, 0) + 1
        if self._trace is not None:
            self._emit_msg("msg.sent", message, src=src, dst=dst)
            self._trace_send(src, dst, message)
        if (
            self.loss_probability
            and self._loss_rng.random() < self.loss_probability
        ):
            self._lost.inc()  # sent (and accounted) but never delivered
            if self._trace is not None:
                self._emit_msg(
                    "msg.lost", message, src=src, dst=dst, reason="loss"
                )
            return False
        return True

    def _emit_msg(self, event: str, message: Message, **fields) -> None:
        """Record one message event, annotated with its job when known."""
        job = message_job_id(message)
        if job is not None:
            fields["job"] = job
        self._trace.emit(
            event, self.clock.now, type=message.__class__.__name__, **fields
        )

    # ------------------------------------------------------------------
    # Causal tracing (active only while ``_trace`` is attached)
    # ------------------------------------------------------------------
    def _next_trace_ctx(self, job: Optional[int]) -> tuple:
        """The ``(trace_id, hop)`` context for one outbound message.

        Priority: continue the handler context (we are inside a traced
        delivery — the reply is hop N+1 of the same chain); else continue
        the job's last known chain (covers timer-driven sends like the
        ASSIGN fired when the accept window closes, or Done after
        execution); else start a fresh chain.  Trace ids come from a
        plain counter — never an RNG — so traced runs stay bit-identical
        to untraced ones.
        """
        ctx = self._trace_ctx
        if ctx is not None:
            ctx = (ctx[0], ctx[1] + 1)
        elif job is not None:
            prior = self._job_traces.get(job)
            if prior is not None:
                ctx = (prior[0], prior[1] + 1)
        if ctx is None:
            self._next_trace += 1
            ctx = (f"t{self._next_trace}", 0)
        if job is not None:
            job_traces = self._job_traces
            if len(job_traces) > 100_000:
                # Bound the continuation map on long soaks: dropping old
                # entries only starts fresh chains for ancient jobs.
                for stale in list(job_traces)[:50_000]:
                    del job_traces[stale]
            job_traces[job] = ctx
        return ctx

    def _trace_send(self, src: NodeId, dst: NodeId, message: Message) -> None:
        """Stamp one outbound message with its causal context.

        Called from :meth:`_account`'s traced branch only; the backend
        reads :attr:`_last_send_ctx` back immediately to attach the
        context to the scheduled delivery (sim) or wire envelope (live).
        """
        job = message_job_id(message)
        ctx = self._next_trace_ctx(job)
        now = self.clock.now
        self._last_send_ctx = (ctx[0], ctx[1], now)
        fields = {"trace": ctx[0], "hop": ctx[1]}
        if job is not None:
            fields["job"] = job
        self._trace.emit(
            "net.send",
            now,
            src=src,
            dst=dst,
            type=message.__class__.__name__,
            **fields,
        )

    def _traced_dispatch(
        self,
        ctx: tuple,
        sent_at: float,
        src: NodeId,
        dst: NodeId,
        message: Message,
        callback: Callable,
        args: tuple,
    ) -> None:
        """Deliver one traced message: emit ``net.recv``, observe the hop
        latency, and run the delivery callback under the restored causal
        context so every send it triggers continues the chain."""
        trace = self._trace
        if trace is None:
            callback(*args)
            return
        now = self.clock.now
        latency = now - sent_at
        histogram = self._hop_latency
        if histogram is None:
            histogram = self._hop_latency = self.registry.histogram(
                "net.hop_latency",
                buckets=(0.05, 0.2, 1.0, 5.0, 30.0, 120.0, 600.0),
            )
        histogram.observe(latency)
        job = message_job_id(message)
        fields = {"trace": ctx[0], "hop": ctx[1], "latency": latency}
        if job is not None:
            fields["job"] = job
            self._job_traces[job] = ctx
        trace.emit(
            "net.recv",
            now,
            src=src,
            dst=dst,
            type=message.__class__.__name__,
            **fields,
        )
        self._trace_ctx = ctx
        try:
            callback(*args)
        finally:
            self._trace_ctx = None

    # ------------------------------------------------------------------
    # Shared delivery-side bookkeeping
    # ------------------------------------------------------------------
    def _drop(self, dst: NodeId, message: Message) -> None:
        if dst in self._known:
            self._dropped_detached.inc()
            reason = "detached"
        else:
            self._dropped_unknown.inc()
            reason = "unknown"
        if self._trace is not None:
            self._emit_msg("msg.dropped", message, dst=dst, reason=reason)

    def _deliver(self, src: NodeId, dst: NodeId, message: Message) -> None:
        handler = self._handlers.get(dst)
        if handler is None:
            self._drop(dst, message)
            return
        if self._trace is not None:
            self._emit_msg("msg.delivered", message, src=src, dst=dst)
        handler(src, message)

    def _deliver_tagged(
        self, src: NodeId, dst: NodeId, message: Message, msg_id: int
    ) -> None:
        handler = self._handlers.get(dst)
        if handler is None:
            self._drop(dst, message)
            return
        if self._trace is not None:
            self._emit_msg("msg.delivered", message, src=src, dst=dst)
        reliability = self.reliability
        if reliability is None or reliability.accept(src, dst, msg_id):
            handler(src, message)

    def _stale(self, dst: NodeId, message: Message) -> None:
        """Reject a delivery addressed to a dead incarnation of ``dst``."""
        self._dropped_stale.inc()
        if self._trace is not None:
            self._emit_msg(
                "msg.dropped", message, dst=dst, reason="stale_incarnation"
            )

    def _deliver_stamped(
        self, src: NodeId, dst: NodeId, message: Message, stamp: int
    ) -> None:
        if self._incarnations.get(dst, 0) != stamp:
            self._stale(dst, message)
            return
        self._deliver(src, dst, message)

    def _deliver_tagged_stamped(
        self,
        src: NodeId,
        dst: NodeId,
        message: Message,
        msg_id: int,
        stamp: int,
    ) -> None:
        if self._incarnations.get(dst, 0) != stamp:
            self._stale(dst, message)
            return
        self._deliver_tagged(src, dst, message, msg_id)


class SimTransport(Transport):
    """Delivers messages between registered nodes with simulated latency."""

    __slots__ = ("_sim", "_latency", "_rng")

    def __init__(
        self,
        sim,
        latency: Optional[LatencyModel] = None,
        monitor: Optional[TrafficMonitor] = None,
        loss_probability: float = 0.0,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        super().__init__(
            sim,
            monitor=monitor,
            loss_probability=loss_probability,
            registry=registry,
        )
        self._sim = sim
        self._latency = latency if latency is not None else PairwiseLogNormalLatency()
        self._rng = sim.streams.get("net.latency")

    @property
    def latency(self) -> LatencyModel:
        """The latency model; assignable, e.g. to wrap it in a
        :class:`~repro.net.latency.SpikeLatency` decorator."""
        return self._latency

    @latency.setter
    def latency(self, model: LatencyModel) -> None:
        self._latency = model

    def send(self, src: NodeId, dst: NodeId, message: Message) -> None:
        incarnations = self._incarnations
        if incarnations is not None:
            self._post(
                src,
                dst,
                message,
                self._deliver_stamped,
                (src, dst, message, incarnations.get(dst, 0)),
            )
            return
        self._post(src, dst, message, self._deliver, (src, dst, message))

    def send_tagged(
        self,
        src: NodeId,
        dst: NodeId,
        message: Message,
        msg_id: int,
        stamp: Optional[int] = None,
    ) -> None:
        if stamp is None:
            self._post(
                src,
                dst,
                message,
                self._deliver_tagged,
                (src, dst, message, msg_id),
            )
        else:
            self._post(
                src,
                dst,
                message,
                self._deliver_tagged_stamped,
                (src, dst, message, msg_id, stamp),
            )

    def send_ack(self, src: NodeId, dst: NodeId, message: Message, msg_id: int) -> None:
        reliability = self.reliability
        stamp = self.incarnation_stamp(dst)
        if stamp is None:
            self._post(src, dst, message, reliability._on_ack, (msg_id,))
        else:
            # Stamp the ack with the *sender's* current incarnation: if
            # the sender restarts before the ack lands, the ack is stale
            # by definition (the pending entry died with the crash) and
            # must not be interpreted by the reborn sender.
            self._post(
                src,
                dst,
                message,
                reliability._on_ack_stamped,
                (msg_id, dst, stamp),
            )

    def _post(
        self,
        src: NodeId,
        dst: NodeId,
        message: Message,
        callback: Callable,
        args: tuple,
    ) -> None:
        """Route one message to an arbitrary delivery callback.

        The event-queue pushes are inlined (one send per delivered message
        makes the method-call overhead of ``EventQueue.push`` measurable);
        accounting and loss go through the shared :meth:`_account` choke
        point.  Delays from latency models are never negative, so a push
        at ``now + delay`` can never land in the past.
        """
        sim = self._sim
        queue = sim._queue
        if src == dst:
            entry = [sim._now, 0, queue._seq, callback, args]
            queue._seq += 1
            heappush(queue._heap, entry)
            queue._live += 1
            return
        if not self._account(src, dst, message):
            return
        if self._trace is not None:
            # Wrap the delivery so the receive side emits ``net.recv``
            # and restores the causal context; the entry keeps the same
            # (time, seq) ordering, so traced runs replay identically.
            tid, hop, sent_at = self._last_send_ctx
            args = ((tid, hop), sent_at, src, dst, message, callback, args)
            callback = self._traced_dispatch
        if self.faults is not None:
            self._cast(src, dst, callback, args, message)
            return
        delay = self._latency.sample(src, dst, self._rng)
        entry = [sim._now + delay, 0, queue._seq, callback, args]
        queue._seq += 1
        heappush(queue._heap, entry)
        queue._live += 1

    def _cast(
        self,
        src: NodeId,
        dst: NodeId,
        callback: Callable,
        args: tuple,
        message: Message,
    ) -> None:
        """Fault-model path: judge the message, then schedule each
        surviving copy after its own latency draw."""
        copies = self.faults.judge(src, dst)
        if not copies:
            self._lost.inc()
            if self._trace is not None:
                self._emit_msg(
                    "msg.lost", message, src=src, dst=dst, reason="fault"
                )
            return
        if copies > 1 and self._trace is not None:
            self._emit_msg("msg.duplicated", message, src=src, dst=dst)
        sim = self._sim
        queue = sim._queue
        for _ in range(copies):
            delay = self._latency.sample(src, dst, self._rng)
            entry = [sim._now + delay, 0, queue._seq, callback, args]
            queue._seq += 1
            heappush(queue._heap, entry)
            queue._live += 1
