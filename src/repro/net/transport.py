"""Point-to-point message transport over the simulated network.

Nodes register a receive handler under their :class:`~repro.types.NodeId`;
:meth:`Transport.send` delivers a payload after a latency drawn from the
configured :class:`~repro.net.latency.LatencyModel`, and accounts its wire
size in the :class:`~repro.net.traffic.TrafficMonitor`.

Messages to unregistered (departed / crashed) nodes are counted as sent but
silently dropped on delivery, mirroring a real datagram overlay.
"""

from __future__ import annotations

from heapq import heappush
from typing import Callable, Dict, Optional

from ..errors import ConfigurationError
from ..sim import Simulator
from ..types import NodeId
from .latency import LatencyModel, PairwiseLogNormalLatency
from .message import Message
from .traffic import TrafficMonitor

__all__ = ["Transport"]

#: Signature of a node's message handler: ``handler(src, message)``.
Handler = Callable[[NodeId, Message], None]


class Transport:
    """Delivers messages between registered nodes with simulated latency."""

    __slots__ = (
        "_sim",
        "_latency",
        "monitor",
        "_handlers",
        "_rng",
        "_loss_rng",
        "loss_probability",
        "dropped",
        "lost",
    )

    def __init__(
        self,
        sim: Simulator,
        latency: Optional[LatencyModel] = None,
        monitor: Optional[TrafficMonitor] = None,
        loss_probability: float = 0.0,
    ) -> None:
        if not 0.0 <= loss_probability < 1.0:
            raise ConfigurationError(
                f"loss_probability {loss_probability} out of [0, 1)"
            )
        self._sim = sim
        self._latency = latency if latency is not None else PairwiseLogNormalLatency()
        self.monitor = monitor if monitor is not None else TrafficMonitor()
        self._handlers: Dict[NodeId, Handler] = {}
        self._rng = sim.streams.get("net.latency")
        self._loss_rng = sim.streams.get("net.loss")
        self.loss_probability = loss_probability
        #: Messages dropped because the destination was not registered.
        self.dropped = 0
        #: Messages lost to the datagram network itself.
        self.lost = 0

    def register(self, node_id: NodeId, handler: Handler) -> None:
        """Attach ``handler`` as the receive callback of ``node_id``."""
        if node_id in self._handlers:
            raise ConfigurationError(f"node {node_id} already registered")
        self._handlers[node_id] = handler

    def unregister(self, node_id: NodeId) -> None:
        """Detach a node; in-flight messages to it will be dropped."""
        self._handlers.pop(node_id, None)

    def is_registered(self, node_id: NodeId) -> bool:
        """Whether ``node_id`` currently has a receive handler attached."""
        return node_id in self._handlers

    def send(self, src: NodeId, dst: NodeId, message: Message) -> None:
        """Send ``message`` from ``src`` to ``dst`` (asynchronously).

        Local deliveries (``src == dst``) are free and immediate-but-
        asynchronous: they are scheduled at the current time so handlers
        never re-enter each other, and they do not count as network traffic.
        """
        # Hot path: the event-queue push and the traffic accounting are
        # inlined (one send per delivered message makes the method-call
        # overhead of EventQueue.push / TrafficMonitor.record measurable).
        # Delays from latency models are never negative, so a push at
        # ``now + delay`` can never land in the past.
        sim = self._sim
        queue = sim._queue
        if src == dst:
            entry = [sim._now, 0, queue._seq, self._deliver, (src, dst, message)]
            queue._seq += 1
            heappush(queue._heap, entry)
            queue._live += 1
            return
        cls = message.__class__
        name = cls.__name__
        monitor = self.monitor
        by_bytes = monitor.bytes_by_type
        by_bytes[name] = by_bytes.get(name, 0) + cls.SIZE_BYTES
        by_count = monitor.count_by_type
        by_count[name] = by_count.get(name, 0) + 1
        if (
            self.loss_probability
            and self._loss_rng.random() < self.loss_probability
        ):
            self.lost += 1  # sent (and accounted) but never delivered
            return
        delay = self._latency.sample(src, dst, self._rng)
        entry = [
            sim._now + delay, 0, queue._seq, self._deliver, (src, dst, message)
        ]
        queue._seq += 1
        heappush(queue._heap, entry)
        queue._live += 1

    def _deliver(self, src: NodeId, dst: NodeId, message: Message) -> None:
        handler = self._handlers.get(dst)
        if handler is None:
            self.dropped += 1
            return
        handler(src, message)
