"""Composable network-fault models beyond uniform message loss.

The transport's built-in ``loss_probability`` models independent (i.i.d.)
datagram loss.  Real wide-area networks misbehave in richer ways, and the
chaos experiments need all of them at once:

* **Loss bursts** — a Gilbert–Elliott-style two-state chain: messages are
  judged in a *good* state (i.i.d. loss at ``loss``) or a *bad* state
  (loss at ``burst_loss``); the chain enters the bad state with
  probability ``burst_enter`` per judged message and leaves it with
  ``burst_exit``, so bursts last ``1 / burst_exit`` messages on average.
* **Duplication** — with probability ``duplicate`` a delivered message is
  delivered twice, each copy after its own latency draw (reordering of
  the copies falls out naturally).
* **Overlay partitions with heal** — during each ``(start, end)`` window
  the node set splits in two (each node falls on the minority side with
  probability ``partition_fraction``); messages crossing the cut are
  dropped, messages within a side flow normally, and the cut heals the
  instant the window ends.

Delay spikes are modelled separately as a latency decorator
(:class:`~repro.net.latency.SpikeLatency`) so they compose with any base
latency model.

A :class:`FaultInjector` is attached to a transport via
``transport.faults = injector``; the transport consults it once per
non-local message.  All randomness comes from the dedicated
``"net.faults"`` stream, so attaching an injector never perturbs the
draws of an otherwise identical fault-free run.

The injector is clock-generic: it only needs ``clock.now`` (protocol
seconds, for partition windows) and ``clock.streams`` (the seeded RNG),
so the same model judges messages on the discrete-event
:class:`~repro.sim.Simulator` and on the live runtime's
:class:`~repro.runtime.WallClock` — chaos plans written for the
simulator shape the real wire unchanged.
"""

from __future__ import annotations

import random
from typing import Dict, Optional, Tuple

from ..clock import Clock
from ..types import NodeId

__all__ = ["FaultInjector"]


class FaultInjector:
    """Stateful fault model consulted by the transport per message.

    ``plan`` is any object exposing the :class:`FaultPlan
    <repro.experiments.faults.FaultPlan>` fields (``loss``, ``duplicate``,
    ``burst_enter``, ``burst_exit``, ``burst_loss``, ``partitions``,
    ``partition_fraction``); the injector copies the scalars so the plan
    itself stays frozen and picklable.  ``clock`` is any
    :class:`~repro.clock.Clock` (simulator or wall clock).
    """

    __slots__ = (
        "_clock",
        "_rng",
        "loss",
        "duplicate",
        "burst_enter",
        "burst_exit",
        "burst_loss",
        "partition_fraction",
        "_windows",
        "_side",
        "_bad",
        "iid_lost",
        "burst_lost",
        "partition_dropped",
        "duplicated",
    )

    def __init__(
        self,
        clock: Clock,
        plan,
        rng: Optional[random.Random] = None,
    ) -> None:
        self._clock = clock
        self._rng = rng if rng is not None else clock.streams.get("net.faults")
        self.loss = plan.loss
        self.duplicate = plan.duplicate
        self.burst_enter = plan.burst_enter
        self.burst_exit = plan.burst_exit
        self.burst_loss = plan.burst_loss
        self.partition_fraction = plan.partition_fraction
        self._windows: Tuple[Tuple[float, float], ...] = tuple(
            (float(start), float(end)) for start, end in plan.partitions
        )
        #: Lazily drawn partition side per node: ``True`` = minority group.
        #: Sides are fixed for the whole run so every window cuts the same
        #: way (a node cannot observably "move" between data centres).
        self._side: Dict[NodeId, bool] = {}
        self._bad = False
        self.iid_lost = 0
        self.burst_lost = 0
        self.partition_dropped = 0
        self.duplicated = 0

    # ------------------------------------------------------------------
    # Partition membership
    # ------------------------------------------------------------------
    def _side_of(self, node: NodeId) -> bool:
        side = self._side.get(node)
        if side is None:
            side = self._rng.random() < self.partition_fraction
            self._side[node] = side
        return side

    def partitioned(self, src: NodeId, dst: NodeId) -> bool:
        """Whether a partition window currently separates ``src``/``dst``."""
        if not self._windows:
            return False
        now = self._clock.now
        for start, end in self._windows:
            if start <= now < end:
                return self._side_of(src) != self._side_of(dst)
        return False

    # ------------------------------------------------------------------
    # The per-message verdict
    # ------------------------------------------------------------------
    def judge(self, src: NodeId, dst: NodeId) -> int:
        """Number of copies of this message to deliver (0 = lost).

        Called by the transport once per accounted non-local message,
        after its own i.i.d. ``loss_probability`` check.
        """
        if self.partitioned(src, dst):
            self.partition_dropped += 1
            return 0
        rng = self._rng
        # Gilbert–Elliott: judge in the current state, then transition.
        if self._bad:
            lost = rng.random() < self.burst_loss
            if rng.random() < self.burst_exit:
                self._bad = False
            if lost:
                self.burst_lost += 1
                return 0
        else:
            lost = self.loss and rng.random() < self.loss
            if self.burst_enter and rng.random() < self.burst_enter:
                self._bad = True
            if lost:
                self.iid_lost += 1
                return 0
        if self.duplicate and rng.random() < self.duplicate:
            self.duplicated += 1
            return 2
        return 1

    def counters(self) -> Dict[str, int]:
        """Per-fault-model counters (for ``RunSummary.extras``)."""
        return {
            "fault_iid_lost": self.iid_lost,
            "fault_burst_lost": self.burst_lost,
            "fault_partition_dropped": self.partition_dropped,
            "fault_duplicated": self.duplicated,
        }
