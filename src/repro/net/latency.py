"""One-way latency models for the simulated wide-area network.

The paper only states that its simulator reproduces "realistic round-trip
delays" (§IV-A) without giving a distribution.  We provide three models:

* :class:`ConstantLatency` — fixed delay, handy for unit tests;
* :class:`UniformLatency` — uniform in a range;
* :class:`PairwiseLogNormalLatency` — the default for experiments: every
  (src, dst) pair gets a base one-way delay drawn once from a log-normal
  distribution (median ≈ 25 ms one-way, i.e. ≈ 50 ms RTT — typical of
  geographically dispersed grid sites), plus a small per-message jitter.
  Base delays are symmetric (same for both directions of a pair).
* :class:`SpikeLatency` — a decorator over any base model that adds rare,
  heavy delay spikes (queueing storms, route flaps); used by the fault
  experiments and composable with all of the above.

Latency is orders of magnitude smaller than job runtimes (hours), so the
precise shape does not drive the paper's results; what matters is that
protocol phases take realistic, nonzero, heterogeneous time.
"""

from __future__ import annotations

import math
import random
from typing import Dict, Tuple

from ..errors import ConfigurationError
from ..types import NodeId

__all__ = [
    "LatencyModel",
    "ConstantLatency",
    "UniformLatency",
    "PairwiseLogNormalLatency",
    "SpikeLatency",
]


class LatencyModel:
    """Interface: sample a one-way delay in seconds for a (src, dst) pair."""

    __slots__ = ()

    def sample(self, src: NodeId, dst: NodeId, rng: random.Random) -> float:
        """One-way delay in seconds for a message ``src`` -> ``dst``."""
        raise NotImplementedError


class ConstantLatency(LatencyModel):
    """Every message takes exactly ``delay`` seconds."""

    __slots__ = ("delay",)

    def __init__(self, delay: float = 0.025) -> None:
        if delay < 0:
            raise ConfigurationError(f"negative latency {delay!r}")
        self.delay = delay

    def sample(self, src: NodeId, dst: NodeId, rng: random.Random) -> float:
        """The fixed delay, regardless of the pair."""
        return self.delay


class UniformLatency(LatencyModel):
    """Delay drawn uniformly from ``[low, high]`` for every message."""

    __slots__ = ("low", "high")

    def __init__(self, low: float = 0.01, high: float = 0.05) -> None:
        if not 0 <= low <= high:
            raise ConfigurationError(f"invalid latency range [{low}, {high}]")
        self.low = low
        self.high = high

    def sample(self, src: NodeId, dst: NodeId, rng: random.Random) -> float:
        """A fresh uniform draw per message."""
        return rng.uniform(self.low, self.high)


class PairwiseLogNormalLatency(LatencyModel):
    """Log-normal per-pair base delay plus uniform per-message jitter.

    Parameters
    ----------
    median:
        Median one-way base delay in seconds (default 25 ms).
    sigma:
        Shape parameter of the log-normal (default 0.5, giving a long but
        not extreme tail; ~95 % of pairs fall within [9 ms, 66 ms]).
    jitter:
        Per-message jitter, uniform in ``[0, jitter]`` seconds.
    max_pairs:
        FIFO cap on the per-pair base-delay cache.  The default (10^6
        pairs) is far above what any grid up to the paper's 500 nodes can
        populate (125k symmetric pairs), so eviction never occurs there
        and seeded runs are unchanged; at 10^4-10^5 nodes the pair space
        is quadratic and an unbounded cache would dominate peak memory.
        An evicted pair that communicates again simply draws a fresh base
        delay — still deterministic, and statistically indistinguishable
        since pairs are i.i.d.
    """

    __slots__ = ("mu", "sigma", "jitter", "max_pairs", "_base")

    def __init__(
        self,
        median: float = 0.025,
        sigma: float = 0.5,
        jitter: float = 0.005,
        max_pairs: int = 1_000_000,
    ) -> None:
        if median <= 0 or sigma < 0 or jitter < 0:
            raise ConfigurationError(
                f"invalid log-normal parameters median={median} sigma={sigma} "
                f"jitter={jitter}"
            )
        if max_pairs < 1:
            raise ConfigurationError(f"max_pairs must be >= 1, got {max_pairs}")
        self.mu = math.log(median)
        self.sigma = sigma
        self.jitter = jitter
        self.max_pairs = max_pairs
        self._base: Dict[Tuple[NodeId, NodeId], float] = {}

    def _base_delay(self, src: NodeId, dst: NodeId, rng: random.Random) -> float:
        key = (src, dst) if src <= dst else (dst, src)
        base = self._base.get(key)
        if base is None:
            base = rng.lognormvariate(self.mu, self.sigma)
            if len(self._base) >= self.max_pairs:
                del self._base[next(iter(self._base))]
            self._base[key] = base
        return base

    def sample(self, src: NodeId, dst: NodeId, rng: random.Random) -> float:
        """The pair's cached base delay plus per-message jitter."""
        # _base_delay inlined: this runs once per delivered message.
        key = (src, dst) if src <= dst else (dst, src)
        cache = self._base
        base = cache.get(key)
        if base is None:
            base = rng.lognormvariate(self.mu, self.sigma)
            if len(cache) >= self.max_pairs:
                del cache[next(iter(cache))]
            cache[key] = base
        jitter = self.jitter
        if jitter:
            return base + rng.uniform(0.0, jitter)
        return base


class SpikeLatency(LatencyModel):
    """Adds rare, heavy delay spikes on top of any base latency model.

    With probability ``probability`` per message an exponentially
    distributed extra delay with mean ``mean`` seconds is added to the
    base sample — modelling transient queueing storms and route flaps
    whose delays dwarf the usual milliseconds and can reorder messages
    across seconds.  Decorating the transport's model (``transport.latency
    = SpikeLatency(transport.latency, ...)``) composes with every base
    distribution.
    """

    __slots__ = ("base", "probability", "mean")

    def __init__(
        self, base: LatencyModel, probability: float, mean: float
    ) -> None:
        if not 0.0 <= probability < 1.0:
            raise ConfigurationError(
                f"spike probability {probability} out of [0, 1)"
            )
        if mean <= 0:
            raise ConfigurationError(f"non-positive spike mean {mean!r}")
        self.base = base
        self.probability = probability
        self.mean = mean

    def sample(self, src: NodeId, dst: NodeId, rng: random.Random) -> float:
        """Base delay, plus an exponential spike with the configured odds."""
        delay = self.base.sample(src, dst, rng)
        if rng.random() < self.probability:
            delay += rng.expovariate(1.0 / self.mean)
        return delay
