"""Shared primitive types and time constants.

All simulated time in this package is expressed as a ``float`` number of
seconds.  The paper describes durations in hours and minutes (e.g. jobs with
an estimated running time of 2 h 30 m); the constants below keep scenario
definitions readable.
"""

from __future__ import annotations

from typing import NewType

#: One simulated second (the base unit).
SECOND: float = 1.0
#: One simulated minute.
MINUTE: float = 60.0
#: One simulated hour.
HOUR: float = 3600.0

#: Identifier of a grid node (also its overlay address).
NodeId = NewType("NodeId", int)

#: Universal unique identifier of a job.  The paper assigns every job a UUID
#: for univocal tracking across the grid; a monotonically increasing integer
#: provides the same guarantee inside one simulation while staying cheap and
#: deterministic.
JobId = NewType("JobId", int)


def format_duration(seconds: float) -> str:
    """Render a duration the way the paper writes them, e.g. ``2h30m``.

    >>> format_duration(9000)
    '2h30m'
    >>> format_duration(45)
    '45s'
    """
    if seconds < 0:
        return "-" + format_duration(-seconds)
    total = int(round(seconds))
    hours, rem = divmod(total, 3600)
    minutes, secs = divmod(rem, 60)
    if hours and minutes:
        return f"{hours}h{minutes:02d}m"
    if hours:
        return f"{hours}h"
    if minutes and secs:
        return f"{minutes}m{secs:02d}s"
    if minutes:
        return f"{minutes}m"
    return f"{secs}s"
