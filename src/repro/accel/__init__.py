"""Optional numpy acceleration for the simulator's hot numeric kernels.

The package declares ``dependencies = []`` — numpy is strictly optional.
Every kernel here has a pure-Python fallback, and the vectorized paths are
**bit-identical** to the fallback: they perform the same IEEE-754 operations
in the same order, so golden summaries do not move when numpy appears or
disappears.

That constraint shapes what may be vectorized:

* ``numpy.add.accumulate`` on a 1-D float64 array is a sequential left fold
  (`out[k] = out[k-1] + a[k]`), exactly matching a Python ``for`` loop —
  safe for prefix sums of queue service times.
* ``numpy.sum`` / ``numpy.add.reduce`` use *pairwise* summation with a
  different rounding path — **never** used here.
* Elementwise add/sub/compare round each lane independently, identical to
  the scalar ops — safe for slack (`deadline - etc`) vectors.

Control knob: the ``ARIA_ACCEL`` environment variable — ``auto`` (default:
use numpy when importable), ``off`` (always pure Python), ``on`` (require
numpy; raises at import of the fast path if missing).  Short sequences stay
on the Python path regardless: below :data:`MIN_VECTOR_LEN` elements the
array-conversion overhead dwarfs the vector win.
"""

from __future__ import annotations

import os
from typing import List, Optional, Sequence

__all__ = [
    "HAS_NUMPY",
    "MIN_VECTOR_LEN",
    "accel_enabled",
    "prefix_fold",
    "completion_etcs",
    "slack_values",
]

try:  # pragma: no cover - exercised implicitly by every import
    import numpy as _np

    HAS_NUMPY = True
except Exception:  # pragma: no cover - numpy genuinely absent
    _np = None  # type: ignore[assignment]
    HAS_NUMPY = False

#: Sequences shorter than this always use the pure-Python fold: list ->
#: ndarray -> list conversion costs more than it saves.  The two paths are
#: bit-identical, so the threshold is a pure performance knob.
MIN_VECTOR_LEN = 64

def _resolve_enabled() -> bool:
    """Resolve the ``ARIA_ACCEL`` gate against numpy availability."""
    from ..errors import ConfigurationError

    mode = os.environ.get("ARIA_ACCEL", "auto").strip().lower()
    if mode not in ("auto", "on", "off"):
        raise ConfigurationError(
            f"ARIA_ACCEL={mode!r}: expected 'auto', 'on' or 'off'"
        )
    if mode == "on" and not HAS_NUMPY:
        raise ConfigurationError("ARIA_ACCEL=on but numpy is not importable")
    return HAS_NUMPY and mode != "off"


_ENABLED = _resolve_enabled()


def accel_enabled() -> bool:
    """Whether the numpy fast paths are active in this process."""
    return _ENABLED


def _set_enabled(value: Optional[bool]) -> None:
    """Test hook: force the fast path on/off; ``None`` restores the
    environment-resolved default (must have numpy for ``on``)."""
    global _ENABLED
    if value is None:
        _ENABLED = _resolve_enabled()
        return
    if value and not HAS_NUMPY:
        raise RuntimeError("cannot enable accel without numpy")
    _ENABLED = bool(value)


# ----------------------------------------------------------------------
# Kernels
# ----------------------------------------------------------------------
def prefix_fold(values: Sequence[float], base: float) -> List[float]:
    """Left-fold prefix sums: ``[base + v0, base + v0 + v1, ...]``.

    Matches the scalar loop ``acc += v`` bit-for-bit (numpy's
    ``add.accumulate`` is a sequential fold, not pairwise).
    """
    if _ENABLED and len(values) >= MIN_VECTOR_LEN:
        arr = _np.asarray(values, dtype=_np.float64).copy()
        arr[0] = base + float(arr[0])
        return _np.add.accumulate(arr).tolist()
    out: List[float] = []
    acc = base
    for value in values:
        acc += value
        out.append(acc)
    return out


def completion_etcs(
    ertps: Sequence[float], now: float, running_remaining: float
) -> List[float]:
    """Absolute completion times ``now + (running_remaining ⊕ ertps fold)``.

    Bit-identical to::

        elapsed = running_remaining
        for e in ertps:
            elapsed += e
            out.append(now + elapsed)
    """
    if _ENABLED and len(ertps) >= MIN_VECTOR_LEN:
        arr = _np.asarray(ertps, dtype=_np.float64).copy()
        arr[0] = running_remaining + float(arr[0])
        acc = _np.add.accumulate(arr)
        # IEEE-754 addition is commutative: now + x == x + now per lane.
        return (acc + now).tolist()
    out: List[float] = []
    elapsed = running_remaining
    for ertp in ertps:
        elapsed += ertp
        out.append(now + elapsed)
    return out


def slack_values(
    deadlines: Sequence[float], etcs: Sequence[float]
) -> List[float]:
    """Elementwise ``deadline - etc`` (each lane rounds independently)."""
    if _ENABLED and len(deadlines) >= MIN_VECTOR_LEN:
        d = _np.asarray(deadlines, dtype=_np.float64)
        e = _np.asarray(etcs, dtype=_np.float64)
        return (d - e).tolist()
    return [d - e for d, e in zip(deadlines, etcs)]


def describe() -> str:
    """One-line status string for benchmarks and docs."""
    if not HAS_NUMPY:
        return "accel: numpy not installed (pure-Python fallback)"
    state = "enabled" if _ENABLED else "disabled"
    version: Optional[str] = getattr(_np, "__version__", None)
    mode = os.environ.get("ARIA_ACCEL", "auto").strip().lower()
    return f"accel: numpy {version} {state} (ARIA_ACCEL={mode})"
