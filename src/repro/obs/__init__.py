"""Observability layer: trace bus, metrics registry, timeline explainer.

``repro.obs`` is the cross-cutting layer the aggregate-only metrics
could not provide (see ``docs/OBSERVABILITY.md``):

* :mod:`repro.obs.trace` — typed, schema-checked event tracing with
  pluggable sinks (JSONL, in-memory ring buffer, Chrome/Perfetto);
  configured per run via :class:`TraceConfig`, off by default;
* :mod:`repro.obs.metrics` — a uniform :class:`MetricsRegistry`
  (counters / gauges / histograms with labels) that the ad-hoc counters
  in ``GridMetrics``, ``Transport`` and the reliability layer live on,
  surfaced as ``RunSummary.telemetry``;
* :mod:`repro.obs.timeline` — :func:`explain_job` /
  :class:`JobTimeline`, reconstructing one job's full lifecycle from a
  trace (also the ``repro explain-job`` CLI);
* :mod:`repro.obs.exposition` — Prometheus text-format rendering of a
  registry (the live ``GET /metrics`` pages) and its parser;
* :mod:`repro.obs.collector` — :class:`TelemetryCollector`, the fleet
  scraper merging per-node pages into ``fleet.*`` series, plus the
  ``repro top`` dashboard renderer;
* :mod:`repro.obs.validate` — the importable trace-schema validator
  behind ``scripts/validate_trace.py``.
"""

from .collector import NodeSample, TelemetryCollector, render_dashboard
from .exposition import CONTENT_TYPE, parse_prometheus, render_prometheus
from .metrics import BoundedSeries, Counter, Gauge, Histogram, MetricsRegistry
from .timeline import JobTimeline, explain_job
from .trace import (
    EVENTS,
    LEVELS,
    JsonlSink,
    MemorySink,
    PerfettoSink,
    RotatingJsonlSink,
    TraceConfig,
    Tracer,
    iter_job_events,
    load_rotated_trace,
    load_trace,
    merge_perfetto_traces,
    message_job_id,
    rotated_trace_paths,
    validate_event,
)
from .validate import validate_trace_file

__all__ = [
    "BoundedSeries",
    "CONTENT_TYPE",
    "Counter",
    "EVENTS",
    "Gauge",
    "Histogram",
    "JobTimeline",
    "JsonlSink",
    "LEVELS",
    "MemorySink",
    "MetricsRegistry",
    "NodeSample",
    "PerfettoSink",
    "RotatingJsonlSink",
    "TelemetryCollector",
    "TraceConfig",
    "Tracer",
    "explain_job",
    "iter_job_events",
    "load_rotated_trace",
    "load_trace",
    "merge_perfetto_traces",
    "message_job_id",
    "parse_prometheus",
    "render_dashboard",
    "render_prometheus",
    "rotated_trace_paths",
    "validate_event",
    "validate_trace_file",
]
