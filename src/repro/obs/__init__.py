"""Observability layer: trace bus, metrics registry, timeline explainer.

``repro.obs`` is the cross-cutting layer the aggregate-only metrics
could not provide (see ``docs/OBSERVABILITY.md``):

* :mod:`repro.obs.trace` — typed, schema-checked event tracing with
  pluggable sinks (JSONL, in-memory ring buffer, Chrome/Perfetto);
  configured per run via :class:`TraceConfig`, off by default;
* :mod:`repro.obs.metrics` — a uniform :class:`MetricsRegistry`
  (counters / gauges / histograms with labels) that the ad-hoc counters
  in ``GridMetrics``, ``Transport`` and the reliability layer live on,
  surfaced as ``RunSummary.telemetry``;
* :mod:`repro.obs.timeline` — :func:`explain_job` /
  :class:`JobTimeline`, reconstructing one job's full lifecycle from a
  trace (also the ``repro explain-job`` CLI).
"""

from .metrics import BoundedSeries, Counter, Gauge, Histogram, MetricsRegistry
from .timeline import JobTimeline, explain_job
from .trace import (
    EVENTS,
    LEVELS,
    JsonlSink,
    MemorySink,
    PerfettoSink,
    RotatingJsonlSink,
    TraceConfig,
    Tracer,
    iter_job_events,
    load_trace,
    message_job_id,
    validate_event,
)

__all__ = [
    "BoundedSeries",
    "Counter",
    "EVENTS",
    "Gauge",
    "Histogram",
    "JobTimeline",
    "JsonlSink",
    "LEVELS",
    "MemorySink",
    "MetricsRegistry",
    "PerfettoSink",
    "RotatingJsonlSink",
    "TraceConfig",
    "Tracer",
    "explain_job",
    "iter_job_events",
    "load_trace",
    "message_job_id",
    "validate_event",
]
