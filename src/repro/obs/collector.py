"""Fleet telemetry collector: scrape per-node ``/metrics``, merge, watch.

One live overlay exposes N Prometheus pages — one per node endpoint
(:data:`~repro.runtime.transport.METRICS_PATH`).  The
:class:`TelemetryCollector` is the in-repo scraper that turns them into
*fleet* time series: on an interval it GETs every directory entry's
``/metrics``, parses each page (:func:`~repro.obs.exposition.parse_prometheus`),
and merges the per-node samples into ``fleet.*``
:class:`~repro.obs.metrics.BoundedSeries` on the run registry — completed
jobs, aggregate queue depth, tracked jobs, idle nodes, deadline misses,
network loss and how many nodes answered at all.

The merge rules mirror what the samples mean:

* per-node gauges (``aria_node_queue_depth{node="..."}`` and friends)
  are **summed** across the nodes that answered — they are disjoint
  per-node state;
* run-level counters (``aria_jobs_completed``, ``aria_net_lost``,
  ``aria_jobs_missed_deadlines``) are **maxed within a registry group
  and summed across groups** — every node of a single-process overlay
  serves the same shared registry (one group, plain max), while a
  process-isolated fleet has one registry per worker process, so the
  collector takes the max within each worker's nodes and sums the
  worker maxima (``group_of`` maps a node id to its group key; the
  default ``None`` keeps the old single-group behaviour);
* a node whose scrape fails (connection refused, timeout, unparseable
  page) contributes an ``up=False`` :class:`NodeSample` and bumps the
  ``fleet.scrape_failures`` counter — a *crashed node is a data point*,
  never a collector crash.

The scraping is a thin async wrapper (:meth:`TelemetryCollector.scrape`
/ :meth:`run`) around a synchronous core (:meth:`observe`) so the merge
logic is unit-testable without sockets.  :func:`render_dashboard` turns
the collector's state into the ``repro top`` terminal view: sparkline
fleet curves plus a per-node liveness table.
"""

from __future__ import annotations

import asyncio
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..types import NodeId
from .exposition import parse_prometheus
from .metrics import MetricsRegistry

__all__ = ["NodeSample", "TelemetryCollector", "render_dashboard", "sparkline"]

#: ``aria_node_*`` gauges summed across answering nodes per round.
_SUMMED = {
    "queue_depth": "fleet.queue_depth",
    "tracked_jobs": "fleet.tracked_jobs",
    "idle": "fleet.idle_nodes",
}

#: Run-level samples maxed across answering nodes per round.
_MAXED = {
    "aria_jobs_completed": "fleet.completed_jobs",
    "aria_jobs_missed_deadlines": "fleet.missed_deadlines",
    "aria_net_lost": "fleet.net_lost",
}


class NodeSample:
    """One node's scrape result: parsed samples, or a recorded failure."""

    __slots__ = ("node_id", "up", "samples", "error")

    def __init__(
        self,
        node_id: NodeId,
        up: bool,
        samples: Optional[Dict[str, float]] = None,
        error: str = "",
    ) -> None:
        self.node_id = node_id
        self.up = up
        self.samples = samples if samples is not None else {}
        self.error = error

    def own(self, gauge: str) -> Optional[float]:
        """This node's ``aria_node_<gauge>{node="<id>"}`` sample."""
        return self.samples.get(
            f'aria_node_{gauge}{{node="{self.node_id}"}}'
        )


class TelemetryCollector:
    """Scrape a fleet's ``/metrics`` pages into merged time series.

    ``targets`` is a callable returning the current ``{node_id: (host,
    port)}`` directory (live transports grow and shrink mid-run, so the
    collector re-reads it every round).  ``now`` supplies the series
    timestamps in protocol seconds.  Merged series land on ``registry``
    under ``fleet.*`` keys, bounded like every other series.
    """

    def __init__(
        self,
        registry: MetricsRegistry,
        targets: Callable[[], Dict[NodeId, Tuple[str, int]]],
        now: Callable[[], float],
        timeout: float = 2.0,
        max_points: int = 2048,
        group_of: Optional[Callable[[NodeId], Any]] = None,
    ) -> None:
        self.registry = registry
        self._targets = targets
        self._now = now
        self._timeout = timeout
        #: Node → metrics-registry group.  Nodes sharing a registry (one
        #: worker process) must be maxed together, distinct registries
        #: summed — ``None`` treats the whole fleet as one registry.
        self._group_of = group_of
        self._series = {
            name: registry.series(name, max_points=max_points)
            for name in (
                "fleet.nodes_up",
                "fleet.completed_jobs",
                "fleet.queue_depth",
                "fleet.tracked_jobs",
                "fleet.idle_nodes",
                "fleet.missed_deadlines",
                "fleet.net_lost",
            )
        }
        self._scrape_failures = registry.counter("fleet.scrape_failures")
        #: The most recent round's samples, newest first in display order.
        self.last_samples: List[NodeSample] = []
        self.rounds = 0

    # ------------------------------------------------------------------
    # Synchronous merge core (unit-testable without sockets)
    # ------------------------------------------------------------------
    def observe(self, t: float, samples: List[NodeSample]) -> None:
        """Merge one round of per-node samples into the fleet series."""
        merged: Dict[str, float] = {name: 0.0 for name in self._series}
        # Run-level counters: max within each registry group, then sum
        # the group maxima (see the module docstring's merge rules).
        counter_groups: Dict[str, Dict[Any, float]] = {
            series: {} for series in _MAXED.values()
        }
        for sample in samples:
            if not sample.up:
                self._scrape_failures.inc()
                continue
            merged["fleet.nodes_up"] += 1.0
            for gauge, series in _SUMMED.items():
                value = sample.own(gauge)
                if value is not None:
                    merged[series] += value
            group = (
                self._group_of(sample.node_id)
                if self._group_of is not None
                else None
            )
            for key, series in _MAXED.items():
                value = sample.samples.get(key)
                if value is not None:
                    groups = counter_groups[series]
                    if value > groups.get(group, 0.0):
                        groups[group] = value
        for series, groups in counter_groups.items():
            merged[series] = sum(groups.values())
        for name, series in self._series.items():
            series.record(t, merged[name])
        self.last_samples = sorted(samples, key=lambda s: s.node_id)
        self.rounds += 1

    def series_points(self) -> Dict[str, List[Tuple[float, float]]]:
        """The merged fleet series as ``{name: [(t, value), ...]}``."""
        return {
            name: list(series.points)
            for name, series in self._series.items()
        }

    @property
    def scrape_failures(self) -> int:
        """Scrape attempts that produced no parseable page."""
        return self._scrape_failures.value

    # ------------------------------------------------------------------
    # Async scrape wrapper
    # ------------------------------------------------------------------
    async def _scrape_node(
        self, node_id: NodeId, host: str, port: int
    ) -> NodeSample:
        from ..runtime.http import http_request  # avoid import cycle

        try:
            status, body = await http_request(
                host, port, "GET", "/metrics", timeout=self._timeout
            )
            if status != 200:
                return NodeSample(node_id, False, error=f"HTTP {status}")
            return NodeSample(
                node_id, True, parse_prometheus(body.decode("utf-8"))
            )
        except (ConnectionError, OSError, ValueError, asyncio.TimeoutError) as exc:
            return NodeSample(
                node_id, False, error=f"{exc.__class__.__name__}: {exc}"
            )

    async def scrape(self) -> List[NodeSample]:
        """Scrape every current target once and merge the round."""
        targets = dict(self._targets())
        samples = await asyncio.gather(
            *(
                self._scrape_node(node_id, host, port)
                for node_id, (host, port) in targets.items()
            )
        )
        samples = list(samples)
        self.observe(self._now(), samples)
        return samples

    async def run(
        self,
        interval: float,
        on_round: Optional[Callable[["TelemetryCollector"], Any]] = None,
    ) -> None:
        """Scrape forever on ``interval`` wall seconds (cancel to stop)."""
        while True:
            await self.scrape()
            if on_round is not None:
                on_round(self)
            await asyncio.sleep(interval)


#: Eight-level bar glyphs for terminal sparklines.
_SPARK = "▁▂▃▄▅▆▇█"


def sparkline(values: List[float], width: int = 32) -> str:
    """Render ``values`` (downsampled to ``width``) as a unicode sparkline."""
    if not values:
        return ""
    if len(values) > width:
        # Uniform downsample: last value of each of `width` chunks.
        step = len(values) / width
        values = [
            values[min(len(values) - 1, int((i + 1) * step) - 1)]
            for i in range(width)
        ]
    low = min(values)
    span = max(values) - low
    if span <= 0:
        return _SPARK[0] * len(values)
    return "".join(
        _SPARK[int((value - low) / span * (len(_SPARK) - 1))]
        for value in values
    )


def render_dashboard(
    collector: TelemetryCollector,
    title: str = "ARiA fleet",
    width: int = 32,
) -> str:
    """The ``repro top`` view: fleet sparklines + per-node table."""
    points = collector.series_points()

    def latest(name: str) -> float:
        series = points.get(name) or []
        return series[-1][1] if series else 0.0

    now = points["fleet.nodes_up"][-1][0] if points["fleet.nodes_up"] else 0.0
    lines = [
        f"{title} — t={now:.1f}s protocol  round {collector.rounds}  "
        f"nodes up {latest('fleet.nodes_up'):.0f}/"
        f"{len(collector.last_samples)}  "
        f"scrape failures {collector.scrape_failures}",
        "",
    ]
    curves = (
        ("completed", "fleet.completed_jobs"),
        ("queue", "fleet.queue_depth"),
        ("tracked", "fleet.tracked_jobs"),
        ("idle", "fleet.idle_nodes"),
        ("missed", "fleet.missed_deadlines"),
        ("net lost", "fleet.net_lost"),
    )
    for label, name in curves:
        values = [value for _, value in points.get(name, [])]
        lines.append(
            f"  {label:<10} {sparkline(values, width):<{width}} "
            f"{latest(name):g}"
        )
    lines.append("")
    lines.append("  node   up  queue  tracked  idle  incarnation")
    for sample in collector.last_samples:
        if not sample.up:
            lines.append(
                f"  {sample.node_id:>4}  down  ({sample.error})"
            )
            continue

        def cell(gauge: str) -> str:
            value = sample.own(gauge)
            return f"{value:g}" if value is not None else "-"

        lines.append(
            f"  {sample.node_id:>4}    up  {cell('queue_depth'):>5}  "
            f"{cell('tracked_jobs'):>7}  {cell('idle'):>4}  "
            f"{cell('incarnation'):>11}"
        )
    return "\n".join(lines) + "\n"
