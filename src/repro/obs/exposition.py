"""Prometheus text-format exposition for a :class:`MetricsRegistry`.

The live runtime serves each node's metrics as ``GET /metrics`` in the
`Prometheus text exposition format
<https://prometheus.io/docs/instrumenting/exposition_formats/>`_
(version ``0.0.4``) so any off-the-shelf scraper — or the in-repo
:class:`~repro.obs.collector.TelemetryCollector` — can consume a fleet.

Mapping from registry keys to Prometheus samples:

* metric names are sanitised (``.`` and anything outside
  ``[a-zA-Z0-9_:]`` becomes ``_``) and prefixed (default ``aria_``);
* the registry's ``name{k=v,...}`` label syntax becomes proper
  ``name{k="v",...}`` label sets;
* :class:`~repro.obs.metrics.Counter` / ``Gauge`` render as single
  samples with a ``# TYPE`` header;
* :class:`~repro.obs.metrics.Histogram` renders the full Prometheus
  histogram contract — cumulative ``_bucket{le="..."}`` samples ending
  in ``le="+Inf"``, plus ``_sum`` and ``_count``;
* :class:`~repro.obs.metrics.BoundedSeries` renders its latest value as
  a gauge plus an ``_observations`` companion (the series *points* stay
  in-process; exposition is a point-in-time format).

``extra`` lets a caller merge transient per-request samples (per-node
health gauges, traffic-by-type counts) into the same page without
registering them; they render as untyped gauges.

:func:`parse_prometheus` is the inverse used by the collector and the CI
scrape check: it parses a page back into ``{sample_name: value}`` and
raises on lines that are not valid exposition syntax.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Tuple

from .metrics import (
    BoundedSeries,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)

__all__ = ["CONTENT_TYPE", "parse_prometheus", "render_prometheus"]

#: The Content-Type a ``/metrics`` response must declare.
CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

_NAME_SANITIZER = re.compile(r"[^a-zA-Z0-9_:]")
_SAMPLE_LINE = re.compile(
    r"^([a-zA-Z_:][a-zA-Z0-9_:]*)"  # metric name
    r"(\{[^}]*\})?"  # optional label block
    r"\s+(-?[0-9.eE+-]+|NaN|[+-]Inf)\s*$"  # value
)


def _split_key(key: str) -> Tuple[str, List[Tuple[str, str]]]:
    """Split a registry key ``name{k=v,...}`` into name + label pairs."""
    if "{" not in key:
        return key, []
    name, _, inner = key.partition("{")
    pairs = []
    for part in inner.rstrip("}").split(","):
        label, _, value = part.partition("=")
        pairs.append((label, value))
    return name, pairs


def _prom_name(name: str, prefix: str) -> str:
    return prefix + _NAME_SANITIZER.sub("_", name)


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _label_block(pairs: List[Tuple[str, str]]) -> str:
    if not pairs:
        return ""
    inner = ",".join(
        f'{_NAME_SANITIZER.sub("_", k)}="{_escape_label(v)}"'
        for k, v in pairs
    )
    return "{" + inner + "}"


def _fmt(value: float) -> str:
    value = float(value)
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


class _Page:
    """Accumulates exposition lines, writing each ``# TYPE`` header once."""

    def __init__(self) -> None:
        self.lines: List[str] = []
        self._typed: set = set()

    def type_header(self, family: str, kind: str) -> None:
        if family not in self._typed:
            self._typed.add(family)
            self.lines.append(f"# TYPE {family} {kind}")

    def sample(
        self,
        family: str,
        pairs: List[Tuple[str, str]],
        value: float,
        suffix: str = "",
    ) -> None:
        self.lines.append(
            f"{family}{suffix}{_label_block(pairs)} {_fmt(value)}"
        )


def _render_histogram(
    page: _Page, family: str, pairs: List[Tuple[str, str]], metric: Histogram
) -> None:
    page.type_header(family, "histogram")
    cumulative = 0
    for bound, count in zip(metric.buckets, metric.counts):
        cumulative += count
        page.sample(
            family, pairs + [("le", _fmt(bound))], cumulative, "_bucket"
        )
    page.sample(family, pairs + [("le", "+Inf")], metric.count, "_bucket")
    page.sample(family, pairs, metric.total, "_sum")
    page.sample(family, pairs, metric.count, "_count")


def render_prometheus(
    registry: MetricsRegistry,
    extra: Optional[Dict[str, float]] = None,
    prefix: str = "aria_",
) -> str:
    """Render a registry (plus optional ``extra`` samples) as one page.

    ``extra`` maps registry-style keys (``name`` or ``name{k=v,...}``)
    to numeric values; the per-node ``/metrics`` route uses it for the
    health-snapshot gauges and traffic-by-type counts that are not
    registry metrics.
    """
    page = _Page()
    for key, metric in registry.metrics():
        name, pairs = _split_key(key)
        family = _prom_name(name, prefix)
        if isinstance(metric, Counter):
            page.type_header(family, "counter")
            page.sample(family, pairs, metric.value)
        elif isinstance(metric, Gauge):
            page.type_header(family, "gauge")
            page.sample(family, pairs, metric.value)
        elif isinstance(metric, Histogram):
            _render_histogram(page, family, pairs, metric)
        elif isinstance(metric, BoundedSeries):
            page.type_header(family, "gauge")
            last = metric.points[-1][1] if metric.points else 0.0
            page.sample(family, pairs, last)
            page.type_header(f"{family}_observations", "gauge")
            page.sample(f"{family}_observations", pairs, metric.count)
    for key in sorted(extra or {}):
        name, pairs = _split_key(key)
        family = _prom_name(name, prefix)
        page.type_header(family, "gauge")
        page.sample(family, pairs, extra[key])
    return "\n".join(page.lines) + "\n"


def parse_prometheus(text: str) -> Dict[str, float]:
    """Parse an exposition page back into ``{sample_name: value}``.

    Sample names keep their label block verbatim (quotes included), so
    ``aria_node_queue_depth{node="3"}`` is one key.  Comment and blank
    lines are skipped; any other line that is not a valid sample raises
    :class:`ValueError` — which is exactly what the CI scrape check
    wants ("the exposition parses").
    """
    samples: Dict[str, float] = {}
    for line_number, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        match = _SAMPLE_LINE.match(line)
        if match is None:
            raise ValueError(
                f"line {line_number}: not a Prometheus sample: {line!r}"
            )
        name, labels, value = match.groups()
        samples[f"{name}{labels or ''}"] = float(value)
    return samples
