"""Job-timeline reconstruction: answer *why* one job went where it did.

A trace records the whole run; this module slices out one job and turns
the slice into a causal story.  :func:`explain_job` builds a
:class:`JobTimeline` from recorded events (see ``repro.obs.trace``),
which exposes:

* the submission point and every REQUEST broadcast round (including
  fail-safe retries),
* every ACCEPT offer received, with its ETTC/NAL cost and whether it was
  quoted for the initial REQUEST or a later INFORM,
* each ASSIGN decision with the winner's cost and the rationale — how
  the winning quote compared with the runner-up (:meth:`JobTimeline.why_won`),
* every INFORM-triggered reassignment and withdrawal,
* the job state transitions (queued / started / finished / lost /
  resubmitted), fail-safe probes, and — when transport-level tracing was
  on — the specific dropped, lost or retried messages along the way.

The same structure backs the ``repro explain-job`` CLI (text rendering
via :meth:`JobTimeline.to_text`) and programmatic use
(:meth:`JobTimeline.to_json`; see ``examples/trace_explorer.py``).
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Optional

from ..errors import ConfigurationError
from .trace import iter_job_events

__all__ = ["JobTimeline", "explain_job"]

#: Events that mark the terminal states a job slice can end in.
_TERMINAL = ("job.finished", "job.unschedulable")


def _fmt_cost(value: Any) -> str:
    """Render a quoted cost compactly (costs are seconds-like floats)."""
    if value is None:
        return "?"
    return f"{float(value):.3f}"


def _format_wall(wall: Any) -> str:
    """Render an epoch-seconds ``wall`` stamp as a UTC clock time."""
    from datetime import datetime, timezone

    moment = datetime.fromtimestamp(float(wall), tz=timezone.utc)
    return f"{moment.strftime('%H:%M:%S')}.{moment.microsecond // 1000:03d}"


class JobTimeline:
    """One job's reconstructed lifecycle, oldest event first.

    Build via :func:`explain_job`; the raw per-job events stay available
    as :attr:`events`, and the derived views (offers, decisions,
    reassignments, losses) are computed once at construction.
    """

    def __init__(self, job_id: int, events: List[Dict[str, Any]]) -> None:
        if not events:
            raise ConfigurationError(
                f"trace contains no events for job {job_id}; "
                "was it traced at level 'protocol' or deeper?"
            )
        self.job_id = job_id
        self.events = sorted(events, key=lambda e: (e["t"]))
        self.submitted: Optional[Dict[str, Any]] = None
        self.requests: List[Dict[str, Any]] = []
        self.offers: List[Dict[str, Any]] = []
        self.decisions: List[Dict[str, Any]] = []
        self.reassignments: List[Dict[str, Any]] = []
        self.withdrawals: List[Dict[str, Any]] = []
        self.transitions: List[Dict[str, Any]] = []
        self.probes: List[Dict[str, Any]] = []
        self.network: List[Dict[str, Any]] = []
        self._index()

    def _index(self) -> None:
        """Partition the raw events into the derived views."""
        for event in self.events:
            name = event["ev"]
            if name == "job.submitted" and self.submitted is None:
                self.submitted = event
            elif name == "request.broadcast":
                self.requests.append(event)
            elif name == "accept.received":
                self.offers.append(event)
            elif name == "assign.winner":
                self.decisions.append(event)
            elif name == "assign.received":
                if event.get("reschedule"):
                    self.reassignments.append(event)
            elif name == "reschedule.withdrawn":
                self.withdrawals.append(event)
            elif name.startswith("job."):
                self.transitions.append(event)
            elif name.startswith("probe."):
                self.probes.append(event)
            elif name.startswith(("msg.", "retry.", "net.")):
                self.network.append(event)

    # -- derived facts --------------------------------------------------
    @property
    def final_state(self) -> str:
        """The last recorded job state (e.g. ``finished``, ``lost``)."""
        states = [e for e in self.transitions if e["ev"] != "job.submitted"]
        if not states:
            return "submitted" if self.submitted else "unknown"
        return states[-1]["ev"].split(".", 1)[1]

    @property
    def completed(self) -> bool:
        """Whether the job reached a terminal state in this trace."""
        return any(e["ev"] in _TERMINAL for e in self.transitions)

    def why_won(self, decision_index: int = 0) -> Dict[str, Any]:
        """Rationale for one ASSIGN decision (default: the first).

        Returns the winner, its quoted cost, the competing offers the
        originator held at decision time (sorted by cost), and the
        margin to the runner-up — the direct answer to "why did node X
        win job J?".
        """
        if not self.decisions:
            raise ConfigurationError(
                f"job {self.job_id} has no assign.winner decision in this "
                "trace (it may never have been scheduled)"
            )
        decision = self.decisions[decision_index]
        # Offers the originator had in hand when it decided: everything
        # received at or before the decision and not consumed by an
        # earlier decision round.
        prior = (
            self.decisions[decision_index - 1]["t"]
            if decision_index > 0
            else float("-inf")
        )
        candidates = [
            {
                "node": offer["src"],
                "cost": offer["cost"],
                "phase": offer["phase"],
                "t": offer["t"],
            }
            for offer in self.offers
            if prior < offer["t"] <= decision["t"]
        ]
        candidates.sort(key=lambda o: (o["cost"], o["node"]))
        runner_up = next(
            (c for c in candidates if c["node"] != decision["winner"]), None
        )
        margin = (
            runner_up["cost"] - decision["cost"]
            if runner_up is not None and decision.get("cost") is not None
            else None
        )
        return {
            "job": self.job_id,
            "t": decision["t"],
            "winner": decision["winner"],
            "winning_cost": decision.get("cost"),
            "offers": candidates,
            "runner_up": runner_up,
            "margin": margin,
            "reschedule": bool(decision.get("reschedule")),
        }

    # -- renderings -----------------------------------------------------
    def to_json(self) -> Dict[str, Any]:
        """Structured form: summary block plus the raw per-job events."""
        return {
            "job": self.job_id,
            "final_state": self.final_state,
            "completed": self.completed,
            "submitted": self.submitted,
            "requests": len(self.requests),
            "offers": self.offers,
            "decisions": [
                self.why_won(i) for i in range(len(self.decisions))
            ],
            "reassignments": self.reassignments,
            "withdrawals": self.withdrawals,
            "probes": self.probes,
            "network": self.network,
            "events": self.events,
        }

    def _narrate(self, event: Dict[str, Any]) -> str:
        """One human-readable line for one event."""
        name = event["ev"]
        if name == "job.submitted":
            return f"submitted at node {event['node']}"
        if name == "request.broadcast":
            retry = event.get("retry", 0)
            tag = f" (retry {retry})" if retry else ""
            return f"node {event['node']} broadcast REQUEST{tag}"
        if name == "cost.evaluated":
            return (
                f"node {event['node']} quoted cost "
                f"{_fmt_cost(event['cost'])} ({event['phase']})"
            )
        if name == "accept.received":
            return (
                f"node {event['node']} received ACCEPT from "
                f"{event['src']} at cost {_fmt_cost(event['cost'])} "
                f"({event['phase']})"
            )
        if name == "assign.winner":
            kind = "reassignment" if event.get("reschedule") else "assignment"
            return (
                f"node {event['node']} picked winner {event['winner']} "
                f"at cost {_fmt_cost(event['cost'])} from "
                f"{event['offers']} offer(s) [{kind}]"
            )
        if name == "assign.received":
            kind = "reschedule " if event.get("reschedule") else ""
            return (
                f"node {event['node']} received {kind}ASSIGN "
                f"from {event['src']}"
            )
        if name == "assign.duplicate":
            return (
                f"node {event['node']} ignored duplicate ASSIGN from "
                f"{event['src']} (already completed)"
            )
        if name == "inform.broadcast":
            return (
                f"node {event['node']} advertised INFORM at cost "
                f"{_fmt_cost(event['cost'])}"
            )
        if name == "reschedule.withdrawn":
            return (
                f"node {event['node']} withdrew job to {event['to']}: "
                f"own cost {_fmt_cost(event['own_cost'])} > offer "
                f"{_fmt_cost(event['offer_cost'])}"
            )
        if name == "probe.sent":
            return (
                f"node {event['node']} probed assignee {event['assignee']}"
            )
        if name == "probe.miss":
            return (
                f"node {event['node']} probe unanswered "
                f"({event['misses']} consecutive miss(es))"
            )
        if name.startswith("job."):
            return f"job {name.split('.', 1)[1]} at node {event['node']}"
        if name == "retry.sent":
            return (
                f"retransmission #{event['attempt']} of {event['type']} "
                f"{event['src']}->{event['dst']}"
            )
        if name == "retry.gave_up":
            return (
                f"gave up retransmitting {event['type']} "
                f"{event['src']}->{event['dst']}"
            )
        if name == "msg.lost":
            return (
                f"{event['type']} {event['src']}->{event['dst']} LOST "
                f"({event['reason']})"
            )
        if name == "msg.dropped":
            return (
                f"{event['type']} to {event['dst']} dropped "
                f"({event['reason']})"
            )
        if name == "msg.duplicated":
            return (
                f"{event['type']} {event['src']}->{event['dst']} duplicated"
            )
        if name in ("msg.sent", "msg.delivered"):
            verb = "sent" if name == "msg.sent" else "delivered"
            return f"{event['type']} {event['src']}->{event['dst']} {verb}"
        if name == "net.send":
            return (
                f"{event['type']} {event['src']}->{event['dst']} on the "
                f"wire (trace {event['trace']} hop {event['hop']})"
            )
        if name == "net.recv":
            return (
                f"{event['type']} {event['src']}->{event['dst']} arrived "
                f"(trace {event['trace']} hop {event['hop']}, "
                f"{event['latency']:.3f}s hop latency)"
            )
        return json.dumps(event, separators=(",", ":"))

    def to_text(self) -> str:
        """The full timeline as a readable multi-line narrative."""
        lines = [
            f"job {self.job_id}: {len(self.events)} event(s), "
            f"final state {self.final_state}"
        ]
        for decision_index in range(len(self.decisions)):
            rationale = self.why_won(decision_index)
            runner_up = rationale["runner_up"]
            if runner_up is None:
                versus = "unopposed"
            else:
                versus = (
                    f"beat node {runner_up['node']} "
                    f"({_fmt_cost(runner_up['cost'])}) by "
                    f"{_fmt_cost(rationale['margin'])}"
                )
            kind = (
                "reassigned to" if rationale["reschedule"] else "won by"
            )
            lines.append(
                f"  {kind} node {rationale['winner']} at cost "
                f"{_fmt_cost(rationale['winning_cost'])} "
                f"({len(rationale['offers'])} offer(s), {versus})"
            )
        lines.append("timeline:")
        for event in self.events:
            # Live traces stamp each event with the real wall clock next
            # to protocol time (see Tracer.wall_source); show it when
            # present so operators can line events up with their logs.
            wall = event.get("wall")
            wall_column = (
                f"  wall={_format_wall(wall)}" if wall is not None else ""
            )
            lines.append(
                f"  t={event['t']:>12.3f}{wall_column}  "
                f"{self._narrate(event)}"
            )
        return "\n".join(lines)


def explain_job(
    events: Iterable[Dict[str, Any]], job_id: int
) -> JobTimeline:
    """Build the :class:`JobTimeline` for ``job_id`` from trace events.

    ``events`` is any iterable of recorded event dicts — typically
    ``load_trace(path)`` or a memory sink's ``.events``.
    """
    return JobTimeline(job_id, iter_job_events(events, job_id))
