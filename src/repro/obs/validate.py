"""Validate recorded JSONL traces against the published event schema.

Every event of a trace file must pass
:func:`~repro.obs.trace.validate_event` — known event name, ``t``/``ev``
present, every required field for that event, no fields outside the
schema.  The CI trace-smoke job runs this over a freshly traced faulted
run, which is what makes :data:`~repro.obs.trace.EVENTS` a contract
rather than documentation.

This module is the importable core behind ``scripts/validate_trace.py``
(the script is a thin wrapper): :func:`validate_trace_file` returns the
problems and per-event counts for programmatic use, :func:`main` is the
CLI entry point.  ``rotated=True`` stitches a
:class:`~repro.obs.trace.RotatingJsonlSink`'s backup segments in front
of the active file, so a whole soak trace validates as one stream.
"""

from __future__ import annotations

import argparse
import sys
from typing import Dict, List, Optional, Tuple

from .trace import load_rotated_trace, load_trace, validate_event

__all__ = ["main", "validate_trace_file"]


def validate_trace_file(
    path: str, rotated: bool = False
) -> Tuple[List[str], Dict[str, int]]:
    """Validate one trace file (or rotated set) against the schema.

    Returns ``(problems, counts)``: every schema violation as a
    ``path:line: message`` string, and the number of events seen per
    event name (``"<missing>"`` for records without an ``ev`` field).
    """
    events = load_rotated_trace(path) if rotated else load_trace(path)
    problems: List[str] = []
    counts: Dict[str, int] = {}
    for line_number, event in enumerate(events, start=1):
        for problem in validate_event(event):
            problems.append(f"{path}:{line_number}: {problem}")
        name = event.get("ev", "<missing>")
        counts[name] = counts.get(name, 0) + 1
    return problems, counts


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code (nonzero = dirty)."""
    parser = argparse.ArgumentParser(
        description="Validate a recorded JSONL trace against the event schema"
    )
    parser.add_argument("path", help="JSONL trace file to validate")
    parser.add_argument(
        "--max-problems",
        type=int,
        default=20,
        help="stop printing after this many problems (still counts all)",
    )
    parser.add_argument(
        "--rotated",
        action="store_true",
        help="also read RotatingJsonlSink backup segments (oldest first)",
    )
    args = parser.parse_args(argv)

    problems, counts = validate_trace_file(args.path, rotated=args.rotated)
    total = sum(counts.values())
    if not total:
        print(f"{args.path}: no events", file=sys.stderr)
        return 1
    for problem in problems[: args.max_problems]:
        print(problem, file=sys.stderr)
    width = max(len(name) for name in counts)
    for name in sorted(counts):
        print(f"  {name:<{width}}  {counts[name]}")
    print(f"{args.path}: {total} events, {len(problems)} problem(s)")
    return 1 if problems else 0
