"""The trace bus: structured, typed, near-zero-overhead event tracing.

Every published number in the paper (Figs. 1-10, Table II) is an
end-of-run aggregate, and so were our metrics until now.  Aggregates
cannot answer *why* questions — why did node 17 win job 403, which
dropped message stranded a job, where did the reschedule rate go after a
partition.  The trace bus records the underlying events themselves:

* **Typed events.**  Every emission is one of the names in
  :data:`EVENTS`, each with a fixed level and field schema
  (:func:`validate_event` checks a recorded event against it — the JSONL
  schema is a published, CI-enforced contract).
* **Levels.**  ``protocol`` records the ARiA state machine (submissions,
  REQUEST/ACCEPT/INFORM/ASSIGN decisions with their costs, job state
  transitions); ``transport`` adds per-message network activity (send /
  deliver / drop / loss / retransmission); ``kernel`` adds per-event
  wall-clock spans from the simulation kernel for profiling.  Each level
  includes the ones before it.
* **Pluggable sinks.**  :class:`JsonlSink` streams events to disk (one
  JSON object per line), :class:`MemorySink` keeps a bounded in-memory
  ring buffer, and :class:`PerfettoSink` writes Chrome/Perfetto
  ``trace_event`` JSON that loads straight into ``ui.perfetto.dev``.

Tracing is **off by default** and costs one ``is None`` attribute check
at each instrumentation point when disabled: components hold a tracer
only when their level is active, so golden summaries stay byte-identical
and the hot path stays within noise (see ``docs/OBSERVABILITY.md``).

Typical usage::

    from repro.experiments import ScenarioScale, run
    from repro.obs import TraceConfig

    run("iMixed", ScenarioScale.tiny(), seed=0,
        trace=TraceConfig(level="transport", path="run.jsonl"))
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterable, List, Optional, Set, Tuple

from ..errors import ConfigurationError

__all__ = [
    "EVENTS",
    "LEVELS",
    "JsonlSink",
    "MemorySink",
    "PerfettoSink",
    "RotatingJsonlSink",
    "TraceConfig",
    "Tracer",
    "load_rotated_trace",
    "load_trace",
    "merge_perfetto_traces",
    "message_job_id",
    "rotated_trace_paths",
    "validate_event",
]

#: Trace levels, most selective first.  Each level implies the previous
#: ones: ``kernel`` traces everything ``transport`` does and more.
LEVELS: Dict[str, int] = {"off": 0, "protocol": 1, "transport": 2, "kernel": 3}

#: The published event schema: ``name -> (level, required fields)``.
#: Every event also carries ``t`` (simulated seconds) and ``ev`` (its
#: name); ``validate_event`` enforces exactly this table, and the CI
#: trace smoke job replays a recorded run against it.
EVENTS: Dict[str, Tuple[str, Tuple[str, ...]]] = {
    # -- protocol: the ARiA state machine --------------------------------
    "job.submitted": ("protocol", ("job", "node")),
    "request.broadcast": ("protocol", ("job", "node", "retry")),
    "cost.evaluated": ("protocol", ("job", "node", "cost", "phase")),
    "accept.received": ("protocol", ("job", "node", "src", "cost", "phase")),
    "assign.winner": (
        "protocol",
        ("job", "node", "winner", "cost", "offers", "reschedule"),
    ),
    "assign.received": ("protocol", ("job", "node", "src", "reschedule")),
    "assign.duplicate": ("protocol", ("job", "node", "src")),
    "inform.broadcast": ("protocol", ("job", "node", "cost")),
    "reschedule.withdrawn": (
        "protocol",
        ("job", "node", "to", "own_cost", "offer_cost"),
    ),
    "job.queued": ("protocol", ("job", "node")),
    "job.started": ("protocol", ("job", "node")),
    "job.finished": ("protocol", ("job", "node")),
    "job.lost": ("protocol", ("job", "node")),
    "job.resubmitted": ("protocol", ("job", "node")),
    "job.unschedulable": ("protocol", ("job", "node")),
    "probe.sent": ("protocol", ("job", "node", "assignee")),
    "probe.miss": ("protocol", ("job", "node", "misses")),
    "node.crashed": ("protocol", ("node",)),
    "node.restarted": ("protocol", ("node", "incarnation")),
    "job.orphaned": ("protocol", ("job", "node", "initiator")),
    "job.adopted": ("protocol", ("job", "node", "initiator")),
    "deadline.exceeded": ("protocol", ("job", "node", "overdue")),
    # -- protocol: durable-journal recovery (process-isolated runtime) ----
    "journal.recovered": ("protocol", ("node", "incarnation", "entries")),
    "journal.replayed": ("protocol", ("job", "node", "incarnation")),
    # -- transport: per-message network activity -------------------------
    "msg.sent": ("transport", ("src", "dst", "type")),
    "msg.delivered": ("transport", ("src", "dst", "type")),
    "msg.dropped": ("transport", ("dst", "type", "reason")),
    "msg.lost": ("transport", ("src", "dst", "type", "reason")),
    "msg.duplicated": ("transport", ("src", "dst", "type")),
    "retry.sent": ("transport", ("src", "dst", "type", "msg_id", "attempt")),
    "retry.gave_up": ("transport", ("src", "dst", "type", "msg_id")),
    # -- transport: causal hops (paired send/recv with a propagated
    # trace id, so per-job cross-node chains and hop latencies are
    # reconstructable from the merged fleet trace) ------------------------
    "net.send": ("transport", ("src", "dst", "type", "trace", "hop")),
    "net.recv": (
        "transport",
        ("src", "dst", "type", "trace", "hop", "latency"),
    ),
    # -- kernel: per-event wall-clock spans ------------------------------
    "kernel.event": ("kernel", ("name", "wall_us", "dur_us")),
}

#: Optional fields allowed per event beyond the required schema.  The
#: transport annotates message events with the ``job`` the message is
#: about whenever the payload names one (Ack messages do not); live runs
#: stamp every record with the ``wall`` clock (epoch seconds) when the
#: tracer has a :attr:`Tracer.wall_source`; journal-backed executors
#: stamp ``job.finished`` with the ``incarnation`` that ran the job, so
#: a merged multi-process trace shows completion entries surviving a
#: kill verbatim.
_OPTIONAL_FIELDS = ("job", "wall", "incarnation")


def validate_event(event: Dict[str, Any]) -> List[str]:
    """Check one recorded event against the published schema.

    Returns a list of problems (empty = valid): unknown event name,
    missing ``t``/``ev``, missing required fields, or fields outside the
    schema.  Used by the CI trace smoke job and ``scripts/validate_trace.py``.
    """
    problems: List[str] = []
    name = event.get("ev")
    if name is None:
        return ["event has no 'ev' field"]
    spec = EVENTS.get(name)
    if spec is None:
        return [f"unknown event name {name!r}"]
    if not isinstance(event.get("t"), (int, float)):
        problems.append(f"{name}: missing/non-numeric 't'")
    _level, required = spec
    for field in required:
        if field not in event:
            problems.append(f"{name}: missing required field {field!r}")
    allowed = set(required) | set(_OPTIONAL_FIELDS) | {"t", "ev"}
    for field in event:
        if field not in allowed:
            problems.append(f"{name}: unexpected field {field!r}")
    return problems


def message_job_id(message) -> Optional[int]:
    """The job a message is about, or ``None`` (e.g. reliability Acks).

    Control messages carry a ``job_id`` field; REQUEST/INFORM/ASSIGN
    carry the full ``job`` descriptor.  Either way the trace annotates
    message events with the id, which is what lets the job-timeline
    explainer tie a dropped or retried message to the job it stranded.
    """
    job_id = getattr(message, "job_id", None)
    if job_id is not None:
        return job_id
    job = getattr(message, "job", None)
    return None if job is None else job.job_id


# ----------------------------------------------------------------------
# Sinks
# ----------------------------------------------------------------------
class JsonlSink:
    """Streams events to a file, one compact JSON object per line."""

    def __init__(self, path) -> None:
        self.path = path
        self._handle = open(path, "w", encoding="utf-8", buffering=1 << 16)
        self.emitted = 0

    def append(self, event: Dict[str, Any]) -> None:
        """Write one event as a JSONL line."""
        self._handle.write(json.dumps(event, separators=(",", ":")))
        self._handle.write("\n")
        self.emitted += 1

    def close(self) -> None:
        """Flush and close the file (idempotent)."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None


class RotatingJsonlSink:
    """A :class:`JsonlSink` with size-based rotation for soak runs.

    When the active file would exceed ``max_bytes`` it is rotated the
    way :mod:`logging`'s rotating handler does: ``path.1`` becomes
    ``path.2`` (up to ``backups``), the active file becomes ``path.1``,
    and writing continues into a fresh ``path``.  The newest events are
    therefore always in ``path`` itself, and total disk usage is bounded
    by ``(backups + 1) * max_bytes`` plus one line of slack — which is
    what lets a multi-hour soak stream a transport-level trace without
    filling the disk.
    """

    def __init__(self, path, max_bytes: int = 64 * 1024 * 1024, backups: int = 3) -> None:
        if max_bytes <= 0:
            raise ConfigurationError(f"non-positive max_bytes {max_bytes}")
        if backups < 1:
            raise ConfigurationError(f"need >= 1 backup file, got {backups}")
        self.path = path
        self.max_bytes = max_bytes
        self.backups = backups
        self.emitted = 0
        self.rotations = 0
        self._written = 0
        self._handle = open(path, "w", encoding="utf-8", buffering=1 << 16)

    def append(self, event: Dict[str, Any]) -> None:
        """Write one event as a JSONL line, rotating files when full."""
        line = json.dumps(event, separators=(",", ":")) + "\n"
        if self._written and self._written + len(line) > self.max_bytes:
            self._rotate()
        self._handle.write(line)
        self._written += len(line)
        self.emitted += 1

    def _rotate(self) -> None:
        import os

        self._handle.close()
        for index in range(self.backups - 1, 0, -1):
            source = f"{self.path}.{index}"
            if os.path.exists(source):
                os.replace(source, f"{self.path}.{index + 1}")
        os.replace(self.path, f"{self.path}.1")
        self._handle = open(
            self.path, "w", encoding="utf-8", buffering=1 << 16
        )
        self._written = 0
        self.rotations += 1

    def close(self) -> None:
        """Flush and close the active file (idempotent)."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None


class MemorySink:
    """Bounded in-memory ring buffer of events (keeps the newest)."""

    def __init__(self, capacity: int = 1_000_000) -> None:
        if capacity <= 0:
            raise ConfigurationError(f"non-positive capacity {capacity}")
        from collections import deque

        self.capacity = capacity
        self._buffer = deque(maxlen=capacity)

    def append(self, event: Dict[str, Any]) -> None:
        """Record one event (evicting the oldest when full)."""
        self._buffer.append(event)

    @property
    def events(self) -> List[Dict[str, Any]]:
        """The buffered events, oldest first."""
        return list(self._buffer)

    def __len__(self) -> int:
        return len(self._buffer)

    def close(self) -> None:
        """No-op (memory sinks have nothing to flush)."""


class PerfettoSink:
    """Writes Chrome/Perfetto ``trace_event`` JSON for the whole overlay.

    ``kernel.event`` records (which carry wall-clock timestamps and
    durations) become complete ``"X"`` slices on the run-global track;
    every other event becomes a mark at its *simulated* time scaled to
    microseconds.  Tracks are node-aware: an event attributable to a node
    lands on ``pid = node_id + 1`` (``pid 0`` is the run-global track),
    with a ``process_name`` metadata record per node — so a multi-node
    run loads into ``ui.perfetto.dev`` as one timeline with one lane per
    node, and the mapping is stable across files merged with
    :func:`merge_perfetto_traces`.

    The paired causal-hop events get the full treatment: ``net.send`` /
    ``net.recv`` become tiny ``"X"`` slices joined by Perfetto flow
    arrows (``"s"`` / ``"f"`` with a stable id per ``(trace, hop)``), so
    a job's cross-node chain renders as arrows hopping between node
    lanes.
    """

    #: Run-global track (kernel slices, events naming no node).
    _GLOBAL_PID = 0

    def __init__(self, path) -> None:
        self.path = path
        self._events: List[Dict[str, Any]] = []
        self._flow_ids: Dict[Tuple[Any, Any], int] = {}
        self._pids: Set[int] = set()

    @staticmethod
    def _track(event: Dict[str, Any]) -> int:
        """The pid lane one event belongs to (``node_id + 1``; 0 global).

        Message events are attributed to the acting endpoint: the sender
        for sends, the receiver for deliveries/drops.
        """
        node = event.get("node")
        if node is None:
            name = event["ev"]
            if name in ("net.recv", "msg.delivered", "msg.dropped"):
                node = event.get("dst")
            else:
                node = event.get("src")
        if isinstance(node, int):
            return node + 1
        return PerfettoSink._GLOBAL_PID

    def _flow_id(self, event: Dict[str, Any]) -> int:
        key = (event["trace"], event["hop"])
        flow = self._flow_ids.get(key)
        if flow is None:
            flow = len(self._flow_ids) + 1
            self._flow_ids[key] = flow
        return flow

    def append(self, event: Dict[str, Any]) -> None:
        """Convert one trace-bus event into ``trace_event`` entries."""
        if "dur_us" in event:
            self._events.append(
                {
                    "name": event.get("name", event["ev"]),
                    "ph": "X",
                    "ts": event["wall_us"],
                    "dur": event["dur_us"],
                    "pid": self._GLOBAL_PID,
                    "tid": 0,
                    "cat": "kernel",
                }
            )
            return
        name = event["ev"]
        ts = event["t"] * 1e6
        pid = self._track(event)
        self._pids.add(pid)
        args = {k: v for k, v in event.items() if k not in ("t", "ev")}
        if name in ("net.send", "net.recv"):
            # A 1 us slice gives the flow arrow something to bind to.
            self._events.append(
                {
                    "name": f"{name} {event['type']}",
                    "ph": "X",
                    "ts": ts,
                    "dur": 1,
                    "pid": pid,
                    "tid": 0,
                    "cat": "net",
                    "args": args,
                }
            )
            flow = {
                "name": f"hop {event['trace']}/{event['hop']}",
                "ph": "s" if name == "net.send" else "f",
                "id": self._flow_id(event),
                "ts": ts,
                "pid": pid,
                "tid": 0,
                "cat": "net",
            }
            if name == "net.recv":
                flow["bp"] = "e"
            self._events.append(flow)
            return
        self._events.append(
            {
                "name": name,
                "ph": "i",
                "ts": ts,
                "pid": pid,
                "tid": 1,
                "s": "t",
                "cat": "protocol",
                "args": args,
            }
        )

    def close(self) -> None:
        """Write the accumulated ``traceEvents`` document (idempotent).

        Events are sorted by timestamp so every track reads
        monotonically, and each node lane gets a ``process_name``
        metadata record.
        """
        if self._events is None:
            return
        self._events.sort(key=lambda entry: entry["ts"])
        metadata = [
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "args": {
                    "name": "run"
                    if pid == self._GLOBAL_PID
                    else f"node {pid - 1}"
                },
            }
            for pid in sorted(self._pids | {self._GLOBAL_PID})
        ]
        with open(self.path, "w", encoding="utf-8") as handle:
            json.dump({"traceEvents": metadata + self._events}, handle)
        self._events = None

    @property
    def events(self) -> List[Dict[str, Any]]:
        """The converted entries accumulated so far (before :meth:`close`)."""
        return list(self._events or [])


def merge_perfetto_traces(paths, out_path) -> int:
    """Merge per-process Perfetto exports into one overlay timeline.

    Node lanes are already globally identified (``pid = node_id + 1``),
    so merging is concatenation: metadata records are deduplicated, the
    rest is re-sorted by timestamp.  Returns the merged event count.
    """
    merged: List[Dict[str, Any]] = []
    seen_meta: Set[Tuple[Any, Any]] = set()
    for path in paths:
        with open(path, encoding="utf-8") as handle:
            document = json.load(handle)
        for entry in document.get("traceEvents", []):
            if entry.get("ph") == "M":
                key = (entry.get("pid"), entry.get("name"))
                if key in seen_meta:
                    continue
                seen_meta.add(key)
                merged.append(entry)
            else:
                merged.append(entry)
    metadata = [entry for entry in merged if entry.get("ph") == "M"]
    rest = [entry for entry in merged if entry.get("ph") != "M"]
    rest.sort(key=lambda entry: entry.get("ts", 0))
    with open(out_path, "w", encoding="utf-8") as handle:
        json.dump({"traceEvents": metadata + rest}, handle)
    return len(metadata) + len(rest)


# ----------------------------------------------------------------------
# Configuration
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class TraceConfig:
    """Frozen, JSON-able tracing spec accepted by ``run`` / ``run_batch``.

    ``level`` selects how deep to record (``"protocol"`` | ``"transport"``
    | ``"kernel"``; ``"off"`` disables event recording but still collects
    telemetry when ``telemetry`` is true).  ``events`` optionally
    restricts recording to an allowlist of :data:`EVENTS` names within
    the level.  ``sink`` is ``"jsonl"`` (default), ``"memory"``, or
    ``"perfetto"``; file sinks need ``path``, which may contain a
    ``{seed}`` placeholder for multi-seed batches.  ``telemetry``
    controls whether the run's metrics-registry snapshot is surfaced as
    ``RunSummary.telemetry``.

    The config is part of the experiment engine's cache key (a traced
    run must never be silently served from an untraced cache entry).
    """

    level: str = "protocol"
    sink: str = "jsonl"
    path: Optional[str] = None
    events: Optional[Tuple[str, ...]] = None
    memory_capacity: int = 1_000_000
    telemetry: bool = True
    #: When set (bytes) the jsonl sink rotates files at this size
    #: (:class:`RotatingJsonlSink`) — soak runs bound their disk usage.
    rotate_bytes: Optional[int] = None

    def __post_init__(self) -> None:
        if self.level not in LEVELS:
            raise ConfigurationError(
                f"unknown trace level {self.level!r}; known: {sorted(LEVELS)}"
            )
        if self.sink not in ("jsonl", "memory", "perfetto"):
            raise ConfigurationError(
                f"unknown trace sink {self.sink!r}; "
                "known: ['jsonl', 'memory', 'perfetto']"
            )
        if self.sink in ("jsonl", "perfetto") and not self.path:
            raise ConfigurationError(
                f"trace sink {self.sink!r} requires a path"
            )
        if self.events is not None:
            object.__setattr__(self, "events", tuple(self.events))
            unknown = [e for e in self.events if e not in EVENTS]
            if unknown:
                raise ConfigurationError(
                    f"unknown trace event(s) {unknown}; see repro.obs.EVENTS"
                )
        if self.memory_capacity <= 0:
            raise ConfigurationError(
                f"non-positive memory_capacity {self.memory_capacity}"
            )
        if self.rotate_bytes is not None:
            if self.sink != "jsonl":
                raise ConfigurationError(
                    f"rotate_bytes requires the 'jsonl' sink, not "
                    f"{self.sink!r}"
                )
            if self.rotate_bytes <= 0:
                raise ConfigurationError(
                    f"non-positive rotate_bytes {self.rotate_bytes}"
                )

    def resolved(self, seed: int) -> "TraceConfig":
        """This config with any ``{seed}`` placeholder in ``path`` filled.

        Multi-seed batches resolve one config per work unit so every
        seed writes its own trace file.
        """
        if self.path is None or "{seed}" not in self.path:
            return self
        import dataclasses

        return dataclasses.replace(
            self, path=self.path.replace("{seed}", str(seed))
        )

    def to_dict(self) -> Dict[str, Any]:
        """Canonical JSON form (the engine's cache-key contribution)."""
        return {
            "level": self.level,
            "sink": self.sink,
            "path": self.path,
            "events": list(self.events) if self.events is not None else None,
            "memory_capacity": self.memory_capacity,
            "telemetry": self.telemetry,
            "rotate_bytes": self.rotate_bytes,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "TraceConfig":
        """Rebuild a config from :meth:`to_dict` data."""
        data = dict(payload)
        if data.get("events") is not None:
            data["events"] = tuple(data["events"])
        return cls(**data)

    def make_sink(self):
        """Instantiate the configured sink."""
        if self.sink == "jsonl":
            if self.rotate_bytes is not None:
                return RotatingJsonlSink(self.path, self.rotate_bytes)
            return JsonlSink(self.path)
        if self.sink == "perfetto":
            return PerfettoSink(self.path)
        return MemorySink(self.memory_capacity)


# ----------------------------------------------------------------------
# The tracer
# ----------------------------------------------------------------------
class Tracer:
    """Routes typed events to a sink, filtered by level and allowlist.

    The active-event set is precomputed at construction, so
    :meth:`emit` is one set-membership test, a dict build and a sink
    append — and components are handed the tracer *only when their
    level is active* (see :meth:`wants_level`), so a disabled level
    costs a single ``is None`` check at the instrumentation point.
    """

    __slots__ = ("sink", "config", "_active", "wall_source")

    def __init__(self, config: TraceConfig, sink=None) -> None:
        self.config = config
        self.sink = sink if sink is not None else config.make_sink()
        max_level = LEVELS[config.level]
        self._active = {
            name
            for name, (level, _fields) in EVENTS.items()
            if LEVELS[level] <= max_level
            and (config.events is None or name in config.events)
        }
        #: Optional wall-clock source (e.g. ``time.time``).  When set,
        #: every record gains a ``wall`` field — live runs use it so
        #: traces carry real timestamps next to protocol time.  Simulated
        #: runs leave it ``None``, keeping traces deterministic.
        self.wall_source: Optional[Callable[[], float]] = None

    def wants(self, event: str) -> bool:
        """Whether ``event`` would be recorded."""
        return event in self._active

    def wants_level(self, level: str) -> bool:
        """Whether any event of ``level`` is active (component gating)."""
        return any(
            name in self._active
            for name, (event_level, _fields) in EVENTS.items()
            if event_level == level
        )

    def emit(self, event: str, t: float, **fields) -> None:
        """Record one event at simulated time ``t`` (no-op if filtered)."""
        if event not in self._active:
            return
        record: Dict[str, Any] = {"t": t, "ev": event}
        record.update(fields)
        if self.wall_source is not None:
            record["wall"] = self.wall_source()
        self.sink.append(record)

    def close(self) -> None:
        """Flush/close the sink (idempotent)."""
        self.sink.close()

    @property
    def events(self) -> List[Dict[str, Any]]:
        """Recorded events when the sink is a :class:`MemorySink`.

        Raises :class:`~repro.errors.ConfigurationError` for file sinks,
        which do not retain events in memory.
        """
        if isinstance(self.sink, MemorySink):
            return self.sink.events
        raise ConfigurationError(
            f"trace sink {type(self.sink).__name__} does not buffer events; "
            "use sink='memory' or load the written file with load_trace()"
        )


def load_trace(path) -> List[Dict[str, Any]]:
    """Read a JSONL trace file back into a list of event dicts."""
    events: List[Dict[str, Any]] = []
    with open(path, encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                events.append(json.loads(line))
    return events


def rotated_trace_paths(path) -> List[str]:
    """Every segment of a (possibly rotated) trace, oldest first.

    A soak run's :class:`RotatingJsonlSink` leaves ``path.N`` (oldest
    backup) ... ``path.1`` (newest backup) plus the active ``path``; this
    returns whichever of those exist in chronological order — for an
    unrotated trace that is just ``[path]``.
    """
    import os

    path = os.fspath(path)
    backups: List[Tuple[int, str]] = []
    directory, base = os.path.split(path)
    prefix = base + "."
    for name in os.listdir(directory or "."):
        if name.startswith(prefix):
            suffix = name[len(prefix):]
            if suffix.isdigit():
                backups.append(
                    (int(suffix), os.path.join(directory, name))
                )
    ordered = [p for _n, p in sorted(backups, reverse=True)]
    if os.path.exists(path):
        ordered.append(path)
    return ordered


def load_rotated_trace(path) -> List[Dict[str, Any]]:
    """Read a rotated JSONL trace (all segments, oldest events first).

    The drop-in way to consume a soak trace: ``repro explain-job`` uses
    it so a job whose lifecycle spans a rotation boundary still
    reconstructs in full.
    """
    events: List[Dict[str, Any]] = []
    for segment in rotated_trace_paths(path):
        events.extend(load_trace(segment))
    return events


def iter_job_events(
    events: Iterable[Dict[str, Any]], job_id: int
) -> List[Dict[str, Any]]:
    """Events concerning one job, in recorded (time) order."""
    return [event for event in events if event.get("job") == job_id]


__all__.append("iter_job_events")
