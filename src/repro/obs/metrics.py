"""A uniform metrics registry: counters, gauges and histograms with labels.

Before this module existed, every subsystem grew its own ad-hoc tallies —
``GridMetrics.completed_jobs``, ``Transport.lost``,
``ReliabilityLayer.retransmissions`` — each surfaced through a bespoke
``counters()`` method.  The registry gives them one shape, the same way a
training or serving stack funnels everything through a Prometheus-style
registry:

* :class:`Counter` — a monotonically increasing tally (``inc``);
* :class:`Gauge` — a point-in-time value (``set``);
* :class:`Histogram` — a streaming distribution (``observe``) that keeps
  count / sum / min / max plus fixed-boundary bucket counts;
* :class:`MetricsRegistry` — the factory and namespace; metrics are
  identified by name plus an optional frozen label set, and
  :meth:`MetricsRegistry.snapshot` flattens everything into a
  deterministic ``{name: value}`` dict — the ``RunSummary.telemetry``
  block.

Registries are cheap plain-Python objects with no locks or background
threads (the simulator is single-threaded and deterministic), so every
run creates a fresh one and components increment bound
:class:`Counter` objects directly — one attribute load and an integer
add, the same cost as the ``self.x += 1`` statements they replaced.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import ConfigurationError

__all__ = ["Counter", "Gauge", "Histogram", "BoundedSeries", "MetricsRegistry"]


def _metric_key(name: str, labels: Dict[str, str]) -> str:
    """Flattened identity: ``name`` or ``name{k=v,...}`` (sorted keys)."""
    if not labels:
        return name
    inner = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return f"{name}{{{inner}}}"


class Counter:
    """A monotonically increasing tally."""

    __slots__ = ("key", "value")

    def __init__(self, key: str) -> None:
        self.key = key
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (must be >= 0) to the counter."""
        if amount < 0:
            raise ConfigurationError(
                f"counter {self.key} cannot decrease (inc {amount})"
            )
        self.value += amount

    def snapshot_into(self, out: Dict[str, float]) -> None:
        """Write this metric's flattened sample(s) into ``out``."""
        out[self.key] = float(self.value)


class Gauge:
    """A point-in-time value that can move both ways."""

    __slots__ = ("key", "value")

    def __init__(self, key: str) -> None:
        self.key = key
        self.value = 0.0

    def set(self, value: float) -> None:
        """Record the current value."""
        self.value = float(value)

    def snapshot_into(self, out: Dict[str, float]) -> None:
        """Write this metric's flattened sample(s) into ``out``."""
        out[self.key] = float(self.value)


#: Default histogram bucket upper bounds (seconds-flavoured, matching the
#: simulation's dominant unit; override per histogram as needed).
_DEFAULT_BUCKETS = (1.0, 10.0, 60.0, 600.0, 3600.0, 6 * 3600.0, 24 * 3600.0)


class Histogram:
    """A streaming distribution: count, sum, min, max and bucket counts.

    ``buckets`` are cumulative upper bounds (an implicit ``+Inf`` bucket
    is always present), Prometheus-style.
    """

    __slots__ = ("key", "buckets", "counts", "count", "total", "min", "max")

    def __init__(
        self, key: str, buckets: Optional[Sequence[float]] = None
    ) -> None:
        bounds = tuple(buckets) if buckets is not None else _DEFAULT_BUCKETS
        if list(bounds) != sorted(bounds):
            raise ConfigurationError(
                f"histogram {key} buckets must be sorted: {bounds}"
            )
        self.key = key
        self.buckets: Tuple[float, ...] = bounds
        self.counts: List[int] = [0] * (len(bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        """Record one sample."""
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        for index, bound in enumerate(self.buckets):
            if value <= bound:
                self.counts[index] += 1
                return
        self.counts[-1] += 1

    @property
    def mean(self) -> Optional[float]:
        """Mean of the observed samples (``None`` when empty)."""
        return self.total / self.count if self.count else None

    def snapshot_into(self, out: Dict[str, float]) -> None:
        """Write count/sum/min/max samples into ``out`` (no buckets)."""
        out[f"{self.key}.count"] = float(self.count)
        out[f"{self.key}.sum"] = float(self.total)
        if self.count:
            out[f"{self.key}.min"] = float(self.min)
            out[f"{self.key}.max"] = float(self.max)


class BoundedSeries:
    """A decimating ``(time, value)`` series with bounded memory.

    Unbounded per-event series are the classic observability memory leak:
    at 10^8 events a naive append-per-record list dwarfs the simulation
    state itself.  ``BoundedSeries`` keeps at most ``max_points`` pairs —
    when full, every second retained point is dropped and the series
    switches to recording every 2nd (then 4th, 8th, ...) observation, so
    memory stays O(max_points) while the series keeps uniform coverage of
    the whole run.

    The snapshot exposes ``count`` (observations offered), ``points``
    (pairs retained) and ``stride`` so consumers can tell whether (and how
    much) the series was decimated.
    """

    __slots__ = ("key", "max_points", "points", "count", "_stride")

    def __init__(self, key: str, max_points: int = 4096) -> None:
        if max_points < 2:
            raise ConfigurationError(
                f"series {key} needs max_points >= 2, got {max_points}"
            )
        self.key = key
        self.max_points = max_points
        self.points: List[Tuple[float, float]] = []
        self.count = 0
        self._stride = 1

    def record(self, time: float, value: float) -> None:
        """Offer one observation (kept only on the current stride)."""
        count = self.count
        self.count = count + 1
        if count % self._stride:
            return
        points = self.points
        points.append((float(time), float(value)))
        if len(points) >= self.max_points:
            del points[1::2]
            self._stride *= 2

    @property
    def stride(self) -> int:
        """Current decimation stride (1 until the cap is first reached)."""
        return self._stride

    def snapshot_into(self, out: Dict[str, float]) -> None:
        """Write count / retained / stride samples into ``out``."""
        out[f"{self.key}.count"] = float(self.count)
        out[f"{self.key}.points"] = float(len(self.points))
        out[f"{self.key}.stride"] = float(self._stride)


class MetricsRegistry:
    """Factory and namespace for one run's metrics.

    Asking twice for the same ``(name, labels)`` returns the same
    instance, so independent components can share a tally; asking for an
    existing key as a *different* metric type is an error.
    """

    def __init__(self) -> None:
        self._metrics: Dict[str, object] = {}

    def _get(self, cls, name: str, labels: Dict[str, str], **kwargs):
        key = _metric_key(name, labels)
        metric = self._metrics.get(key)
        if metric is None:
            metric = cls(key, **kwargs)
            self._metrics[key] = metric
        elif not isinstance(metric, cls):
            raise ConfigurationError(
                f"metric {key!r} already registered as "
                f"{type(metric).__name__}, not {cls.__name__}"
            )
        return metric

    def counter(self, name: str, **labels: str) -> Counter:
        """The counter registered under ``name`` (+ labels)."""
        return self._get(Counter, name, labels)

    def gauge(self, name: str, **labels: str) -> Gauge:
        """The gauge registered under ``name`` (+ labels)."""
        return self._get(Gauge, name, labels)

    def histogram(
        self,
        name: str,
        buckets: Optional[Sequence[float]] = None,
        **labels: str,
    ) -> Histogram:
        """The histogram registered under ``name`` (+ labels)."""
        return self._get(Histogram, name, labels, buckets=buckets)

    def series(
        self, name: str, max_points: int = 4096, **labels: str
    ) -> BoundedSeries:
        """The bounded time series registered under ``name`` (+ labels)."""
        return self._get(BoundedSeries, name, labels, max_points=max_points)

    def snapshot(self) -> Dict[str, float]:
        """Deterministic flat ``{key: value}`` view of every metric.

        Keys are sorted, values are floats; this is the payload stored
        as ``RunSummary.telemetry``.
        """
        out: Dict[str, float] = {}
        for key in sorted(self._metrics):
            self._metrics[key].snapshot_into(out)
        return dict(sorted(out.items()))

    def metrics(self) -> List[Tuple[str, object]]:
        """The registered metric objects as sorted ``(key, metric)`` pairs.

        Unlike :meth:`snapshot` this exposes the live objects (so
        histogram buckets are reachable) — the Prometheus exposition
        renderer (:mod:`repro.obs.exposition`) is the intended consumer.
        """
        return sorted(self._metrics.items())

    def __len__(self) -> int:
        return len(self._metrics)

    def __contains__(self, key: str) -> bool:
        return key in self._metrics
