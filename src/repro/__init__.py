"""ARiA: Dynamic Fully Distributed Grid Meta-Scheduling (ICDCS 2010).

A complete reproduction of Brocco et al.'s ARiA protocol and the simulation
study it was evaluated with.  The most common entry points:

>>> from repro.experiments import ScenarioScale, run
>>> result = run("iMixed", ScenarioScale.tiny(), seed=0)
>>> result.metrics.completed_jobs > 0
True

Batches of seeds go through :func:`repro.experiments.run_batch`, which
caches results on disk and can fan out across worker processes.

Subpackages
-----------
``repro.sim``
    Deterministic discrete-event kernel, RNG streams, samplers.
``repro.net``
    Latency models, message transport, traffic accounting.
``repro.overlay``
    Overlay graph, BLATANT-S-style ant maintenance, selective flooding.
``repro.grid``
    Resource profiles, the ERT/ERTp/ART model, grid nodes.
``repro.scheduling``
    FCFS / SJF / EDF (+ extensions) and the ETTC / NAL cost functions.
``repro.core``
    The ARiA protocol agents and messages (the paper's contribution).
``repro.workload``
    The §IV-D job generator, submission schedules, workload traces.
``repro.baselines``
    Centralized / multi-request / random comparison schedulers.
``repro.metrics``
    Per-job records and grid-wide aggregation.
``repro.obs``
    Observability: trace bus, metrics registry, job-timeline explainer.
``repro.experiments``
    The Table II scenario catalog, runner, and figure extraction.
"""

__version__ = "1.1.0"

__all__ = [
    "baselines",
    "core",
    "errors",
    "experiments",
    "grid",
    "metrics",
    "net",
    "obs",
    "overlay",
    "scheduling",
    "sim",
    "types",
    "workload",
]
