"""Post-run protocol invariants for fault/chaos experiments.

:func:`~repro.experiments.validation.validate_run` checks the *metric*
record of a run for internal consistency.  This module checks the final
*grid state* against the protocol's safety and liveness obligations — the
properties an unreliable network is most likely to break:

* **Job conservation** — every submitted job has a record, and every
  record ends in exactly one state: completed, unschedulable, or
  legitimately still in flight (held/queued/being rediscovered somewhere).
  A job in none of those is *stranded* — the classic symptom of a dropped
  ASSIGN.
* **No double execution** — no job completed twice, and no job sits in
  two live nodes' queues at once (the precursor, caused by duplicated or
  raced delegations).  The check spans *incarnations*: a job executed by
  incarnation 1 of a node and again by incarnation 2 after a
  crash-restart is double execution like any other, which is what the
  durable completion journal and incarnation-stamped messages exist to
  prevent.
* **No phantom loss** — in a crash-free run, no job may be recorded as
  lost with a crashing node.
* **Tracking quiescence** — long after a tracked job completed, no live
  initiator still tracks it (a permanently lost Done/Track would leak
  tracking state and eventually resubmit a finished job).

The checker runs on the live :class:`~repro.experiments.runner.GridSetup`
*after* ``setup.run()`` and returns human-readable violation strings
(empty = all invariants hold).  The fault experiment runner folds them
into ``RunSummary.violations`` next to the ``validate_run`` verdict.

``settle`` is the grace window before the horizon within which activity
is considered "still in flight" rather than stranded/leaked: recovery
machinery (reliable retransmissions, fail-safe probe rounds) needs
bounded time, and a run is cut off at the horizon mid-everything.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..types import JobId, NodeId

__all__ = ["check_invariants"]


def check_invariants(
    setup,
    *,
    expected_jobs: Optional[int] = None,
    allow_lost: bool = False,
    settle: float = 1800.0,
) -> List[str]:
    """Check the post-run grid state of ``setup``; returns violations.

    ``expected_jobs`` asserts the submission count (job conservation from
    the outside); ``allow_lost`` permits crash-lost records (crash/churn
    runs); ``settle`` is the in-flight grace window in seconds before the
    horizon.
    """
    metrics = setup.metrics
    horizon = setup.scale.duration
    violations: List[str] = []
    records = metrics.records

    if expected_jobs is not None and len(records) != expected_jobs:
        violations.append(
            f"job conservation: {len(records)} job records for "
            f"{expected_jobs} expected submissions"
        )

    # ------------------------------------------------------------------
    # Where does every unresolved job live right now?
    # ------------------------------------------------------------------
    holders: Dict[JobId, List[NodeId]] = {}
    pending: set = set()
    tracked: List[tuple] = []
    for agent in setup.agents:
        if agent.failed or agent.departed:
            continue
        node = agent.node
        if node.running is not None:
            holders.setdefault(node.running.job.job_id, []).append(
                agent.node_id
            )
        for entry in node.scheduler.queued():
            holders.setdefault(entry.job.job_id, []).append(agent.node_id)
        pending.update(agent._pending)
        tracked.extend(
            (agent.node_id, job_id) for job_id in agent._tracked
        )

    for job_id, nodes in sorted(holders.items()):
        if len(nodes) > 1:
            violations.append(
                f"job {job_id} held by {len(nodes)} live nodes at once "
                f"({sorted(nodes)}): duplicated delegation"
            )

    # ------------------------------------------------------------------
    # Per-record terminal-state checks
    # ------------------------------------------------------------------
    if metrics.duplicate_executions:
        violations.append(
            f"{metrics.duplicate_executions} duplicate execution(s): some "
            f"job completed more than once"
        )

    # Cross-incarnation execution identity: every completion is logged as
    # (job, node, incarnation); two different identities for one job mean
    # it ran twice — including the resurrection case where both runs
    # happened on the *same physical node* before and after a restart.
    executions: Dict[JobId, List[tuple]] = {}
    for job_id, node_id, incarnation in getattr(
        metrics, "execution_log", ()
    ):
        executions.setdefault(job_id, []).append((node_id, incarnation))
    for job_id, identities in sorted(executions.items()):
        if len(set(identities)) <= 1:
            continue
        nodes = {node_id for node_id, _ in identities}
        if len(nodes) == 1:
            violations.append(
                f"job {job_id} executed by multiple incarnations of node "
                f"{next(iter(nodes))} ({sorted(set(identities))}): "
                f"resurrection double-execution"
            )
        else:
            violations.append(
                f"job {job_id} executed under multiple identities "
                f"({sorted(set(identities))}): cross-node double-execution"
            )

    for job_id, record in sorted(records.items()):
        if record.completed and record.unschedulable:
            violations.append(
                f"job {job_id} both completed and unschedulable"
            )
        if record.lost_count and not allow_lost:
            violations.append(
                f"job {job_id} recorded as crash-lost "
                f"({record.lost_count}x) in a crash-free run"
            )
        if record.completed or record.unschedulable:
            continue
        if record.lost_count and allow_lost:
            # Crash-lost and never recovered: with the initiator (or an
            # untracked assignee) dead there is legitimately nobody left
            # to resubmit — an accounted loss, not a stranding.
            continue
        if job_id in holders or job_id in pending:
            continue  # legitimately in flight at the horizon
        last_activity = record.submit_time
        if record.assignments:
            last_activity = max(last_activity, record.assignments[-1][0])
        if record.start_time is not None:
            last_activity = max(last_activity, record.start_time)
        if horizon - last_activity < settle:
            continue  # still settling when the run was cut off
        violations.append(
            f"job {job_id} stranded: not completed, not unschedulable, "
            f"held by no live node and in no pending discovery "
            f"(last activity at t={last_activity:.0f})"
        )

    # ------------------------------------------------------------------
    # Tracking quiescence
    # ------------------------------------------------------------------
    for node_id, job_id in sorted(tracked):
        record = records.get(job_id)
        if record is None or record.finish_time is None:
            continue  # unfinished jobs may be tracked; stranded check above
        if horizon - record.finish_time < settle:
            continue
        violations.append(
            f"job {job_id} still tracked by node {node_id} "
            f"{horizon - record.finish_time:.0f}s after completing"
        )

    return violations
