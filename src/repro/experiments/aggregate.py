"""Multi-run aggregation (the paper averages 10 runs per scenario)."""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..sim import TimeSeries
from .summary import RunSummary

__all__ = ["average_series", "ScenarioSummary", "summarize_runs"]


def _as_summary(result) -> RunSummary:
    """Normalize a run to its :class:`RunSummary` (identity if already one)."""
    if isinstance(result, RunSummary):
        return result
    return result.summary()


def average_series(series_list: Sequence[TimeSeries]) -> TimeSeries:
    """Pointwise average of aligned time series.

    Runs of one scenario share sample times by construction; series are
    truncated to the shortest length defensively.
    """
    if not series_list:
        return []
    length = min(len(series) for series in series_list)
    averaged: TimeSeries = []
    for index in range(length):
        time = series_list[0][index][0]
        value = statistics.fmean(series[index][1] for series in series_list)
        averaged.append((time, value))
    return averaged


def _mean_of(values: List[Optional[float]]) -> Optional[float]:
    present = [v for v in values if v is not None]
    return statistics.fmean(present) if present else None


@dataclass
class ScenarioSummary:
    """Cross-run averages of everything the paper's figures report."""

    scenario_name: str
    runs: int
    completed_jobs: float
    unschedulable_jobs: float
    average_completion_time: Optional[float]
    average_waiting_time: Optional[float]
    average_execution_time: Optional[float]
    reschedules: float
    inform_broadcasts: float
    missed_deadlines: float
    average_lateness: Optional[float]
    average_missed_time: Optional[float]
    #: Jain's fairness index of per-node busy time (1.0 = perfectly even).
    load_fairness: Optional[float] = None
    #: Mean total bytes per message type across runs.
    traffic_bytes: Dict[str, float] = field(default_factory=dict)
    bandwidth_bps: float = 0.0
    completed_series: TimeSeries = field(default_factory=list)
    idle_series: TimeSeries = field(default_factory=list)
    node_count_series: TimeSeries = field(default_factory=list)
    submission_window: Tuple[float, float] = (0.0, 0.0)

    def to_dict(self) -> Dict[str, object]:
        """JSON-compatible representation (for archiving experiment runs)."""
        import dataclasses

        payload = dataclasses.asdict(self)
        payload["completed_series"] = [list(p) for p in self.completed_series]
        payload["idle_series"] = [list(p) for p in self.idle_series]
        payload["node_count_series"] = [
            list(p) for p in self.node_count_series
        ]
        payload["submission_window"] = list(self.submission_window)
        return payload

    def save(self, path) -> None:
        """Write the summary as JSON to ``path``."""
        import json
        from pathlib import Path

        Path(path).write_text(json.dumps(self.to_dict(), indent=1))


def summarize_runs(results: Sequence) -> ScenarioSummary:
    """Average a batch of same-scenario runs into one summary.

    Accepts :class:`RunSummary` objects (what
    :func:`~repro.experiments.run_batch` returns) or live results
    carrying a ``summary()`` method (``RunResult`` /
    ``BaselineRunResult``), in any mix.
    """
    if not results:
        raise ValueError("no runs to summarize")
    runs = [_as_summary(result) for result in results]
    names = {run.name for run in runs}
    if len(names) != 1:
        raise ValueError(f"mixed scenarios in one summary: {sorted(names)}")
    message_types = sorted({t for run in runs for t in run.traffic_bytes})
    traffic = {
        t: statistics.fmean(run.traffic_bytes.get(t, 0) for run in runs)
        for t in message_types
    }
    return ScenarioSummary(
        scenario_name=runs[0].name,
        runs=len(runs),
        completed_jobs=statistics.fmean(r.completed_jobs for r in runs),
        unschedulable_jobs=statistics.fmean(
            r.unschedulable_jobs for r in runs
        ),
        average_completion_time=_mean_of(
            [r.average_completion_time for r in runs]
        ),
        average_waiting_time=_mean_of(
            [r.average_waiting_time for r in runs]
        ),
        average_execution_time=_mean_of(
            [r.average_execution_time for r in runs]
        ),
        reschedules=statistics.fmean(r.reschedules for r in runs),
        inform_broadcasts=statistics.fmean(
            r.inform_broadcasts for r in runs
        ),
        missed_deadlines=statistics.fmean(
            r.missed_deadlines for r in runs
        ),
        average_lateness=_mean_of([r.average_lateness for r in runs]),
        average_missed_time=_mean_of(
            [r.average_missed_time for r in runs]
        ),
        load_fairness=_mean_of([r.load_fairness for r in runs]),
        traffic_bytes=traffic,
        bandwidth_bps=statistics.fmean(r.bandwidth_bps for r in runs),
        completed_series=average_series(
            [run.completed_series for run in runs]
        ),
        idle_series=average_series([run.idle_series for run in runs]),
        node_count_series=average_series(
            [run.node_count_series for run in runs]
        ),
        submission_window=runs[0].submission_window,
    )
