"""Multi-run aggregation (the paper averages 10 runs per scenario)."""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..sim import TimeSeries
from .runner import RunResult

__all__ = ["average_series", "ScenarioSummary", "summarize_runs"]


def average_series(series_list: Sequence[TimeSeries]) -> TimeSeries:
    """Pointwise average of aligned time series.

    Runs of one scenario share sample times by construction; series are
    truncated to the shortest length defensively.
    """
    if not series_list:
        return []
    length = min(len(series) for series in series_list)
    averaged: TimeSeries = []
    for index in range(length):
        time = series_list[0][index][0]
        value = statistics.fmean(series[index][1] for series in series_list)
        averaged.append((time, value))
    return averaged


def _mean_of(values: List[Optional[float]]) -> Optional[float]:
    present = [v for v in values if v is not None]
    return statistics.fmean(present) if present else None


@dataclass
class ScenarioSummary:
    """Cross-run averages of everything the paper's figures report."""

    scenario_name: str
    runs: int
    completed_jobs: float
    unschedulable_jobs: float
    average_completion_time: Optional[float]
    average_waiting_time: Optional[float]
    average_execution_time: Optional[float]
    reschedules: float
    inform_broadcasts: float
    missed_deadlines: float
    average_lateness: Optional[float]
    average_missed_time: Optional[float]
    #: Jain's fairness index of per-node busy time (1.0 = perfectly even).
    load_fairness: Optional[float] = None
    #: Mean total bytes per message type across runs.
    traffic_bytes: Dict[str, float] = field(default_factory=dict)
    bandwidth_bps: float = 0.0
    completed_series: TimeSeries = field(default_factory=list)
    idle_series: TimeSeries = field(default_factory=list)
    node_count_series: TimeSeries = field(default_factory=list)
    submission_window: Tuple[float, float] = (0.0, 0.0)

    def to_dict(self) -> Dict[str, object]:
        """JSON-compatible representation (for archiving experiment runs)."""
        import dataclasses

        payload = dataclasses.asdict(self)
        payload["completed_series"] = [list(p) for p in self.completed_series]
        payload["idle_series"] = [list(p) for p in self.idle_series]
        payload["node_count_series"] = [
            list(p) for p in self.node_count_series
        ]
        payload["submission_window"] = list(self.submission_window)
        return payload

    def save(self, path) -> None:
        """Write the summary as JSON to ``path``."""
        import json
        from pathlib import Path

        Path(path).write_text(json.dumps(self.to_dict(), indent=1))


def summarize_runs(results: Sequence[RunResult]) -> ScenarioSummary:
    """Average a batch of same-scenario runs into one summary."""
    if not results:
        raise ValueError("no runs to summarize")
    names = {run.scenario.name for run in results}
    if len(names) != 1:
        raise ValueError(f"mixed scenarios in one summary: {sorted(names)}")
    metrics = [run.metrics for run in results]
    message_types = sorted(
        {t for run in results for t in run.traffic.bytes_by_type}
    )
    traffic = {
        t: statistics.fmean(
            run.traffic.bytes_by_type.get(t, 0) for run in results
        )
        for t in message_types
    }
    return ScenarioSummary(
        scenario_name=results[0].scenario.name,
        runs=len(results),
        completed_jobs=statistics.fmean(m.completed_jobs for m in metrics),
        unschedulable_jobs=statistics.fmean(
            m.unschedulable_count() for m in metrics
        ),
        average_completion_time=_mean_of(
            [m.average_completion_time() for m in metrics]
        ),
        average_waiting_time=_mean_of(
            [m.average_waiting_time() for m in metrics]
        ),
        average_execution_time=_mean_of(
            [m.average_execution_time() for m in metrics]
        ),
        reschedules=statistics.fmean(m.reschedules for m in metrics),
        inform_broadcasts=statistics.fmean(
            m.inform_broadcasts for m in metrics
        ),
        missed_deadlines=statistics.fmean(
            m.missed_deadline_count() for m in metrics
        ),
        average_lateness=_mean_of([m.average_lateness() for m in metrics]),
        average_missed_time=_mean_of(
            [m.average_missed_time() for m in metrics]
        ),
        load_fairness=_mean_of(
            [
                run.metrics.load_fairness(run.final_node_count)
                for run in results
            ]
        ),
        traffic_bytes=traffic,
        bandwidth_bps=statistics.fmean(
            run.traffic.bandwidth_bps for run in results
        ),
        completed_series=average_series(
            [run.completed_series for run in results]
        ),
        idle_series=average_series([run.idle_series for run in results]),
        node_count_series=average_series(
            [run.node_count_series for run in results]
        ),
        submission_window=results[0].submission_window,
    )
