"""Plain-text rendering of figures and tables.

The benchmark harness prints the same rows/series the paper's figures plot;
these helpers keep that output compact and aligned.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..sim import TimeSeries
from ..types import HOUR, format_duration

__all__ = ["render_table", "render_series", "fmt_hours", "fmt_opt"]


def fmt_hours(seconds: Optional[float]) -> str:
    """Format a duration in seconds as the paper writes it (e.g. 2h30m)."""
    if seconds is None:
        return "-"
    return format_duration(seconds)


def fmt_opt(value: Optional[float], spec: str = ".1f") -> str:
    """Format an optional number (``None`` renders as ``-``)."""
    return "-" if value is None else format(value, spec)


def render_table(headers: Sequence[str], rows: Sequence[Sequence[str]]) -> str:
    """Render an aligned fixed-width text table."""
    columns = len(headers)
    widths = [len(h) for h in headers]
    for row in rows:
        for index in range(columns):
            widths[index] = max(widths[index], len(str(row[index])))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(
            str(cell).ljust(widths[index]) if index == 0 else str(cell).rjust(widths[index])
            for index, cell in enumerate(cells)
        )

    separator = "  ".join("-" * width for width in widths)
    body = [line(headers), separator]
    body.extend(line(row) for row in rows)
    return "\n".join(body)


def render_series(
    series_by_name: Dict[str, TimeSeries],
    points: int = 10,
    value_format: str = ".0f",
    until: Optional[float] = None,
) -> str:
    """Render several aligned time series as a table sampled at ``points``.

    Column headers are simulated hours; one row per series.  ``until``
    restricts the rendering to samples at or before that time — useful to
    zoom into the loaded phase of a run whose tail is flat.
    """
    if not series_by_name:
        return "(no series)"
    if until is not None:
        series_by_name = {
            name: [(t, v) for t, v in series if t <= until]
            for name, series in series_by_name.items()
        }
    lengths = [len(s) for s in series_by_name.values() if s]
    if not lengths:
        return "(empty series)"
    length = min(lengths)
    count = min(points, length)
    if count == 0:
        return "(empty series)"
    indices = [
        round(i * (length - 1) / max(1, count - 1)) for i in range(count)
    ]
    reference = next(iter(series_by_name.values()))
    headers = ["t"] + [
        f"{reference[i][0] / HOUR:.1f}h" for i in indices
    ]
    rows: List[List[str]] = []
    for name, series in series_by_name.items():
        rows.append(
            [name]
            + [format(series[i][1], value_format) for i in indices]
        )
    return render_table(headers, rows)
