"""Continuous churn experiments (beyond the paper's evaluation).

The paper motivates ARiA with "very large sets of highly volatile and
heterogeneous resources" (§I) but evaluates only a one-shot expansion.
This module simulates sustained churn: throughout a window, nodes keep
*joining* (fresh resources, integrated by the BLATANT ants), *leaving
gracefully* (handing their queues off), and optionally *crashing*
(recovered by the fail-safe extension when enabled).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Optional

from ..errors import ConfigurationError
from ..overlay.blatant import BlatantConfig, BlatantMaintainer
from ..types import MINUTE, NodeId
from .catalog import get_scenario
from .runner import RunResult, build_grid
from .scale import ScenarioScale

__all__ = ["ChurnPlan", "run_churn_experiment"]


@dataclass(frozen=True)
class ChurnPlan:
    """Shape of the churn.

    Every ``interval`` seconds inside ``[start, end]`` one churn event
    happens; its kind is drawn as join / graceful leave / crash with the
    given weights.  The grid never shrinks below ``min_fraction`` of its
    initial size.
    """

    interval: float = 2 * MINUTE
    start: float = 30 * MINUTE
    end: float = 4 * 3600.0
    join_weight: float = 1.0
    leave_weight: float = 1.0
    crash_weight: float = 0.0
    min_fraction: float = 0.5

    def __post_init__(self) -> None:
        if self.interval <= 0:
            raise ConfigurationError("churn interval must be positive")
        if not 0 <= self.start < self.end:
            raise ConfigurationError("invalid churn window")
        weights = (self.join_weight, self.leave_weight, self.crash_weight)
        if any(w < 0 for w in weights) or not any(weights):
            raise ConfigurationError("churn weights must be >= 0, not all 0")
        if not 0 < self.min_fraction <= 1:
            raise ConfigurationError("min_fraction must be in (0, 1]")


def run_churn_experiment(
    scale: Optional[ScenarioScale] = None,
    seed: int = 0,
    plan: Optional[ChurnPlan] = None,
    scenario_name: str = "iMixed",
    failsafe: bool = False,
) -> RunResult:
    """One run of ``scenario_name`` under sustained node churn.

    .. deprecated:: 1.1
        Use :func:`repro.experiments.run` with a :class:`ChurnPlan` spec:
        ``run(ChurnPlan(), scale, seed=..., failsafe=True)``.

    .. versionchanged:: 1.2
        Calling this wrapper is now an error.
    """
    raise DeprecationWarning(
        "run_churn_experiment() was removed; use repro.experiments."
        "run(ChurnPlan(...), scale, seed=..., "
        "options=RunOptions(failsafe=...)) instead"
    )


def _run_churn_experiment(
    scale: Optional[ScenarioScale] = None,
    seed: int = 0,
    plan: Optional[ChurnPlan] = None,
    scenario_name: str = "iMixed",
    failsafe: bool = False,
    obs=None,
) -> RunResult:
    """One churn run (internal, non-deprecated impl)."""
    plan = plan if plan is not None else ChurnPlan()
    base = get_scenario(scenario_name)
    scenario = dataclasses.replace(base, name=f"{base.name}+churn")
    setup = build_grid(
        scenario,
        scale,
        seed,
        config_overrides={"failsafe": True} if failsafe else None,
        obs=obs,
    )

    rng = setup.sim.streams.get("churn")
    maintainer = BlatantMaintainer(
        setup.graph, setup.sim.streams.get("churn.overlay"), BlatantConfig()
    )
    maintainer.start(setup.sim)
    state = {"next_id": max(n.node_id for n in setup.nodes) + 1}
    min_nodes = max(2, int(plan.min_fraction * len(setup.nodes)))
    kinds = ["join", "leave", "crash"]
    weights = [plan.join_weight, plan.leave_weight, plan.crash_weight]

    def churn_event() -> None:
        kind = rng.choices(kinds, weights=weights)[0]
        live = setup.live_agents()
        if kind == "join":
            node_id = NodeId(state["next_id"])
            state["next_id"] += 1
            maintainer.join(node_id)
            setup.add_node(node_id)
            return
        # leave / crash need a victim and a grid that stays large enough.
        victims = [a for a in live if not a.leaving]
        if len(victims) <= min_nodes:
            return
        victim = rng.choice(victims)
        if kind == "leave":
            victim.leave()
        else:
            victim.fail()

    setup.sim.every(
        plan.interval, churn_event, start=plan.start, until=plan.end
    )
    return setup.run()
