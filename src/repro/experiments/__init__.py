"""Experiment framework: Table II catalog, engine, figures, reporting.

The unified entry points are :func:`run` (one experiment, live result)
and :func:`run_batch` (many seeds, cached + parallel, returning
:class:`RunSummary` objects in a :class:`BatchResult`).  The spec passed
to either may be a :class:`Scenario`, a baseline name, a
:class:`CrashPlan`, a :class:`FailureModel` (composed crash-stop /
crash-restart / fail-slow node failures), a :class:`ChurnPlan`, or a
:class:`FaultPlan` (network fault injection with the
:mod:`~repro.experiments.invariants` chaos checker).
"""

from ..obs.trace import TraceConfig
from .aggregate import ScenarioSummary, average_series, summarize_runs
from .catalog import SCENARIOS, get_scenario, scenario_names, with_rescheduling
from .churn import ChurnPlan, run_churn_experiment
from .engine import BatchResult, ResultCache, run, run_batch
from .failures import (
    CrashPlan,
    FailureModel,
    run_crash_experiment,
    run_failure_experiment,
)
from .faults import FaultPlan, apply_fault_plan, run_fault_experiment
from .invariants import check_invariants
from .invariants_online import OnlineInvariantChecker
from .options import RunOptions
from .report import fmt_hours, fmt_opt, render_series, render_table
from .runner import (
    GridSetup,
    RunResult,
    build_grid,
    run_scenario,
    run_scenario_batch,
)
from .scale import ScenarioScale, bench_scale_from_env
from .scenario import Scenario
from .summary import RunSummary
from .validation import validate_run

__all__ = [
    "BatchResult",
    "ChurnPlan",
    "CrashPlan",
    "FailureModel",
    "FaultPlan",
    "GridSetup",
    "OnlineInvariantChecker",
    "ResultCache",
    "RunOptions",
    "RunResult",
    "RunSummary",
    "apply_fault_plan",
    "build_grid",
    "check_invariants",
    "run",
    "run_batch",
    "run_churn_experiment",
    "run_crash_experiment",
    "run_failure_experiment",
    "run_fault_experiment",
    "SCENARIOS",
    "Scenario",
    "ScenarioScale",
    "ScenarioSummary",
    "TraceConfig",
    "average_series",
    "bench_scale_from_env",
    "fmt_hours",
    "fmt_opt",
    "get_scenario",
    "render_series",
    "render_table",
    "run_scenario",
    "run_scenario_batch",
    "scenario_names",
    "summarize_runs",
    "validate_run",
    "with_rescheduling",
]
