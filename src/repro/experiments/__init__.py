"""Experiment framework: Table II catalog, runner, figures, reporting."""

from .aggregate import ScenarioSummary, average_series, summarize_runs
from .catalog import SCENARIOS, get_scenario, scenario_names, with_rescheduling
from .churn import ChurnPlan, run_churn_experiment
from .failures import CrashPlan, run_crash_experiment
from .report import fmt_hours, fmt_opt, render_series, render_table
from .runner import (
    GridSetup,
    RunResult,
    build_grid,
    run_scenario,
    run_scenario_batch,
)
from .scale import ScenarioScale, bench_scale_from_env
from .scenario import Scenario
from .validation import validate_run

__all__ = [
    "ChurnPlan",
    "CrashPlan",
    "GridSetup",
    "RunResult",
    "build_grid",
    "run_churn_experiment",
    "run_crash_experiment",
    "SCENARIOS",
    "Scenario",
    "ScenarioScale",
    "ScenarioSummary",
    "average_series",
    "bench_scale_from_env",
    "fmt_hours",
    "fmt_opt",
    "get_scenario",
    "render_series",
    "render_table",
    "run_scenario",
    "run_scenario_batch",
    "scenario_names",
    "summarize_runs",
    "validate_run",
    "with_rescheduling",
]
