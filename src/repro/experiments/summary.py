"""Picklable per-run summaries — the hand-off point of the experiment API.

A :class:`RunSummary` carries everything the figures, sweeps, comparisons
and reports consume from one simulated run — metric scalars, the traffic
report, the sampled time series, and the validation verdict — as plain
data: no live agents, simulator, or per-job records.  That makes it

* **picklable**, so the parallel batch engine can ship results across
  process boundaries (:mod:`repro.experiments.engine`);
* **JSON round-trippable** (:meth:`RunSummary.to_dict` /
  :meth:`RunSummary.from_dict`), so the on-disk result cache and archived
  experiment outputs use the same representation.

``RunResult.summary()`` and ``BaselineRunResult.summary()`` produce one;
two runs are equivalent exactly when their ``to_dict()`` payloads are
bit-identical.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

__all__ = ["RunSummary"]

#: ``(time, value)`` sample points, matching :data:`repro.sim.TimeSeries`.
TimeSeries = List[Tuple[float, float]]


@dataclass
class RunSummary:
    """Plain-data summary of one simulated run.

    Scalar metrics mirror the aggregated views of
    :class:`~repro.metrics.collector.GridMetrics`; the traffic fields
    mirror :class:`~repro.net.traffic.TrafficReport`; the series are the
    run's sampled probes.  ``violations`` is the
    :func:`~repro.experiments.validation.validate_run` verdict captured
    when the summary was built (empty = clean).
    """

    #: ``"scenario"`` | ``"baseline"`` — what kind of run produced this.
    kind: str
    #: Scenario name (including ``+churn`` / ``+crash`` decorations) or
    #: baseline name.
    name: str
    seed: int
    #: ``dataclasses.asdict`` of the :class:`ScenarioScale` used.
    scale: Dict[str, Any]
    completed_jobs: int
    unschedulable_jobs: int
    #: Jobs neither completed nor unschedulable at the horizon (lost to a
    #: crash or still in flight).
    incomplete_jobs: int
    duplicate_executions: int
    #: Total fail-safe resubmissions across all job records.
    resubmissions: int
    reschedules: int
    inform_broadcasts: int
    missed_deadlines: int
    average_completion_time: Optional[float]
    average_waiting_time: Optional[float]
    average_execution_time: Optional[float]
    average_lateness: Optional[float]
    average_missed_time: Optional[float]
    #: Jain's fairness index of per-node busy time (``None`` if no work).
    load_fairness: Optional[float]
    traffic_bytes: Dict[str, int]
    traffic_counts: Dict[str, int]
    bandwidth_bps: float
    completed_series: TimeSeries = field(default_factory=list)
    idle_series: TimeSeries = field(default_factory=list)
    node_count_series: TimeSeries = field(default_factory=list)
    submission_window: Tuple[float, float] = (0.0, 0.0)
    final_node_count: int = 0
    executed_events: int = 0
    #: :func:`validate_run` verdict captured at summary time.
    violations: List[str] = field(default_factory=list)
    #: Run-kind-specific scalars (e.g. ``revoked_copies`` for the
    #: multirequest baseline).
    extras: Dict[str, float] = field(default_factory=dict)
    #: Metrics-registry snapshot (``repro.obs.MetricsRegistry.snapshot``),
    #: populated only when the run was given a ``TraceConfig`` with
    #: ``telemetry=True``; empty otherwise (and omitted from
    #: :meth:`to_dict` so untraced summaries stay byte-identical).
    telemetry: Dict[str, float] = field(default_factory=dict)
    #: Merged fleet time series from the live telemetry collector
    #: (``{name: [(t, value), ...]}``), populated only by live runs that
    #: scraped their own ``/metrics`` pages; empty otherwise (and omitted
    #: from :meth:`to_dict` so simulated summaries stay byte-identical).
    fleet: Dict[str, TimeSeries] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_metrics(
        cls,
        *,
        kind: str,
        name: str,
        seed: int,
        scale: Dict[str, Any],
        metrics,
        traffic,
        completed_series: TimeSeries = (),
        idle_series: TimeSeries = (),
        node_count_series: TimeSeries = (),
        submission_window: Tuple[float, float] = (0.0, 0.0),
        final_node_count: int = 0,
        executed_events: int = 0,
        violations=(),
        extras: Optional[Dict[str, float]] = None,
        telemetry: Optional[Dict[str, float]] = None,
        fleet: Optional[Dict[str, TimeSeries]] = None,
    ) -> "RunSummary":
        """Extract the scalar views from live ``metrics`` / ``traffic``.

        ``metrics`` is a :class:`~repro.metrics.collector.GridMetrics`;
        ``traffic`` a :class:`~repro.net.traffic.TrafficReport`.
        """
        records = metrics.records.values()
        return cls(
            kind=kind,
            name=name,
            seed=seed,
            scale=dict(scale),
            completed_jobs=metrics.completed_jobs,
            unschedulable_jobs=metrics.unschedulable_count(),
            incomplete_jobs=sum(
                1 for r in records if not r.completed and not r.unschedulable
            ),
            duplicate_executions=metrics.duplicate_executions,
            resubmissions=sum(r.resubmissions for r in records),
            reschedules=metrics.reschedules,
            inform_broadcasts=metrics.inform_broadcasts,
            missed_deadlines=metrics.missed_deadline_count(),
            average_completion_time=metrics.average_completion_time(),
            average_waiting_time=metrics.average_waiting_time(),
            average_execution_time=metrics.average_execution_time(),
            average_lateness=metrics.average_lateness(),
            average_missed_time=metrics.average_missed_time(),
            load_fairness=metrics.load_fairness(final_node_count),
            traffic_bytes=dict(traffic.bytes_by_type),
            traffic_counts=dict(traffic.count_by_type),
            bandwidth_bps=traffic.bandwidth_bps,
            completed_series=[tuple(p) for p in completed_series],
            idle_series=[tuple(p) for p in idle_series],
            node_count_series=[tuple(p) for p in node_count_series],
            submission_window=tuple(submission_window),
            final_node_count=final_node_count,
            executed_events=executed_events,
            violations=list(violations),
            extras=dict(extras or {}),
            telemetry=dict(telemetry or {}),
            fleet={
                name: [tuple(p) for p in series]
                for name, series in (fleet or {}).items()
            },
        )

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """JSON-compatible representation (the cache's storage format).

        Bit-identical payloads ⇔ equivalent runs, which is what the
        parallel-vs-serial determinism guarantee is stated over.
        """
        import dataclasses

        payload = dataclasses.asdict(self)
        payload["completed_series"] = [list(p) for p in self.completed_series]
        payload["idle_series"] = [list(p) for p in self.idle_series]
        payload["node_count_series"] = [
            list(p) for p in self.node_count_series
        ]
        payload["submission_window"] = list(self.submission_window)
        if not self.telemetry:
            # Untraced runs never carry telemetry; omitting the empty dict
            # keeps their payloads byte-identical to earlier versions.
            del payload["telemetry"]
        if not self.fleet:
            # Same contract for the live-only fleet series.
            del payload["fleet"]
        else:
            payload["fleet"] = {
                name: [list(p) for p in series]
                for name, series in self.fleet.items()
            }
        return payload

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "RunSummary":
        """Rebuild a summary from :meth:`to_dict`-style data."""
        data = dict(payload)
        for key in ("completed_series", "idle_series", "node_count_series"):
            data[key] = [tuple(point) for point in data.get(key, [])]
        data["submission_window"] = tuple(
            data.get("submission_window", (0.0, 0.0))
        )
        data.setdefault("telemetry", {})
        data["fleet"] = {
            name: [tuple(point) for point in series]
            for name, series in data.get("fleet", {}).items()
        }
        return cls(**data)

    def save(self, path) -> None:
        """Write the summary as JSON to ``path``."""
        import json
        from pathlib import Path

        Path(path).write_text(json.dumps(self.to_dict(), indent=1))

    @classmethod
    def load(cls, path) -> "RunSummary":
        """Read a summary previously written by :meth:`save`."""
        import json
        from pathlib import Path

        return cls.from_dict(json.loads(Path(path).read_text()))
