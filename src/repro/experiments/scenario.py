"""Scenario specification (one row of the paper's Table II)."""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

from ..errors import ConfigurationError
from ..types import MINUTE

__all__ = ["Scenario"]


@dataclass(frozen=True)
class Scenario:
    """Everything that varies between the paper's 26 scenarios.

    Time-valued fields are expressed at *paper scale*; the runner rescales
    the submission interval when a smaller grid is simulated (see
    :class:`~repro.experiments.scale.ScenarioScale`).
    """

    name: str
    description: str
    #: Local scheduling policies, assigned to nodes uniformly at random
    #: (§IV-C).  ``("FCFS", "SJF")`` reproduces the Mixed scenarios.
    policies: Tuple[str, ...]
    #: Dynamic rescheduling on/off (the ``i`` prefix in Table II).
    rescheduling: bool = False
    #: Seconds between submissions at paper scale (10 = baseline,
    #: 20 = LowLoad, 5 = HighLoad).
    submission_interval: float = 10.0
    #: Mean deadline slack (None = batch jobs; 7h30m = Deadline,
    #: 2h30m = DeadlineH).
    deadline_slack_mean: Optional[float] = None
    #: Relative ERT estimation error ε (§IV-D).
    epsilon: float = 0.1
    #: AccuracyBad: the estimate is always optimistic (drift = |drift|).
    optimistic_only: bool = False
    #: Whether the overlay grows during the run (Expanding scenarios).
    expanding: bool = False
    #: Jobs advertised per INFORM round (iInform1 / baseline 2 / iInform4).
    inform_count: int = 2
    #: Required cost improvement for rescheduling (3 m baseline,
    #: 15 m / 30 m in the iInform15m / iInform30m scenarios).
    improvement_threshold: float = 3 * MINUTE
    #: Overlay topology: ``"blatant"`` (the paper's BLATANT-S overlay) or a
    #: key of :data:`repro.overlay.TOPOLOGY_BUILDERS` — the paper's
    #: future-work axis of "different types of peer-to-peer overlays".
    overlay: str = "blatant"
    #: Optional job priority levels (uniform draw), for the priority /
    #: aging local-scheduler extensions.  ``None`` leaves priority at 0.
    priority_levels: Optional[Tuple[int, ...]] = None
    #: Fraction of jobs carrying an advance reservation, and the mean
    #: reservation delay (reservation/backfill extensions; off by default).
    reservation_probability: float = 0.0
    reservation_delay_mean: Optional[float] = None
    #: Probability that any network message is silently lost (robustness
    #: extension; the paper assumes reliable delivery, i.e. 0.0).
    message_loss: float = 0.0

    def __post_init__(self) -> None:
        if not self.policies:
            raise ConfigurationError(f"scenario {self.name}: no policies")
        if self.submission_interval <= 0:
            raise ConfigurationError(
                f"scenario {self.name}: non-positive submission interval"
            )
        if self.epsilon < 0:
            raise ConfigurationError(f"scenario {self.name}: negative epsilon")
        if not 0.0 <= self.message_loss < 1.0:
            raise ConfigurationError(
                f"scenario {self.name}: message_loss out of [0, 1)"
            )

    @property
    def is_deadline(self) -> bool:
        """Whether this scenario uses deadline scheduling (EDF + NAL)."""
        return self.deadline_slack_mean is not None

    # ------------------------------------------------------------------
    # Serialization (custom scenarios from JSON, used by the CLI)
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """A JSON-compatible representation of this scenario."""
        payload = dataclasses.asdict(self)
        payload["policies"] = list(self.policies)
        if self.priority_levels is not None:
            payload["priority_levels"] = list(self.priority_levels)
        return payload

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "Scenario":
        """Build a scenario from :meth:`to_dict`-style data.

        Unknown keys are rejected (catching typos in hand-written files);
        list fields are normalized back to tuples.
        """
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = set(payload) - known
        if unknown:
            raise ConfigurationError(
                f"unknown scenario fields: {sorted(unknown)}"
            )
        data = dict(payload)
        if "policies" in data:
            data["policies"] = tuple(data["policies"])
        if data.get("priority_levels") is not None:
            data["priority_levels"] = tuple(data["priority_levels"])
        return cls(**data)
