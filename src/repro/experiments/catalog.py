"""The 26 evaluation scenarios of the paper's Table II."""

from __future__ import annotations

from typing import Dict, List

from ..errors import ConfigurationError
from ..types import HOUR, MINUTE
from .scenario import Scenario

__all__ = ["SCENARIOS", "get_scenario", "scenario_names", "with_rescheduling"]

_BATCH_MIXED = ("FCFS", "SJF")


def _build_catalog() -> Dict[str, Scenario]:
    scenarios: List[Scenario] = []

    def add(scenario: Scenario) -> None:
        scenarios.append(scenario)

    def add_pair(name: str, description: str, **kwargs) -> None:
        """Add a scenario and its dynamic-rescheduling twin (``i`` prefix)."""
        add(Scenario(name=name, description=description, **kwargs))
        add(
            Scenario(
                name=f"i{name}",
                description=f"Like {name} but with dynamic rescheduling.",
                rescheduling=True,
                **kwargs,
            )
        )

    # -- scheduling-policy scenarios -----------------------------------
    add_pair(
        "FCFS",
        "All nodes implement a FCFS batch scheduling policy.",
        policies=("FCFS",),
    )
    add_pair(
        "SJF",
        "All nodes implement a SJF scheduling policy.",
        policies=("SJF",),
    )
    add_pair(
        "Mixed",
        "Nodes implement either a FCFS or a SJF policy (uniformly at random).",
        policies=_BATCH_MIXED,
    )
    add_pair(
        "Deadline",
        "All nodes implement the EDF scheduling policy.",
        policies=("EDF",),
        deadline_slack_mean=7.5 * HOUR,
    )

    # -- load scenarios -------------------------------------------------
    add_pair(
        "LowLoad",
        "Like Mixed but the submission rate is halved (1 job / 20 s).",
        policies=_BATCH_MIXED,
        submission_interval=20.0,
    )
    add_pair(
        "HighLoad",
        "Like Mixed but the submission rate is doubled (1 job / 5 s).",
        policies=_BATCH_MIXED,
        submission_interval=5.0,
    )
    add_pair(
        "DeadlineH",
        "Like Deadline but with deadlines closer to the expected completion "
        "time (2h30m average slack instead of 7h30m).",
        policies=("EDF",),
        deadline_slack_mean=2.5 * HOUR,
    )

    # -- scalability ------------------------------------------------------
    add_pair(
        "Expanding",
        "Like Mixed but the network grows from 500 to 700 nodes "
        "(one join every 50 s from 1h23m to about 4h10m).",
        policies=_BATCH_MIXED,
        expanding=True,
    )

    # -- ERT accuracy -----------------------------------------------------
    add_pair(
        "Precise",
        "Like Mixed but the actual running time matches the ERT exactly.",
        policies=_BATCH_MIXED,
        epsilon=0.0,
    )
    add_pair(
        "Accuracy25",
        "Like Mixed but the relative ERT error is +/-25%.",
        policies=_BATCH_MIXED,
        epsilon=0.25,
    )
    add_pair(
        "AccuracyBad",
        "Like Mixed but the ERT is always lower than the actual running time.",
        policies=_BATCH_MIXED,
        epsilon=0.1,
        optimistic_only=True,
    )

    # -- rescheduling-policy sensitivity (rescheduling always on) --------
    add(
        Scenario(
            name="iInform1",
            description="Like iMixed but INFORM covers only 1 job per round.",
            policies=_BATCH_MIXED,
            rescheduling=True,
            inform_count=1,
        )
    )
    add(
        Scenario(
            name="iInform4",
            description="Like iMixed but INFORM covers up to 4 jobs per round.",
            policies=_BATCH_MIXED,
            rescheduling=True,
            inform_count=4,
        )
    )
    add(
        Scenario(
            name="iInform15m",
            description="Like iMixed but rescheduling requires a 15 m gain.",
            policies=_BATCH_MIXED,
            rescheduling=True,
            improvement_threshold=15 * MINUTE,
        )
    )
    add(
        Scenario(
            name="iInform30m",
            description="Like iMixed but rescheduling requires a 30 m gain.",
            policies=_BATCH_MIXED,
            rescheduling=True,
            improvement_threshold=30 * MINUTE,
        )
    )

    catalog = {scenario.name: scenario for scenario in scenarios}
    if len(catalog) != len(scenarios):  # pragma: no cover - sanity
        raise ConfigurationError("duplicate scenario names in catalog")
    return catalog


#: All 26 scenarios of Table II, keyed by name.
SCENARIOS: Dict[str, Scenario] = _build_catalog()


def get_scenario(name: str) -> Scenario:
    """Look up a Table II scenario by its exact name (e.g. ``iMixed``)."""
    scenario = SCENARIOS.get(name)
    if scenario is None:
        raise ConfigurationError(
            f"unknown scenario {name!r}; known: {sorted(SCENARIOS)}"
        )
    return scenario


def scenario_names() -> List[str]:
    """Names of all Table II scenarios, in catalog order."""
    return list(SCENARIOS)


def with_rescheduling(name: str) -> Scenario:
    """The dynamic-rescheduling twin of a scenario (``X`` → ``iX``)."""
    return get_scenario(name if name.startswith("i") else f"i{name}")
