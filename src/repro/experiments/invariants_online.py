"""Streaming protocol invariants: catch violations *during* a run.

:mod:`repro.experiments.invariants` inspects the final grid state after a
run ends — fine for a 30-second simulation, useless for a soak run that
is supposed to stay up for hours: a double execution in minute two
should stop the run in minute two, not pass silently until teardown.

:class:`OnlineInvariantChecker` is a trace-bus *sink wrapper*: it sits
between the :class:`~repro.obs.Tracer` and the real sink, inspects every
event as it is emitted, forwards it unchanged, and accumulates
human-readable violation strings the moment an invariant breaks.  All
state is bounded (completion memory is an LRU of ``max_tracked_jobs``
entries; everything else is proportional to *currently unresolved* jobs
and nodes), so the checker can ride along a multi-hour soak without
growing.

The checks, all incremental:

* **Double execution** — a second ``job.finished`` for a job id that
  already finished (cross-node and cross-incarnation alike).
* **Stale-incarnation delivery** — a ``msg.delivered`` whose destination
  is currently crashed (between its ``node.crashed`` and
  ``node.restarted`` events).  Needs transport-level tracing; degrades
  to a no-op below that level.
* **Orphan-adoption convergence** — a ``job.orphaned`` that is neither
  adopted nor otherwise resolved within ``orphan_grace`` protocol
  seconds.
* **Tracking quiescence** — a fail-safe ``probe.sent`` for a job that
  finished more than ``settle`` protocol seconds earlier (leaked
  tracking state resubmits finished jobs eventually).

Each distinct violation is reported once; ``on_violation`` (when given)
fires on every *new* violation so a soak harness can abort the run
immediately.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Callable, Dict, List, Optional, Set, Tuple

from ..types import JobId, NodeId

__all__ = ["OnlineInvariantChecker"]


class OnlineInvariantChecker:
    """Trace-sink wrapper that checks invariants event by event.

    ``sink`` is the downstream sink every event is forwarded to
    (``None`` discards them — checker-only mode, e.g. in tests).  Pass
    the checker *as* the tracer's sink::

        sink = obs.make_sink()
        checker = OnlineInvariantChecker(sink)
        tracer = Tracer(obs, sink=checker)

    ``settle`` and ``orphan_grace`` are protocol seconds (matching the
    post-run checker's ``settle`` semantics); ``max_tracked_jobs``
    bounds the finished-job memory; ``on_violation`` is called with each
    new violation string as it is found.
    """

    def __init__(
        self,
        sink=None,
        *,
        settle: float = 1800.0,
        orphan_grace: float = 2400.0,
        max_tracked_jobs: int = 4096,
        on_violation: Optional[Callable[[str], None]] = None,
    ) -> None:
        self.sink = sink
        self.settle = settle
        self.orphan_grace = orphan_grace
        self.max_tracked_jobs = max_tracked_jobs
        self.on_violation = on_violation
        #: Violation strings, in discovery order (empty = clean so far).
        self.violations: List[str] = []
        #: Events inspected (forwarded or not).
        self.checked = 0
        self._now = 0.0
        #: Finished jobs, LRU-bounded: job -> (node, finish time).
        self._finished: "OrderedDict[JobId, Tuple[NodeId, float]]" = (
            OrderedDict()
        )
        #: Unresolved orphans: job -> orphaning time.
        self._orphans: Dict[JobId, float] = {}
        #: Nodes currently crashed (between node.crashed and
        #: node.restarted).
        self._down: Set[NodeId] = set()
        #: Dedup keys of violations already reported.
        self._flagged: Set[Tuple[str, object]] = set()

    # ------------------------------------------------------------------
    # Sink protocol
    # ------------------------------------------------------------------
    def append(self, event: Dict[str, Any]) -> None:
        """Inspect one trace event, then forward it downstream."""
        self._check(event)
        if self.sink is not None:
            self.sink.append(event)

    def close(self) -> None:
        """Run the final orphan sweep and close the downstream sink."""
        self._sweep_orphans(self._now)
        if self.sink is not None:
            self.sink.close()

    # ------------------------------------------------------------------
    # Incremental checks
    # ------------------------------------------------------------------
    def _violate(self, key: Tuple[str, object], text: str) -> None:
        if key in self._flagged:
            return
        self._flagged.add(key)
        self.violations.append(text)
        if self.on_violation is not None:
            self.on_violation(text)

    def _check(self, event: Dict[str, Any]) -> None:
        self.checked += 1
        name = event["ev"]
        t = event.get("t", self._now)
        if t > self._now:
            self._now = t

        if name == "job.finished":
            job = event["job"]
            prior = self._finished.get(job)
            if prior is not None:
                prior_node, prior_t = prior
                self._violate(
                    ("double_execution", job),
                    f"job {job} finished twice: node {prior_node} at "
                    f"t={prior_t:.0f}, then node {event['node']} at "
                    f"t={t:.0f} — double execution",
                )
            else:
                self._finished[job] = (event["node"], t)
                if len(self._finished) > self.max_tracked_jobs:
                    self._finished.popitem(last=False)
            self._orphans.pop(job, None)
        elif name in (
            "job.adopted",
            "job.lost",
            "job.unschedulable",
            "job.resubmitted",
        ):
            self._orphans.pop(event["job"], None)
        elif name == "job.orphaned":
            self._orphans.setdefault(event["job"], t)
        elif name == "node.crashed":
            self._down.add(event["node"])
        elif name == "node.restarted":
            self._down.discard(event["node"])
        elif name == "msg.delivered":
            dst = event["dst"]
            if dst in self._down:
                self._violate(
                    ("stale_delivery", dst),
                    f"message {event.get('type')} delivered to node {dst} "
                    f"at t={t:.0f} while it is crashed — stale-incarnation "
                    f"delivery",
                )
        elif name == "probe.sent":
            job = event["job"]
            finished = self._finished.get(job)
            if finished is not None and t - finished[1] > self.settle:
                self._violate(
                    ("quiescence", job),
                    f"probe for job {job} sent at t={t:.0f}, "
                    f"{t - finished[1]:.0f}s after it finished — tracking "
                    f"state leaked",
                )

        # Orphans are swept lazily against the event-time watermark, so
        # the sweep costs nothing while no orphan exists.
        if self._orphans:
            self._sweep_orphans(self._now)

    def _sweep_orphans(self, now: float) -> None:
        for job, since in list(self._orphans.items()):
            if now - since > self.orphan_grace:
                del self._orphans[job]
                self._violate(
                    ("orphan", job),
                    f"job {job} orphaned at t={since:.0f} and still not "
                    f"adopted or resolved {now - since:.0f}s later — "
                    f"orphan adoption failed to converge",
                )
