"""Unified, parallel, cached experiment execution.

The paper's evaluation is 26 scenarios × 10 seeds × 41 h 40 m of simulated
grid activity (§IV) — embarrassingly parallel across ``(spec, scale,
seed)`` work units, since every run is a deterministic function of its
seed.  This module is the single entry point for all of it:

* :func:`run` — one run of *any* experiment spec: a
  :class:`~repro.experiments.scenario.Scenario`, a Table II scenario name,
  a baseline name (``"centralized"`` / ``"multirequest"`` / ``"random"`` /
  ``"gossip"``), a :class:`~repro.experiments.failures.CrashPlan`, a
  :class:`~repro.experiments.failures.FailureModel`, a
  :class:`~repro.experiments.churn.ChurnPlan`, or a
  :class:`~repro.experiments.faults.FaultPlan`.  Returns the full live
  result object (``RunResult`` / ``BaselineRunResult``).
* :func:`run_batch` — the same spec fanned over many seeds, optionally
  across a spawn-safe process pool, returning picklable
  :class:`~repro.experiments.summary.RunSummary` objects in a
  :class:`BatchResult`.  The parallel path survives crashed and hung
  worker processes: each work unit gets an optional ``seed_timeout`` and
  one automatic retry, and anything that still fails is recorded in
  ``BatchResult.errors`` instead of raising away the seeds that did
  finish.
* :class:`ResultCache` — a content-addressed on-disk cache keyed by the
  hash of (spec, scale, seed, options, code version), so re-running
  figures, sweeps and comparisons is incremental.

Determinism guarantee: a parallel batch produces summaries bit-identical
(``RunSummary.to_dict()``) to the serial path for the same seeds — both
paths execute the exact same worker function on the exact same canonical
payload, and every simulation draws only from seed-derived RNG streams
(:mod:`repro.sim.rng`).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import warnings
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Union

from ..errors import ConfigurationError
from ..obs.trace import TraceConfig
from .churn import ChurnPlan, _run_churn_experiment
from .failures import (
    CrashPlan,
    FailureModel,
    _run_crash_experiment,
    _run_failure_experiment,
)
from .faults import FaultPlan, _run_fault_experiment
from .options import RunOptions
from .runner import _run_scenario
from .scale import ScenarioScale
from .scenario import Scenario
from .summary import RunSummary

__all__ = [
    "BatchResult",
    "ExperimentSpec",
    "ResultCache",
    "cache_key",
    "code_version",
    "default_cache_dir",
    "run",
    "run_batch",
]

#: Anything :func:`run` / :func:`run_batch` accepts as a spec.
ExperimentSpec = Union[
    Scenario, str, CrashPlan, FailureModel, ChurnPlan, FaultPlan
]

#: Bump to invalidate every cached result regardless of code hash.
_CACHE_FORMAT = 1

#: Option keys accepted per spec kind (unknown keys are a hard error —
#: a typo must never silently change what gets simulated or cached).
_ALLOWED_OPTIONS = {
    "scenario": {"config_overrides"},
    "baseline": {"policies", "submission_interval", "multirequest_k"},
    "crash": {"failsafe", "scenario_name", "probe_interval"},
    "churn": {"failsafe", "scenario_name"},
    "faults": {"reliability", "failsafe", "scenario_name", "probe_interval"},
    "failures": {
        "failsafe",
        "adoption",
        "reliability",
        "scenario_name",
        "probe_interval",
        "deadline_slack",
        "fault_plan",
    },
}

_code_version_cache: Optional[str] = None


def code_version() -> str:
    """Content hash of the installed ``repro`` sources (cache key input).

    Hashing file contents (not mtimes, not git state) means any source
    edit — including uncommitted ones — invalidates cached results, while
    re-checkouts of identical code keep hitting.

    Interpreter artifacts (``__pycache__`` directories, ``.pyc`` files) are
    excluded: they vary with the Python version and with *when* modules
    were imported, which would make the version hash unstable across
    otherwise identical checkouts.
    """
    global _code_version_cache
    if _code_version_cache is None:
        package_root = Path(__file__).resolve().parent.parent
        digest = hashlib.sha256()
        for path in sorted(package_root.rglob("*.py")):
            if "__pycache__" in path.parts or path.suffix == ".pyc":
                continue
            digest.update(path.relative_to(package_root).as_posix().encode())
            digest.update(b"\0")
            digest.update(path.read_bytes())
            digest.update(b"\0")
        _code_version_cache = digest.hexdigest()[:16]
    return _code_version_cache


def default_cache_dir() -> Path:
    """The on-disk cache location: ``$ARIA_CACHE_DIR`` or
    ``~/.cache/aria-repro``."""
    env = os.environ.get("ARIA_CACHE_DIR")
    if env:
        return Path(env)
    return Path.home() / ".cache" / "aria-repro"


def cache_key(payload: Dict[str, Any]) -> str:
    """Content address of one work unit: SHA-256 over the canonical JSON
    of the payload plus the cache format and code version."""
    canonical = json.dumps(
        {
            "format": _CACHE_FORMAT,
            "code": code_version(),
            "payload": payload,
        },
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


class ResultCache:
    """Content-addressed on-disk store of :class:`RunSummary` payloads.

    One JSON file per work unit under ``root/<key[:2]>/<key>.json``; the
    file also embeds the originating payload for debuggability.  Writes
    are atomic (temp file + rename), so concurrent batches sharing a
    cache directory at worst redo work, never corrupt it.
    """

    def __init__(self, root: Optional[Union[str, Path]] = None) -> None:
        self.root = Path(root) if root is not None else default_cache_dir()
        #: Lookup / store counters (reset per instance), for hit-ratio
        #: reporting in benchmarks and tests.
        self.hits = 0
        self.misses = 0
        self.stores = 0

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def load(self, key: str) -> Optional[RunSummary]:
        """Return the cached summary for ``key``, or ``None`` on a miss
        (including unreadable/corrupt entries, which are treated as
        absent)."""
        path = self._path(key)
        try:
            data = json.loads(path.read_text())
            summary = RunSummary.from_dict(data["summary"])
        except (OSError, ValueError, KeyError, TypeError):
            self.misses += 1
            return None
        self.hits += 1
        return summary

    def store(
        self,
        key: str,
        summary: RunSummary,
        payload: Optional[Dict[str, Any]] = None,
    ) -> None:
        """Persist ``summary`` under ``key`` (atomically)."""
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        document = {"key": key, "payload": payload, "summary": summary.to_dict()}
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        tmp.write_text(json.dumps(document))
        os.replace(tmp, path)
        self.stores += 1

    def clear(self) -> int:
        """Delete every cached entry; returns the number removed."""
        removed = 0
        if self.root.exists():
            for path in self.root.glob("*/*.json"):
                path.unlink()
                removed += 1
        return removed

    def __len__(self) -> int:
        if not self.root.exists():
            return 0
        return sum(1 for _ in self.root.glob("*/*.json"))


# ----------------------------------------------------------------------
# Spec normalization
# ----------------------------------------------------------------------
def _spec_payload(spec: ExperimentSpec, options: Dict[str, Any]) -> Dict[str, Any]:
    """Canonical JSON-able description of (spec, options).

    The payload is both the pickle-free unit shipped to worker processes
    and the content hashed for the cache key, so it must round-trip the
    spec exactly.
    """
    if isinstance(spec, str):
        from ..baselines.runner import BASELINE_NAMES

        from .catalog import SCENARIOS

        if spec in SCENARIOS:
            spec = SCENARIOS[spec]
        elif spec in BASELINE_NAMES:
            allowed = _ALLOWED_OPTIONS["baseline"]
            _check_options("baseline", options, allowed)
            normalized = dict(options)
            if "policies" in normalized:
                normalized["policies"] = list(normalized["policies"])
            return {"kind": "baseline", "baseline": spec, "options": normalized}
        else:
            raise ConfigurationError(
                f"unknown experiment spec {spec!r}: not a Table II scenario "
                f"or baseline name"
            )
    if isinstance(spec, Scenario):
        _check_options("scenario", options, _ALLOWED_OPTIONS["scenario"])
        overrides = options.get("config_overrides")
        return {
            "kind": "scenario",
            "scenario": spec.to_dict(),
            "config_overrides": dict(overrides) if overrides else None,
        }
    if isinstance(spec, CrashPlan):
        _check_options("crash", options, _ALLOWED_OPTIONS["crash"])
        return {
            "kind": "crash",
            "plan": dataclasses.asdict(spec),
            "failsafe": bool(options.get("failsafe", False)),
            "scenario_name": options.get("scenario_name", "iMixed"),
            "probe_interval": options.get("probe_interval"),
        }
    if isinstance(spec, ChurnPlan):
        _check_options("churn", options, _ALLOWED_OPTIONS["churn"])
        return {
            "kind": "churn",
            "plan": dataclasses.asdict(spec),
            "failsafe": bool(options.get("failsafe", False)),
            "scenario_name": options.get("scenario_name", "iMixed"),
        }
    if isinstance(spec, FaultPlan):
        _check_options("faults", options, _ALLOWED_OPTIONS["faults"])
        return {
            "kind": "faults",
            "plan": dataclasses.asdict(spec),
            "reliability": bool(options.get("reliability", True)),
            "failsafe": bool(options.get("failsafe", True)),
            "scenario_name": options.get("scenario_name", "iMixed"),
            "probe_interval": options.get("probe_interval"),
        }
    if isinstance(spec, FailureModel):
        _check_options("failures", options, _ALLOWED_OPTIONS["failures"])
        fault_plan = options.get("fault_plan")
        if fault_plan is not None and not isinstance(fault_plan, FaultPlan):
            raise ConfigurationError(
                f"fault_plan must be a FaultPlan, got "
                f"{type(fault_plan).__name__}"
            )
        return {
            "kind": "failures",
            "model": dataclasses.asdict(spec),
            "failsafe": bool(options.get("failsafe", True)),
            "adoption": bool(options.get("adoption", True)),
            "reliability": bool(options.get("reliability", True)),
            "scenario_name": options.get("scenario_name", "iMixed"),
            "probe_interval": options.get("probe_interval"),
            "deadline_slack": options.get("deadline_slack"),
            "fault_plan": (
                dataclasses.asdict(fault_plan)
                if fault_plan is not None
                else None
            ),
        }
    raise ConfigurationError(
        f"unsupported experiment spec type {type(spec).__name__}; expected "
        f"Scenario, scenario/baseline name, CrashPlan, FailureModel, "
        f"ChurnPlan or FaultPlan"
    )


def _check_options(kind: str, options: Dict[str, Any], allowed) -> None:
    unknown = set(options) - allowed
    if unknown:
        raise ConfigurationError(
            f"unknown option(s) {sorted(unknown)} for {kind} spec; "
            f"allowed: {sorted(allowed)}"
        )


def _attach_trace(payload: Dict[str, Any], trace, seed: int) -> None:
    """Embed a seed-resolved :class:`TraceConfig` into one work unit.

    The trace config joins the canonical payload — and therefore the
    cache key — so a traced run is never silently served from (or stored
    as) an untraced cache entry.  Untraced payloads carry no ``trace``
    key at all, keeping their keys identical to pre-observability ones.
    """
    if trace is None:
        return
    if not isinstance(trace, TraceConfig):
        raise ConfigurationError(
            f"trace must be a repro.obs.TraceConfig, got "
            f"{type(trace).__name__}"
        )
    if payload["kind"] == "baseline":
        raise ConfigurationError(
            "tracing is not supported for baseline runs (baselines bypass "
            "the ARiA grid; there is no protocol activity to record)"
        )
    payload["trace"] = trace.resolved(seed).to_dict()


def _run_payload(payload: Dict[str, Any]):
    """Execute one canonical work unit, returning the live result object."""
    scale = ScenarioScale(**payload["scale"])
    seed = payload["seed"]
    kind = payload["kind"]
    obs = (
        TraceConfig.from_dict(payload["trace"])
        if payload.get("trace") is not None
        else None
    )
    if kind == "scenario":
        return _run_scenario(
            Scenario.from_dict(payload["scenario"]),
            scale,
            seed,
            config_overrides=payload.get("config_overrides"),
            obs=obs,
        )
    if kind == "baseline":
        from ..baselines.runner import _run_baseline

        options = dict(payload.get("options") or {})
        if "policies" in options:
            options["policies"] = tuple(options["policies"])
        return _run_baseline(payload["baseline"], scale, seed, **options)
    if kind == "crash":
        kwargs = {}
        if payload.get("probe_interval") is not None:
            kwargs["probe_interval"] = payload["probe_interval"]
        return _run_crash_experiment(
            payload["failsafe"],
            scale,
            seed,
            plan=CrashPlan(**payload["plan"]),
            scenario_name=payload["scenario_name"],
            obs=obs,
            **kwargs,
        )
    if kind == "churn":
        return _run_churn_experiment(
            scale,
            seed,
            plan=ChurnPlan(**payload["plan"]),
            scenario_name=payload["scenario_name"],
            failsafe=payload["failsafe"],
            obs=obs,
        )
    if kind == "faults":
        kwargs = {}
        if payload.get("probe_interval") is not None:
            kwargs["probe_interval"] = payload["probe_interval"]
        return _run_fault_experiment(
            scale,
            seed,
            plan=FaultPlan(**payload["plan"]),
            scenario_name=payload["scenario_name"],
            reliability=payload["reliability"],
            failsafe=payload["failsafe"],
            obs=obs,
            **kwargs,
        )
    if kind == "failures":
        kwargs = {}
        if payload.get("probe_interval") is not None:
            kwargs["probe_interval"] = payload["probe_interval"]
        if payload.get("deadline_slack") is not None:
            kwargs["deadline_slack"] = payload["deadline_slack"]
        if payload.get("fault_plan") is not None:
            kwargs["fault_plan"] = FaultPlan(**payload["fault_plan"])
        return _run_failure_experiment(
            FailureModel(**payload["model"]),
            scale,
            seed,
            scenario_name=payload["scenario_name"],
            failsafe=payload["failsafe"],
            adoption=payload["adoption"],
            reliability=payload["reliability"],
            obs=obs,
            **kwargs,
        )
    raise ConfigurationError(f"unknown work-unit kind {kind!r}")


def _inject_worker_fault(spec: str, seed: int) -> None:
    """Test hook: make this worker misbehave for a designated seed.

    ``$ARIA_TEST_WORKER_FAULT`` formats (exercised by the batch-hardening
    tests; a no-op for every other seed):

    * ``crash:<seed>`` — hard-exit the worker process (simulates a
      segfault / OOM kill) every time that seed runs.
    * ``hang:<seed>`` — sleep forever (simulates a wedged worker; only a
      ``seed_timeout`` can recover the batch).
    * ``crash_once:<seed>:<marker-path>`` — hard-exit the first time,
      succeed on the retry (the marker file records the first strike).
    """
    parts = spec.split(":")
    kind = parts[0]
    if kind not in ("crash", "hang", "crash_once") or int(parts[1]) != seed:
        return
    if kind == "crash":
        os._exit(53)
    if kind == "hang":
        import time

        while True:  # pragma: no cover - killed by the batch timeout
            time.sleep(3600)
    marker = Path(parts[2])
    if not marker.exists():
        marker.write_text("struck")
        os._exit(53)


def _execute_payload(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Worker entry point: run one unit, return ``RunSummary.to_dict()``.

    Module-level (picklable by reference) and dict-in / dict-out, so the
    serial path and the process-pool path traverse the exact same code —
    the basis of the bit-identical determinism guarantee.
    """
    fault = os.environ.get("ARIA_TEST_WORKER_FAULT")
    if fault:
        _inject_worker_fault(fault, payload["seed"])
    return _run_payload(payload).summary().to_dict()


def _resolve_parallel(parallel: Optional[int], pending: int) -> int:
    """Number of worker processes to use for ``pending`` cache misses."""
    if parallel is None:
        env = os.environ.get("ARIA_PARALLEL")
        parallel = int(env) if env else 1
    if parallel <= 0:
        parallel = os.cpu_count() or 1
    return max(1, min(parallel, pending))


def _resolve_cache(cache) -> Optional[ResultCache]:
    """Map the ``cache`` argument to a :class:`ResultCache` or ``None``.

    ``None`` (the default) enables the default on-disk cache; ``False``
    disables caching; a :class:`ResultCache` instance is used as-is.
    """
    if cache is None:
        return ResultCache()
    if cache is False:
        return None
    if isinstance(cache, ResultCache):
        return cache
    return ResultCache(cache)


# ----------------------------------------------------------------------
# Public entry points
# ----------------------------------------------------------------------
def _resolve_options(
    options: Optional[RunOptions], legacy: Dict[str, Any], what: str
) -> RunOptions:
    """Fold legacy loose keyword options into one :class:`RunOptions`.

    Loose spec kwargs (``run(spec, failsafe=True)``) still work but are
    deprecated; they are validated and merged over ``options`` so a
    half-migrated call keeps its meaning.
    """
    if legacy:
        RunOptions.from_legacy(legacy)  # validate names before warning
        warnings.warn(
            f"passing experiment options to {what} as loose keyword "
            "arguments is deprecated; pass options=RunOptions(...) "
            "instead",
            DeprecationWarning,
            stacklevel=3,
        )
        options = (
            RunOptions(**legacy)
            if options is None
            else options.merged(**legacy)
        )
    return options if options is not None else RunOptions()


def run(
    spec: ExperimentSpec,
    scale: Optional[ScenarioScale] = None,
    *,
    seed: int = 0,
    options: Optional[RunOptions] = None,
    profile: bool = False,
    profile_out: Optional[str] = None,
    trace: Optional[TraceConfig] = None,
    **legacy_options,
):
    """One run of any experiment spec; returns the live result object.

    ``spec`` is a :class:`Scenario` (or Table II scenario name), a
    baseline name, a :class:`CrashPlan`, a :class:`ChurnPlan`, or a
    :class:`FaultPlan`.  ``options`` is a :class:`RunOptions` carrying
    the per-kind spec options — ``config_overrides`` (scenario);
    ``policies`` / ``submission_interval`` / ``multirequest_k``
    (baseline); ``failsafe`` / ``scenario_name`` / ``probe_interval``
    (crash); ``failsafe`` / ``scenario_name`` (churn); ``reliability`` /
    ``failsafe`` / ``scenario_name`` / ``probe_interval`` (faults) — the
    engine rejects options that do not apply to the spec's kind.  Loose
    keyword options are deprecated (they merge over ``options`` with a
    :class:`DeprecationWarning`).

    With ``profile=True`` the run executes under :mod:`cProfile` and the
    top 20 functions by cumulative time are printed to stderr afterwards
    (the simulated outcome is unaffected — profiling only observes).
    ``profile_out`` saves the raw stats to a file instead (loadable with
    :class:`pstats.Stats`); it implies profiling and composes with
    ``profile=True`` (print *and* save).

    ``trace`` is a :class:`~repro.obs.TraceConfig`: events are recorded
    to its sink and the metrics-registry snapshot is surfaced as
    ``RunSummary.telemetry`` (not supported for baseline specs).
    ``trace`` / ``profile`` / ``profile_out`` may come either as direct
    arguments or via ``options``; direct arguments win.

    Returns a :class:`~repro.experiments.runner.RunResult` (scenario,
    crash, churn) or :class:`~repro.baselines.runner.BaselineRunResult`
    (baseline); call ``.summary()`` on either for the picklable hand-off.
    """
    opts = _resolve_options(options, legacy_options, "run()")
    trace = trace if trace is not None else opts.trace
    profile = profile or opts.profile
    profile_out = profile_out if profile_out is not None else opts.profile_out
    scale = scale if scale is not None else ScenarioScale.paper()
    payload = _spec_payload(spec, opts.spec_options())
    payload["scale"] = dataclasses.asdict(scale)
    payload["seed"] = seed
    _attach_trace(payload, trace, seed)
    if not profile and profile_out is None:
        return _run_payload(payload)
    import cProfile
    import pstats
    import sys

    profiler = cProfile.Profile()
    profiler.enable()
    try:
        result = _run_payload(payload)
    finally:
        profiler.disable()
        if profile_out is not None:
            pstats.Stats(profiler).dump_stats(profile_out)
        if profile:
            stats = pstats.Stats(profiler, stream=sys.stderr)
            stats.sort_stats("cumulative").print_stats(20)
    return result


def _resolve_progress(progress, total: int):
    """Map the ``progress`` argument to a ``callback(done, total)``.

    ``None``/``False`` disables reporting; ``True`` prints
    ``[done/total]`` lines to stderr; a callable is used as-is.
    """
    if progress is None or progress is False:
        return None
    if callable(progress):
        return progress
    import sys

    def printer(done: int, total: int = total) -> None:
        print(f"[{done}/{total}] runs complete", file=sys.stderr, flush=True)

    return printer


class BatchResult(List[RunSummary]):
    """Per-seed summaries of a batch, plus any per-seed failures.

    A plain list of :class:`RunSummary` in ``seeds`` order (failed seeds
    omitted), so every existing consumer of ``run_batch`` keeps working
    unchanged.  ``errors`` maps each failed seed to a human-readable
    reason (worker crash, hang past ``seed_timeout``, or a raised
    exception) — a batch with one poisoned seed degrades to one missing
    summary instead of throwing away the other nine.
    """

    def __init__(self, summaries=(), errors: Optional[Dict[int, str]] = None):
        super().__init__(summaries)
        #: seed → failure description, for seeds with no summary.
        self.errors: Dict[int, str] = dict(errors or {})

    @property
    def ok(self) -> bool:
        """True when every seed produced a summary."""
        return not self.errors


def _kill_pool(pool) -> None:
    """Forcibly tear down a process pool, hung workers included.

    ``shutdown()`` alone joins workers, which never returns while one is
    wedged in an infinite loop — so the worker processes are killed first.
    """
    for process in list(
        (getattr(pool, "_processes", None) or {}).values()
    ):
        process.kill()
    pool.shutdown(wait=False, cancel_futures=True)


def run_batch(
    spec: ExperimentSpec,
    scale: Optional[ScenarioScale] = None,
    *,
    seeds: Sequence[int] = (0,),
    options: Optional[RunOptions] = None,
    parallel: Optional[int] = None,
    cache=None,
    trace: Optional[TraceConfig] = None,
    progress=None,
    seed_timeout: Optional[float] = None,
    **legacy_options,
) -> BatchResult:
    """Run ``spec`` once per seed; returns a :class:`BatchResult` of
    :class:`RunSummary` objects.

    ``parallel`` — worker processes for cache misses: ``None`` (default)
    honours ``$ARIA_PARALLEL`` (else serial in-process), ``0`` uses every
    core, ``n`` uses ``n`` spawn-context workers.  ``cache`` — ``None``
    uses the default on-disk :class:`ResultCache`, ``False`` disables
    caching, a :class:`ResultCache` (or path) selects a specific store.

    ``trace`` — a :class:`~repro.obs.TraceConfig` applied to every seed;
    give file sinks a ``{seed}`` placeholder in ``path`` so each work
    unit writes its own trace.  The config joins the cache key, so
    traced and untraced results never mix.  ``progress`` — ``True``
    prints ``[done/total]`` lines to stderr as work units finish (cache
    hits count immediately); a ``callback(done, total)`` receives the
    same notifications.

    The parallel path is hardened against misbehaving workers: a work
    unit whose worker process dies, raises, or (with ``seed_timeout``
    set, in wall-clock seconds) fails to finish in time is retried once
    on a fresh pool; a second strike records the seed in
    ``BatchResult.errors`` instead of raising, so the surviving seeds'
    summaries still come back.  A dying worker breaks the whole pool and
    fails every in-flight future with it, so when more than one unit is
    implicated none of them is charged an attempt — they are quarantined
    and re-run one at a time, where the next failure attributes exactly.
    On the serial path (``workers <= 1``) exceptions propagate as
    before — ``seed_timeout`` needs a killable worker process to
    enforce.

    Summaries come back in ``seeds`` order and are bit-identical
    (``to_dict()``) whether they were computed serially, in parallel, or
    served from the cache.

    Like :func:`run`, spec options come via ``options`` (a
    :class:`RunOptions`; loose keyword options are deprecated).  The
    batch mechanics (``parallel`` / ``cache`` / ``progress`` /
    ``seed_timeout`` / ``trace``) may come either as direct arguments or
    via ``options``; direct arguments win.
    """
    opts = _resolve_options(options, legacy_options, "run_batch()")
    trace = trace if trace is not None else opts.trace
    parallel = parallel if parallel is not None else opts.parallel
    cache = cache if cache is not None else opts.cache
    progress = progress if progress is not None else opts.progress
    seed_timeout = (
        seed_timeout if seed_timeout is not None else opts.seed_timeout
    )
    scale = scale if scale is not None else ScenarioScale.paper()
    base_payload = _spec_payload(spec, opts.spec_options())
    cache_store = _resolve_cache(cache)

    seeds = list(seeds)
    report = _resolve_progress(progress, len(seeds))
    done = 0
    results: Dict[int, RunSummary] = {}
    failures: Dict[int, str] = {}
    pending: List[tuple] = []
    for index, seed in enumerate(seeds):
        payload = dict(base_payload)
        payload["scale"] = dataclasses.asdict(scale)
        payload["seed"] = seed
        _attach_trace(payload, trace, seed)
        key = cache_key(payload)
        if cache_store is not None:
            cached = cache_store.load(key)
            if cached is not None:
                results[index] = cached
                done += 1
                if report is not None:
                    report(done, len(seeds))
                continue
        pending.append((index, key, payload))

    if pending:
        workers = _resolve_parallel(parallel, len(pending))
        outputs: List[Optional[Dict[str, Any]]] = [None] * len(pending)
        if workers <= 1:
            for position, (_, _, payload) in enumerate(pending):
                outputs[position] = _execute_payload(payload)
                done += 1
                if report is not None:
                    report(done, len(seeds))
        else:
            import multiprocessing
            import time
            from concurrent.futures import (
                FIRST_COMPLETED,
                BrokenExecutor,
                ProcessPoolExecutor,
            )
            from concurrent.futures import wait as futures_wait

            context = multiprocessing.get_context("spawn")
            max_attempts = 2  # one automatic retry per work unit
            attempts = [0] * len(pending)
            queue = list(range(len(pending)))
            suspects: List[int] = []  # re-run one at a time
            errors_at: Dict[int, str] = {}  # position → reason

            def settle(position: int, reason: str) -> None:
                """Retry a definitively-failed unit, or record it."""
                nonlocal done
                if attempts[position] < max_attempts:
                    suspects.append(position)
                    return
                errors_at[position] = reason
                done += 1
                if report is not None:
                    report(done, len(seeds))

            pool = ProcessPoolExecutor(max_workers=workers, mp_context=context)
            futures: Dict[Any, int] = {}  # future → position
            deadlines: Dict[Any, float] = {}

            def submit(position: int) -> None:
                attempts[position] += 1
                future = pool.submit(_execute_payload, pending[position][2])
                futures[future] = position
                if seed_timeout is not None:
                    deadlines[future] = time.monotonic() + seed_timeout

            try:
                while queue or suspects or futures:
                    # Keep at most ``workers`` units in flight (the pool
                    # never buffers work, minimizing the blast radius of
                    # a dying worker); suspects run strictly solo so
                    # their failures attribute exactly.
                    if queue:
                        while queue and len(futures) < workers:
                            submit(queue.pop(0))
                    elif suspects and not futures:
                        submit(suspects.pop(0))
                    timeout = None
                    if deadlines:
                        timeout = max(
                            0.0, min(deadlines.values()) - time.monotonic()
                        )
                    finished, _ = futures_wait(
                        set(futures),
                        timeout=timeout,
                        return_when=FIRST_COMPLETED,
                    )
                    victims: List[int] = []
                    for future in finished:
                        position = futures.pop(future)
                        deadlines.pop(future, None)
                        try:
                            outputs[position] = future.result()
                        except BrokenExecutor:
                            victims.append(position)
                            continue
                        except Exception as exc:
                            settle(
                                position, f"{type(exc).__name__}: {exc}"
                            )
                            continue
                        done += 1
                        if report is not None:
                            report(done, len(seeds))
                    timed_out: List[int] = []
                    if deadlines:
                        now = time.monotonic()
                        for future in [
                            f for f, d in deadlines.items() if d <= now
                        ]:
                            timed_out.append(futures.pop(future))
                            del deadlines[future]
                    for position in timed_out:
                        settle(
                            position,
                            f"timed out after {seed_timeout:.0f}s",
                        )
                    if len(victims) == 1 and not futures and not timed_out:
                        # Nothing else was in flight: the crash is this
                        # unit's own doing.
                        settle(
                            victims[0],
                            "worker process died (BrokenProcessPool)",
                        )
                    elif victims:
                        # The dying worker failed every in-flight future
                        # with it — no telling which unit crashed, so
                        # quarantine them all, uncharged, for solo
                        # re-runs.
                        for position in victims:
                            attempts[position] -= 1
                        suspects.extend(victims)
                    if victims or timed_out:
                        # The pool is broken (crash) or owned by a hung
                        # worker (timeout); survivors in flight are
                        # quarantined uncharged too.
                        for position in futures.values():
                            attempts[position] -= 1
                            suspects.append(position)
                        futures.clear()
                        deadlines.clear()
                        _kill_pool(pool)
                        pool = ProcessPoolExecutor(
                            max_workers=workers, mp_context=context
                        )
            finally:
                _kill_pool(pool)
            for position, reason in errors_at.items():
                index = pending[position][0]
                failures[seeds[index]] = reason
        for (index, key, payload), output in zip(pending, outputs):
            if output is None:
                continue
            summary = RunSummary.from_dict(output)
            if cache_store is not None:
                cache_store.store(key, summary, payload)
            results[index] = summary

    return BatchResult(
        (
            results[index]
            for index in range(len(seeds))
            if index in results
        ),
        errors=failures,
    )
