"""Data behind every figure of the paper's evaluation (Figures 1–10).

Each ``figN_*`` function simulates the scenarios that figure compares
(averaging over ``seeds``; the paper uses 10 runs) and returns a figure
object whose ``render()`` prints the same series/rows the paper plots.
Runs go through the batch engine (:mod:`repro.experiments.engine`), so
they are served incrementally from the on-disk result cache and can fan
out across worker processes (``parallel=``); summaries are additionally
cached per (scenario, scale, seeds) within the process, so figures
sharing scenarios — e.g. Figures 1/2/3 — assemble each scenario only
once.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from .aggregate import ScenarioSummary, summarize_runs
from .catalog import get_scenario
from .engine import run_batch
from .report import fmt_hours, fmt_opt, render_series, render_table
from .scale import ScenarioScale

__all__ = [
    "SeriesFigure",
    "TableFigure",
    "scenario_summary",
    "fig1_completed_jobs",
    "fig2_completion_time",
    "fig3_idle_nodes",
    "fig4_deadlines",
    "fig5_expanding",
    "fig6_load_idle",
    "fig7_load_completion",
    "fig8_resched_policies",
    "fig9_ert_accuracy",
    "fig10_traffic",
]

_SUMMARY_CACHE: Dict[Tuple[str, ScenarioScale, Tuple[int, ...]], ScenarioSummary] = {}


def scenario_summary(
    name: str,
    scale: Optional[ScenarioScale] = None,
    seeds: Sequence[int] = (0,),
    parallel: Optional[int] = None,
) -> ScenarioSummary:
    """Simulate (or fetch cached) runs of a Table II scenario."""
    scale = scale if scale is not None else ScenarioScale.paper()
    key = (name, scale, tuple(seeds))
    summary = _SUMMARY_CACHE.get(key)
    if summary is None:
        scenario = get_scenario(name)
        summary = summarize_runs(
            run_batch(scenario, scale, seeds=seeds, parallel=parallel)
        )
        _SUMMARY_CACHE[key] = summary
    return summary


def _summaries(
    names: Sequence[str],
    scale: Optional[ScenarioScale],
    seeds: Sequence[int],
    parallel: Optional[int] = None,
) -> Dict[str, ScenarioSummary]:
    return {
        name: scenario_summary(name, scale, seeds, parallel)
        for name in names
    }


@dataclass
class SeriesFigure:
    """A time-series figure (completed jobs / idle nodes over time)."""

    title: str
    series: Dict[str, List[Tuple[float, float]]]
    #: Scenario submission windows, as in the paper's vertical bars/arrows.
    windows: Dict[str, Tuple[float, float]] = field(default_factory=dict)

    def render_chart(
        self,
        width: int = 72,
        height: int = 16,
        until: Optional[float] = None,
    ) -> str:
        """Render the series as an ASCII line chart."""
        from .plotting import ascii_line_chart

        return (
            self.title
            + "\n\n"
            + ascii_line_chart(
                self.series, width=width, height=height, until=until
            )
        )

    def render(self, points: int = 10, until: Optional[float] = None) -> str:
        """Render the series table; ``until`` zooms into the loaded phase."""
        lines = [self.title, ""]
        lines.append(render_series(self.series, points=points, until=until))
        if self.windows:
            lines.append("")
            lines.append("submission windows:")
            for name, (start, end) in self.windows.items():
                lines.append(
                    f"  {name}: {fmt_hours(start)} .. {fmt_hours(end)}"
                )
        return "\n".join(lines)


@dataclass
class TableFigure:
    """A bar-chart-like figure rendered as a table."""

    title: str
    headers: List[str]
    rows: List[List[str]]

    def render(self) -> str:
        """Render the figure as an aligned text table."""
        return f"{self.title}\n\n{render_table(self.headers, self.rows)}"


# ----------------------------------------------------------------------
# Scenario groups used by the figures
# ----------------------------------------------------------------------
POLICY_SET = ("FCFS", "SJF", "Mixed", "iFCFS", "iSJF", "iMixed")
DEADLINE_SET = ("Deadline", "iDeadline", "DeadlineH", "iDeadlineH")
LOAD_SET = ("LowLoad", "Mixed", "HighLoad", "iLowLoad", "iMixed", "iHighLoad")
RESCHED_SET = ("iInform1", "iMixed", "iInform4", "iInform15m", "iInform30m")
ACCURACY_SET = (
    "Precise",
    "Mixed",
    "Accuracy25",
    "AccuracyBad",
    "iPrecise",
    "iMixed",
    "iAccuracy25",
    "iAccuracyBad",
)
TRAFFIC_SET = (
    "Mixed",
    "iMixed",
    "iInform1",
    "iInform4",
    "HighLoad",
    "iHighLoad",
    "iExpanding",
    "iDeadline",
)


def _completion_table(
    title: str,
    names: Sequence[str],
    scale: Optional[ScenarioScale],
    seeds: Sequence[int],
    parallel: Optional[int] = None,
) -> TableFigure:
    """The Fig. 2/7/8/9 layout: completion time split into wait + exec."""
    summaries = _summaries(names, scale, seeds, parallel)
    rows = []
    for name, summary in summaries.items():
        rows.append(
            [
                name,
                fmt_hours(summary.average_waiting_time),
                fmt_hours(summary.average_execution_time),
                fmt_hours(summary.average_completion_time),
                fmt_opt(summary.reschedules, ".0f"),
            ]
        )
    return TableFigure(
        title=title,
        headers=["scenario", "waiting", "execution", "completion", "resched"],
        rows=rows,
    )


# ----------------------------------------------------------------------
# Figures 1-3: local scheduling policies
# ----------------------------------------------------------------------
def fig1_completed_jobs(scale=None, seeds=(0,), parallel=None) -> SeriesFigure:
    """Figure 1: completed jobs over time, six policy scenarios."""
    summaries = _summaries(POLICY_SET, scale, seeds, parallel)
    return SeriesFigure(
        title="Figure 1: Completed Jobs",
        series={n: s.completed_series for n, s in summaries.items()},
        windows={"all": summaries["Mixed"].submission_window},
    )


def fig2_completion_time(scale=None, seeds=(0,), parallel=None) -> TableFigure:
    """Figure 2: average job completion time (waiting vs execution)."""
    return _completion_table(
        "Figure 2: Job Completion Time", POLICY_SET, scale, seeds, parallel
    )


def fig3_idle_nodes(scale=None, seeds=(0,), parallel=None) -> SeriesFigure:
    """Figure 3: idle nodes over time, six policy scenarios."""
    summaries = _summaries(POLICY_SET, scale, seeds, parallel)
    return SeriesFigure(
        title="Figure 3: Idle Nodes",
        series={n: s.idle_series for n, s in summaries.items()},
        windows={"all": summaries["Mixed"].submission_window},
    )


# ----------------------------------------------------------------------
# Figure 4: deadline scheduling
# ----------------------------------------------------------------------
def fig4_deadlines(scale=None, seeds=(0,), parallel=None) -> TableFigure:
    """Figure 4: missed deadlines, lateness, missed time."""
    summaries = _summaries(DEADLINE_SET, scale, seeds, parallel)
    rows = []
    for name, summary in summaries.items():
        rows.append(
            [
                name,
                fmt_opt(summary.missed_deadlines, ".1f"),
                fmt_hours(summary.average_lateness),
                fmt_hours(summary.average_missed_time),
                fmt_opt(summary.completed_jobs, ".0f"),
            ]
        )
    return TableFigure(
        title="Figure 4: Deadline Scheduling Performance",
        headers=["scenario", "missed", "lateness", "missed time", "completed"],
        rows=rows,
    )


# ----------------------------------------------------------------------
# Figure 5: expanding network
# ----------------------------------------------------------------------
def fig5_expanding(scale=None, seeds=(0,), parallel=None) -> SeriesFigure:
    """Figure 5: idle nodes while the overlay grows 500 → 700."""
    summaries = _summaries(("Expanding", "iExpanding"), scale, seeds, parallel)
    series = {n: s.idle_series for n, s in summaries.items()}
    series["connected nodes"] = summaries["Expanding"].node_count_series
    return SeriesFigure(
        title="Figure 5: Idle Nodes (Expanding Network)",
        series=series,
        windows={"all": summaries["Expanding"].submission_window},
    )


# ----------------------------------------------------------------------
# Figures 6-7: load sensitivity
# ----------------------------------------------------------------------
def fig6_load_idle(scale=None, seeds=(0,), parallel=None) -> SeriesFigure:
    """Figure 6: idle nodes under low / normal / high load."""
    summaries = _summaries(LOAD_SET, scale, seeds, parallel)
    return SeriesFigure(
        title="Figure 6: Idle Nodes (Load)",
        series={n: s.idle_series for n, s in summaries.items()},
        windows={n: s.submission_window for n, s in summaries.items()},
    )


def fig7_load_completion(scale=None, seeds=(0,), parallel=None) -> TableFigure:
    """Figure 7: job completion time under load."""
    return _completion_table(
        "Figure 7: Job Completion Time (Load)", LOAD_SET, scale, seeds,
        parallel,
    )


# ----------------------------------------------------------------------
# Figure 8: rescheduling policies
# ----------------------------------------------------------------------
def fig8_resched_policies(scale=None, seeds=(0,), parallel=None) -> TableFigure:
    """Figure 8: completion time across INFORM count / threshold settings."""
    return _completion_table(
        "Figure 8: Job Completion Time (Rescheduling Policies)",
        RESCHED_SET,
        scale,
        seeds,
        parallel,
    )


# ----------------------------------------------------------------------
# Figure 9: ERT accuracy
# ----------------------------------------------------------------------
def fig9_ert_accuracy(scale=None, seeds=(0,), parallel=None) -> TableFigure:
    """Figure 9: sensitivity of the completion time to ERT accuracy."""
    return _completion_table(
        "Figure 9: Sensitivity to ERT", ACCURACY_SET, scale, seeds, parallel
    )


# ----------------------------------------------------------------------
# Figure 10: traffic
# ----------------------------------------------------------------------
def fig10_traffic(scale=None, seeds=(0,), parallel=None) -> TableFigure:
    """Figure 10: network overhead per message type."""
    summaries = _summaries(TRAFFIC_SET, scale, seeds, parallel)
    types = ["Request", "Accept", "Inform", "Assign"]
    rows = []
    for name, summary in summaries.items():
        rows.append(
            [name]
            + [
                f"{summary.traffic_bytes.get(t, 0.0) / 1e6:.2f}"
                for t in types
            ]
            + [f"{summary.bandwidth_bps:.0f}"]
        )
    return TableFigure(
        title="Figure 10: Network Overhead Comparison (MB by type)",
        headers=["scenario"] + types + ["bps/node"],
        rows=rows,
    )
