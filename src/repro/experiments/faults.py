"""Network-fault experiments: chaos-testing the protocol's robustness.

The paper's §III-D fail-safe sketch assumes messages either arrive or the
assignee crashed.  Real wide-area networks also *lose*, *duplicate*,
*burst-drop*, *delay* and *partition* traffic — and a dropped ASSIGN
silently strands a job, while a duplicated one can double-execute it.
This module injects exactly those faults:

* :class:`FaultPlan` — a frozen, cache-key-aware spec (the CrashPlan /
  ChurnPlan pattern) accepted by :func:`repro.experiments.run` /
  :func:`~repro.experiments.engine.run_batch`, describing i.i.d. loss,
  Gilbert–Elliott loss bursts, duplication, delay spikes, and overlay
  partition windows with heal.
* The experiment runner wires a
  :class:`~repro.net.faults.FaultInjector` (and, with
  ``reliability=True``, a :class:`~repro.net.reliability.ReliabilityLayer`
  for at-least-once control-plane delivery) into a standard scenario grid,
  runs it, and captures the :mod:`~repro.experiments.invariants` verdict
  in the result.

Safety bounds (argued in ``docs/FAULTS.md``): the reliability layer's
give-up horizon (≈ 3 minutes worst case) stays far below the fail-safe
``probe_interval`` so an undeliverable ASSIGN is provably dead before any
resubmission, and partitions no longer than ``probe_interval`` with a
``probe_timeout`` comfortably above the maximum retransmit gap cause at
most one probe miss — below the two-consecutive-miss resubmission
threshold.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Optional, Tuple

from ..errors import ConfigurationError
from ..net.faults import FaultInjector
from ..net.latency import SpikeLatency
from ..net.reliability import ReliabilityLayer
from ..net.transport import Transport
from ..types import MINUTE
from .catalog import get_scenario
from .invariants import check_invariants
from .runner import RunResult, build_grid
from .scale import ScenarioScale

__all__ = ["FaultPlan", "apply_fault_plan", "run_fault_experiment"]


@dataclass(frozen=True)
class FaultPlan:
    """What the network does to messages (all faults compose).

    ``loss`` is i.i.d. loss in the good state; the Gilbert–Elliott chain
    enters a bad state (loss at ``burst_loss``) with ``burst_enter`` per
    message and leaves it with ``burst_exit``.  ``duplicate`` delivers a
    second copy of a message; ``delay_spike`` adds an exponential extra
    delay with mean ``delay_spike_mean`` seconds.  During each
    ``(start, end)`` window in ``partitions`` the grid splits in two
    (each node on the minority side with probability
    ``partition_fraction``) and cross-cut messages are dropped until the
    window ends.
    """

    loss: float = 0.05
    duplicate: float = 0.02
    burst_enter: float = 0.0
    burst_exit: float = 0.25
    burst_loss: float = 0.9
    delay_spike: float = 0.0
    delay_spike_mean: float = 2.0
    partitions: Tuple[Tuple[float, float], ...] = ()
    partition_fraction: float = 0.3

    def __post_init__(self) -> None:
        # Normalise (JSON round trips turn the tuples into lists).
        object.__setattr__(
            self,
            "partitions",
            tuple(
                (float(start), float(end)) for start, end in self.partitions
            ),
        )
        for name in ("loss", "duplicate", "burst_enter", "delay_spike"):
            value = getattr(self, name)
            if not 0.0 <= value < 1.0:
                raise ConfigurationError(f"{name} {value} out of [0, 1)")
        if not 0.0 < self.burst_exit <= 1.0:
            raise ConfigurationError(
                f"burst_exit {self.burst_exit} out of (0, 1]"
            )
        if not 0.0 <= self.burst_loss <= 1.0:
            raise ConfigurationError(
                f"burst_loss {self.burst_loss} out of [0, 1]"
            )
        if self.delay_spike_mean <= 0:
            raise ConfigurationError(
                f"non-positive delay_spike_mean {self.delay_spike_mean}"
            )
        if not 0.0 < self.partition_fraction < 1.0:
            raise ConfigurationError(
                f"partition_fraction {self.partition_fraction} out of (0, 1)"
            )
        for start, end in self.partitions:
            if not 0 <= start < end:
                raise ConfigurationError(
                    f"invalid partition window ({start}, {end})"
                )

    @classmethod
    def chaos(cls, duration: float) -> "FaultPlan":
        """A representative everything-on plan for chaos smoke tests:
        5 % i.i.d. loss, occasional 90 %-loss bursts, 2 % duplication,
        rare 2 s delay spikes, and one 10-minute partition a third of the
        way into the run."""
        start = duration / 3.0
        return cls(
            loss=0.05,
            duplicate=0.02,
            burst_enter=0.005,
            burst_exit=0.2,
            burst_loss=0.9,
            delay_spike=0.01,
            delay_spike_mean=2.0,
            partitions=((start, start + 600.0),),
            partition_fraction=0.3,
        )


def apply_fault_plan(transport: Transport, plan: FaultPlan) -> FaultInjector:
    """Attach ``plan``'s fault models to ``transport``; returns the injector.

    Loss/burst/duplication/partitions go through a
    :class:`~repro.net.faults.FaultInjector`; delay spikes decorate the
    transport's latency model with :class:`~repro.net.latency.SpikeLatency`.

    Works on either backend: the injector is clock-generic, and the live
    transport exposes the same assignable ``latency`` seam (``None`` —
    real localhost TCP only — is treated as a zero base delay, so spikes
    become pure injected delay on the wire).
    """
    injector = FaultInjector(transport.clock, plan)
    transport.faults = injector
    if plan.delay_spike:
        base = transport.latency
        if base is None:
            from ..net.latency import ConstantLatency

            base = ConstantLatency(0.0)
        transport.latency = SpikeLatency(
            base, plan.delay_spike, plan.delay_spike_mean
        )
    return injector


def run_fault_experiment(
    scale: Optional[ScenarioScale] = None,
    seed: int = 0,
    plan: Optional[FaultPlan] = None,
    scenario_name: str = "iMixed",
    reliability: bool = True,
    failsafe: bool = True,
    probe_interval: float = 10 * MINUTE,
) -> RunResult:
    """One fault-injected run of ``scenario_name``.

    Prefer :func:`repro.experiments.run` with a :class:`FaultPlan` spec:
    ``run(FaultPlan(...), scale, seed=..., reliability=True)``.
    """
    return _run_fault_experiment(
        scale, seed, plan, scenario_name, reliability, failsafe,
        probe_interval,
    )


def _run_fault_experiment(
    scale: Optional[ScenarioScale] = None,
    seed: int = 0,
    plan: Optional[FaultPlan] = None,
    scenario_name: str = "iMixed",
    reliability: bool = True,
    failsafe: bool = True,
    probe_interval: float = 10 * MINUTE,
    obs=None,
) -> RunResult:
    """One fault-injected run (internal, engine-dispatched impl).

    With ``reliability=True`` a :class:`ReliabilityLayer` gives the
    control plane at-least-once semantics; with ``failsafe=True`` the
    §III-D tracking/probing extension runs on top (``probe_timeout`` is
    raised to 120 s so a partition's retransmission backlog cannot fake a
    probe miss — see ``docs/FAULTS.md``).  The
    :func:`~repro.experiments.invariants.check_invariants` verdict is
    stored on ``RunResult.extra_violations`` and flows into
    ``RunSummary.violations``.
    """
    plan = plan if plan is not None else FaultPlan()
    base = get_scenario(scenario_name)
    suffix = "+faults" + ("+reliable" if reliability else "")
    scenario = dataclasses.replace(base, name=f"{base.name}{suffix}")
    overrides = (
        {
            "failsafe": True,
            "probe_interval": probe_interval,
            "probe_timeout": 120.0,
        }
        if failsafe
        else None
    )
    setup = build_grid(
        scenario, scale, seed, config_overrides=overrides, obs=obs
    )
    apply_fault_plan(setup.transport, plan)
    if reliability:
        ReliabilityLayer(setup.transport)
    result = setup.run()
    # Recovery machinery needs bounded time: two probe rounds plus the
    # retransmission give-up horizon must fit in the settle window.
    settle = 2.0 * probe_interval + 600.0 if failsafe else 1800.0
    result.extra_violations = check_invariants(
        setup, expected_jobs=setup.scale.jobs, settle=settle
    )
    return result
