"""One frozen spec for everything a ``run`` / ``run_batch`` call can vary.

Historically each experiment kind grew its own keyword arguments on the
engine entry points (``config_overrides`` here, ``failsafe`` /
``reliability`` / ``probe_interval`` there, batch mechanics like
``parallel`` and ``cache`` next to them).  :class:`RunOptions`
consolidates the sprawl into one frozen, validated object:

* **Spec options** — the per-kind knobs that join the experiment payload
  and therefore the on-disk **cache key**.  Every field defaults to
  ``None`` (= unset) and :meth:`spec_options` excludes unset fields, so
  a ``RunOptions()`` run produces byte-identical payloads — and
  therefore identical cache keys and golden summaries — to a bare
  ``run(spec, scale)`` call.
* **Mechanics** — how the run executes (``trace``, ``profile``,
  ``parallel``, ``cache``, ``progress``, ``seed_timeout``).  These never
  join spec payloads; the trace config joins the cache key separately,
  exactly as before.

The engine still validates spec options *per kind* (``failsafe`` on a
plain scenario is still an error): :class:`RunOptions` guards the field
*names*, the engine guards their applicability.

Legacy keyword arguments on ``run`` / ``run_batch`` still work through
:meth:`from_legacy` but emit a :class:`DeprecationWarning`.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

from ..errors import ConfigurationError
from ..obs.trace import TraceConfig

__all__ = ["RunOptions"]

#: RunOptions fields that belong to the experiment payload (cache key).
_SPEC_FIELDS = (
    "config_overrides",
    "policies",
    "submission_interval",
    "multirequest_k",
    "failsafe",
    "adoption",
    "reliability",
    "scenario_name",
    "probe_interval",
    "deadline_slack",
    "fault_plan",
)


@dataclass(frozen=True)
class RunOptions:
    """Validated options for one engine invocation.

    Spec options (cache-key relevant; ``None`` = unset, leave the
    experiment's own default in force):

    * ``config_overrides`` — scenario runs: :class:`AriaConfig` patches.
    * ``policies`` / ``submission_interval`` / ``multirequest_k`` —
      baseline runs.
    * ``failsafe`` / ``probe_interval`` / ``scenario_name`` — crash,
      churn and fault experiments.
    * ``adoption`` / ``reliability`` / ``deadline_slack`` /
      ``fault_plan`` — failure-model experiments.

    Mechanics (never part of the experiment payload):

    * ``trace`` — :class:`~repro.obs.TraceConfig` (joins the cache key
      on its own, as before).
    * ``profile`` / ``profile_out`` — cProfile the run (single-run only).
    * ``parallel`` / ``cache`` / ``progress`` / ``seed_timeout`` — batch
      execution knobs (see :func:`~repro.experiments.engine.run_batch`).
    """

    config_overrides: Optional[Dict[str, object]] = None
    policies: Optional[Tuple[str, ...]] = None
    submission_interval: Optional[float] = None
    multirequest_k: Optional[int] = None
    failsafe: Optional[bool] = None
    adoption: Optional[bool] = None
    reliability: Optional[bool] = None
    scenario_name: Optional[str] = None
    probe_interval: Optional[float] = None
    deadline_slack: Optional[float] = None
    fault_plan: Optional[object] = None

    trace: Optional[TraceConfig] = None
    profile: bool = False
    profile_out: Optional[str] = None
    parallel: Optional[int] = None
    cache: object = None
    progress: object = None
    seed_timeout: Optional[float] = None

    def __post_init__(self) -> None:
        if self.policies is not None:
            object.__setattr__(self, "policies", tuple(self.policies))

    def spec_options(self) -> Dict[str, Any]:
        """The set spec options, as the engine's per-kind option dict.

        Unset (``None``) fields are excluded, so the resulting payload —
        and with it the cache key — is byte-identical to a call that
        never mentioned them.
        """
        return {
            name: getattr(self, name)
            for name in _SPEC_FIELDS
            if getattr(self, name) is not None
        }

    def merged(self, **changes: Any) -> "RunOptions":
        """A copy with ``changes`` applied (validated field names)."""
        try:
            return dataclasses.replace(self, **changes)
        except TypeError:
            unknown = sorted(
                key
                for key in changes
                if key not in {f.name for f in dataclasses.fields(self)}
            )
            raise ConfigurationError(
                f"unknown run option(s) {unknown}; "
                f"known: {sorted(f.name for f in dataclasses.fields(self))}"
            )

    @classmethod
    def from_legacy(cls, options: Dict[str, Any]) -> "RunOptions":
        """Build from a legacy ``**options`` keyword dict.

        Only *spec* option names are accepted — mechanics were never
        legal as loose engine kwargs — and unknown names raise, like the
        engine always did.
        """
        unknown = sorted(set(options) - set(_SPEC_FIELDS))
        if unknown:
            raise ConfigurationError(
                f"unknown option(s) {unknown}; allowed: {sorted(_SPEC_FIELDS)}"
            )
        return cls(**options)
