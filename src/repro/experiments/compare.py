"""Statistical scenario comparison across seeds.

The paper reports averages over 10 runs without significance testing.
:func:`compare_scenarios` makes claims like "iMixed completes jobs faster
than Mixed" statistically explicit: it runs both scenarios over the same
seeds and applies Welch's t-test to a chosen per-run metric.

SciPy is used when available; otherwise the t statistic is still computed
and the p-value approximated with the normal distribution (adequate for
the 10-seed sample sizes used here, and clearly labelled).
"""

from __future__ import annotations

import math
import statistics
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

from ..errors import ConfigurationError
from .catalog import get_scenario
from .engine import run_batch
from .scale import ScenarioScale
from .summary import RunSummary

__all__ = ["ComparisonResult", "METRICS", "compare_scenarios"]

#: Per-run metrics available for comparison (functions of a
#: :class:`~repro.experiments.RunSummary`).
METRICS: dict = {
    "completion_time": lambda run: run.average_completion_time,
    "waiting_time": lambda run: run.average_waiting_time,
    "missed_deadlines": lambda run: float(run.missed_deadlines),
    "load_fairness": lambda run: run.load_fairness,
    "reschedules": lambda run: float(run.reschedules),
}


@dataclass
class ComparisonResult:
    """Outcome of one two-scenario comparison."""

    scenario_a: str
    scenario_b: str
    metric: str
    values_a: List[float]
    values_b: List[float]
    mean_a: float
    mean_b: float
    t_statistic: Optional[float]
    p_value: Optional[float]
    #: Whether SciPy's exact t-distribution was used for the p-value.
    exact: bool = False
    #: Whether a paired test was used (same seeds => same workload).
    paired: bool = False

    @property
    def significant(self) -> Optional[bool]:
        """Whether the difference is significant at the 5 % level."""
        if self.p_value is None:
            return None
        return self.p_value < 0.05

    def render(self) -> str:
        """One-line human-readable verdict."""
        verdict = (
            "not enough data"
            if self.p_value is None
            else f"p={self.p_value:.4f}"
            + (" (significant)" if self.significant else " (n.s.)")
        )
        return (
            f"{self.metric}: {self.scenario_a}={self.mean_a:.1f} vs "
            f"{self.scenario_b}={self.mean_b:.1f}  [{verdict}]"
        )


def _welch(a: Sequence[float], b: Sequence[float]):
    """Welch's t statistic, degrees of freedom, and p-value."""
    mean_a, mean_b = statistics.fmean(a), statistics.fmean(b)
    var_a = statistics.variance(a)
    var_b = statistics.variance(b)
    na, nb = len(a), len(b)
    se2 = var_a / na + var_b / nb
    if se2 == 0:
        return None, None, None, False
    t = (mean_a - mean_b) / math.sqrt(se2)
    df = se2 * se2 / (
        (var_a / na) ** 2 / (na - 1) + (var_b / nb) ** 2 / (nb - 1)
    )
    try:
        from scipy import stats

        p = 2 * stats.t.sf(abs(t), df)
        return t, df, float(p), True
    except ImportError:  # pragma: no cover - scipy is present in dev envs
        # Normal approximation of the two-sided p-value.
        p = 2 * (1 - 0.5 * (1 + math.erf(abs(t) / math.sqrt(2))))
        return t, df, p, False


def _paired(a: Sequence[float], b: Sequence[float]):
    """Paired t statistic and p-value over per-seed differences."""
    diffs = [x - y for x, y in zip(a, b)]
    n = len(diffs)
    mean = statistics.fmean(diffs)
    sd = statistics.stdev(diffs)
    if sd == 0:
        return None, None, None, False
    t = mean / (sd / math.sqrt(n))
    df = n - 1
    try:
        from scipy import stats

        return t, df, float(2 * stats.t.sf(abs(t), df)), True
    except ImportError:  # pragma: no cover - scipy is present in dev envs
        p = 2 * (1 - 0.5 * (1 + math.erf(abs(t) / math.sqrt(2))))
        return t, df, p, False


def compare_scenarios(
    scenario_a: str,
    scenario_b: str,
    metric: str = "completion_time",
    scale: Optional[ScenarioScale] = None,
    seeds: Sequence[int] = tuple(range(5)),
    metric_fn: Optional[Callable[[RunSummary], Optional[float]]] = None,
    paired: bool = False,
    parallel: Optional[int] = None,
) -> ComparisonResult:
    """Run both scenarios over ``seeds`` and test the metric difference.

    Runs go through the batch engine, so repeated comparisons are served
    from the result cache and ``parallel=`` fans seeds out across worker
    processes.  ``metric_fn`` receives each run's
    :class:`~repro.experiments.RunSummary`.

    With ``paired=True`` the per-seed differences are tested instead
    (paired t-test).  Runs sharing a seed share node profiles and the
    workload, so pairing removes the between-seed variance and isolates
    the scenario effect — the right design when both scenarios are defined
    over the same seed list and the metric is defined for every run.
    """
    if metric_fn is None:
        metric_fn = METRICS.get(metric)
        if metric_fn is None:
            raise ConfigurationError(
                f"unknown metric {metric!r}; known: {sorted(METRICS)}"
            )
    if len(seeds) < 2:
        raise ConfigurationError("need at least 2 seeds for a t-test")

    def collect(name: str) -> List[float]:
        scenario = get_scenario(name)
        runs = run_batch(scenario, scale, seeds=seeds, parallel=parallel)
        values = []
        for run in runs:
            value = metric_fn(run)
            if value is not None:
                values.append(value)
        if len(values) < 2:
            raise ConfigurationError(
                f"metric {metric!r} undefined for scenario {name!r}"
            )
        return values

    values_a = collect(scenario_a)
    values_b = collect(scenario_b)
    if paired:
        if len(values_a) != len(values_b):
            raise ConfigurationError(
                "paired comparison needs the metric defined for every run "
                "of both scenarios"
            )
        t, _df, p, exact = _paired(values_a, values_b)
    else:
        t, _df, p, exact = _welch(values_a, values_b)
    return ComparisonResult(
        scenario_a=scenario_a,
        scenario_b=scenario_b,
        metric=metric,
        values_a=values_a,
        values_b=values_b,
        mean_a=statistics.fmean(values_a),
        mean_b=statistics.fmean(values_b),
        t_statistic=t,
        p_value=p,
        exact=exact,
        paired=paired,
    )
