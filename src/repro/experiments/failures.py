"""Failure-injection experiments (beyond the paper's evaluation).

The paper's §III-D sketches "failsafe mechanisms in the event of an
assignee's crash" but never evaluates them.  This module closes that gap:
it runs a standard workload while crashing a fraction of the grid mid-run,
with the fail-safe tracking either disabled (jobs on crashed nodes are
simply lost) or enabled (initiators detect the silence and resubmit).

Scope matches the paper's sketch: only *assignee* crashes are covered.  A
job whose initiator crashed has nobody tracking it, and a resubmitted job
whose only matching nodes died ends up (correctly) unschedulable.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Optional

from ..errors import ConfigurationError
from ..types import MINUTE
from .catalog import get_scenario
from .runner import RunResult, build_grid
from .scale import ScenarioScale

__all__ = ["CrashPlan", "run_crash_experiment"]


@dataclass(frozen=True)
class CrashPlan:
    """When and how much of the grid dies.

    ``fraction`` of the initial nodes crash, evenly spread over the window
    ``[start, start + spread]`` (defaults: 10 % of the grid, starting one
    hour in, over 30 minutes).
    """

    fraction: float = 0.10
    start: float = 3600.0
    spread: float = 30 * MINUTE

    def __post_init__(self) -> None:
        if not 0 < self.fraction < 1:
            raise ConfigurationError("crash fraction must be in (0, 1)")
        if self.start < 0 or self.spread < 0:
            raise ConfigurationError("crash window must be non-negative")


def run_crash_experiment(
    failsafe: bool,
    scale: Optional[ScenarioScale] = None,
    seed: int = 0,
    plan: Optional[CrashPlan] = None,
    scenario_name: str = "iMixed",
    probe_interval: float = 10 * MINUTE,
) -> RunResult:
    """One crash-injected run of the given Table II scenario.

    .. deprecated:: 1.1
        Use :func:`repro.experiments.run` with a :class:`CrashPlan` spec:
        ``run(CrashPlan(), scale, seed=..., failsafe=True)``.
    """
    import warnings

    warnings.warn(
        "run_crash_experiment() is deprecated; use repro.experiments."
        "run(CrashPlan(...), scale, seed=..., failsafe=...) instead",
        DeprecationWarning,
        stacklevel=2,
    )
    return _run_crash_experiment(
        failsafe, scale, seed, plan, scenario_name, probe_interval
    )


def _run_crash_experiment(
    failsafe: bool,
    scale: Optional[ScenarioScale] = None,
    seed: int = 0,
    plan: Optional[CrashPlan] = None,
    scenario_name: str = "iMixed",
    probe_interval: float = 10 * MINUTE,
    obs=None,
) -> RunResult:
    """One crash-injected run (internal, non-deprecated impl).

    With ``failsafe=False`` the configuration is the paper's: jobs held by
    crashed nodes disappear.  With ``failsafe=True`` the §III-D fail-safe
    extension (Track/Done notifications + liveness probes + resubmission)
    recovers them.
    """
    plan = plan if plan is not None else CrashPlan()
    base = get_scenario(scenario_name)
    scenario = dataclasses.replace(
        base,
        name=f"{base.name}+crash{'+failsafe' if failsafe else ''}",
    )
    overrides = (
        {"failsafe": True, "probe_interval": probe_interval}
        if failsafe
        else None
    )
    setup = build_grid(
        scenario, scale, seed, config_overrides=overrides, obs=obs
    )

    victims = setup.sim.streams.get("failures").sample(
        setup.agents, max(1, round(plan.fraction * len(setup.agents)))
    )
    step = plan.spread / len(victims) if victims else 0.0
    for index, agent in enumerate(victims):
        setup.sim.call_at(plan.start + index * step, agent.fail)

    return setup.run()
