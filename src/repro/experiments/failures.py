"""Node-lifecycle failure experiments: crash-stop, crash-restart, fail-slow.

The paper's §III-D sketches "failsafe mechanisms in the event of an
assignee's crash" but never evaluates them.  This module injects node
failures into standard workloads and measures what the protocol (plus
our extensions) recovers:

* **crash-stop** — a fraction of the grid dies mid-run and stays dead
  (the original :class:`CrashPlan` behaviour).  With fail-safe tracking
  off, jobs on crashed nodes are simply lost; on, initiators detect the
  silence and resubmit.
* **crash-restart** — crashed nodes rejoin the overlay after a
  configurable downtime with all volatile state lost, under a fresh
  *incarnation number* (see :meth:`repro.core.AriaAgent.restart`): stale
  ASSIGNs/Tracks/acks addressed to the dead incarnation are rejected at
  the transport instead of corrupting the reborn node's state.
* **fail-slow** — a fraction of the nodes silently degrades (jobs take
  ``slow_factor`` times their sampled running time) while still quoting
  healthy costs.  The per-job *execution deadline*
  (``exec_deadline_slack``) re-advertises jobs stuck behind stragglers
  through the normal INFORM path.

Initiator crashes are no longer a blind spot: with ``adoption`` on, an
assignee that misses ``adoption_windows`` consecutive probe windows
adopts the orphaned job — it self-tracks it and suppresses the
now-unreachable Done — so a job whose initiator crashed keeps a tracker
through later reschedules and assignee crashes.  With adoption off, the
orphan is counted (``jobs.orphaned``), which is how the regression suite
demonstrates the leak the mechanism closes.  Jobs that die *in
discovery* with their initiator (no assignee exists yet) remain
unrecoverable by construction and are recorded as lost.

:class:`FailureModel` composes the three modes in one frozen,
cache-key-aware spec (the CrashPlan / FaultPlan pattern) accepted by
:func:`repro.experiments.run` / ``run_batch`` and the ``--failure-model``
CLI mode, alongside a network :class:`~repro.experiments.faults.FaultPlan`.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Optional

from ..errors import ConfigurationError
from ..net.reliability import ReliabilityLayer
from ..overlay.blatant import BlatantConfig, BlatantMaintainer
from ..types import MINUTE
from .catalog import get_scenario
from .faults import FaultPlan, apply_fault_plan
from .invariants import check_invariants
from .runner import RunResult, build_grid
from .scale import ScenarioScale

__all__ = [
    "CrashPlan",
    "FailureModel",
    "run_crash_experiment",
    "run_failure_experiment",
]


@dataclass(frozen=True)
class CrashPlan:
    """When and how much of the grid dies (crash-stop only).

    ``fraction`` of the initial nodes crash, evenly spread over the window
    ``[start, start + spread]`` (defaults: 10 % of the grid, starting one
    hour in, over 30 minutes).  The generalised :class:`FailureModel`
    supersedes this spec; it remains for compatibility and as the
    cache-key for pure crash-stop runs.
    """

    fraction: float = 0.10
    start: float = 3600.0
    spread: float = 30 * MINUTE

    def __post_init__(self) -> None:
        if not 0 < self.fraction < 1:
            raise ConfigurationError("crash fraction must be in (0, 1)")
        if self.start < 0 or self.spread < 0:
            raise ConfigurationError("crash window must be non-negative")


@dataclass(frozen=True)
class FailureModel:
    """A composed node-lifecycle failure spec (all modes optional).

    Three disjoint victim groups are drawn from the ``"failures"``
    stream — crash-stop victims first (identical draws to the legacy
    :class:`CrashPlan` path), then crash-restart victims, then fail-slow
    victims:

    * ``crash_fraction`` of the grid crashes over
      ``[crash_start, crash_start + crash_spread]`` and stays dead;
    * ``restart_fraction`` crashes over ``[restart_start, restart_start +
      restart_spread]`` and rejoins ``restart_downtime`` seconds later
      under a fresh incarnation, volatile state lost;
    * ``slow_fraction`` degrades at ``slow_start``: jobs starting there
      after take ``slow_factor`` × their sampled running time, while the
      node keeps quoting healthy costs.

    A zero fraction disables that mode; at least one must be nonzero.
    """

    crash_fraction: float = 0.0
    crash_start: float = 3600.0
    crash_spread: float = 30 * MINUTE
    restart_fraction: float = 0.0
    restart_start: float = 3600.0
    restart_spread: float = 30 * MINUTE
    restart_downtime: float = 900.0
    slow_fraction: float = 0.0
    slow_start: float = 3600.0
    slow_factor: float = 4.0

    def __post_init__(self) -> None:
        for name in ("crash_fraction", "restart_fraction", "slow_fraction"):
            value = getattr(self, name)
            if not 0.0 <= value < 1.0:
                raise ConfigurationError(f"{name} {value} out of [0, 1)")
        total = self.crash_fraction + self.restart_fraction + self.slow_fraction
        if total <= 0.0:
            raise ConfigurationError(
                "FailureModel with every fraction at 0 does nothing"
            )
        if total >= 1.0:
            raise ConfigurationError(
                f"victim fractions sum to {total}; must stay below 1 "
                f"(the groups are disjoint)"
            )
        for name in ("crash_start", "crash_spread", "restart_start",
                     "restart_spread", "slow_start"):
            if getattr(self, name) < 0:
                raise ConfigurationError(f"{name} must be non-negative")
        if self.restart_downtime <= 0:
            raise ConfigurationError("restart_downtime must be positive")
        if self.slow_factor < 1.0:
            raise ConfigurationError(
                f"slow_factor {self.slow_factor} must be >= 1"
            )

    @classmethod
    def from_crash_plan(cls, plan: CrashPlan) -> "FailureModel":
        """The crash-stop-only model equivalent to a legacy plan."""
        return cls(
            crash_fraction=plan.fraction,
            crash_start=plan.start,
            crash_spread=plan.spread,
        )

    @classmethod
    def chaos(cls, duration: float) -> "FailureModel":
        """A representative crash-restart + fail-slow mix for chaos runs:
        a tenth of the grid gone for good a quarter in, another ~15 %
        bouncing (15-minute outages), and ~15 % of the survivors silently
        running jobs at a quarter speed."""
        return cls(
            crash_fraction=0.10,
            crash_start=duration * 0.25,
            crash_spread=duration * 0.10,
            restart_fraction=0.15,
            restart_start=duration * 0.35,
            restart_spread=duration * 0.15,
            restart_downtime=900.0,
            slow_fraction=0.15,
            slow_start=duration * 0.30,
            slow_factor=4.0,
        )


def run_crash_experiment(
    failsafe: bool,
    scale: Optional[ScenarioScale] = None,
    seed: int = 0,
    plan: Optional[CrashPlan] = None,
    scenario_name: str = "iMixed",
    probe_interval: float = 10 * MINUTE,
) -> RunResult:
    """One crash-injected run of the given Table II scenario.

    .. deprecated:: 1.1
        Use :func:`repro.experiments.run` with a :class:`CrashPlan` spec:
        ``run(CrashPlan(), scale, seed=..., failsafe=True)``.

    .. versionchanged:: 1.2
        Calling this wrapper is now an error.
    """
    raise DeprecationWarning(
        "run_crash_experiment() was removed; use repro.experiments."
        "run(CrashPlan(...), scale, seed=..., "
        "options=RunOptions(failsafe=...)) instead"
    )


def _run_crash_experiment(
    failsafe: bool,
    scale: Optional[ScenarioScale] = None,
    seed: int = 0,
    plan: Optional[CrashPlan] = None,
    scenario_name: str = "iMixed",
    probe_interval: float = 10 * MINUTE,
    obs=None,
) -> RunResult:
    """One crash-stop run (internal, engine-dispatched impl).

    Routed through the :class:`FailureModel` internals as a pure
    crash-stop model with every extension off, which keeps its summaries
    byte-identical to the historical crash path: same scenario naming,
    same config overrides, same ``"failures"``-stream draws, no
    reliability layer, no incarnations, no invariant sweep.
    """
    plan = plan if plan is not None else CrashPlan()
    return _run_failure_experiment(
        FailureModel.from_crash_plan(plan),
        scale,
        seed,
        scenario_name=scenario_name,
        failsafe=failsafe,
        adoption=False,
        reliability=False,
        probe_interval=probe_interval,
        deadline_slack=0.0,
        scenario_suffix=f"+crash{'+failsafe' if failsafe else ''}",
        check=False,
        obs=obs,
    )


def run_failure_experiment(
    model: FailureModel,
    scale: Optional[ScenarioScale] = None,
    seed: int = 0,
    scenario_name: str = "iMixed",
    failsafe: bool = True,
    adoption: bool = True,
    reliability: bool = True,
    fault_plan: Optional[FaultPlan] = None,
    probe_interval: float = 10 * MINUTE,
    deadline_slack: float = 3.0,
) -> RunResult:
    """One failure-injected run of ``scenario_name``.

    Prefer :func:`repro.experiments.run` with a :class:`FailureModel`
    spec: ``run(FailureModel(...), scale, seed=..., adoption=True)``.
    """
    return _run_failure_experiment(
        model, scale, seed,
        scenario_name=scenario_name,
        failsafe=failsafe,
        adoption=adoption,
        reliability=reliability,
        fault_plan=fault_plan,
        probe_interval=probe_interval,
        deadline_slack=deadline_slack,
    )


def _run_failure_experiment(
    model: FailureModel,
    scale: Optional[ScenarioScale] = None,
    seed: int = 0,
    *,
    scenario_name: str = "iMixed",
    failsafe: bool = True,
    adoption: bool = True,
    reliability: bool = True,
    fault_plan: Optional[FaultPlan] = None,
    probe_interval: float = 10 * MINUTE,
    deadline_slack: float = 3.0,
    scenario_suffix: Optional[str] = None,
    check: bool = True,
    obs=None,
) -> RunResult:
    """One failure-injected run (internal, engine-dispatched impl).

    ``failsafe`` turns on §III-D tracking/probing (with ``probe_timeout``
    raised to 120 s whenever the network can also misbehave, i.e. when a
    reliability layer or fault plan is present); ``adoption`` adds the
    initiator-crash orphan recovery; ``deadline_slack > 0`` arms the
    straggler defense; ``fault_plan`` composes network faults on top.
    With ``check=True`` the :mod:`~repro.experiments.invariants` sweep
    runs post-horizon and lands in ``RunResult.extra_violations`` —
    crash-lost records are tolerated (``allow_lost``) but stranding,
    double-holds and cross-incarnation double executions are not.
    """
    base = get_scenario(scenario_name)
    if scenario_suffix is None:
        scenario_suffix = "+failures" + ("+failsafe" if failsafe else "")
    scenario = dataclasses.replace(base, name=f"{base.name}{scenario_suffix}")
    overrides = None
    if failsafe:
        overrides = {"failsafe": True, "probe_interval": probe_interval}
        if reliability or fault_plan is not None:
            overrides["probe_timeout"] = 120.0
        if adoption:
            overrides["adoption"] = True
    if deadline_slack > 0.0:
        overrides = dict(overrides or {})
        overrides["exec_deadline_slack"] = deadline_slack
    setup = build_grid(
        scenario, scale, seed, config_overrides=overrides, obs=obs
    )

    rng = setup.sim.streams.get("failures")
    crashed: list = []
    if model.crash_fraction > 0.0:
        # Exactly the legacy CrashPlan draws, so pure crash-stop models
        # reproduce historical runs bit for bit.
        crashed = rng.sample(
            setup.agents,
            max(1, round(model.crash_fraction * len(setup.agents))),
        )
        step = model.crash_spread / len(crashed)
        for index, agent in enumerate(crashed):
            setup.sim.call_at(model.crash_start + index * step, agent.fail)

    taken = set(crashed)
    if model.restart_fraction > 0.0:
        pool = [a for a in setup.agents if a not in taken]
        count = min(
            max(1, round(model.restart_fraction * len(setup.agents))),
            len(pool),
        )
        bouncing = rng.sample(pool, count)
        taken.update(bouncing)
        # Stamping must be on before the run starts so messages already
        # in flight at the first crash carry a stamp and can be rejected
        # by the reborn incarnation.
        setup.transport.enable_incarnations()
        # Restarted nodes rejoin through the same overlay-maintenance
        # path as churn joins; the maintainer also keeps the overlay
        # healthy around the holes the crashes tear into it.
        maintainer = BlatantMaintainer(
            setup.graph,
            setup.sim.streams.get("failures.overlay"),
            BlatantConfig(),
        )
        maintainer.start(setup.sim)
        step = model.restart_spread / len(bouncing)

        def _rejoin(agent) -> None:
            maintainer.join(agent.node_id)
            agent.restart()

        for index, agent in enumerate(bouncing):
            down_at = model.restart_start + index * step
            setup.sim.call_at(down_at, agent.fail)
            setup.sim.call_at(
                down_at + model.restart_downtime, _rejoin, agent
            )

    if model.slow_fraction > 0.0:
        pool = [a for a in setup.agents if a not in taken]
        count = min(
            max(1, round(model.slow_fraction * len(setup.agents))),
            len(pool),
        )
        for agent in rng.sample(pool, count):
            setup.sim.call_at(
                model.slow_start, agent.node.apply_slowdown, model.slow_factor
            )

    if fault_plan is not None:
        apply_fault_plan(setup.transport, fault_plan)
    if reliability:
        ReliabilityLayer(setup.transport)

    result = setup.run()
    if check:
        # Recovery machinery needs bounded time: resubmission takes two
        # probe rounds, adoption waits ``adoption_windows`` more, plus
        # the retransmission give-up horizon.
        if failsafe:
            windows = 2 + (setup.agents[0].config.adoption_windows
                           if adoption else 0)
            settle = windows * probe_interval + 600.0
        else:
            settle = 1800.0
        allow_lost = (
            model.crash_fraction > 0.0 or model.restart_fraction > 0.0
        )
        result.extra_violations = check_invariants(
            setup,
            expected_jobs=setup.scale.jobs,
            allow_lost=allow_lost,
            settle=settle,
        )
    return result
