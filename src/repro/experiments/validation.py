"""Run-level invariant validation.

:func:`validate_run` audits a finished run — a
:class:`~repro.experiments.RunResult`, a baseline result, or a condensed
:class:`~repro.experiments.RunSummary` — against the invariants every
correct ARiA execution must satisfy — whatever the scenario, scale, seed,
churn or failure injection:

1. **Conservation** — every submitted job is accounted for exactly once:
   completed, unschedulable, lost to a crash, or still in flight at the
   horizon.
2. **Timeline coherence** — submit ≤ assignments ≤ start ≤ finish for every
   record, with a monotone assignment history.
3. **Placement coherence** — a completed job ran on its final assignee.
4. **Mutual exclusion** — no node ever executed two jobs simultaneously.
5. **Reservation compliance** — no job started before its reservation.
6. **Deadline bookkeeping** — lateness / missed-time figures match the
   recorded times.

Returns a list of human-readable violations (empty = clean).  The property
suite runs it over randomized grids; users can call it on their own
experiment results as a cheap sanity gate.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..types import NodeId
from .summary import RunSummary

__all__ = ["validate_run"]

_EPSILON = 1e-6


def validate_run(result) -> List[str]:
    """Audit one run; returns violation descriptions (empty = clean).

    Accepts anything carrying live per-job records — a
    :class:`~repro.experiments.runner.RunResult` or
    :class:`~repro.baselines.runner.BaselineRunResult` — or an already
    condensed :class:`~repro.experiments.summary.RunSummary`, whose
    verdict was captured when the summary was built (the records
    themselves no longer exist at that point).
    """
    if isinstance(result, RunSummary):
        return list(result.violations)
    violations: List[str] = []
    metrics = result.metrics

    # 1. Conservation ---------------------------------------------------
    completed = sum(1 for r in metrics.records.values() if r.completed)
    if completed != metrics.completed_jobs:
        violations.append(
            f"completed counter {metrics.completed_jobs} != "
            f"{completed} completed records"
        )
    if metrics.duplicate_executions:
        violations.append(
            f"{metrics.duplicate_executions} duplicate executions"
        )
    for record in metrics.records.values():
        if record.completed and record.unschedulable:
            violations.append(
                f"job {record.job.job_id} both completed and unschedulable"
            )

    intervals: Dict[NodeId, List[Tuple[float, float]]] = {}
    for record in metrics.records.values():
        job_id = record.job.job_id
        # 2. Timeline coherence -----------------------------------------
        times = [t for t, _ in record.assignments]
        if times != sorted(times):
            violations.append(f"job {job_id}: assignment history not sorted")
        if record.assignments and times[0] + _EPSILON < record.submit_time:
            violations.append(f"job {job_id}: assigned before submission")
        if record.start_time is not None:
            if record.start_time + _EPSILON < record.submit_time:
                violations.append(f"job {job_id}: started before submission")
            if times and record.start_time + _EPSILON < times[-1]:
                violations.append(
                    f"job {job_id}: reassigned after execution started"
                )
        if record.finish_time is not None:
            if record.start_time is None:
                violations.append(f"job {job_id}: finished without starting")
            elif record.finish_time < record.start_time:
                violations.append(f"job {job_id}: finished before starting")

        # 3. Placement coherence ----------------------------------------
        if record.completed and record.assignments:
            if record.start_node != record.assignments[-1][1]:
                violations.append(
                    f"job {job_id}: ran on {record.start_node}, last "
                    f"assignee was {record.assignments[-1][1]}"
                )

        # 5. Reservation compliance -------------------------------------
        if (
            record.job.not_before is not None
            and record.start_time is not None
            and record.start_time + _EPSILON < record.job.not_before
        ):
            violations.append(
                f"job {job_id}: started {record.start_time:.0f} before "
                f"reservation {record.job.not_before:.0f}"
            )

        # 6. Deadline bookkeeping ---------------------------------------
        if record.completed and record.job.deadline is not None:
            expected_late = record.finish_time > record.job.deadline
            if record.missed_deadline is not expected_late:
                violations.append(
                    f"job {job_id}: inconsistent missed_deadline flag"
                )

        if record.completed and record.start_node is not None:
            intervals.setdefault(record.start_node, []).append(
                (record.start_time, record.finish_time)
            )

    # 4. Mutual exclusion ------------------------------------------------
    for node, spans in intervals.items():
        spans.sort()
        for (_, end_a), (start_b, _) in zip(spans, spans[1:]):
            if start_b + _EPSILON < end_a:
                violations.append(
                    f"node {node}: overlapping executions "
                    f"({end_a:.0f} > {start_b:.0f})"
                )
                break
    return violations
