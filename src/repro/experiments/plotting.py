"""Terminal plotting: ASCII line charts and bar charts.

The benchmark harness prints figures as sampled tables; these helpers add
a visual rendering for terminals, used by the examples and available to
library users.  Pure text, no dependencies.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..errors import ConfigurationError
from ..sim import TimeSeries
from ..types import HOUR

__all__ = ["ascii_line_chart", "ascii_bar_chart"]

_MARKERS = "*o+x#@%&"


def _scale_to_rows(value: float, low: float, high: float, rows: int) -> int:
    if high <= low:
        return 0
    fraction = (value - low) / (high - low)
    return min(rows - 1, max(0, round(fraction * (rows - 1))))


def ascii_line_chart(
    series_by_name: Dict[str, TimeSeries],
    width: int = 72,
    height: int = 16,
    until: Optional[float] = None,
) -> str:
    """Plot several time series as an ASCII chart.

    Each series gets a marker character; later series overwrite earlier
    ones where they collide.  The x-axis is simulated time (hours).
    """
    if width < 10 or height < 4:
        raise ConfigurationError("chart needs width >= 10 and height >= 4")
    data = {
        name: (
            [(t, v) for t, v in series if until is None or t <= until]
        )
        for name, series in series_by_name.items()
    }
    data = {name: series for name, series in data.items() if series}
    if not data:
        return "(no data)"
    t_max = max(series[-1][0] for series in data.values())
    t_min = min(series[0][0] for series in data.values())
    v_all = [v for series in data.values() for _, v in series]
    v_min, v_max = min(v_all), max(v_all)
    if v_max == v_min:
        v_max = v_min + 1.0

    grid: List[List[str]] = [[" "] * width for _ in range(height)]
    legend: List[str] = []
    for index, (name, series) in enumerate(data.items()):
        marker = _MARKERS[index % len(_MARKERS)]
        legend.append(f"{marker} {name}")
        for t, v in series:
            if t_max == t_min:
                column = 0
            else:
                column = min(
                    width - 1, round((t - t_min) / (t_max - t_min) * (width - 1))
                )
            row = _scale_to_rows(v, v_min, v_max, height)
            grid[height - 1 - row][column] = marker

    label_width = max(len(f"{v_max:.0f}"), len(f"{v_min:.0f}"))
    lines = []
    for row_index, row in enumerate(grid):
        if row_index == 0:
            label = f"{v_max:.0f}".rjust(label_width)
        elif row_index == height - 1:
            label = f"{v_min:.0f}".rjust(label_width)
        else:
            label = " " * label_width
        lines.append(f"{label} |{''.join(row)}")
    axis = " " * label_width + " +" + "-" * width
    left = f"{t_min / HOUR:.1f}h"
    right = f"{t_max / HOUR:.1f}h"
    padding = " " * max(1, width - len(left) - len(right))
    lines.append(axis)
    lines.append(" " * (label_width + 2) + left + padding + right)
    lines.append("legend: " + "   ".join(legend))
    return "\n".join(lines)


def ascii_bar_chart(
    values_by_name: Dict[str, float],
    width: int = 50,
    unit: str = "",
    value_format: str = ".1f",
) -> str:
    """Horizontal bar chart of named values."""
    if not values_by_name:
        return "(no data)"
    peak = max(values_by_name.values())
    name_width = max(len(name) for name in values_by_name)
    lines = []
    for name, value in values_by_name.items():
        bar_length = (
            0 if peak <= 0 else max(0, round(value / peak * width))
        )
        rendered = format(value, value_format)
        lines.append(
            f"{name.ljust(name_width)} |{'#' * bar_length}"
            f" {rendered}{unit}"
        )
    return "\n".join(lines)
