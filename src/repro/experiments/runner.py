"""Scenario runner: builds a complete grid and simulates one run.

A run assembles every substrate exactly as the paper's evaluation does
(§IV): a converged BLATANT overlay, heterogeneous node profiles and
performance indices, randomly assigned local schedulers, ARiA agents on a
latency-realistic transport, the §IV-D workload, and the time-series
samplers behind Figures 1/3/5/6.  Ten-run experiments use seeds
``base .. base+9``, matching the paper's replication count.
"""

from __future__ import annotations

import gc
import random
from collections import OrderedDict
from dataclasses import dataclass, field as dataclass_field
from typing import Callable, Dict, List, Optional, Tuple

from ..core.config import AriaConfig
from ..core.protocol import AriaAgent
from ..grid.node import GridNode
from ..grid.performance import AccuracyModel
from ..grid.state import GridState
from ..grid.resources import random_node_profile, random_performance_index
from ..metrics.collector import GridMetrics
from ..net.traffic import TrafficReport
from ..net.transport import SimTransport, Transport
from ..obs.metrics import MetricsRegistry
from ..obs.trace import TraceConfig, Tracer
from ..overlay.blatant import BlatantConfig, BlatantMaintainer
from ..overlay.graph import OverlayGraph
from ..scheduling.registry import make_scheduler
from ..sim import PeriodicSampler, Simulator, TimeSeries, derive_seed
from ..types import NodeId
from ..workload.generator import JobGenerator
from ..workload.submission import SubmissionProcess, SubmissionSchedule
from .scale import ScenarioScale
from .scenario import Scenario
from .summary import RunSummary

__all__ = ["GridSetup", "RunResult", "build_grid", "run_scenario", "run_scenario_batch"]

#: Reused converged overlays, keyed by (size, overlay seed).  Building the
#: paper's 500-node bounded-APL overlay takes seconds; all scenarios of an
#: experiment share the same starting topology per seed, exactly like the
#: paper's fixed evaluation overlay.  Bounded LRU: sweeps over grid size
#: would otherwise accumulate one converged overlay per (size, seed)
#: forever.  Each worker process of the batch engine holds its own copy
#: (module state is never shared across the spawn boundary).
_OVERLAY_CACHE: "OrderedDict[Tuple[int, int], OverlayGraph]" = OrderedDict()
_OVERLAY_CACHE_SIZE = 8

#: Above this many nodes the grid switches to its large-scale build: the
#: BLATANT ant walk is replaced by a degree-equivalent chordal ring
#: (convergence is O(nodes^2) — 67 s at 2 000 nodes and growing — while
#: the ring builds in O(nodes) with the same average degree and a
#: logarithmic diameter), and per-agent dedup caches are trimmed so
#: aggregate memory stays proportional to the grid, not to the paper-scale
#: defaults times 10^5 nodes.  Every stock preset up to ``paper`` (500
#: nodes) sits below the threshold, so their seeded runs are unchanged.
_LARGE_GRID_NODES = 2_000

#: SeenCache capacity used for grids above ``_LARGE_GRID_NODES`` (unless
#: explicitly overridden).  Floods reach a few thousand nodes, so each
#: agent sees a small slice of all broadcasts; 512 remembered broadcast
#: keys per cache keeps duplicate suppression effective while bounding
#: the worst case at ~10^3 entries per node instead of ~10^4.
_LARGE_GRID_SEEN_CAPACITY = 512

#: REQUEST flood hop bound for grids above ``_LARGE_GRID_NODES``.  The
#: paper's ≤9 hops / fanout 4 (§IV-E) floods the *entire* 500-node
#: evaluation grid; applied unchanged to a 10k-node overlay the same
#: policy costs ~22 000 messages per REQUEST (measured on a degree-4
#: chordal ring) — per-job discovery overhead 40x the paper's, with no
#: added scheduling value.  Six hops bounds a flood at ~1 500 messages
#: reaching ~1 400 candidate nodes regardless of grid size — nearly 3x
#: the paper's whole grid — so discovery quality per job matches the
#: evaluation while total traffic stays proportional to jobs, not to
#: jobs x nodes.  Explicit ``config_overrides`` still win.
_LARGE_GRID_REQUEST_HOPS = 6


def _converged_overlay(size: int, seed: int) -> OverlayGraph:
    key = (size, seed)
    cached = _OVERLAY_CACHE.get(key)
    if cached is None:
        from ..overlay.blatant import build_blatant_overlay

        rng = random.Random(derive_seed(seed, "overlay.build"))
        cached = build_blatant_overlay(size, rng)
        _OVERLAY_CACHE[key] = cached
        while len(_OVERLAY_CACHE) > _OVERLAY_CACHE_SIZE:
            _OVERLAY_CACHE.popitem(last=False)
    else:
        _OVERLAY_CACHE.move_to_end(key)
    return cached.copy()


def _build_overlay(kind: str, size: int, seed: int) -> OverlayGraph:
    """The scenario's overlay: BLATANT (default) or a static topology.

    Above :data:`_LARGE_GRID_NODES` the "converged BLATANT" starting
    point is stood in for by a chordal ring with the same average degree
    (~4) and bounded path lengths — the properties BLATANT-S converges
    to — because running the ant walk to convergence is quadratic in the
    grid size.
    """
    if kind == "blatant":
        if size > _LARGE_GRID_NODES:
            from ..overlay.topologies import chordal_ring

            return chordal_ring(
                size, random.Random(derive_seed(seed, "overlay.build"))
            )
        return _converged_overlay(size, seed)
    from ..overlay.topologies import TOPOLOGY_BUILDERS

    builder = TOPOLOGY_BUILDERS.get(kind)
    if builder is None:
        from ..errors import ConfigurationError

        raise ConfigurationError(
            f"unknown overlay {kind!r}; known: "
            f"['blatant'] + {sorted(TOPOLOGY_BUILDERS)}"
        )
    return builder(size, random.Random(derive_seed(seed, "overlay.build")))


@dataclass
class RunResult:
    """Everything one simulated run produced."""

    scenario: Scenario
    scale: ScenarioScale
    seed: int
    metrics: GridMetrics
    traffic: TrafficReport
    #: Sampled ``(time, completed jobs)`` series (Figure 1).
    completed_series: TimeSeries
    #: Sampled ``(time, idle node count)`` series (Figures 3, 5, 6).
    idle_series: TimeSeries
    #: Sampled ``(time, connected node count)`` series (Expanding).
    node_count_series: TimeSeries
    #: Submission window (first and last submission times).
    submission_window: Tuple[float, float]
    final_node_count: int
    executed_events: int
    #: Transport / reliability / fault counters captured at the horizon
    #: (see ``Transport.network_counters``).  All-zero in nominal runs.
    network: Dict[str, int] = dataclass_field(default_factory=dict)
    #: Invariant-checker findings (fault experiments); folded into
    #: ``RunSummary.violations`` next to the ``validate_run`` verdict.
    extra_violations: List[str] = dataclass_field(default_factory=list)
    #: Metrics-registry snapshot (only when the run carried a
    #: ``TraceConfig`` with ``telemetry=True``; empty otherwise).
    telemetry: Dict[str, float] = dataclass_field(default_factory=dict)
    #: The recorded trace events when the run traced into a memory sink
    #: (``TraceConfig(sink="memory")``); empty for file sinks — load
    #: those with :func:`repro.obs.load_trace`.
    trace_events: List[Dict[str, object]] = dataclass_field(
        default_factory=list
    )
    #: Merged fleet time series from the live telemetry collector
    #: (``{name: [(t, value), ...]}``); empty for simulated runs.
    fleet_series: Dict[str, List[Tuple[float, float]]] = dataclass_field(
        default_factory=dict
    )
    #: Whether a live run was cut short by SIGINT/SIGTERM (the soak
    #: graceful-shutdown path); always ``False`` for simulated runs.
    interrupted: bool = False

    def summary(self, validate: bool = True) -> RunSummary:
        """Condense this run into a picklable :class:`RunSummary`.

        This is the documented hand-off point between a live run (agents,
        simulator, per-job records) and everything downstream — figures,
        sweeps, comparisons, the batch engine and its on-disk cache all
        consume summaries.  With ``validate=True`` (the default) the
        :func:`~repro.experiments.validation.validate_run` verdict is
        captured in :attr:`RunSummary.violations` (plus any
        :attr:`extra_violations` from the invariant checker).

        Nonzero network counters surface as ``net_``-prefixed
        :attr:`RunSummary.extras` entries; zero counters are omitted so
        nominal summaries stay byte-identical to earlier versions.
        """
        import dataclasses

        from .validation import validate_run

        violations = list(validate_run(self)) if validate else []
        violations.extend(self.extra_violations)
        extras = {
            f"net_{key}": float(value)
            for key, value in self.network.items()
            if value
        }
        return RunSummary.from_metrics(
            kind="scenario",
            name=self.scenario.name,
            seed=self.seed,
            scale=dataclasses.asdict(self.scale),
            metrics=self.metrics,
            traffic=self.traffic,
            completed_series=self.completed_series,
            idle_series=self.idle_series,
            node_count_series=self.node_count_series,
            submission_window=self.submission_window,
            final_node_count=self.final_node_count,
            executed_events=self.executed_events,
            violations=violations,
            extras=extras,
            telemetry=self.telemetry,
            fleet=self.fleet_series,
        )


@dataclass
class GridSetup:
    """A fully wired grid, ready to simulate.

    :func:`build_grid` returns one of these; callers may inject extra
    events (e.g. node crashes, custom probes) before calling :meth:`run`.
    """

    scenario: Scenario
    scale: ScenarioScale
    seed: int
    sim: Simulator
    metrics: GridMetrics
    transport: Transport
    graph: OverlayGraph
    nodes: List[GridNode]
    agents: List[AriaAgent]
    schedule: SubmissionSchedule
    idle_sampler: PeriodicSampler
    completed_sampler: PeriodicSampler
    node_count_sampler: PeriodicSampler
    #: Adds a fresh node+agent under the given id (used by expansion and
    #: churn experiments); the caller wires it into the overlay.
    add_node: Callable[[NodeId], None]
    #: Shared per-run metrics registry (always present; snapshotted into
    #: ``RunResult.telemetry`` when observability was requested).
    registry: Optional[MetricsRegistry] = None
    #: Slab-backed aggregate node state (always present for grids built
    #: here); the samplers and the submission process read it.
    grid_state: Optional[GridState] = None
    #: The run's :class:`~repro.obs.Tracer`; ``None`` unless a
    #: ``TraceConfig`` with an active level was passed to ``build_grid``.
    tracer: Optional[Tracer] = None
    #: The :class:`~repro.obs.TraceConfig` the grid was built with.
    obs: Optional[TraceConfig] = None

    def live_agents(self):
        """Agents still part of the grid (not crashed, not departed)."""
        return [
            agent
            for agent in self.agents
            if not agent.failed and not agent.departed
        ]

    def live_node_count(self) -> int:
        """Nodes currently part of the grid."""
        return len(self.live_agents())

    def run(self) -> RunResult:
        """Simulate to the configured horizon and collect the results.

        Closes the tracer (flushing its sink) even when the simulation
        fails, so a partial trace is still readable for post-mortems.

        Large grids are frozen out of the cyclic collector for the
        duration of the run: the built grid is millions of long-lived
        objects the collector re-scans on every full pass without ever
        finding a collectable cycle (per-event garbage is acyclic and
        dies by refcount).  ``gc.freeze`` moves the built graph to the
        permanent generation so those passes stay cheap; ``unfreeze``
        in the ``finally`` restores normal collection so a long-lived
        process reclaims the grid afterwards.  GC never changes
        simulated outcomes — it only reclaims unreachable objects — and
        the gate keeps golden-scale runs entirely untouched.
        """
        freeze = self.scale.nodes > _LARGE_GRID_NODES
        if freeze:
            gc.collect()
            gc.freeze()
        try:
            self.sim.run_until(self.scale.duration)
        finally:
            if freeze:
                gc.unfreeze()
            if self.tracer is not None:
                self.tracer.close()
        telemetry: Dict[str, float] = {}
        if self.obs is not None and self.obs.telemetry:
            telemetry = self.registry.snapshot()
        trace_events: List[Dict[str, object]] = []
        if self.tracer is not None and self.obs.sink == "memory":
            trace_events = self.tracer.events
        return RunResult(
            scenario=self.scenario,
            scale=self.scale,
            seed=self.seed,
            metrics=self.metrics,
            traffic=self.transport.monitor.report(
                node_count=len(self.nodes), duration=self.scale.duration
            ),
            completed_series=list(self.completed_sampler.samples),
            idle_series=list(self.idle_sampler.samples),
            node_count_series=list(self.node_count_sampler.samples),
            submission_window=(self.schedule.times()[0], self.schedule.end),
            final_node_count=len(self.nodes),
            executed_events=self.sim.executed_events,
            network=self.transport.network_counters(),
            telemetry=telemetry,
            trace_events=trace_events,
        )


def build_grid(
    scenario: Scenario,
    scale: Optional[ScenarioScale] = None,
    seed: int = 0,
    config_overrides: Optional[Dict[str, object]] = None,
    obs: Optional[TraceConfig] = None,
) -> GridSetup:
    """Assemble (but do not run) one complete scenario grid.

    ``config_overrides`` patches the derived :class:`AriaConfig` (e.g.
    ``{"failsafe": True}``) for *every* agent, including nodes that join
    later through :attr:`GridSetup.add_node` — a grid must never mix
    protocol configurations.

    ``obs`` enables observability: a :class:`~repro.obs.Tracer` built
    from the config is attached to exactly the components its level
    covers (agents at ``protocol``, + transport/reliability at
    ``transport``, + the kernel dispatch loop at ``kernel``), and the
    run's metrics-registry snapshot is surfaced as
    ``RunResult.telemetry`` when ``obs.telemetry`` is true.  Without
    ``obs`` every instrumentation point stays a single ``is None`` check.
    """
    scale = scale if scale is not None else ScenarioScale.paper()
    sim = Simulator(seed=seed)
    registry = MetricsRegistry()
    metrics = GridMetrics(registry)
    transport = SimTransport(
        sim, loss_probability=scenario.message_loss, registry=registry
    )
    tracer: Optional[Tracer] = None
    agent_tracer: Optional[Tracer] = None
    if obs is not None and obs.level != "off":
        tracer = Tracer(obs)
        if tracer.wants_level("protocol"):
            agent_tracer = tracer
        if tracer.wants_level("transport"):
            transport._trace = tracer
        if tracer.wants_level("kernel"):
            sim._trace = tracer
    graph = _build_overlay(scenario.overlay, scale.nodes, seed)

    config = AriaConfig(
        rescheduling=scenario.rescheduling,
        inform_count=scenario.inform_count,
        improvement_threshold=scenario.improvement_threshold,
    )
    if scale.nodes > _LARGE_GRID_NODES:
        import dataclasses

        from ..overlay.flooding import FloodPolicy

        config = dataclasses.replace(
            config,
            seen_cache_capacity=_LARGE_GRID_SEEN_CAPACITY,
            request_flood=FloodPolicy(
                max_hops=_LARGE_GRID_REQUEST_HOPS,
                fanout=config.request_flood.fanout,
            ),
        )
    if config_overrides:
        import dataclasses

        config = dataclasses.replace(config, **config_overrides)
    accuracy = AccuracyModel(
        epsilon=scenario.epsilon, optimistic_only=scenario.optimistic_only
    )

    profile_rng = sim.streams.get("profiles")
    policy_rng = sim.streams.get("policies")
    nodes: List[GridNode] = []
    agents: List[AriaAgent] = []
    state = GridState()

    def add_node(node_id: NodeId) -> None:
        node = GridNode(
            node_id=node_id,
            sim=sim,
            profile=random_node_profile(profile_rng),
            performance_index=random_performance_index(profile_rng),
            scheduler=make_scheduler(policy_rng.choice(scenario.policies)),
            accuracy=accuracy,
        )
        agent = AriaAgent(
            node, transport, graph, config, metrics, tracer=agent_tracer
        )
        state.register(node_id)
        node.bind_state(state)
        agent.grid_state = state
        agent.start()
        nodes.append(node)
        agents.append(agent)

    for node_id in graph.nodes():
        add_node(node_id)

    if scenario.expanding:
        _schedule_expansion(sim, graph, scale, add_node)

    # ------------------------------------------------------------------
    # Workload
    # ------------------------------------------------------------------
    schedule = SubmissionSchedule(
        job_count=scale.jobs,
        interval=scenario.submission_interval * scale.interval_factor,
        start=SubmissionSchedule().start,
    )
    initial_profiles = [node.profile for node in nodes]
    generator = JobGenerator(
        sim.streams.get("workload"),
        deadline_slack_mean=scenario.deadline_slack_mean,
        requirements_ok=lambda req: any(
            profile.satisfies(req) for profile in initial_profiles
        ),
        priority_levels=scenario.priority_levels,
        reservation_probability=scenario.reservation_probability,
        reservation_delay_mean=scenario.reservation_delay_mean,
    )
    # The live-agent pool only changes on membership events (join, crash,
    # restart, departure) — tracked by ``GridState.membership_version`` —
    # so the submission process reuses one cached list instead of
    # filtering all agents on every submission (O(nodes * jobs) at scale).
    live_cache: List[AriaAgent] = []
    live_cache_version = [-1]

    def live_agents() -> List[AriaAgent]:
        version = state.membership_version
        if version != live_cache_version[0]:
            live_cache[:] = [
                agent
                for agent in agents
                if not agent.failed and not agent.departed
            ]
            live_cache_version[0] = version
        return live_cache

    SubmissionProcess(
        sim,
        agents=live_agents,
        generator=generator,
        schedule=schedule,
        rng=sim.streams.get("submission"),
    )

    # ------------------------------------------------------------------
    # Probes — idle counts only consider live (non-crashed) nodes.  Both
    # counters are maintained incrementally by the GridState slab, so a
    # sampler tick is O(1) instead of a walk over every agent.
    # ------------------------------------------------------------------
    idle = PeriodicSampler(
        sim,
        lambda: state.idle_live_count,
        interval=scale.sample_interval,
        start=0.0,
    )
    completed = PeriodicSampler(
        sim,
        lambda: metrics.completed_jobs,
        interval=scale.sample_interval,
        start=0.0,
    )
    node_count = PeriodicSampler(
        sim,
        lambda: state.live_count,
        interval=scale.sample_interval,
        start=0.0,
    )

    return GridSetup(
        scenario=scenario,
        scale=scale,
        seed=seed,
        sim=sim,
        metrics=metrics,
        transport=transport,
        graph=graph,
        nodes=nodes,
        agents=agents,
        schedule=schedule,
        idle_sampler=idle,
        completed_sampler=completed,
        node_count_sampler=node_count,
        add_node=add_node,
        registry=registry,
        grid_state=state,
        tracer=tracer,
        obs=obs,
    )


def _run_scenario(
    scenario: Scenario,
    scale: Optional[ScenarioScale] = None,
    seed: int = 0,
    config_overrides: Optional[Dict[str, object]] = None,
    obs: Optional[TraceConfig] = None,
) -> RunResult:
    """Simulate one run of ``scenario`` (internal, non-deprecated impl)."""
    return build_grid(scenario, scale, seed, config_overrides, obs=obs).run()


def run_scenario(
    scenario: Scenario,
    scale: Optional[ScenarioScale] = None,
    seed: int = 0,
) -> RunResult:
    """Simulate one run of ``scenario`` at ``scale`` with ``seed``.

    .. deprecated:: 1.1
        Use :func:`repro.experiments.run` — the unified entry point for
        scenarios, baselines, crash and churn experiments.

    .. versionchanged:: 1.2
        Calling this wrapper is now an error.
    """
    raise DeprecationWarning(
        "run_scenario() was removed; use repro.experiments.run(scenario, "
        "scale, seed=...) instead"
    )


def _schedule_expansion(
    sim: Simulator,
    graph: OverlayGraph,
    scale: ScenarioScale,
    add_node: Callable[[NodeId], None],
) -> None:
    """Grow the overlay during the run (the Expanding scenarios, §IV-E).

    New nodes join through the BLATANT maintainer (a couple of random
    bootstrap links), and the online ant activity re-optimizes the topology
    while the grid grows.  Maintenance stops shortly after the expansion
    window since a converged static overlay has nothing left to optimize.
    """
    maintainer = BlatantMaintainer(
        graph,
        sim.streams.get("overlay.online"),
        BlatantConfig(),
    )
    extra = scale.expanding_extra_nodes
    window = scale.expanding_end - scale.expanding_start
    join_interval = window / extra
    base_id = max(graph.nodes()) + 1

    def join(index: int) -> None:
        node_id = NodeId(base_id + index)
        maintainer.join(node_id)
        add_node(node_id)

    for index in range(extra):
        sim.call_at(scale.expanding_start + index * join_interval, join, index)

    stop = maintainer.start(sim)
    sim.call_at(
        min(scale.expanding_end + 0.2 * scale.duration, scale.duration), stop
    )


def run_scenario_batch(
    scenario: Scenario,
    scale: Optional[ScenarioScale] = None,
    seeds: Tuple[int, ...] = (0,),
) -> List[RunResult]:
    """Run a scenario once per seed (the paper repeats each 10 times).

    .. deprecated:: 1.1
        Use :func:`repro.experiments.run_batch`, which adds process-pool
        parallelism and an on-disk result cache and returns picklable
        :class:`RunSummary` objects.

    .. versionchanged:: 1.2
        Calling this wrapper is now an error.
    """
    raise DeprecationWarning(
        "run_scenario_batch() was removed; use repro.experiments."
        "run_batch(scenario, scale, seeds=...) instead"
    )
