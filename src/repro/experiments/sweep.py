"""Parameter sweeps: sensitivity curves beyond the paper's sample points.

The paper probes its parameters at two or three values each (iInform1/4,
iInform15m/30m, Accuracy25/Bad).  :func:`sweep_scenario_field` and
:func:`sweep_config_field` generalize that: vary one field of the
:class:`~repro.experiments.Scenario` (or of the protocol
:class:`~repro.core.AriaConfig`) across arbitrary values and collect one
:class:`~repro.experiments.ScenarioSummary` per point.

Example — a full INFORM-cadence sensitivity curve::

    points = sweep_config_field(
        "iMixed", "inform_interval",
        [60, 150, 300, 600, 1200], scale, seeds=(0, 1))
    for p in points:
        print(p.value, p.summary.average_completion_time,
              p.summary.traffic_bytes.get("Inform", 0))
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..errors import ConfigurationError
from .aggregate import ScenarioSummary, summarize_runs
from .catalog import get_scenario
from .engine import run_batch
from .options import RunOptions
from .scale import ScenarioScale

__all__ = ["SweepPoint", "sweep_scenario_field", "sweep_config_field"]


@dataclass
class SweepPoint:
    """One sampled point of a sweep."""

    field: str
    value: object
    summary: ScenarioSummary


def _sweep_point(
    scenario, scale, seeds, config_overrides=None, parallel=None
):
    """One sweep point via the batch engine (cached, optionally parallel)."""
    return summarize_runs(
        run_batch(
            scenario,
            scale,
            seeds=seeds,
            options=RunOptions(
                parallel=parallel, config_overrides=config_overrides
            ),
        )
    )


def sweep_scenario_field(
    scenario_name: str,
    field: str,
    values: Sequence[object],
    scale: Optional[ScenarioScale] = None,
    seeds: Sequence[int] = (0,),
    parallel: Optional[int] = None,
) -> List[SweepPoint]:
    """Vary one :class:`Scenario` field (e.g. ``submission_interval``,
    ``inform_count``, ``epsilon``) across ``values``."""
    base = get_scenario(scenario_name)
    if field not in {f.name for f in dataclasses.fields(base)}:
        raise ConfigurationError(f"Scenario has no field {field!r}")
    points: List[SweepPoint] = []
    for value in values:
        scenario = dataclasses.replace(
            base, name=f"{base.name}[{field}={value}]", **{field: value}
        )
        points.append(
            SweepPoint(
                field,
                value,
                _sweep_point(scenario, scale, seeds, parallel=parallel),
            )
        )
    return points


def sweep_config_field(
    scenario_name: str,
    field: str,
    values: Sequence[object],
    scale: Optional[ScenarioScale] = None,
    seeds: Sequence[int] = (0,),
    parallel: Optional[int] = None,
) -> List[SweepPoint]:
    """Vary one protocol :class:`~repro.core.AriaConfig` field (e.g.
    ``inform_interval``, ``accept_wait``, ``improvement_threshold``)."""
    from ..core.config import AriaConfig

    base = get_scenario(scenario_name)
    if field not in {f.name for f in dataclasses.fields(AriaConfig)}:
        raise ConfigurationError(f"AriaConfig has no field {field!r}")
    points: List[SweepPoint] = []
    for value in values:
        scenario = dataclasses.replace(
            base, name=f"{base.name}[{field}={value}]"
        )
        points.append(
            SweepPoint(
                field,
                value,
                _sweep_point(
                    scenario,
                    scale,
                    seeds,
                    config_overrides={field: value},
                    parallel=parallel,
                ),
            )
        )
    return points
