"""Grid-size scaling of the paper's evaluation setup.

The paper simulates 500 nodes, 1000 jobs and 41 h 40 m of grid activity per
run (§IV).  That is fully supported (:meth:`ScenarioScale.paper`), but the
test suite and default benchmarks use a scaled-down grid.

Scaling preserves the *offered load shape*: node count and job count shrink
by the same factor while the submission interval grows by its inverse, so
the submission window, the per-node arrival rate, the queue backlog
dynamics and therefore the shapes of all time series stay comparable to the
paper's — only the statistics get noisier.

Beyond the paper's size, the ``large`` (10 000 nodes) and ``huge``
(100 000 nodes) presets scale *up*: same per-node arrival rate, 20× / 200×
the traffic.  They are feasible thanks to slab-backed grid state, bounded
per-agent caches and O(1) sampler probes — see ``docs/PERFORMANCE.md``.

Set the environment variable ``ARIA_BENCH_SCALE`` to ``tiny``, ``small``,
``medium``, ``paper``, ``large`` or ``huge`` to choose the benchmark scale
(default ``small``).
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from ..errors import ConfigurationError

__all__ = ["ScenarioScale", "bench_scale_from_env"]

#: The paper's node count; submission intervals in Table II refer to it.
REFERENCE_NODES = 500

#: Upper bound on ``duration / sample_interval``.  Each sampled series
#: costs one probe event per tick, so an interval that does not scale with
#: the duration would emit millions of probe events (and samples) on long
#: runs.  The paper's cadence gives 250 points; 10 000 leaves generous
#: headroom while keeping probe traffic negligible at any scale.
MAX_SAMPLES_PER_SERIES = 10_000


@dataclass(frozen=True)
class ScenarioScale:
    """Concrete grid size for one run."""

    nodes: int = 500
    jobs: int = 1000
    #: Total simulated time (paper: 41 h 40 m = 150 000 s).
    duration: float = 150_000.0
    #: Expanding scenarios add ``expanding_fraction * nodes`` new nodes
    #: (paper: 500 → 700, i.e. 0.4) ...
    expanding_fraction: float = 0.4
    #: ... between these two times (paper: 1 h 23 m → 4 h 10 m).
    expanding_start: float = 5_000.0
    expanding_end: float = 15_000.0
    #: Sampling cadence of the time-series probes (idle nodes, completed
    #: jobs).  600 s gives 250 points over the paper duration.
    sample_interval: float = 600.0

    def __post_init__(self) -> None:
        if self.nodes < 2 or self.jobs < 1:
            raise ConfigurationError(f"degenerate scale {self!r}")
        if not 0 <= self.expanding_fraction <= 1:
            raise ConfigurationError("expanding_fraction out of [0, 1]")
        if not 0 <= self.expanding_start < self.expanding_end <= self.duration:
            raise ConfigurationError("invalid expanding window")
        if self.sample_interval <= 0:
            raise ConfigurationError("sample_interval must be positive")
        if self.duration / self.sample_interval > MAX_SAMPLES_PER_SERIES:
            raise ConfigurationError(
                f"sample_interval {self.sample_interval!r} yields "
                f"{self.duration / self.sample_interval:.0f} samples over "
                f"duration {self.duration!r}; must not exceed "
                f"{MAX_SAMPLES_PER_SERIES} — scale the interval with the "
                f"duration"
            )

    @property
    def interval_factor(self) -> float:
        """Multiplier applied to paper-scale submission intervals."""
        return REFERENCE_NODES / self.nodes

    @property
    def expanding_extra_nodes(self) -> int:
        return max(1, round(self.nodes * self.expanding_fraction))

    # ------------------------------------------------------------------
    # Stock sizes
    # ------------------------------------------------------------------
    @classmethod
    def paper(cls) -> "ScenarioScale":
        """The paper's exact evaluation size (500 nodes, 1000 jobs)."""
        return cls()

    @classmethod
    def large(cls) -> "ScenarioScale":
        """20× the paper: 10 000 nodes, 20 000 jobs, same load shape."""
        return cls(nodes=10_000, jobs=20_000, sample_interval=600.0)

    @classmethod
    def huge(cls) -> "ScenarioScale":
        """200× the paper: 100 000 nodes, 200 000 jobs, same load shape."""
        return cls(nodes=100_000, jobs=200_000, sample_interval=600.0)

    @classmethod
    def medium(cls) -> "ScenarioScale":
        return cls(nodes=150, jobs=300, sample_interval=600.0)

    @classmethod
    def small(cls) -> "ScenarioScale":
        return cls(nodes=60, jobs=120, sample_interval=1200.0)

    @classmethod
    def tiny(cls) -> "ScenarioScale":
        """Fast enough for unit tests (< 1 s per run)."""
        return cls(
            nodes=16,
            jobs=30,
            duration=60_000.0,
            expanding_start=3_000.0,
            expanding_end=9_000.0,
            sample_interval=2_000.0,
        )


_SCALES = {
    "huge": ScenarioScale.huge,
    "large": ScenarioScale.large,
    "paper": ScenarioScale.paper,
    "medium": ScenarioScale.medium,
    "small": ScenarioScale.small,
    "tiny": ScenarioScale.tiny,
}


def bench_scale_from_env(default: str = "small") -> ScenarioScale:
    """The benchmark scale selected by ``ARIA_BENCH_SCALE``."""
    name = os.environ.get("ARIA_BENCH_SCALE", default).strip().lower()
    factory = _SCALES.get(name)
    if factory is None:
        raise ConfigurationError(
            f"ARIA_BENCH_SCALE={name!r}; expected one of {sorted(_SCALES)}"
        )
    return factory()
