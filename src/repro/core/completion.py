"""A bounded, age-aware log of locally completed jobs.

The protocol layer keeps a per-node record of every job it finished so
duplicate ASSIGNs (retransmitted, re-flooded, or resubmitted by a
confused tracker) are rejected instead of executed twice.  A plain set
grows monotonically for the lifetime of the node — harmless in bounded
experiments, a slow leak in long-running ones.

:class:`CompletionLog` caps that memory without weakening the dedup
guarantee where it matters: an entry is evicted only when the log is
over ``max_size`` **and** the entry is older than ``min_age``.  The
duplicate-ASSIGN hazard has a bounded horizon — a stale copy can only
arrive within the reliability layer's give-up horizon plus a couple of
fail-safe probe rounds (see ``docs/FAULTS.md``), both far below the
default hour.  Entries younger than that are never evicted, whatever
the size; entries older than it are provably outside every replay
window and safe to drop oldest-first.

The log also survives crash-restart (the protocol layer carries it
across :meth:`AriaAgent.restart`): it is the executor's durable journal,
the analogue of the tiny write-ahead completion record any real
scheduler persists, and it is what stops a restarted node from
re-executing a job whose Done got lost with the crash.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional

from ..errors import ConfigurationError
from ..types import JobId

__all__ = ["CompletionLog"]


class CompletionLog:
    """An insertion-ordered job-id set with size- and age-gated eviction."""

    __slots__ = ("max_size", "min_age", "_entries")

    def __init__(self, max_size: int = 4096, min_age: float = 3600.0) -> None:
        if max_size < 1:
            raise ConfigurationError(f"max_size {max_size} must be >= 1")
        if min_age < 0:
            raise ConfigurationError(f"min_age {min_age} must be >= 0")
        self.max_size = max_size
        self.min_age = min_age
        #: job id -> completion time, oldest first (completion times are
        #: monotonic, so insertion order is age order).
        self._entries: "OrderedDict[JobId, float]" = OrderedDict()

    def add(self, job_id: JobId, now: float) -> None:
        """Record a completion and evict what is both old and over-cap."""
        entries = self._entries
        entries[job_id] = now
        if len(entries) <= self.max_size:
            return
        horizon = now - self.min_age
        while len(entries) > self.max_size:
            oldest_job, completed_at = next(iter(entries.items()))
            if completed_at > horizon:
                break  # too young to be outside every replay window
            del entries[oldest_job]

    def __contains__(self, job_id: JobId) -> bool:
        return job_id in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def completed_at(self, job_id: JobId) -> Optional[float]:
        """The recorded completion time, or ``None`` if absent/evicted."""
        return self._entries.get(job_id)
