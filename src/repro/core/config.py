"""ARiA protocol configuration.

Defaults reproduce the paper's baseline evaluation settings (§IV-E):

* REQUEST flooding: ≤ 9 hops, ≤ 4 random neighbours per step;
* INFORM flooding: ≤ 8 hops, ≤ 2 neighbours ("a more lightweight approach");
* INFORM cadence: at most 2 scheduled jobs every 5 minutes;
* rescheduling improvement threshold: 3 minutes (the baseline the
  iInform15m / iInform30m scenarios vary).

The acceptance *timelapse* (how long an initiator collects ACCEPT replies,
§III-B) is not quantified in the paper; the default of 5 s comfortably
covers a 9-hop flood at WAN latencies while staying negligible against
multi-hour job runtimes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import ConfigurationError
from ..overlay.flooding import FloodPolicy
from ..types import MINUTE

__all__ = ["AriaConfig"]


@dataclass(frozen=True)
class AriaConfig:
    """Tunable parameters of the ARiA protocol."""

    #: Whether the dynamic rescheduling phase (INFORM traffic) is active.
    #: Scenarios prefixed with ``i`` in the paper enable it.
    rescheduling: bool = True
    #: Flood bounds for REQUEST messages.
    request_flood: FloodPolicy = field(
        default_factory=lambda: FloodPolicy(max_hops=9, fanout=4)
    )
    #: Flood bounds for INFORM messages.
    inform_flood: FloodPolicy = field(
        default_factory=lambda: FloodPolicy(max_hops=8, fanout=2)
    )
    #: How long an initiator collects ACCEPT offers before assigning.
    accept_wait: float = 5.0
    #: Period of the per-node INFORM generation activity.
    inform_interval: float = 5 * MINUTE
    #: Maximum jobs advertised per INFORM round (paper baseline: 2).
    inform_count: int = 2
    #: Minimum cost improvement a rescheduling must provide (batch: seconds
    #: of ETTC; deadline: NAL units).  Paper baseline: 3 minutes.
    improvement_threshold: float = 3 * MINUTE
    #: If no ACCEPT arrives, re-broadcast the REQUEST after this long.
    request_retry_interval: float = 2 * MINUTE
    #: Give up on a job after this many fruitless REQUEST broadcasts.
    max_request_retries: int = 24
    #: Send Track notifications to initiators on reschedules (§III-D
    #: "may be notified"; off by default to match Figure 10's traffic).
    notify_initiator: bool = False
    #: Fail-safe mode (§III-D's crash-recovery sketch): initiators track
    #: their jobs' current assignees (implies Track notifications), probe
    #: them periodically, and resubmit jobs whose assignee looks dead for
    #: two consecutive probe rounds.
    failsafe: bool = False
    #: Period of the fail-safe probing activity.
    probe_interval: float = 10 * MINUTE
    #: How long to wait for a ProbeReply before counting a miss.
    probe_timeout: float = 30.0
    #: Grace period a gracefully leaving node lingers after its plate is
    #: clean, so in-flight ASSIGNs still find it (and get re-delegated)
    #: instead of vanishing with the departure.
    departure_grace: float = 60.0
    #: Initiator-crash orphan recovery: an assignee that holds a job but
    #: has not been probed for ``adoption_windows`` consecutive probe
    #: intervals concludes the initiator is gone and adopts the job
    #: (self-tracks it, suppresses the unreachable Done).  Only
    #: meaningful with ``failsafe`` on; off by default so the baseline
    #: §III-D scope is unchanged.
    adoption: bool = False
    #: How many silent probe windows an assignee waits before adopting.
    adoption_windows: int = 3
    #: Per-agent flood-dedup window size (entries per SeenCache).  The
    #: default is generous for paper-scale grids; large-grid runs lower
    #: it — a node only needs to remember the floods that can concurrently
    #: pass through it, and 100k nodes × two 4096-entry caches would cost
    #: tens of GB of RSS for dedup state that is > 99 % expired.
    seen_cache_capacity: int = 4096
    #: Upper bound on the per-agent static host-match cache (job ids seen
    #: by REQUEST/INFORM floods).  The cache is pure memoization — when it
    #: fills up it is simply cleared and re-warms, so results never
    #: change; the bound keeps per-agent memory independent of how many
    #: jobs flood past over a run's lifetime.
    match_cache_limit: int = 4096
    #: Straggler defense: when > 0, an assignee gives every accepted job
    #: an execution deadline of ``estimate × slack`` and, once overdue,
    #: advertises the job with a cost penalty that grows with the delay,
    #: so the normal INFORM path pulls it off fail-slow nodes.  0
    #: disables the defense (the default).
    exec_deadline_slack: float = 0.0

    def __post_init__(self) -> None:
        if self.accept_wait <= 0:
            raise ConfigurationError("accept_wait must be positive")
        if self.inform_interval <= 0:
            raise ConfigurationError("inform_interval must be positive")
        if self.inform_count < 1:
            raise ConfigurationError("inform_count must be >= 1")
        if self.improvement_threshold < 0:
            raise ConfigurationError("improvement_threshold must be >= 0")
        if self.request_retry_interval <= 0:
            raise ConfigurationError("request_retry_interval must be positive")
        if self.max_request_retries < 0:
            raise ConfigurationError("max_request_retries must be >= 0")
        if self.probe_interval <= 0:
            raise ConfigurationError("probe_interval must be positive")
        if self.probe_timeout <= 0:
            raise ConfigurationError("probe_timeout must be positive")
        if self.departure_grace < 0:
            raise ConfigurationError("departure_grace must be >= 0")
        if self.adoption_windows < 1:
            raise ConfigurationError("adoption_windows must be >= 1")
        if self.seen_cache_capacity < 1:
            raise ConfigurationError("seen_cache_capacity must be >= 1")
        if self.match_cache_limit < 1:
            raise ConfigurationError("match_cache_limit must be >= 1")
        if self.exec_deadline_slack < 0:
            raise ConfigurationError("exec_deadline_slack must be >= 0")
