"""Durable write-ahead journal: executor state that survives the process.

The in-memory :class:`~repro.core.state.CompletionLog` is what
:meth:`AriaAgent.restart` calls "the executor's durable journal" — and
inside one process that is honest, because a simulated crash never
destroys the Python heap.  A *real* crash (SIGKILL, OOM, power) does.
:class:`DurableJournal` is the on-disk backing that keeps the
cross-incarnation no-double-execution invariant true across actual
process deaths: every completion is fsync'd to an append-only JSONL file
*before* it is announced to the grid, and every incarnation bump is
recorded the same way, so a restarted process resumes with the full
completion memory and an incarnation counter strictly past every one
that ever ran.

Write-ahead discipline and crash tolerance:

* records are one JSON object per line, flushed and ``fsync``'d per
  append — a record either fully reaches the disk or is a torn tail;
* a torn tail (trailing bytes without a newline — the signature of a
  kill mid-write) is dropped and truncated away on open, so the next
  append starts on a clean line.  A *newline-terminated* line that fails
  to parse cannot be produced by a torn write and raises
  :class:`~repro.errors.JournalError` (real corruption must not be
  silently eaten);
* the journal file is held under an exclusive advisory lock
  (``flock``) for the owner's lifetime: a second open of the same
  journal while the first incarnation is still alive raises instead of
  letting two incarnations of one node run concurrently.

Record kinds (unknown kinds are skipped for forward compatibility):

* ``{"k": "inc", "v": N}`` — this journal's node is now incarnation N;
* ``{"k": "done", "job": J, "t": T, "inc": N}`` — job J finished at
  protocol time T under incarnation N.
"""

from __future__ import annotations

import json
import os
from typing import List, Optional, Tuple

from ..errors import JournalError

try:  # POSIX advisory locks; absent on some platforms.
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX fallback
    fcntl = None

__all__ = ["DurableJournal"]


class DurableJournal:
    """Append-only fsync'd JSONL journal for one node.

    Opening loads (and repairs) the existing file; :meth:`boot` then
    resolves which incarnation the owning process runs as.  ``fsync``
    can be disabled for tests that hammer the journal; ``lock=False``
    skips the duplicate-incarnation guard (e.g. read-only inspection of
    a dead node's journal).
    """

    __slots__ = (
        "path",
        "fsync",
        "incarnation",
        "completions",
        "torn_bytes",
        "_handle",
    )

    def __init__(
        self, path, *, fsync: bool = True, lock: bool = True
    ) -> None:
        self.path = os.fspath(path)
        self.fsync = fsync
        #: Last recorded incarnation (``None`` for a fresh journal).
        self.incarnation: Optional[int] = None
        #: Recovered ``(job_id, finished_at, incarnation)`` entries.
        self.completions: List[Tuple[int, float, int]] = []
        #: Bytes of torn tail dropped on open (0 = clean shutdown).
        self.torn_bytes = 0
        self._handle = open(self.path, "a+b")
        if lock and fcntl is not None:
            try:
                fcntl.flock(
                    self._handle.fileno(), fcntl.LOCK_EX | fcntl.LOCK_NB
                )
            except OSError:
                self._handle.close()
                self._handle = None
                raise JournalError(
                    f"journal {self.path} is locked — another incarnation "
                    "of this node is still alive"
                ) from None
        try:
            self._load()
        except JournalError:
            self.close()
            raise

    # ------------------------------------------------------------------
    # Recovery
    # ------------------------------------------------------------------
    def _load(self) -> None:
        handle = self._handle
        handle.seek(0)
        data = handle.read()
        # Everything up to the last newline is complete; trailing bytes
        # without one are a torn write (a record's newline is its final
        # byte, so a partial append can never look newline-terminated).
        good_end = data.rfind(b"\n") + 1
        self.torn_bytes = len(data) - good_end
        for number, line in enumerate(data[:good_end].splitlines(), 1):
            if not line.strip():
                continue
            try:
                record = json.loads(line)
            except ValueError:
                raise JournalError(
                    f"journal {self.path} is corrupt at line {number}"
                ) from None
            kind = record.get("k")
            if kind == "inc":
                self.incarnation = int(record["v"])
            elif kind == "done":
                self.completions.append(
                    (record["job"], float(record["t"]), int(record["inc"]))
                )
        if self.torn_bytes:
            handle.truncate(good_end)
        handle.seek(0, os.SEEK_END)

    def boot(self) -> int:
        """Resolve and durably record the owner's incarnation.

        A fresh journal boots as incarnation 0.  Any reopen of a journal
        that already recorded an incarnation is, by definition, a
        restart after a death (a clean exit is never respawned under the
        same journal), so the counter bumps past *every* incarnation
        that ever ran — including ones whose bump record itself was the
        torn tail.
        """
        if self.incarnation is None:
            value = 0
        else:
            value = self.incarnation + 1
        self.record_incarnation(value)
        return value

    # ------------------------------------------------------------------
    # Appends (write-ahead: callers journal first, announce after)
    # ------------------------------------------------------------------
    def record_incarnation(self, value: int) -> None:
        """Durably record that this node is now incarnation ``value``."""
        self._append({"k": "inc", "v": int(value)})
        self.incarnation = int(value)

    def record_completion(
        self, job_id: int, finished_at: float, incarnation: int
    ) -> None:
        """Durably record one finished job before announcing it."""
        self._append(
            {
                "k": "done",
                "job": job_id,
                "t": float(finished_at),
                "inc": int(incarnation),
            }
        )
        self.completions.append((job_id, float(finished_at), int(incarnation)))

    def _append(self, record: dict) -> None:
        handle = self._handle
        if handle is None:
            raise JournalError(f"journal {self.path} is closed")
        line = json.dumps(record, separators=(",", ":")) + "\n"
        handle.write(line.encode("utf-8"))
        handle.flush()
        if self.fsync:
            os.fsync(handle.fileno())

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Close the file (releasing the lock); idempotent."""
        handle = self._handle
        if handle is not None:
            self._handle = None
            handle.close()

    def __enter__(self) -> "DurableJournal":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()
