"""INFORM candidate selection (§III-D).

"Nodes will typically generate INFORM messages for a set of jobs in their
queue according to a selection mechanism.  For batch schedulers jobs with
the largest waiting times are preferentially selected, whereas for deadline
schedulers jobs with the least lateness are chosen."

*Least lateness* uses the paper's Fig. 4 definition of lateness — the time
left from (expected) completion to the deadline — so the jobs most at risk
(smallest slack) are advertised first.

Selection runs every INFORM round on every backlogged node, so it must not
re-sort the whole waiting queue to pick 2 candidates:
``heapq.nsmallest(count, ...)`` is O(n log count) and — per its documented
contract — returns exactly ``sorted(...)[:count]``, so the picked
candidates (and therefore every downstream message) are identical to the
full sort.
"""

from __future__ import annotations

import heapq
from typing import List

from ..accel import slack_values
from ..scheduling.base import DEADLINE, LocalScheduler, QueuedJob
from ..scheduling.costs import completion_times

__all__ = ["select_inform_candidates", "current_queue_cost"]


def select_inform_candidates(
    scheduler: LocalScheduler,
    count: int,
    now: float,
    running_remaining: float,
) -> List[QueuedJob]:
    """Pick up to ``count`` waiting jobs to advertise for rescheduling."""
    waiting = scheduler.queued()
    if not waiting:
        return []
    if scheduler.kind == DEADLINE:
        order = scheduler.ordered_queue()
        etcs = completion_times(order, now, running_remaining)
        slacks = slack_values([entry.job.deadline for entry in order], etcs)
        slack = {
            entry.job.job_id: value
            for entry, value in zip(order, slacks)
        }
        return heapq.nsmallest(
            count, waiting, key=lambda e: (slack[e.job.job_id], e.enqueue_time)
        )
    # Batch: largest waiting time first (earliest enqueue first).
    return heapq.nsmallest(count, waiting, key=lambda e: e.enqueue_time)


def current_queue_cost(
    scheduler: LocalScheduler,
    job_id: int,
    now: float,
    running_remaining: float,
) -> float:
    """The assignee's own current cost for a waiting job.

    This is the value carried inside INFORM messages and the reference an
    assignee compares incoming rescheduling ACCEPTs against.  For batch
    schedulers it is the job's ETTC within the *current* queue; for
    deadline schedulers it is the NAL of the current queue (the same
    whole-queue quantity a remote EDF node quotes).  Delegates to the
    scheduler's cached :meth:`~repro.scheduling.LocalScheduler.queue_cost_of`.
    """
    return scheduler.queue_cost_of(job_id, now, running_remaining)
