"""The four ARiA protocol messages (paper Table I).

=========  ==========================================================
Message    Fields (Table I)
=========  ==========================================================
REQUEST    Initiator's address · Job UUID · Job Profile
ACCEPT     Node's address · Job UUID · Cost
INFORM     Assignee's address · Job UUID · Job Profile · Cost
ASSIGN     Initiator's address · Job UUID · Job Profile
=========  ==========================================================

Sizes follow §V-E: REQUEST, INFORM and ASSIGN carry 1 KB, ACCEPT 128 B.

The job *profile* of the paper (requirements + ERT + deadline) is our
immutable :class:`~repro.workload.jobs.Job`, which also carries the UUID —
so messages hold one ``job`` field for both Table I columns.  Flooded
messages (REQUEST, INFORM) additionally carry the remaining hop budget and
a per-broadcast identifier for duplicate suppression; both would be plain
header fields in a wire format and are covered by the 1 KB size.
"""

from __future__ import annotations

from typing import Optional

from ..net.message import Message
from ..types import JobId, NodeId
from ..workload.jobs import Job

__all__ = ["Request", "Accept", "Inform", "Assign"]


class Request(Message):
    """Resource-discovery query broadcast by a job's initiator (§III-B)."""

    SIZE_BYTES = 1024
    __slots__ = ("initiator", "job", "hops_left", "broadcast_id")

    def __init__(
        self, initiator: NodeId, job: Job, hops_left: int, broadcast_id: int
    ) -> None:
        self.initiator = initiator
        self.job = job
        self.hops_left = hops_left
        self.broadcast_id = broadcast_id


class Accept(Message):
    """Cost offer: answers a REQUEST (to the initiator) or an INFORM
    (to the current assignee) (§III-C, §III-D)."""

    SIZE_BYTES = 128
    __slots__ = ("node", "job_id", "cost")

    def __init__(self, node: NodeId, job_id: JobId, cost: float) -> None:
        self.node = node
        self.job_id = job_id
        self.cost = cost


class Inform(Message):
    """Rescheduling advertisement flooded by a job's current assignee;
    carries the assignee's own cost so candidates only answer when they
    can beat it (§III-D)."""

    SIZE_BYTES = 1024
    __slots__ = ("assignee", "job", "cost", "hops_left", "broadcast_id")

    def __init__(
        self,
        assignee: NodeId,
        job: Job,
        cost: float,
        hops_left: int,
        broadcast_id: int,
    ) -> None:
        self.assignee = assignee
        self.job = job
        self.cost = cost
        self.hops_left = hops_left
        self.broadcast_id = broadcast_id


class Assign(Message):
    """Job delegation to the selected node; sent by the initiator after the
    acceptance phase, or by the current assignee on rescheduling."""

    SIZE_BYTES = 1024
    __slots__ = ("initiator", "job", "reschedule")

    def __init__(self, initiator: NodeId, job: Job, reschedule: bool) -> None:
        self.initiator = initiator
        self.job = job
        self.reschedule = reschedule


class Track(Message):
    """Optional reschedule notification to the job's initiator (§III-D:
    "rescheduling actions may be notified to the job's initiator").

    Disabled by default so the traffic profile matches Figure 10; enabling
    it (``AriaConfig.notify_initiator``) supports the paper's fail-safe
    tracking discussion.
    """

    SIZE_BYTES = 128
    __slots__ = ("job_id", "new_assignee")

    def __init__(self, job_id: JobId, new_assignee: NodeId) -> None:
        self.job_id = job_id
        self.new_assignee = new_assignee


__all__.append("Track")


class Probe(Message):
    """Fail-safe liveness check: the initiator asks a job's believed
    assignee whether it still holds the job.

    Part of the fail-safe extension sketched in §III-D; only sent when
    ``AriaConfig.failsafe`` is on.
    """

    SIZE_BYTES = 128
    __slots__ = ("job_id", "initiator")

    def __init__(self, job_id: JobId, initiator: NodeId) -> None:
        self.job_id = job_id
        self.initiator = initiator


class ProbeReply(Message):
    """Answer to a :class:`Probe`: whether the node holds the job.

    Two reconciliation fields let tracking self-heal when a Track or Done
    notification was permanently lost (e.g. dropped throughout a network
    partition): ``done`` reports that this node already *executed* the job,
    and ``new_assignee`` is a forwarding pointer to wherever this node last
    re-delegated it.  Both fit the fixed 128-byte wire size.
    """

    SIZE_BYTES = 128
    __slots__ = ("job_id", "holds", "done", "new_assignee")

    def __init__(
        self,
        job_id: JobId,
        holds: bool,
        done: bool = False,
        new_assignee: Optional[NodeId] = None,
    ) -> None:
        self.job_id = job_id
        self.holds = holds
        self.done = done
        self.new_assignee = new_assignee


class Done(Message):
    """Completion notification to the job's initiator (fail-safe mode),
    so the initiator stops tracking the job."""

    SIZE_BYTES = 128
    __slots__ = ("job_id",)

    def __init__(self, job_id: JobId) -> None:
        self.job_id = job_id


__all__ += ["Probe", "ProbeReply", "Done"]
