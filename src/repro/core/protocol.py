"""The ARiA protocol agent (§III of the paper).

One :class:`AriaAgent` runs on every grid node and implements the three
protocol phases:

* **Job submission** (§III-B): the node a job is submitted to (its
  *initiator*) floods a REQUEST over the overlay and collects ACCEPT cost
  offers for a fixed timelapse.  The initiator evaluates its own resources
  too — submission to a node never guarantees local execution, but the
  local node is a candidate like any other (at zero network cost).
* **Job acceptance** (§III-C): nodes whose profile matches the job answer
  with their cost (ETTC for batch schedulers, NAL for deadline schedulers);
  non-matching nodes relay the message.  The initiator delegates the job to
  the cheapest offer with an ASSIGN; assigned jobs can never be declined.
* **Dynamic rescheduling** (§III-D): while a job waits in a queue, its
  current assignee periodically advertises it with INFORM messages carrying
  the current cost.  A node that can beat that cost by more than the
  improvement threshold answers with an ACCEPT; the assignee withdraws the
  job (if it has not started) and re-ASSIGNs it to the better node.

Flooding rule (uniform for REQUEST and INFORM): a node that *answers* a
message does not relay it; every other node relays it while the hop budget
lasts.  For REQUEST this is literally the paper's rule ("if the request
cannot be satisfied, the message is further forwarded", §III-C); the paper
leaves the INFORM relay rule implicit and we apply the same answer-or-relay
principle.

Race conditions are resolved exactly as the paper's assumptions demand:
a job that started executing is never withdrawn (no preemption/migration),
late or duplicate ACCEPTs for a job that already left the queue are
ignored, and every re-ASSIGN re-checks the assignee's *fresh* cost rather
than the possibly stale value advertised in the INFORM.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Tuple

from ..clock import TimerHandle
from ..errors import ProtocolError
from ..grid.node import GridNode, RunningJob
from ..metrics.collector import GridMetrics
from ..net.message import Message
from ..net.transport import Transport
from ..overlay.flooding import SeenCache, choose_targets
from ..overlay.graph import OverlayGraph
from ..scheduling.base import DEADLINE
from ..types import JobId, NodeId
from ..workload.jobs import Job
from .completion import CompletionLog
from .config import AriaConfig
from .messages import (
    Accept,
    Assign,
    Done,
    Inform,
    Probe,
    ProbeReply,
    Request,
    Track,
)
from .selection import current_queue_cost, select_inform_candidates

__all__ = ["AriaAgent"]

#: A cost offer: (cost, offering node) — tuple order gives deterministic
#: minimum selection with node id as tie-breaker.
Offer = Tuple[float, NodeId]


class _PendingRequest:
    """Discovery state of one job waiting for ACCEPT offers.

    ``reschedule`` marks a *hand-off* discovery: the job is already
    assigned to this (leaving) node and is being re-delegated, so the final
    ASSIGN is a reschedule and the node itself is the fallback executor.
    """

    __slots__ = ("job", "offers", "retries", "timer", "reschedule")

    def __init__(self, job: Job, reschedule: bool = False) -> None:
        self.job = job
        self.offers: List[Offer] = []
        self.retries = 0
        self.timer: Optional[TimerHandle] = None
        self.reschedule = reschedule


class AriaAgent:
    """Protocol endpoint attached to one :class:`~repro.grid.GridNode`."""

    __slots__ = (
        "node",
        "node_id",
        "transport",
        "graph",
        "config",
        "_inform_fanout",
        "_request_fanout",
        "_improvement_threshold",
        "_deadline_slack",
        "_adoption",
        "metrics",
        "sim",
        "_trace",
        "_rng",
        "_pending",
        "_seen_requests",
        "_seen_informs",
        "_job_initiators",
        "_broadcast_seq",
        "_inform_stop",
        "_tracked",
        "_probe_timeouts",
        "_suspect",
        "_failsafe_stop",
        "_completed",
        "_redelegated",
        "journal",
        "incarnation",
        "_last_probe",
        "_adopted",
        "_exec_deadlines",
        "_deadline_overdue",
        "failed",
        "leaving",
        "departed",
        "_depart_timer",
        "_match_cache",
        "_match_cache_limit",
        "_dispatch",
        "grid_state",
    )

    def __init__(
        self,
        node: GridNode,
        transport: Transport,
        graph: OverlayGraph,
        config: AriaConfig,
        metrics: GridMetrics,
        rng: Optional[random.Random] = None,
        tracer=None,
    ) -> None:
        self.node = node
        #: The node's id, mirrored as a plain attribute: it is immutable and
        #: read on every hop of every flooded message.
        self.node_id = node.node_id
        self.transport = transport
        self.graph = graph
        self.config = config
        # Hot-path mirrors of frozen config scalars (attribute chains like
        # ``self.config.inform_flood.fanout`` add up over 10^5 relays).
        self._inform_fanout = config.inform_flood.fanout
        self._request_fanout = config.request_flood.fanout
        self._improvement_threshold = config.improvement_threshold
        self._deadline_slack = config.exec_deadline_slack
        self._adoption = config.adoption
        self.metrics = metrics
        self.sim = node.sim
        #: Optional :class:`~repro.obs.Tracer`, attached only when
        #: protocol-level tracing is active (``None`` costs one check per
        #: instrumentation point).
        self._trace = tracer
        self._rng = rng if rng is not None else self.sim.streams.get("aria")
        self._pending: Dict[JobId, _PendingRequest] = {}
        self._seen_requests = SeenCache(config.seen_cache_capacity)
        self._seen_informs = SeenCache(config.seen_cache_capacity)
        self._job_initiators: Dict[JobId, NodeId] = {}
        self._broadcast_seq = 0
        self._inform_stop = None
        # Fail-safe state (initiator side): job -> (descriptor, assignee).
        self._tracked: Dict[JobId, Tuple[Job, NodeId]] = {}
        self._probe_timeouts: Dict[JobId, TimerHandle] = {}
        self._suspect: Dict[JobId, int] = {}
        self._failsafe_stop = None
        # Probe-reconciliation memory (executor/assignee side): jobs this
        # node finished, and where it last re-delegated each job.  Both let
        # a ProbeReply repair tracking state whose Done/Track notification
        # was permanently lost (e.g. dropped throughout a partition), and
        # both survive crash-restart (see :meth:`restart`) — they are the
        # executor's durable journal.  The completion log is bounded: old
        # entries outside every replay window are evicted (docs/FAULTS.md).
        self._completed = CompletionLog()
        self._redelegated: Dict[JobId, NodeId] = {}
        #: Optional :class:`~repro.core.journal.DurableJournal` backing
        #: the completion log and incarnation counter on disk (attached
        #: by :meth:`bind_journal` in the process-isolated runtime;
        #: ``None`` costs one check per completion).
        self.journal = None
        #: Restart generation: bumped by :meth:`restart`, stamped into
        #: transport deliveries so the past cannot talk to the present.
        self.incarnation = 0
        # Orphan-recovery state (assignee side): when this node last saw a
        # fail-safe probe for each held job.  A held job whose remote
        # initiator stays silent for ``adoption_windows`` probe intervals
        # is orphaned (its tracker crashed) — adoption takes over the
        # initiator role; ``_adopted`` remembers which jobs, so a probe
        # from a resurfacing initiator can cede the role back.
        self._last_probe: Dict[JobId, float] = {}
        self._adopted: set = set()
        # Straggler-defense state (assignee side): per-job execution
        # deadlines and which jobs already blew them.
        self._exec_deadlines: Dict[JobId, float] = {}
        self._deadline_overdue: set = set()
        self.failed = False
        #: Graceful-departure state: a leaving node hands its queue off,
        #: finishes any running job, then departs the grid.
        self.leaving = False
        self.departed = False
        self._depart_timer: Optional[TimerHandle] = None
        #: Static host-match cache.  Scheduler family and profile matching
        #: are pure functions of the (frozen) job descriptor and this
        #: node's fixed profile/scheduler, so the verdict is computed once
        #: per job id; liveness (leaving/failed) stays outside the cache.
        self._match_cache: Dict[JobId, bool] = {}
        self._match_cache_limit = config.match_cache_limit
        #: Optional :class:`~repro.grid.state.GridState` this agent mirrors
        #: its live bit into (assigned by the grid builder; ``None`` costs
        #: one check per membership transition).
        self.grid_state = None
        #: Message dispatch by exact type — one dict lookup per delivery
        #: instead of an isinstance chain.
        self._dispatch = {
            Request: self._handle_request,
            Accept: self._handle_accept,
            Inform: self._handle_inform,
            Assign: self._handle_assign,
            Track: self._handle_track,
            Probe: self._handle_probe,
            ProbeReply: self._handle_probe_reply,
            Done: self._handle_done,
        }
        transport.register(node.node_id, self._on_message)
        node.on_job_started.append(self._on_job_started)
        node.on_job_finished.append(self._on_job_finished)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Begin the periodic protocol activities.

        Starts the INFORM loop (when rescheduling is on) and the fail-safe
        probing loop (when fail-safe mode is on).  Each node's clocks get a
        random phase so the grid does not act in synchronized bursts.
        """
        if self.config.rescheduling and self._inform_stop is None:
            phase = self._rng.uniform(0.0, self.config.inform_interval)
            self._inform_stop = self.sim.every(
                self.config.inform_interval,
                self._inform_round,
                start=self.sim.now + phase,
            )
        if self.config.failsafe and self._failsafe_stop is None:
            phase = self._rng.uniform(0.0, self.config.probe_interval)
            self._failsafe_stop = self.sim.every(
                self.config.probe_interval,
                self._failsafe_round,
                start=self.sim.now + phase,
            )

    def stop(self) -> None:
        """Stop the periodic protocol activities."""
        if self._inform_stop is not None:
            self._inform_stop()
            self._inform_stop = None
        if self._failsafe_stop is not None:
            self._failsafe_stop()
            self._failsafe_stop = None

    def fail(self, leave_overlay: bool = True) -> List[Job]:
        """Crash this node: it stops executing, replying and relaying.

        Returns the jobs lost from its queue/executor.  With fail-safe mode
        on, the initiators of those jobs detect the silence through probe
        misses and resubmit them (§III-D's fail-safe sketch).
        """
        if self.failed:
            raise ProtocolError(f"node {self.node_id} already failed")
        self.failed = True
        if self._trace is not None:
            self._trace.emit("node.crashed", self.sim.now, node=self.node_id)
        self.stop()
        # A dead node abandons its initiator duties too: pending discovery
        # retries, fail-safe probes and tracking state all die with it.
        # Jobs still *in* discovery here have no assignee and no tracker —
        # nothing in the grid can recover them — so they are recorded as
        # lost instead of silently vanishing from the books.
        for pending in self._pending.values():
            if pending.timer is not None:
                self.sim.cancel(pending.timer)
            self.metrics.job_lost(pending.job.job_id, self.sim.now)
            if self._trace is not None:
                self._trace.emit(
                    "job.lost",
                    self.sim.now,
                    job=pending.job.job_id,
                    node=self.node_id,
                )
        self._pending.clear()
        self._last_probe.clear()
        self._adopted.clear()
        self._exec_deadlines.clear()
        self._deadline_overdue.clear()
        for timeout in self._probe_timeouts.values():
            self.sim.cancel(timeout)
        self._probe_timeouts.clear()
        self._tracked.clear()
        self._suspect.clear()
        if self._depart_timer is not None:
            self.sim.cancel(self._depart_timer)
            self._depart_timer = None
        if self.transport.is_registered(self.node_id):
            self.transport.unregister(self.node_id)
        if leave_overlay and self.graph.has_node(self.node_id):
            self.graph.remove_node(self.node_id)
        if self.grid_state is not None:
            self.grid_state.set_live(int(self.node_id), False)
        lost = self.node.crash()
        for job in lost:
            self.metrics.job_lost(job.job_id, self.sim.now)
            if self._trace is not None:
                self._trace.emit(
                    "job.lost", self.sim.now, job=job.job_id, node=self.node_id
                )
        return lost

    def restart(self) -> None:
        """Rejoin the grid after a crash, under a fresh incarnation.

        Volatile state died with the crash and stays dead: flood dedup
        windows, discovery state, the fail-safe tracking table, initiator
        and suspicion bookkeeping, orphan/deadline state.  Two things
        survive — the completion log and the re-delegation pointers — the
        executor's durable journal (the analogue of the tiny write-ahead
        completion record real schedulers persist).  The journal is a
        *safety* requirement, not a convenience: without it a tracker
        whose Done/Track notification died with the old incarnation would
        probe the reborn node, hear "never heard of that job", and
        resubmit a job that already ran (or still runs elsewhere) —
        cross-incarnation double execution.

        The incarnation bump makes the old self unreachable: every
        message is stamped with the destination's incarnation at send
        time, so ASSIGNs, Tracks, retransmitted copies and acks addressed
        to the dead incarnation are dropped on arrival
        (``net.dropped_stale``) instead of corrupting the fresh state.

        The caller re-attaches the node to the overlay (e.g. via
        ``BlatantMaintainer.join``) — same split as churn joins.
        """
        if not self.failed:
            raise ProtocolError(f"node {self.node_id} has not crashed")
        if self.departed:
            raise ProtocolError(f"node {self.node_id} departed for good")
        self.failed = False
        self.leaving = False
        if self.grid_state is not None:
            self.grid_state.set_live(int(self.node_id), True)
        self.incarnation += 1
        self.transport.bump_incarnation(self.node_id)
        if self.journal is not None:
            self.journal.record_incarnation(self.incarnation)
        self.node.revive()
        self._seen_requests = SeenCache(self.config.seen_cache_capacity)
        self._seen_informs = SeenCache(self.config.seen_cache_capacity)
        self._job_initiators.clear()
        self._suspect.clear()
        self.transport.register(self.node_id, self._on_message)
        self.metrics.node_restarted(self.node_id, self.sim.now)
        if self._trace is not None:
            self._trace.emit(
                "node.restarted",
                self.sim.now,
                node=self.node_id,
                incarnation=self.incarnation,
            )
        self.start()

    def bind_journal(self, journal) -> int:
        """Attach a :class:`~repro.core.journal.DurableJournal` and
        recover its state; returns the incarnation this agent now runs as.

        This is what makes crash-restart honest across *real* process
        deaths: the in-memory completion log that :meth:`restart`
        preserves dies with the OS process, so a journal-less reborn
        process would answer fail-safe probes with "never heard of that
        job" and trigger cross-incarnation double execution.  Recovery
        replays every journaled completion into the probe-reconciliation
        memory, resumes the incarnation counter strictly past every one
        that ever ran here (pinning it into the transport's slab so
        stamping works from the first message), and narrates itself on
        the trace bus: one ``journal.recovered`` summary plus a
        ``journal.replayed`` entry per restored completion (capped),
        which is the pre-/post-kill evidence the chaos gauntlet checks.

        Call before :meth:`start`, on a freshly constructed agent.
        """
        self.journal = journal
        incarnation = journal.boot()
        recovered = list(journal.completions)
        for job_id, finished_at, _incarnation in recovered:
            self._completed.add(job_id, finished_at)
        if incarnation:
            self.incarnation = incarnation
            self.transport.set_incarnation(self.node_id, incarnation)
            self.metrics.node_restarted(self.node_id, self.sim.now)
        if self._trace is not None and (incarnation or recovered):
            self._trace.emit(
                "journal.recovered",
                self.sim.now,
                node=self.node_id,
                incarnation=incarnation,
                entries=len(recovered),
            )
            for job_id, _finished_at, entry_incarnation in recovered[-64:]:
                self._trace.emit(
                    "journal.replayed",
                    self.sim.now,
                    job=job_id,
                    node=self.node_id,
                    incarnation=entry_incarnation,
                )
        return incarnation

    def leave(self) -> int:
        """Begin a graceful departure (the volatile-resource case).

        The node immediately stops offering on REQUEST/INFORM, re-delegates
        every *waiting* job through hand-off discoveries (the final ASSIGNs
        count as reschedules and notify initiators when tracking is on),
        lets any running job finish, and departs once its plate is clean.
        If a hand-off finds no taker the node executes that job itself
        before departing — an accepted job is never dropped (§III-A).

        Returns the number of hand-off discoveries started.
        """
        if self.failed:
            raise ProtocolError(f"node {self.node_id} has crashed")
        if self.leaving:
            raise ProtocolError(f"node {self.node_id} is already leaving")
        self.leaving = True
        if self._inform_stop is not None:
            self._inform_stop()
            self._inform_stop = None
        handed_off = 0
        for entry in self.node.scheduler.queued():
            removed = self.node.withdraw_job(entry.job.job_id)
            if removed is not None:
                self._forget_execution_state(removed.job.job_id)
                self._begin_discovery(removed.job, reschedule=True)
                handed_off += 1
        self._maybe_depart()
        return handed_off

    def health_snapshot(self) -> Dict[str, object]:
        """Liveness snapshot served by the live runtime's ``/healthz``.

        Cheap enough to compute per request: scalar state plus the sizes
        of the standing tables — queue depth, the running job, the
        incarnation, tracking/pending load, and the age of the newest
        fail-safe probe seen (``None`` until one arrives).
        """
        now = self.sim.now
        running = self.node.running
        last_probe_age = (
            now - max(self._last_probe.values()) if self._last_probe else None
        )
        return {
            "incarnation": self.incarnation,
            "failed": self.failed,
            "leaving": self.leaving,
            "departed": self.departed,
            "queue_depth": len(self.node.scheduler),
            "running_job": None if running is None else running.job.job_id,
            "tracked_jobs": len(self._tracked),
            "pending_discoveries": len(self._pending),
            "last_probe_age": last_probe_age,
        }

    def _departure_blocked(self) -> bool:
        return (
            self.node.running is not None
            or len(self.node.scheduler) > 0
            or bool(self._pending)  # hand-offs / own submissions in flight
        )

    def _maybe_depart(self) -> None:
        """Arm the departure grace timer once nothing remains to do.

        The node lingers for ``departure_grace`` so that ASSIGNs already in
        flight still find it — they get re-delegated rather than silently
        dropped by an unregistered transport endpoint.
        """
        if not self.leaving or self.departed or self.failed:
            return
        if self._departure_blocked() or self._depart_timer is not None:
            return
        self._depart_timer = self.sim.call_after(
            self.config.departure_grace, self._complete_departure
        )

    def _complete_departure(self) -> None:
        self._depart_timer = None
        if self.departed or self.failed:
            return
        if self._departure_blocked():
            return  # a late ASSIGN arrived; its hand-off will re-trigger
        self.departed = True
        if self.grid_state is not None:
            self.grid_state.set_live(int(self.node_id), False)
        self.stop()
        # A departed initiator abandons its fail-safe tracking duties the
        # same way a crashed one does: an outstanding probe timeout left
        # armed here would fire after the node left the overlay and try to
        # re-broadcast a REQUEST from a node the graph no longer knows.
        for timeout in self._probe_timeouts.values():
            self.sim.cancel(timeout)
        self._probe_timeouts.clear()
        self._tracked.clear()
        self._suspect.clear()
        self.transport.unregister(self.node_id)
        if self.graph.has_node(self.node_id):
            self.graph.remove_node(self.node_id)

    # ------------------------------------------------------------------
    # Phase 1: job submission (this node is the initiator)
    # ------------------------------------------------------------------
    def submit(self, job: Job) -> None:
        """Accept a user's job submission and start the discovery phase."""
        if self.failed or self.departed:
            raise ProtocolError(
                f"node {self.node_id} is no longer part of the grid"
            )
        if job.job_id in self._pending:
            raise ProtocolError(f"job {job.job_id} already pending here")
        self.metrics.job_submitted(job, self.node_id, self.sim.now)
        if self._trace is not None:
            self._trace.emit(
                "job.submitted", self.sim.now, job=job.job_id, node=self.node_id
            )
        self._begin_discovery(job)

    def _begin_discovery(self, job: Job, reschedule: bool = False) -> None:
        pending = _PendingRequest(job, reschedule=reschedule)
        self._pending[job.job_id] = pending
        self._broadcast_request(job)
        pending.timer = self.sim.call_after(
            self.config.accept_wait, self._finalize_request, job.job_id
        )

    def _next_broadcast_id(self) -> Tuple[NodeId, int]:
        self._broadcast_seq += 1
        return (self.node_id, self._broadcast_seq)

    def _broadcast_request(self, job: Job) -> None:
        policy = self.config.request_flood
        if self._trace is not None:
            pending = self._pending.get(job.job_id)
            self._trace.emit(
                "request.broadcast",
                self.sim.now,
                job=job.job_id,
                node=self.node_id,
                retry=pending.retries if pending is not None else 0,
            )
        broadcast_id = self._next_broadcast_id()
        self._seen_requests.seen_before(broadcast_id)  # ignore echoes
        message = Request(
            initiator=self.node_id,
            job=job,
            hops_left=policy.max_hops - 1,
            broadcast_id=broadcast_id,
        )
        for target in choose_targets(
            self.graph, self.node_id, policy.fanout, self._rng
        ):
            self.transport.send(self.node_id, target, message)

    def _finalize_request(self, job_id: JobId) -> None:
        pending = self._pending.get(job_id)
        if pending is None:  # pragma: no cover - defensive
            return
        job = pending.job
        # The initiator quotes itself at decision time (no network cost).
        if self._can_host(job):
            own_cost = self.node.cost_for(job)
            pending.offers.append((own_cost, self.node_id))
            if self._trace is not None:
                self._trace.emit(
                    "cost.evaluated",
                    self.sim.now,
                    job=job_id,
                    node=self.node_id,
                    cost=own_cost,
                    phase="self",
                )
                self._trace.emit(
                    "accept.received",
                    self.sim.now,
                    job=job_id,
                    node=self.node_id,
                    src=self.node_id,
                    cost=own_cost,
                    phase="self",
                )
        if not pending.offers:
            pending.retries += 1
            if pending.retries > self.config.max_request_retries:
                del self._pending[job_id]
                if pending.reschedule and not self.failed:
                    # Hand-off found no taker: a leaving node falls back to
                    # executing the job itself before departing (a job may
                    # never be dropped once accepted, §III-A).
                    if self._trace is not None:
                        self._trace.emit(
                            "job.queued",
                            self.sim.now,
                            job=job_id,
                            node=self.node_id,
                        )
                    self.node.accept_job(job)
                    return
                self._untrack(job_id)
                self.metrics.job_unschedulable(job_id, self.sim.now)
                if self._trace is not None:
                    self._trace.emit(
                        "job.unschedulable",
                        self.sim.now,
                        job=job_id,
                        node=self.node_id,
                    )
                return
            self._broadcast_request(job)
            pending.timer = self.sim.call_after(
                self.config.request_retry_interval,
                self._finalize_request,
                job_id,
            )
            return
        del self._pending[job_id]
        cost, winner = min(pending.offers)
        if self._trace is not None:
            self._trace.emit(
                "assign.winner",
                self.sim.now,
                job=job_id,
                node=self.node_id,
                winner=winner,
                cost=cost,
                offers=len(pending.offers),
                reschedule=pending.reschedule,
            )
        if self.config.failsafe and not pending.reschedule:
            self._tracked[job_id] = (job, winner)
            self._suspect.pop(job_id, None)
        self._send_assign(winner, job, reschedule=pending.reschedule)
        if pending.reschedule:
            self._maybe_depart()

    def _send_control(self, dst: NodeId, message: Message) -> None:
        """Send a control-plane-critical message (ASSIGN / Track / Done /
        Probe / ProbeReply).

        Routed through the transport's reliability layer (at-least-once
        delivery + receiver-side dedup) when one is attached; a plain
        datagram send otherwise, preserving the paper's base semantics.
        """
        reliability = self.transport.reliability
        if reliability is not None:
            reliability.send(self.node_id, dst, message)
        else:
            self.transport.send(self.node_id, dst, message)

    def _send_assign(self, target: NodeId, job: Job, reschedule: bool) -> None:
        """Delegate ``job`` to ``target`` (initial assignment or reschedule).

        Reschedules resolve the job's original initiator, release the local
        initiator bookkeeping, and notify the initiator (Track) when
        tracking is active.
        """
        if reschedule:
            initiator = self._job_initiators.pop(job.job_id, self.node_id)
            # Remember the forwarding pointer: a probe that finds the job
            # gone from here can steer the initiator to ``target`` even if
            # the Track notification below never makes it.
            self._redelegated[job.job_id] = target
        else:
            initiator = self.node_id
        message = Assign(initiator=initiator, job=job, reschedule=reschedule)
        self._send_control(target, message)
        if reschedule and (
            self.config.notify_initiator or self.config.failsafe
        ):
            if initiator == self.node_id:
                if job.job_id in self._tracked:
                    self._tracked[job.job_id] = (job, target)
                    self._suspect.pop(job.job_id, None)
            else:
                self._send_control(initiator, Track(job.job_id, target))

    # ------------------------------------------------------------------
    # Message dispatch
    # ------------------------------------------------------------------
    def _on_message(self, src: NodeId, message: Message) -> None:
        handler = self._dispatch.get(message.__class__)
        if handler is None:  # pragma: no cover - defensive
            raise ProtocolError(f"unexpected message {message!r}")
        handler(src, message)

    def _handle_probe(self, src: NodeId, message: Probe) -> None:
        """Answer a fail-safe liveness probe.

        A job in a pending hand-off discovery counts as held: the leaving
        node is still responsible for it, and reporting otherwise would
        trigger a spurious fail-safe resubmission.  When the job is gone
        from here the reply carries what this node knows instead: that it
        already executed it (``done``), or where it re-delegated it
        (``new_assignee``) — repairing tracking state whose Done/Track
        notification was permanently lost.
        """
        job_id = message.job_id
        holds = self.node.holds_job(job_id) or job_id in self._pending
        done = False
        new_assignee = None
        if holds:
            # An incoming probe is proof the job's tracker is alive: feed
            # the orphan detector, and if this node had *adopted* the job
            # (falsely — e.g. the initiator restarted, or its probes were
            # partitioned away), cede the initiator role back.
            self._last_probe[job_id] = self.sim.now
            if job_id in self._adopted and message.initiator != self.node_id:
                self._adopted.discard(job_id)
                self._job_initiators[job_id] = message.initiator
                self._untrack(job_id)
        else:
            if job_id in self._completed:
                done = True
            else:
                new_assignee = self._redelegated.get(job_id)
        self._send_control(
            message.initiator,
            ProbeReply(job_id, holds, done=done, new_assignee=new_assignee),
        )

    def _handle_done(self, src: NodeId, message: Done) -> None:
        """A tracked job finished remotely: stop tracking it."""
        self._untrack(message.job_id)

    def _hosts_family(self, job: Job) -> bool:
        """Scheduler-family match: deadline jobs on deadline schedulers,
        batch jobs on batch schedulers (§III-C — "deadline scheduling
        offers are not mixed with batch ones"; EDF cannot order a job that
        has no deadline), and advance reservations only on policies that
        honour them."""
        if job.has_deadline != (self.node.scheduler.kind == DEADLINE):
            return False
        if job.not_before is not None:
            return self.node.scheduler.supports_reservations
        return True

    def _static_match(self, job: Job) -> bool:
        """Cached family + profile verdict for ``job`` on this node.

        Both inputs are immutable (jobs and :class:`NodeProfile` are frozen
        dataclasses; a node's scheduler is fixed at construction), so the
        result is memoised per job id.
        """
        cached = self._match_cache.get(job.job_id)
        if cached is None:
            cached = self._hosts_family(job) and self.node.can_execute(job)
            if len(self._match_cache) >= self._match_cache_limit:
                # Pure memoization: dropping entries only costs re-derival,
                # so a flush-and-rewarm keeps memory bounded over runs that
                # flood hundreds of thousands of job ids past each node.
                self._match_cache.clear()
            self._match_cache[job.job_id] = cached
        return cached

    def _can_host(self, job: Job) -> bool:
        """Whether this node may *offer* to execute ``job`` right now.

        Requires the profile and scheduler-family match, and that the node
        is neither leaving nor failed (a departing node sheds load, it does
        not attract more).
        """
        if self.leaving or self.failed:
            return False
        return self._static_match(job)

    # ------------------------------------------------------------------
    # Phase 2: acceptance
    # ------------------------------------------------------------------
    def _handle_request(self, src: NodeId, message: Request) -> None:
        if self._seen_requests.seen_before(message.broadcast_id):
            return
        if self._can_host(message.job):
            cost = self.node.cost_for(message.job)
            if self._trace is not None:
                self._trace.emit(
                    "cost.evaluated",
                    self.sim.now,
                    job=message.job.job_id,
                    node=self.node_id,
                    cost=cost,
                    phase="request",
                )
            self.transport.send(
                self.node_id,
                message.initiator,
                Accept(self.node_id, message.job.job_id, cost),
            )
            return  # answering nodes do not relay (§III-C)
        self._relay_request(src, message)

    def _relay_request(self, src: NodeId, message: Request) -> None:
        if message.hops_left <= 0:
            return
        relayed = Request(
            message.initiator,
            message.job,
            message.hops_left - 1,
            message.broadcast_id,
        )
        node_id = self.node_id
        send = self.transport.send
        for target in choose_targets(
            self.graph, node_id, self._request_fanout, self._rng, exclude=src
        ):
            send(node_id, target, relayed)

    def _handle_accept(self, src: NodeId, message: Accept) -> None:
        pending = self._pending.get(message.job_id)
        if pending is not None:
            pending.offers.append((message.cost, message.node))
            if self._trace is not None:
                self._trace.emit(
                    "accept.received",
                    self.sim.now,
                    job=message.job_id,
                    node=self.node_id,
                    src=message.node,
                    cost=message.cost,
                    phase="request",
                )
            return
        self._consider_reschedule_offer(message)

    # ------------------------------------------------------------------
    # Phase 3: dynamic rescheduling
    # ------------------------------------------------------------------
    def _inform_round(self) -> None:
        """Advertise up to ``inform_count`` waiting jobs (assignee side).

        ``now`` and ``running_remaining`` are hoisted out of the loop: both
        are constant within one event, so every candidate's quote reuses
        the scheduler's ``(version, now, running_remaining)``-keyed caches.
        """
        scheduler = self.node.scheduler
        if len(scheduler) == 0:
            # Nothing waiting: the round would advertise nothing, consume
            # no randomness and change no counter.  Returning here is
            # observably identical and keeps the per-node periodic timer
            # (nodes x rounds of them) a near-free event at 10^5 nodes.
            return
        now = self.sim.now
        running_remaining = self.node.running_remaining()
        candidates = select_inform_candidates(
            scheduler, self.config.inform_count, now, running_remaining
        )
        deadlines = self._exec_deadlines
        if self._deadline_slack > 0.0 and deadlines:
            candidates = self._with_overdue_candidates(candidates, now)
        policy = self.config.inform_flood
        hops_left = policy.max_hops - 1
        self.metrics.informs_advertised(len(candidates))
        for entry in candidates:
            cost = current_queue_cost(
                scheduler, entry.job.job_id, now, running_remaining
            )
            if deadlines:
                deadline = deadlines.get(entry.job.job_id)
                if deadline is not None and now > deadline:
                    # Straggler defense: an overdue job is advertised at
                    # its cost *plus* the overdue time, a penalty that
                    # grows every round until some other node's honest
                    # quote beats it and the INFORM path pulls the job
                    # off this (possibly fail-slow) node.
                    overdue = now - deadline
                    cost += overdue
                    if entry.job.job_id not in self._deadline_overdue:
                        self._deadline_overdue.add(entry.job.job_id)
                        self.metrics.job_deadline_exceeded(
                            entry.job.job_id, now
                        )
                        if self._trace is not None:
                            self._trace.emit(
                                "deadline.exceeded",
                                now,
                                job=entry.job.job_id,
                                node=self.node_id,
                                overdue=overdue,
                            )
            if self._trace is not None:
                self._trace.emit(
                    "inform.broadcast",
                    now,
                    job=entry.job.job_id,
                    node=self.node_id,
                    cost=cost,
                )
            broadcast_id = self._next_broadcast_id()
            self._seen_informs.seen_before(broadcast_id)
            message = Inform(
                self.node_id, entry.job, cost, hops_left, broadcast_id
            )
            for target in choose_targets(
                self.graph, self.node_id, policy.fanout, self._rng
            ):
                self.transport.send(self.node_id, target, message)

    def _with_overdue_candidates(self, candidates, now: float):
        """Force overdue queued jobs into the INFORM round.

        ``select_inform_candidates`` picks the jobs most attractive to
        move; a job stuck past its execution deadline must be advertised
        *whether or not* it looks attractive, or a fail-slow node would
        keep it quietly forever.
        """
        chosen = {entry.job.job_id for entry in candidates}
        scheduler = self.node.scheduler
        extra = []
        for job_id, deadline in self._exec_deadlines.items():
            if now <= deadline or job_id in chosen:
                continue
            entry = scheduler.find(job_id)
            if entry is not None:
                extra.append(entry)
        if not extra:
            return candidates
        return list(candidates) + extra

    def _handle_inform(self, src: NodeId, message: Inform) -> None:
        node_id = self.node_id
        if self._seen_informs.seen_before(message.broadcast_id):
            return
        if message.assignee == node_id:
            return
        if self._can_host(message.job):
            cost = self.node.cost_for(message.job)
            if cost < message.cost - self._improvement_threshold:
                if self._trace is not None:
                    self._trace.emit(
                        "cost.evaluated",
                        self.sim.now,
                        job=message.job.job_id,
                        node=node_id,
                        cost=cost,
                        phase="inform",
                    )
                self.transport.send(
                    node_id,
                    message.assignee,
                    Accept(node_id, message.job.job_id, cost),
                )
                return  # answering nodes do not relay
        self._relay_inform(src, message)

    def _relay_inform(self, src: NodeId, message: Inform) -> None:
        if message.hops_left <= 0:
            return
        relayed = Inform(
            message.assignee,
            message.job,
            message.cost,
            message.hops_left - 1,
            message.broadcast_id,
        )
        node_id = self.node_id
        send = self.transport.send
        for target in choose_targets(
            self.graph, node_id, self._inform_fanout, self._rng, exclude=src
        ):
            send(node_id, target, relayed)

    def _consider_reschedule_offer(self, message: Accept) -> None:
        """Assignee side: a node offers to take one of our waiting jobs."""
        entry = self.node.scheduler.find(message.job_id)
        if entry is None:
            return  # job started, finished, or already rescheduled: stale
        own_cost = current_queue_cost(
            self.node.scheduler,
            message.job_id,
            self.sim.now,
            self.node.running_remaining(),
        )
        if self._exec_deadlines:
            deadline = self._exec_deadlines.get(message.job_id)
            if deadline is not None and self.sim.now > deadline:
                # Mirror the INFORM-side penalty so the offer that the
                # inflated advertisement attracted actually wins here.
                own_cost += self.sim.now - deadline
        if self._trace is not None:
            self._trace.emit(
                "accept.received",
                self.sim.now,
                job=message.job_id,
                node=self.node_id,
                src=message.node,
                cost=message.cost,
                phase="inform",
            )
        if message.cost >= own_cost - self.config.improvement_threshold:
            return  # the offer no longer beats our fresh cost
        removed = self.node.withdraw_job(message.job_id)
        if removed is None:  # pragma: no cover - guarded by find() above
            return
        if self._trace is not None:
            self._trace.emit(
                "reschedule.withdrawn",
                self.sim.now,
                job=message.job_id,
                node=self.node_id,
                to=message.node,
                own_cost=own_cost,
                offer_cost=message.cost,
            )
        self._forget_execution_state(message.job_id)
        self._send_assign(message.node, removed.job, reschedule=True)

    # ------------------------------------------------------------------
    # Assignment receipt and execution hooks
    # ------------------------------------------------------------------
    def _handle_assign(self, src: NodeId, message: Assign) -> None:
        job = message.job
        if not self._static_match(job):
            raise ProtocolError(
                f"node {self.node_id} received job {job.job_id} it cannot "
                "host — nodes may not decline accepted jobs (§III-A)"
            )
        if (
            self.node.holds_job(job.job_id)
            or job.job_id in self._pending
            or job.job_id in self._completed
        ):
            # Duplicate delegation (e.g. a fail-safe resubmission raced a
            # Track update, or a resubmission of a job this node already
            # executed whose Done got lost): accepting twice would
            # double-execute, so the second copy is dropped idempotently.
            if self._trace is not None:
                self._trace.emit(
                    "assign.duplicate",
                    self.sim.now,
                    job=job.job_id,
                    node=self.node_id,
                    src=src,
                )
            return
        self._job_initiators[job.job_id] = message.initiator
        self._redelegated.pop(job.job_id, None)
        # The wire copy may be this process's first sight of the job
        # (metrics are sharded per OS process in the isolated runtime).
        self.metrics.ensure_job(job, message.initiator, job.submit_time)
        self.metrics.job_assigned(
            job.job_id, self.node_id, self.sim.now, message.reschedule
        )
        if self._trace is not None:
            self._trace.emit(
                "assign.received",
                self.sim.now,
                job=job.job_id,
                node=self.node_id,
                src=src,
                reschedule=message.reschedule,
            )
        if self.leaving:
            # An ASSIGN that raced our departure cannot be declined; the
            # leaving node immediately re-delegates it instead of queueing.
            self._begin_discovery(job, reschedule=True)
            return
        if self._trace is not None:
            self._trace.emit(
                "job.queued", self.sim.now, job=job.job_id, node=self.node_id
            )
        if self.config.failsafe:
            # Seed the orphan detector: treat the ASSIGN itself as the
            # tracker's first sign of life.
            self._last_probe[job.job_id] = self.sim.now
        if self._deadline_slack > 0.0:
            # Execution deadline: the queue-wait + runtime estimate this
            # node would quote right now, stretched by the slack.  NAL
            # costs are not time-like, so the job's own scaled runtime is
            # the floor of the estimate.
            estimate = max(self.node.cost_for(job), self.node.ertp(job))
            self._exec_deadlines[job.job_id] = (
                self.sim.now + estimate * self._deadline_slack
            )
        self.node.accept_job(job)

    def _forget_execution_state(self, job_id: JobId) -> None:
        """Drop assignee-side per-job state once the job leaves this node
        (finished, withdrawn for rescheduling, or handed off)."""
        self._last_probe.pop(job_id, None)
        self._adopted.discard(job_id)
        self._exec_deadlines.pop(job_id, None)
        self._deadline_overdue.discard(job_id)

    def _on_job_started(self, node: GridNode, running: RunningJob) -> None:
        self.metrics.job_started(
            running.job.job_id, node.node_id, self.sim.now
        )
        if self._exec_deadlines:
            # Once running, a job can never move (no preemption, §III-A):
            # its deadline has nothing left to defend.
            self._exec_deadlines.pop(running.job.job_id, None)
            self._deadline_overdue.discard(running.job.job_id)
        if self._trace is not None:
            self._trace.emit(
                "job.started",
                self.sim.now,
                job=running.job.job_id,
                node=node.node_id,
            )

    def _on_job_finished(self, node: GridNode, finished: RunningJob) -> None:
        job_id = finished.job.job_id
        initiator = self._job_initiators.pop(job_id, None)
        self._completed.add(job_id, self.sim.now)
        if self.journal is not None:
            # Write-ahead: the completion reaches the disk before anyone
            # (metrics, trace, the Done to the initiator) hears of it, so
            # a kill between here and the announcement can only lose the
            # announcement — never the memory that the job already ran.
            self.journal.record_completion(
                job_id, self.sim.now, self.incarnation
            )
        self._forget_execution_state(job_id)
        self.metrics.job_finished(
            job_id, node.node_id, self.sim.now, incarnation=self.incarnation
        )
        if self._trace is not None:
            self._trace.emit(
                "job.finished",
                self.sim.now,
                job=job_id,
                node=node.node_id,
                incarnation=self.incarnation,
            )
        if self.config.failsafe and initiator is not None:
            if initiator == self.node_id:
                self._untrack(job_id)
            else:
                self._send_control(initiator, Done(job_id))
        self._maybe_depart()

    # ------------------------------------------------------------------
    # Fail-safe mode (§III-D crash-recovery sketch)
    # ------------------------------------------------------------------
    def _untrack(self, job_id: JobId) -> None:
        self._tracked.pop(job_id, None)
        self._suspect.pop(job_id, None)
        timeout = self._probe_timeouts.pop(job_id, None)
        if timeout is not None:
            self.sim.cancel(timeout)

    def _handle_track(self, src: NodeId, message: Track) -> None:
        """Update the believed assignee of a tracked job."""
        entry = self._tracked.get(message.job_id)
        if entry is None:
            return
        self._tracked[message.job_id] = (entry[0], message.new_assignee)
        # Fresh assignment news clears any suspicion built by stale probes.
        self._suspect.pop(message.job_id, None)

    def _failsafe_round(self) -> None:
        """Probe the believed assignee of every tracked, unfinished job."""
        for job_id, (_job, assignee) in list(self._tracked.items()):
            if job_id in self._pending or job_id in self._probe_timeouts:
                continue  # being rediscovered / probe already in flight
            if assignee == self.node_id:
                continue  # local job: completion is observed directly
            if self._trace is not None:
                self._trace.emit(
                    "probe.sent",
                    self.sim.now,
                    job=job_id,
                    node=self.node_id,
                    assignee=assignee,
                )
            self._send_control(assignee, Probe(job_id, self.node_id))
            self._probe_timeouts[job_id] = self.sim.call_after(
                self.config.probe_timeout, self._probe_missed, job_id
            )
        if self._last_probe:
            self._orphan_scan()

    def _held_job(self, job_id: JobId) -> Optional[Job]:
        """The descriptor of a job waiting or running here, else ``None``."""
        running = self.node.running
        if running is not None and running.job.job_id == job_id:
            return running.job
        entry = self.node.scheduler.find(job_id)
        return entry.job if entry is not None else None

    def _orphan_scan(self) -> None:
        """Assignee side: detect jobs whose initiator has gone silent.

        §III-D's fail-safe covers assignee crashes only; a crashed
        *initiator* leaves its assigned jobs without a tracker.  The
        assignee notices: a held job that has not been probed for
        ``adoption_windows`` consecutive probe intervals is orphaned.
        With ``adoption`` on, this node takes over the initiator role —
        it self-tracks the job (so a later reschedule or assignee crash
        still has a tracker) and, as its own initiator, suppresses the
        Done that would otherwise chase the dead node.  With adoption
        off the orphan is only counted, which is what the orphan-leak
        regression arm measures.
        """
        now = self.sim.now
        window = self.config.adoption_windows * self.config.probe_interval
        for job_id, last_seen in list(self._last_probe.items()):
            if not self.node.holds_job(job_id):
                del self._last_probe[job_id]
                continue
            initiator = self._job_initiators.get(job_id)
            if initiator is None or initiator == self.node_id:
                del self._last_probe[job_id]
                continue
            if now - last_seen < window:
                continue
            del self._last_probe[job_id]
            self.metrics.job_orphaned(job_id, now)
            if self._trace is not None:
                self._trace.emit(
                    "job.orphaned",
                    now,
                    job=job_id,
                    node=self.node_id,
                    initiator=initiator,
                )
            if not self._adoption:
                continue
            job = self._held_job(job_id)
            if job is None:  # pragma: no cover - holds_job checked above
                continue
            self._adopted.add(job_id)
            self._job_initiators[job_id] = self.node_id
            self._tracked[job_id] = (job, self.node_id)
            self._suspect.pop(job_id, None)
            self.metrics.job_adopted(job_id, now)
            if self._trace is not None:
                self._trace.emit(
                    "job.adopted",
                    now,
                    job=job_id,
                    node=self.node_id,
                    initiator=initiator,
                )

    def _handle_probe_reply(self, src: NodeId, message: ProbeReply) -> None:
        """Process a probe answer; two consecutive misses resubmit.

        Reconciliation replies are honoured even when they arrive after
        the probe timeout already fired (information is information), but
        a plain "not held" only counts as a miss while its probe's timeout
        was still pending — a duplicated or post-timeout reply must not
        double-count a single unanswered round.
        """
        job_id = message.job_id
        timeout = self._probe_timeouts.pop(job_id, None)
        if timeout is not None:
            self.sim.cancel(timeout)
        if job_id not in self._tracked:
            return
        if message.done:
            # The assignee executed the job but its Done notification was
            # permanently lost: reconcile and stop tracking.
            self._untrack(job_id)
            return
        if message.holds:
            self._suspect.pop(job_id, None)
            return
        if message.new_assignee is not None:
            if message.new_assignee == self.node_id and not (
                self.node.holds_job(job_id) or job_id in self._pending
            ):
                # The forwarding pointer aims back here but nothing ever
                # arrived (the re-ASSIGN itself died): treat as a miss so
                # the job gets resubmitted rather than tracked forever.
                self._record_probe_miss(job_id)
                return
            # The job moved on and the Track notification was lost: follow
            # the forwarding pointer instead of suspecting a crash.
            job, _old = self._tracked[job_id]
            self._tracked[job_id] = (job, message.new_assignee)
            self._suspect.pop(job_id, None)
            return
        if timeout is None:
            return  # duplicate / post-timeout reply: miss already counted
        # The assignee answered but does not hold the job and knows
        # nothing about it: either a notification is still in flight
        # (wait it out) or the job was really lost.  Two consecutive
        # misses resubmit.
        self._record_probe_miss(job_id)

    def _probe_missed(self, job_id: JobId) -> None:
        self._probe_timeouts.pop(job_id, None)
        if job_id in self._tracked:
            self._record_probe_miss(job_id)

    def _record_probe_miss(self, job_id: JobId) -> None:
        misses = self._suspect.get(job_id, 0) + 1
        self._suspect[job_id] = misses
        if self._trace is not None:
            self._trace.emit(
                "probe.miss",
                self.sim.now,
                job=job_id,
                node=self.node_id,
                misses=misses,
            )
        if misses < 2:
            return
        job, _assignee = self._tracked[job_id]
        self._untrack(job_id)
        if job_id in self._pending:  # pragma: no cover - defensive
            return
        self.metrics.job_resubmitted(job_id, self.sim.now)
        if self._trace is not None:
            self._trace.emit(
                "job.resubmitted", self.sim.now, job=job_id, node=self.node_id
            )
        self._begin_discovery(job)
