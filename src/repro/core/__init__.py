"""The ARiA protocol: messages, configuration, and per-node agents."""

from .config import AriaConfig
from .journal import DurableJournal
from .messages import (
    Accept,
    Assign,
    Done,
    Inform,
    Probe,
    ProbeReply,
    Request,
    Track,
)
from .protocol import AriaAgent
from .selection import current_queue_cost, select_inform_candidates

__all__ = [
    "Accept",
    "AriaAgent",
    "AriaConfig",
    "Assign",
    "Done",
    "DurableJournal",
    "Inform",
    "Probe",
    "ProbeReply",
    "Request",
    "Track",
    "current_queue_cost",
    "select_inform_candidates",
]
