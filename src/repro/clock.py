"""The clock/timer interface shared by the simulator and the live runtime.

The protocol layer (:mod:`repro.core`), the grid executor
(:mod:`repro.grid`) and the workload driver (:mod:`repro.workload`) never
care *which* clock advances time — only that they can read ``now``,
schedule callbacks and draw from named random streams.  :class:`Clock` is
that contract, satisfied structurally by two implementations:

* :class:`repro.sim.Simulator` — the discrete-event kernel, where ``now``
  is virtual time and timers are slab-queue events;
* :class:`repro.runtime.WallClock` — the asyncio runtime, where ``now`` is
  scaled wall-clock time and timers are ``loop.call_later`` handles.

Keeping this module free of any :mod:`repro.sim` import is the point: code
annotated against :class:`Clock` provably runs on either backend.
"""

from __future__ import annotations

from typing import Any, Callable, Optional, Protocol, runtime_checkable

__all__ = ["Clock", "TimerHandle"]

#: Opaque handle returned by :meth:`Clock.call_at` / :meth:`Clock.call_after`;
#: pass it back to :meth:`Clock.cancel`.  The simulator returns its slab
#: :class:`~repro.sim.events.Event`, the live runtime an asyncio timer —
#: callers must treat both as opaque.
TimerHandle = Any


@runtime_checkable
class Clock(Protocol):
    """Time, timers and named randomness — the scheduling substrate.

    Semantics every implementation must honour:

    * ``now`` is monotone non-decreasing, in *protocol seconds* (the unit
      all ARiA timing constants are expressed in);
    * callbacks scheduled for the same instant never preempt each other —
      a handler always runs to completion before the next one starts;
    * ``cancel`` of an already-fired or already-cancelled handle is a
      no-op;
    * ``streams`` yields deterministic, seed-derived named RNGs
      (:class:`~repro.sim.rng.RandomStreams` semantics).
    """

    @property
    def now(self) -> float:
        """Current time in protocol seconds."""
        ...

    @property
    def streams(self) -> Any:
        """Named random streams (``streams.get(name) -> random.Random``)."""
        ...

    def call_at(
        self,
        time: float,
        callback: Callable[..., Any],
        *args: Any,
        priority: int = 0,
    ) -> TimerHandle:
        """Schedule ``callback(*args)`` at absolute time ``time``."""
        ...

    def call_after(
        self,
        delay: float,
        callback: Callable[..., Any],
        *args: Any,
        priority: int = 0,
    ) -> TimerHandle:
        """Schedule ``callback(*args)`` after ``delay`` seconds."""
        ...

    def cancel(self, handle: TimerHandle) -> None:
        """Cancel a scheduled callback (idempotent)."""
        ...

    def every(
        self,
        interval: float,
        callback: Callable[..., Any],
        *args: Any,
        start: Optional[float] = None,
        until: Optional[float] = None,
    ) -> Callable[[], None]:
        """Run ``callback(*args)`` periodically; returns a stop function."""
        ...
