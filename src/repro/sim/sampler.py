"""Periodic sampling of simulation state into time series.

The paper's figures 1, 3, 5 and 6 plot quantities sampled over simulated
time (completed jobs, idle nodes).  :class:`PeriodicSampler` evaluates a
probe function on a fixed cadence and accumulates ``(time, value)`` pairs.
"""

from __future__ import annotations

from typing import Callable, List, Tuple

from .kernel import Simulator

__all__ = ["PeriodicSampler", "TimeSeries"]

#: A sampled time series: list of ``(simulated time, value)`` pairs.
TimeSeries = List[Tuple[float, float]]


class PeriodicSampler:
    """Sample ``probe()`` every ``interval`` seconds of simulated time.

    The first sample is taken at ``start`` (default: immediately, i.e. at
    the current simulated time), so series from different runs align.
    """

    def __init__(
        self,
        sim: Simulator,
        probe: Callable[[], float],
        interval: float,
        start: float = None,  # type: ignore[assignment]
        until: float = None,  # type: ignore[assignment]
    ) -> None:
        self._sim = sim
        self._probe = probe
        self.samples: TimeSeries = []
        first = sim.now if start is None else start
        self._stop = sim.every(
            interval, self._sample, start=first, until=until
        )

    def _sample(self) -> None:
        self.samples.append((self._sim.now, float(self._probe())))

    def stop(self) -> None:
        """Stop sampling; already collected samples remain available."""
        self._stop()

    def values(self) -> List[float]:
        """Just the sampled values, in time order."""
        return [value for _, value in self.samples]

    def times(self) -> List[float]:
        """Just the sample times, in order."""
        return [time for time, _ in self.samples]
