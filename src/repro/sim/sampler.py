"""Periodic sampling of simulation state into time series.

The paper's figures 1, 3, 5 and 6 plot quantities sampled over simulated
time (completed jobs, idle nodes).  :class:`PeriodicSampler` evaluates a
probe function on a fixed cadence and accumulates ``(time, value)`` pairs.

Memory is bounded: when a series reaches ``max_samples`` it is decimated —
every second retained point is dropped and the effective sampling stride
doubles — so an arbitrarily long (or arbitrarily finely sampled) run keeps
at most ``max_samples`` points at a uniform, power-of-two multiple of the
configured cadence.  The default cap is far above what any stock
:class:`~repro.experiments.scale.ScenarioScale` emits (≤ 10 000 points per
series), so decimation never triggers for the standard presets and their
golden summaries are unaffected.
"""

from __future__ import annotations

from typing import Callable, List, Tuple

from .kernel import Simulator

__all__ = ["PeriodicSampler", "TimeSeries", "DEFAULT_MAX_SAMPLES"]

#: A sampled time series: list of ``(simulated time, value)`` pairs.
TimeSeries = List[Tuple[float, float]]

#: Default per-series point cap; above the stock presets' worst case.
DEFAULT_MAX_SAMPLES = 16_384


class PeriodicSampler:
    """Sample ``probe()`` every ``interval`` seconds of simulated time.

    The first sample is taken at ``start`` (default: immediately, i.e. at
    the current simulated time), so series from different runs align.

    ``max_samples`` bounds the retained series (see the module docstring);
    ``0`` disables the bound.
    """

    __slots__ = ("_sim", "_probe", "samples", "_stop", "_max", "_stride", "_tick")

    def __init__(
        self,
        sim: Simulator,
        probe: Callable[[], float],
        interval: float,
        start: float = None,  # type: ignore[assignment]
        until: float = None,  # type: ignore[assignment]
        max_samples: int = DEFAULT_MAX_SAMPLES,
    ) -> None:
        self._sim = sim
        self._probe = probe
        self.samples: TimeSeries = []
        self._max = max_samples
        self._stride = 1
        self._tick = 0
        first = sim.now if start is None else start
        self._stop = sim.every(
            interval, self._sample, start=first, until=until
        )

    def _sample(self) -> None:
        tick = self._tick
        self._tick = tick + 1
        if tick % self._stride:
            return
        samples = self.samples
        samples.append((self._sim.now, float(self._probe())))
        if self._max and len(samples) >= self._max:
            # Decimate: keep every second point (ticks stay aligned to the
            # doubled stride because retained ticks are multiples of it).
            del samples[1::2]
            self._stride *= 2

    def stop(self) -> None:
        """Stop sampling; already collected samples remain available."""
        self._stop()

    @property
    def stride(self) -> int:
        """Current decimation stride (1 until the cap is first reached)."""
        return self._stride

    def values(self) -> List[float]:
        """Just the sampled values, in time order."""
        return [value for _, value in self.samples]

    def times(self) -> List[float]:
        """Just the sample times, in order."""
        return [time for time, _ in self.samples]
