"""Slab event entries for the discrete-event kernel.

The kernel executes millions of events per run (REQUEST floods, INFORM
rounds, message deliveries), so the event queue is built for throughput:

* **Slab entries, not event objects.**  A scheduled event is a plain
  5-slot list ``[time, priority, seq, callback, args]`` (indices
  :data:`TIME` .. :data:`ARGS`).  List entries compare lexicographically in
  C — ``(time, priority, seq)`` decides the order and the monotonically
  increasing ``seq`` makes it total before the (incomparable) callback slot
  is ever reached.  This removes the per-comparison Python ``__lt__``
  frames that dominated the previous object-based heap.
* **Lazy cancellation.**  Cancelling clears the callback slot in place
  (``entry[CALLBACK] = None``) and drops the args reference; the entry
  stays in the heap and is skipped when popped.  Cancellation is O(1) and
  never does linear-time heap surgery.

Ordering contract (relied upon by every seeded experiment): events execute
by ``(time, priority, insertion order)``; equal times and priorities run in
exactly the order they were pushed.

:data:`Event` is the handle type callers hold — it *is* the slab entry.
Treat it as opaque outside this package: schedule through
:class:`~repro.sim.Simulator` and cancel through ``Simulator.cancel``.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, List, Optional

__all__ = [
    "ARGS",
    "CALLBACK",
    "Event",
    "EventQueue",
    "PRIORITY",
    "SEQ",
    "TIME",
    "is_cancelled",
]

#: Slab entry slot indices.
TIME, PRIORITY, SEQ, CALLBACK, ARGS = 0, 1, 2, 3, 4

#: An event handle: the slab entry itself (a plain 5-slot list).
Event = list


def is_cancelled(entry: Event) -> bool:
    """Whether ``entry`` has been cancelled (callback slot cleared)."""
    return entry[CALLBACK] is None


class EventQueue:
    """A deterministic min-heap of slab event entries.

    ``push`` returns the entry, which doubles as the cancellation handle;
    ``pop`` skips lazily cancelled entries.  ``len()`` counts only live
    (non-cancelled) events.
    """

    __slots__ = ("_heap", "_seq", "_live")

    def __init__(self) -> None:
        self._heap: List[Event] = []
        self._seq = 0
        self._live = 0

    def __len__(self) -> int:
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0

    def push(
        self,
        time: float,
        callback: Callable[..., Any],
        args: tuple = (),
        priority: int = 0,
    ) -> Event:
        """Schedule ``callback(*args)`` at ``time``; returns the slab entry."""
        entry = [time, priority, self._seq, callback, args]
        self._seq += 1
        self._live += 1
        heapq.heappush(self._heap, entry)
        return entry

    def cancel(self, entry: Event) -> bool:
        """Cancel ``entry`` in place; returns ``False`` if already cancelled.

        The entry stays in the heap (lazy cancellation) and is skipped when
        its time comes; its args tuple is released immediately.
        """
        if entry[CALLBACK] is None:
            return False
        entry[CALLBACK] = None
        entry[ARGS] = ()
        self._live -= 1
        return True

    def pop(self) -> Optional[Event]:
        """Pop the next live entry, or ``None`` if the queue is empty."""
        heap = self._heap
        heappop = heapq.heappop
        while heap:
            entry = heappop(heap)
            if entry[3] is None:  # lazily cancelled
                continue
            self._live -= 1
            return entry
        return None

    def peek_time(self) -> Optional[float]:
        """Time of the next live event without removing it."""
        heap = self._heap
        while heap and heap[0][3] is None:
            heapq.heappop(heap)
        return heap[0][0] if heap else None
