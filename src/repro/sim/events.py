"""Event primitives for the discrete-event kernel.

An :class:`Event` is a callback bound to a point in simulated time.  Events
are ordered by ``(time, priority, sequence)``; the sequence number makes the
ordering total and deterministic, which keeps whole simulations reproducible
from a single seed.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, List, Optional

__all__ = ["Event", "EventQueue"]


class Event:
    """A scheduled callback.

    Events support cancellation: a cancelled event stays in the heap but is
    skipped when popped, which is O(1) and avoids linear-time heap surgery.
    """

    __slots__ = ("time", "priority", "seq", "callback", "args", "cancelled")

    def __init__(
        self,
        time: float,
        seq: int,
        callback: Callable[..., Any],
        args: tuple = (),
        priority: int = 0,
    ) -> None:
        self.time = time
        self.priority = priority
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Mark the event so the kernel skips it when its time comes."""
        self.cancelled = True

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.priority, self.seq) < (
            other.time,
            other.priority,
            other.seq,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = " cancelled" if self.cancelled else ""
        return f"<Event t={self.time:.3f} seq={self.seq}{state} {self.callback!r}>"


class EventQueue:
    """A deterministic priority queue of :class:`Event` objects."""

    __slots__ = ("_heap", "_seq", "_live")

    def __init__(self) -> None:
        self._heap: List[Event] = []
        self._seq = 0
        self._live = 0

    def __len__(self) -> int:
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0

    def push(
        self,
        time: float,
        callback: Callable[..., Any],
        args: tuple = (),
        priority: int = 0,
    ) -> Event:
        """Schedule ``callback(*args)`` at ``time``; returns the event."""
        event = Event(time, self._seq, callback, args, priority)
        self._seq += 1
        self._live += 1
        heapq.heappush(self._heap, event)
        return event

    def pop(self) -> Optional[Event]:
        """Pop the next non-cancelled event, or ``None`` if the queue is empty."""
        heap = self._heap
        while heap:
            event = heapq.heappop(heap)
            if event.cancelled:
                continue
            self._live -= 1
            return event
        return None

    def peek_time(self) -> Optional[float]:
        """Time of the next live event without removing it."""
        heap = self._heap
        while heap and heap[0].cancelled:
            heapq.heappop(heap)
        return heap[0].time if heap else None

    def notify_cancelled(self) -> None:
        """Account for one externally cancelled event (see :meth:`Event.cancel`)."""
        self._live -= 1
