"""The discrete-event simulation kernel.

The paper evaluates ARiA inside "a custom simulator reproducing realistic
round-trip delays" (§IV-A).  :class:`Simulator` is that substrate: a classic
event-list kernel with a virtual clock, deterministic event ordering and
named random streams (see :mod:`repro.sim.rng`).

Typical usage::

    sim = Simulator(seed=42)
    sim.call_at(10.0, handler, payload)
    sim.call_after(5.0, other_handler)
    sim.run_until(3600.0)

Ordering semantics
------------------
Events execute in ``(time, priority, insertion order)`` order: earlier
times first, then lower ``priority`` values, then first-scheduled-first.
Scheduling *exactly at* ``now`` is allowed — the event runs after the one
currently executing (it cannot preempt), interleaved with any other
events at the same instant per the tie-break above.  Scheduling strictly
in the past raises :class:`~repro.errors.SimulationError`.
"""

from __future__ import annotations

import heapq
import time
from typing import Any, Callable, Optional

from ..errors import SimulationError
from .events import Event, EventQueue
from .rng import RandomStreams

__all__ = ["Simulator"]


def _callback_name(callback: Callable[..., Any]) -> str:
    """Readable identity of an event callback for kernel trace spans."""
    name = getattr(callback, "__qualname__", None)
    return name if name is not None else repr(callback)


class _Recurrence:
    """State of one :meth:`Simulator.every` periodic schedule."""

    __slots__ = ("_sim", "_interval", "_callback", "_args", "_until", "_entry", "_stopped")

    def __init__(self, sim, interval, callback, args, until) -> None:
        self._sim = sim
        self._interval = interval
        self._callback = callback
        self._args = args
        self._until = until
        self._entry: Optional[Event] = None
        self._stopped = False

    def _fire(self) -> None:
        """One periodic tick: run the callback, then schedule the next."""
        self._callback(*self._args)
        self._schedule(self._sim._now + self._interval)

    def _schedule(self, time: float) -> None:
        """Schedule the next tick at ``time`` unless stopped or past until."""
        if self._stopped:
            return
        if self._until is not None and time >= self._until:
            return
        self._entry = self._sim.call_at(time, self._fire)

    def stop(self) -> None:
        """Stop the recurrence; safe to call multiple times."""
        self._stopped = True
        if self._entry is not None:
            self._sim.cancel(self._entry)


class Simulator:
    """A deterministic discrete-event simulator.

    Parameters
    ----------
    seed:
        Master seed.  Every named random stream obtained through
        :attr:`streams` derives from it, so a ``Simulator(seed=s)`` replays
        identically.
    """

    __slots__ = (
        "_queue",
        "_now",
        "_stopped",
        "streams",
        "seed",
        "executed_events",
        "_trace",
    )

    def __init__(self, seed: int = 0) -> None:
        self._queue = EventQueue()
        self._now = 0.0
        self._stopped = False
        self.streams = RandomStreams(seed)
        self.seed = seed
        #: Number of events executed so far (useful for performance reports).
        self.executed_events = 0
        #: Optional :class:`~repro.obs.Tracer`, attached only when
        #: kernel-level tracing is active; the dispatch loop is untouched
        #: when ``None`` (one branch per ``run_until`` call).
        self._trace = None

    # ------------------------------------------------------------------
    # Clock
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def call_at(
        self,
        time: float,
        callback: Callable[..., Any],
        *args: Any,
        priority: int = 0,
    ) -> Event:
        """Schedule ``callback(*args)`` at absolute simulated ``time``.

        ``time == now`` is valid: the event runs at the current instant,
        *after* the currently executing event returns, ordered against
        other same-time events by ``(priority, insertion order)``.  Times
        strictly before ``now`` raise :class:`SimulationError`.
        """
        if time < self._now:
            raise SimulationError(
                f"cannot schedule event at t={time:.6f} < now={self._now:.6f}"
            )
        return self._queue.push(time, callback, args, priority)

    def call_after(
        self,
        delay: float,
        callback: Callable[..., Any],
        *args: Any,
        priority: int = 0,
    ) -> Event:
        """Schedule ``callback(*args)`` after ``delay`` seconds."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay!r}")
        return self._queue.push(self._now + delay, callback, args, priority)

    def cancel(self, event: Event) -> None:
        """Cancel a scheduled event; cancelling twice is a no-op."""
        self._queue.cancel(event)

    def every(
        self,
        interval: float,
        callback: Callable[..., Any],
        *args: Any,
        start: Optional[float] = None,
        until: Optional[float] = None,
    ) -> Callable[[], None]:
        """Run ``callback(*args)`` periodically.

        Returns a zero-argument function that stops the recurrence when
        called.  The first call happens at ``start`` (default: one interval
        from now); no call is scheduled at or after ``until``.
        """
        if interval <= 0:
            raise SimulationError(f"non-positive interval {interval!r}")
        recurrence = _Recurrence(self, interval, callback, args, until)
        recurrence._schedule(self._now + interval if start is None else start)
        return recurrence.stop

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Execute the next event.  Returns ``False`` if none remained."""
        entry = self._queue.pop()
        if entry is None:
            return False
        self._now = entry[0]
        self.executed_events += 1
        if self._trace is not None:
            self._dispatch_traced(entry)
            return True
        entry[3](*entry[4])
        return True

    def _dispatch_traced(self, entry) -> None:
        """Run one event under a wall-clock span (``kernel.event``)."""
        start = time.perf_counter()
        entry[3](*entry[4])
        duration = time.perf_counter() - start
        self._trace.emit(
            "kernel.event",
            entry[0],
            name=_callback_name(entry[3]),
            wall_us=start * 1e6,
            dur_us=duration * 1e6,
        )

    def run_until(self, end_time: float) -> None:
        """Run events up to and including ``end_time``, then set now there.

        The clock always lands exactly on ``end_time`` so that periodic
        samplers and scenario phases line up between runs.
        """
        if end_time < self._now:
            raise SimulationError(
                f"end_time {end_time:.6f} is in the past (now={self._now:.6f})"
            )
        self._stopped = False
        if self._trace is not None:
            self._run_until_traced(end_time)
            return
        # Batched dispatch: hoist the heap, pop and counter into locals so
        # the per-event cost is a handful of C-level operations.
        queue = self._queue
        heap = queue._heap
        heappop = heapq.heappop
        executed = self.executed_events
        while heap:
            entry = heap[0]
            if entry[0] > end_time:
                break
            entry = heappop(heap)
            callback = entry[3]
            if callback is None:  # lazily cancelled
                continue
            queue._live -= 1
            self._now = entry[0]
            executed += 1
            self.executed_events = executed
            callback(*entry[4])
            if self._stopped:
                break
        self._now = max(self._now, end_time)

    def _run_until_traced(self, end_time: float) -> None:
        """The instrumented twin of the :meth:`run_until` fast loop.

        Each dispatched event is wrapped in a ``perf_counter`` span and
        emitted as a ``kernel.event`` record, so Perfetto shows where
        wall-clock time goes; the fast loop stays branch-free for
        untraced runs.
        """
        queue = self._queue
        heap = queue._heap
        heappop = heapq.heappop
        dispatch = self._dispatch_traced
        while heap:
            entry = heap[0]
            if entry[0] > end_time:
                break
            entry = heappop(heap)
            if entry[3] is None:  # lazily cancelled
                continue
            queue._live -= 1
            self._now = entry[0]
            self.executed_events += 1
            dispatch(entry)
            if self._stopped:
                break
        self._now = max(self._now, end_time)

    def run(self) -> None:
        """Run until the event queue drains (or :meth:`stop` is called)."""
        self._stopped = False
        while not self._stopped and self.step():
            pass

    def stop(self) -> None:
        """Stop :meth:`run`/:meth:`run_until` after the current event."""
        self._stopped = True

    @property
    def pending_events(self) -> int:
        """Number of live (non-cancelled) events still scheduled."""
        return len(self._queue)
