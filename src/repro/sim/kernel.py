"""The discrete-event simulation kernel.

The paper evaluates ARiA inside "a custom simulator reproducing realistic
round-trip delays" (§IV-A).  :class:`Simulator` is that substrate: a classic
event-list kernel with a virtual clock, deterministic event ordering and
named random streams (see :mod:`repro.sim.rng`).

Typical usage::

    sim = Simulator(seed=42)
    sim.call_at(10.0, handler, payload)
    sim.call_after(5.0, other_handler)
    sim.run_until(3600.0)
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from ..errors import SimulationError
from .events import Event, EventQueue
from .rng import RandomStreams

__all__ = ["Simulator"]


class Simulator:
    """A deterministic discrete-event simulator.

    Parameters
    ----------
    seed:
        Master seed.  Every named random stream obtained through
        :attr:`streams` derives from it, so a ``Simulator(seed=s)`` replays
        identically.
    """

    def __init__(self, seed: int = 0) -> None:
        self._queue = EventQueue()
        self._now = 0.0
        self._running = False
        self._stopped = False
        self.streams = RandomStreams(seed)
        self.seed = seed
        #: Number of events executed so far (useful for performance reports).
        self.executed_events = 0

    # ------------------------------------------------------------------
    # Clock
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def call_at(
        self,
        time: float,
        callback: Callable[..., Any],
        *args: Any,
        priority: int = 0,
    ) -> Event:
        """Schedule ``callback(*args)`` at absolute simulated ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule event at t={time:.6f} < now={self._now:.6f}"
            )
        return self._queue.push(time, callback, args, priority)

    def call_after(
        self,
        delay: float,
        callback: Callable[..., Any],
        *args: Any,
        priority: int = 0,
    ) -> Event:
        """Schedule ``callback(*args)`` after ``delay`` seconds."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay!r}")
        return self._queue.push(self._now + delay, callback, args, priority)

    def cancel(self, event: Event) -> None:
        """Cancel a scheduled event; cancelling twice is a no-op."""
        if not event.cancelled:
            event.cancel()
            self._queue.notify_cancelled()

    def every(
        self,
        interval: float,
        callback: Callable[..., Any],
        *args: Any,
        start: Optional[float] = None,
        until: Optional[float] = None,
    ) -> Callable[[], None]:
        """Run ``callback(*args)`` periodically.

        Returns a zero-argument function that stops the recurrence when
        called.  The first call happens at ``start`` (default: one interval
        from now); no call is scheduled at or after ``until``.
        """
        if interval <= 0:
            raise SimulationError(f"non-positive interval {interval!r}")
        state = {"event": None, "stopped": False}

        def fire() -> None:
            callback(*args)
            schedule(self._now + interval)

        def schedule(time: float) -> None:
            if state["stopped"]:
                return
            if until is not None and time >= until:
                return
            state["event"] = self.call_at(time, fire)

        def stop() -> None:
            state["stopped"] = True
            event = state["event"]
            if event is not None:
                self.cancel(event)

        schedule(self._now + interval if start is None else start)
        return stop

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Execute the next event.  Returns ``False`` if none remained."""
        event = self._queue.pop()
        if event is None:
            return False
        self._now = event.time
        self.executed_events += 1
        event.callback(*event.args)
        return True

    def run_until(self, end_time: float) -> None:
        """Run events up to and including ``end_time``, then set now there.

        The clock always lands exactly on ``end_time`` so that periodic
        samplers and scenario phases line up between runs.
        """
        if end_time < self._now:
            raise SimulationError(
                f"end_time {end_time:.6f} is in the past (now={self._now:.6f})"
            )
        self._stopped = False
        queue = self._queue
        while not self._stopped:
            next_time = queue.peek_time()
            if next_time is None or next_time > end_time:
                break
            self.step()
        self._now = max(self._now, end_time)

    def run(self) -> None:
        """Run until the event queue drains (or :meth:`stop` is called)."""
        self._stopped = False
        while not self._stopped and self.step():
            pass

    def stop(self) -> None:
        """Stop :meth:`run`/:meth:`run_until` after the current event."""
        self._stopped = True

    @property
    def pending_events(self) -> int:
        """Number of live (non-cancelled) events still scheduled."""
        return len(self._queue)
