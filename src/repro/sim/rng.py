"""Named, independent random streams.

Reproducibility in a multi-component simulator is brittle when every
component shares one :class:`random.Random`: adding a draw in the overlay
code would perturb the workload.  ``RandomStreams`` hands each subsystem its
own generator, keyed by name, all derived deterministically from one master
seed.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict

__all__ = ["RandomStreams", "derive_seed"]


def derive_seed(master_seed: int, name: str) -> int:
    """Derive a 64-bit child seed from ``master_seed`` and a stream name.

    Uses BLAKE2b so that nearby master seeds (e.g. ``base + run_index``)
    still yield statistically unrelated child streams.
    """
    digest = hashlib.blake2b(
        f"{master_seed}:{name}".encode("utf-8"), digest_size=8
    ).digest()
    return int.from_bytes(digest, "big")


class RandomStreams:
    """A lazily populated registry of named :class:`random.Random` streams."""

    def __init__(self, master_seed: int) -> None:
        self.master_seed = master_seed
        self._streams: Dict[str, random.Random] = {}

    def get(self, name: str) -> random.Random:
        """Return the stream for ``name``, creating it on first use."""
        stream = self._streams.get(name)
        if stream is None:
            stream = random.Random(derive_seed(self.master_seed, name))
            self._streams[name] = stream
        return stream

    def __getitem__(self, name: str) -> random.Random:
        return self.get(name)

    def names(self) -> tuple:
        """Names of the streams created so far (sorted, for reporting)."""
        return tuple(sorted(self._streams))
