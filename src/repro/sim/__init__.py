"""Discrete-event simulation kernel.

This package is the substrate for every experiment in the reproduction: a
deterministic event-list simulator (:class:`Simulator`), cancellable events,
periodic callbacks, named random streams and time-series samplers.
"""

from .events import Event, EventQueue
from .kernel import Simulator
from .rng import RandomStreams, derive_seed
from .sampler import PeriodicSampler, TimeSeries

__all__ = [
    "Event",
    "EventQueue",
    "Simulator",
    "RandomStreams",
    "derive_seed",
    "PeriodicSampler",
    "TimeSeries",
]
