"""Job descriptors.

A job is an immutable description: requirements, an Estimated Running Time
(ERT, against the grid baseline machine) and, for deadline scenarios, an
absolute deadline.  All lifecycle state (where the job currently sits, when
it started, ...) lives in the owning node's queue and in
:mod:`repro.metrics.records` — the descriptor itself never mutates, so it
can be shared freely between simulated nodes like a wire payload.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..errors import ConfigurationError
from ..grid.profiles import JobRequirements
from ..types import JobId

__all__ = ["Job"]


@dataclass(frozen=True)
class Job:
    """One user-submitted job.

    Attributes
    ----------
    job_id:
        Grid-wide unique identifier (the paper's UUID).
    requirements:
        Resource profile a node must satisfy to host the job.
    ert:
        Estimated running time on the baseline machine, seconds.
    deadline:
        Absolute completion deadline (``None`` for batch jobs).
    submit_time:
        Absolute time the user submitted the job to its initiator.
    priority:
        Optional priority used by the priority local scheduler extension
        (larger = more urgent; the paper's core scenarios leave it at 0).
    not_before:
        Optional advance reservation: absolute earliest start time.  Used
        by the reservation/backfill local-scheduler extensions (the
        paper's §VI future work); ``None`` (the paper's scenarios) means
        the job may start at any time.
    """

    job_id: JobId
    requirements: JobRequirements
    ert: float
    deadline: Optional[float] = None
    submit_time: float = 0.0
    priority: int = 0
    not_before: Optional[float] = None

    def __post_init__(self) -> None:
        if self.ert <= 0:
            raise ConfigurationError(f"job {self.job_id}: non-positive ERT")
        if self.deadline is not None and self.deadline <= self.submit_time:
            raise ConfigurationError(
                f"job {self.job_id}: deadline {self.deadline} not after "
                f"submission {self.submit_time}"
            )
        if self.not_before is not None and self.not_before < self.submit_time:
            raise ConfigurationError(
                f"job {self.job_id}: reservation {self.not_before} before "
                f"submission {self.submit_time}"
            )

    @property
    def has_deadline(self) -> bool:
        return self.deadline is not None

    def eligible_at(self, now: float) -> bool:
        """Whether the job's advance reservation (if any) has been reached."""
        return self.not_before is None or self.not_before <= now
