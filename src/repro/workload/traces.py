"""Synthetic workload traces: record, save, load, replay.

The paper's conclusions call for a "full-scale evaluation with real grid
workload traces" as future work (§VI).  Real traces (e.g. the Grid
Workloads Archive) are not redistributable here, so this module provides
the substitute: a portable JSON trace format that any external trace can be
converted into, plus converters from the §IV-D random generator — so the
same experiment code path runs on synthetic and (user-supplied) real
traces alike.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import List, Optional, Union

from ..errors import ConfigurationError
from ..grid.profiles import Architecture, JobRequirements, OperatingSystem
from ..types import JobId
from .generator import JobGenerator
from .jobs import Job

__all__ = ["TraceEntry", "WorkloadTrace"]

_FORMAT_VERSION = 1


@dataclass(frozen=True)
class TraceEntry:
    """One job of a workload trace (all times absolute, in seconds)."""

    submit_time: float
    ert: float
    architecture: str
    memory_gb: int
    disk_gb: int
    os: str
    deadline: Optional[float] = None
    priority: int = 0

    def to_job(self, job_id: int) -> Job:
        """Materialize this entry as a :class:`Job` with the given id."""
        return Job(
            job_id=JobId(job_id),
            requirements=JobRequirements(
                architecture=Architecture(self.architecture),
                memory_gb=self.memory_gb,
                disk_gb=self.disk_gb,
                os=OperatingSystem(self.os),
            ),
            ert=self.ert,
            deadline=self.deadline,
            submit_time=self.submit_time,
            priority=self.priority,
        )

    @classmethod
    def from_job(cls, job: Job) -> "TraceEntry":
        return cls(
            submit_time=job.submit_time,
            ert=job.ert,
            architecture=job.requirements.architecture.value,
            memory_gb=job.requirements.memory_gb,
            disk_gb=job.requirements.disk_gb,
            os=job.requirements.os.value,
            deadline=job.deadline,
            priority=job.priority,
        )


class WorkloadTrace:
    """An ordered collection of :class:`TraceEntry` with JSON round-trip."""

    def __init__(self, entries: Optional[List[TraceEntry]] = None) -> None:
        self.entries: List[TraceEntry] = list(entries or [])

    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self):
        return iter(self.entries)

    def jobs(self) -> List[Job]:
        """Materialize the trace as :class:`Job` descriptors (ids 1..n)."""
        return [
            entry.to_job(index + 1) for index, entry in enumerate(self.entries)
        ]

    # ------------------------------------------------------------------
    # Builders
    # ------------------------------------------------------------------
    @classmethod
    def from_generator(
        cls,
        generator: JobGenerator,
        submit_times: List[float],
    ) -> "WorkloadTrace":
        """Freeze the §IV-D random workload into a replayable trace."""
        return cls(
            [TraceEntry.from_job(job) for job in generator.jobs(iter(submit_times))]
        )

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def save(self, path: Union[str, Path]) -> None:
        """Write the trace as versioned JSON."""
        payload = {
            "format": "aria-workload-trace",
            "version": _FORMAT_VERSION,
            "jobs": [asdict(entry) for entry in self.entries],
        }
        Path(path).write_text(json.dumps(payload, indent=1))

    @classmethod
    def load(cls, path: Union[str, Path]) -> "WorkloadTrace":
        payload = json.loads(Path(path).read_text())
        if payload.get("format") != "aria-workload-trace":
            raise ConfigurationError(f"{path}: not an ARiA workload trace")
        if payload.get("version") != _FORMAT_VERSION:
            raise ConfigurationError(
                f"{path}: unsupported trace version {payload.get('version')!r}"
            )
        return cls([TraceEntry(**entry) for entry in payload["jobs"]])
