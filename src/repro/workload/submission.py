"""Submission schedules and the submission process (§IV-E).

"In all scenarios a total of 1000 jobs is submitted to random nodes on the
grid.  Unless otherwise specified, jobs are submitted at 10 seconds
intervals, starting from 20 minutes into the simulation" — LowLoad halves
the rate (20 s), HighLoad doubles it (5 s).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, List, Sequence

from ..clock import Clock
from ..errors import ConfigurationError
from ..types import MINUTE
from .generator import JobGenerator

if TYPE_CHECKING:  # protocol agents are only referenced in annotations
    from ..core.protocol import AriaAgent

__all__ = ["SubmissionSchedule", "SubmissionProcess"]


@dataclass(frozen=True)
class SubmissionSchedule:
    """Evenly spaced job submissions."""

    job_count: int = 1000
    interval: float = 10.0
    start: float = 20 * MINUTE

    def __post_init__(self) -> None:
        if self.job_count < 1:
            raise ConfigurationError("job_count must be >= 1")
        if self.interval <= 0:
            raise ConfigurationError("interval must be positive")
        if self.start < 0:
            raise ConfigurationError("start must be >= 0")

    def times(self) -> List[float]:
        """Absolute submission times of every job."""
        return [self.start + i * self.interval for i in range(self.job_count)]

    @property
    def end(self) -> float:
        """Time of the last submission."""
        return self.start + (self.job_count - 1) * self.interval


class SubmissionProcess:
    """Feeds generated jobs to random initiators on schedule.

    ``agents`` is a zero-argument callable returning the *currently
    connected* protocol agents, so expanding-grid scenarios automatically
    include newly joined nodes in the pool of possible initiators.
    """

    def __init__(
        self,
        sim: Clock,
        agents: Callable[[], Sequence["AriaAgent"]],
        generator: JobGenerator,
        schedule: SubmissionSchedule,
        rng: random.Random,
    ) -> None:
        self._sim = sim
        self._agents = agents
        self._generator = generator
        self._rng = rng
        self.schedule = schedule
        self.submitted = 0
        for time in schedule.times():
            sim.call_at(time, self._submit_one)

    def _submit_one(self) -> None:
        agents = self._agents()
        if not agents:
            raise ConfigurationError("no connected agents to submit to")
        # ``choice`` only indexes the sequence, so the provider's sequence
        # is used as-is — copying 10^5 agents per submission would make
        # the workload generator itself O(nodes * jobs).
        initiator = self._rng.choice(agents)
        job = self._generator.make_job(self._sim.now)
        initiator.submit(job)
        self.submitted += 1
