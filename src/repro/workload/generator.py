"""Random job generation following the paper (§IV-D).

"Job descriptors also define an ERT, which is randomly assigned according
to a normal distribution N(µ, σ) with µ = 2h30m, σ = 1h15m, using a lower
bound of 1h and an upper bound of 4h to avoid extreme cases.  For deadline
scheduling, jobs' deadlines are set to an absolute time equal to the
current time plus their ERT plus an additional random interval following
the aforementioned distribution."

The bounds are applied by rejection (re-draw until inside), which keeps the
bell shape without stacking probability mass at the boundaries.

Deadline slack: §IV-D ties the "additional random interval" to the ERT
distribution, while §IV-E states the *Deadline* scenarios average 7 h 30 m
of slack and *DeadlineH* 2 h 30 m.  We reconcile the two by drawing the
slack from the ERT-shaped distribution rescaled to the requested mean
(mean m, σ = m/2, bounds [0.4 m, 1.6 m]); with m = 2 h 30 m this is exactly
the §IV-D distribution, and m = 7 h 30 m reproduces the baseline Deadline
scenarios.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Iterator, Optional, Sequence

from ..errors import ConfigurationError
from ..grid.profiles import JobRequirements
from ..grid.resources import random_job_requirements
from ..types import HOUR, JobId
from .jobs import Job

__all__ = ["BoundedNormal", "ERT_DISTRIBUTION", "JobGenerator"]


@dataclass(frozen=True)
class BoundedNormal:
    """A normal distribution truncated to [lower, upper] by rejection."""

    mean: float
    stddev: float
    lower: float
    upper: float

    def __post_init__(self) -> None:
        if not self.lower <= self.mean <= self.upper:
            raise ConfigurationError(
                f"mean {self.mean} outside bounds [{self.lower}, {self.upper}]"
            )
        if self.stddev < 0:
            raise ConfigurationError(f"negative stddev {self.stddev}")

    def sample(self, rng: random.Random) -> float:
        """Draw one value (re-drawing until it falls inside the bounds)."""
        if self.stddev == 0:
            return self.mean
        while True:
            value = rng.normalvariate(self.mean, self.stddev)
            if self.lower <= value <= self.upper:
                return value

    def scaled_to_mean(self, mean: float) -> "BoundedNormal":
        """The same relative shape centred on a different mean."""
        if mean <= 0:
            raise ConfigurationError(f"non-positive mean {mean!r}")
        factor = mean / self.mean
        return BoundedNormal(
            mean=mean,
            stddev=self.stddev * factor,
            lower=self.lower * factor,
            upper=self.upper * factor,
        )


#: §IV-D: ERT ~ N(2h30m, 1h15m) bounded to [1h, 4h].
ERT_DISTRIBUTION = BoundedNormal(
    mean=2.5 * HOUR, stddev=1.25 * HOUR, lower=1 * HOUR, upper=4 * HOUR
)


class JobGenerator:
    """Generates the paper's random jobs.

    Parameters
    ----------
    rng:
        Source of randomness (use a dedicated stream for reproducibility).
    deadline_slack_mean:
        ``None`` generates batch jobs (no deadline).  Otherwise each job's
        deadline is ``submit_time + ERT + slack`` with the slack drawn from
        the ERT-shaped distribution rescaled to this mean (7 h 30 m for the
        paper's Deadline scenarios, 2 h 30 m for DeadlineH).
    ert_distribution:
        Override the ERT distribution (defaults to the paper's).
    requirements_ok:
        Optional schedulability predicate.  When set, requirement draws are
        rejected (and redrawn) until the predicate accepts them.  The
        scenario runner passes "at least one grid node can host this" —
        with the paper's 500 heterogeneous nodes virtually every draw is
        already hostable, but scaled-down test grids would otherwise strand
        a visible fraction of jobs with no matching node at all.
    priority_levels:
        Optional job priorities, drawn uniformly from this sequence (for
        the priority / aging local-scheduler extensions).  ``None`` leaves
        every job at priority 0 as in the paper's scenarios.
    reservation_probability / reservation_delay_mean:
        With the given probability a job carries an advance reservation
        ``not_before = submit_time + delay`` where the delay follows the
        ERT-shaped distribution rescaled to ``reservation_delay_mean``
        (for the reservation/backfill extensions; off by default).
    """

    def __init__(
        self,
        rng: random.Random,
        deadline_slack_mean: Optional[float] = None,
        ert_distribution: BoundedNormal = ERT_DISTRIBUTION,
        requirements_ok: Optional[Callable[[JobRequirements], bool]] = None,
        priority_levels: Optional[Sequence[int]] = None,
        reservation_probability: float = 0.0,
        reservation_delay_mean: Optional[float] = None,
    ) -> None:
        self._rng = rng
        self._ert = ert_distribution
        self._slack: Optional[BoundedNormal] = None
        if deadline_slack_mean is not None:
            self._slack = ert_distribution.scaled_to_mean(deadline_slack_mean)
        self._requirements_ok = requirements_ok
        self._priority_levels = (
            tuple(priority_levels) if priority_levels else None
        )
        if not 0 <= reservation_probability <= 1:
            raise ConfigurationError(
                f"reservation_probability {reservation_probability} "
                "out of [0, 1]"
            )
        if reservation_probability > 0 and reservation_delay_mean is None:
            raise ConfigurationError(
                "reservation_delay_mean required when reservations are on"
            )
        self._reservation_probability = reservation_probability
        self._reservation_delay: Optional[BoundedNormal] = None
        if reservation_delay_mean is not None:
            self._reservation_delay = ert_distribution.scaled_to_mean(
                reservation_delay_mean
            )
        self._next_id = 1

    def _draw_requirements(self) -> JobRequirements:
        if self._requirements_ok is None:
            return random_job_requirements(self._rng)
        for _ in range(10_000):
            requirements = random_job_requirements(self._rng)
            if self._requirements_ok(requirements):
                return requirements
        raise ConfigurationError(
            "requirements_ok rejected 10000 consecutive draws — "
            "is the grid empty or completely mismatched?"
        )

    def make_job(self, submit_time: float) -> Job:
        """Generate the next job, submitted at ``submit_time``."""
        ert = self._ert.sample(self._rng)
        deadline = None
        if self._slack is not None:
            deadline = submit_time + ert + self._slack.sample(self._rng)
        priority = (
            self._rng.choice(self._priority_levels)
            if self._priority_levels
            else 0
        )
        not_before = None
        if (
            self._reservation_delay is not None
            and self._rng.random() < self._reservation_probability
        ):
            not_before = submit_time + self._reservation_delay.sample(self._rng)
        job = Job(
            job_id=JobId(self._next_id),
            requirements=self._draw_requirements(),
            ert=ert,
            deadline=deadline,
            submit_time=submit_time,
            priority=priority,
            not_before=not_before,
        )
        self._next_id += 1
        return job

    def jobs(self, submit_times: Iterator[float]) -> Iterator[Job]:
        """Generate one job per submission time."""
        for time in submit_times:
            yield self.make_job(time)
