"""Workload: job descriptors, random generation, submission schedules."""

from .generator import ERT_DISTRIBUTION, BoundedNormal, JobGenerator
from .jobs import Job
from .jsdl import parse_jsdl, parse_jsdl_file
from .submission import SubmissionProcess, SubmissionSchedule
from .traces import TraceEntry, WorkloadTrace

__all__ = [
    "BoundedNormal",
    "ERT_DISTRIBUTION",
    "Job",
    "JobGenerator",
    "parse_jsdl",
    "parse_jsdl_file",
    "SubmissionProcess",
    "SubmissionSchedule",
    "TraceEntry",
    "WorkloadTrace",
]
