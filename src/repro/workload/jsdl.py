"""JSDL job-description import (paper §III-A).

"Actual implementations may choose to use one of the available job
description schemas such as JSDL [29]."  This module reads the subset of
the OGF Job Submission Description Language (GFD.56) that maps onto the
simulator's job model:

* ``jsdl:Application/jsdl-posix:POSIXApplication/jsdl-posix:WallTimeLimit``
  → the ERT, in seconds;
* ``jsdl:Resources/jsdl:CPUArchitecture/jsdl:CPUArchitectureName`` → the
  required architecture;
* ``jsdl:Resources/jsdl:OperatingSystem/.../jsdl:OperatingSystemName`` →
  the required OS;
* ``jsdl:Resources/jsdl:TotalPhysicalMemory/jsdl:LowerBoundedRange`` →
  required memory (bytes → GB, rounded up);
* ``jsdl:Resources/jsdl:TotalDiskSpace/jsdl:LowerBoundedRange`` → required
  disk (bytes → GB, rounded up).

JSDL names are normalized onto the paper's TOP500-derived enums (e.g.
``x86_64`` → AMD64, ``LINUX``/``Linux`` → LINUX).  Unknown or missing
elements raise :class:`~repro.errors.ConfigurationError` with the XPath
that failed, so malformed descriptors are loud, not silently defaulted.
"""

from __future__ import annotations

import math
import xml.etree.ElementTree as ET
from pathlib import Path
from typing import Dict, Optional, Union

from ..errors import ConfigurationError
from ..grid.profiles import Architecture, JobRequirements, OperatingSystem
from ..types import JobId
from .jobs import Job

__all__ = ["parse_jsdl", "parse_jsdl_file"]

_NS = {
    "jsdl": "http://schemas.ggf.org/jsdl/2005/11/jsdl",
    "jsdl-posix": "http://schemas.ggf.org/jsdl/2005/11/jsdl-posix",
}

#: JSDL CPUArchitectureName values → the paper's architectures.
_ARCHITECTURES: Dict[str, Architecture] = {
    "x86_64": Architecture.AMD64,
    "amd64": Architecture.AMD64,
    "powerpc": Architecture.POWER,
    "power": Architecture.POWER,
    "ia64": Architecture.IA64,
    "sparc": Architecture.SPARC,
    "mips": Architecture.MIPS,
    "nec": Architecture.NEC,
}

_OPERATING_SYSTEMS: Dict[str, OperatingSystem] = {
    "linux": OperatingSystem.LINUX,
    "solaris": OperatingSystem.SOLARIS,
    "unix": OperatingSystem.UNIX,
    "windows_xp": OperatingSystem.WINDOWS,
    "windows": OperatingSystem.WINDOWS,
    "freebsd": OperatingSystem.BSD,
    "bsd": OperatingSystem.BSD,
}

_GIB = 1024**3


def _find_text(root: ET.Element, path: str) -> str:
    node = root.find(path, _NS)
    if node is None or node.text is None or not node.text.strip():
        raise ConfigurationError(f"JSDL: missing element {path!r}")
    return node.text.strip()


def _bytes_to_gb(text: str, path: str) -> int:
    try:
        value = float(text)
    except ValueError as exc:
        raise ConfigurationError(f"JSDL: non-numeric value at {path!r}") from exc
    if value <= 0:
        raise ConfigurationError(f"JSDL: non-positive value at {path!r}")
    return max(1, math.ceil(value / _GIB))


def parse_jsdl(
    xml_text: str,
    job_id: int = 1,
    submit_time: float = 0.0,
    deadline: Optional[float] = None,
) -> Job:
    """Parse one JSDL ``JobDefinition`` document into a :class:`Job`."""
    try:
        root = ET.fromstring(xml_text)
    except ET.ParseError as exc:
        raise ConfigurationError(f"JSDL: malformed XML ({exc})") from exc

    wall = _find_text(
        root,
        ".//jsdl:Application/jsdl-posix:POSIXApplication/"
        "jsdl-posix:WallTimeLimit",
    )
    try:
        ert = float(wall)
    except ValueError as exc:
        raise ConfigurationError("JSDL: WallTimeLimit is not a number") from exc

    arch_name = _find_text(
        root, ".//jsdl:Resources/jsdl:CPUArchitecture/jsdl:CPUArchitectureName"
    ).lower()
    architecture = _ARCHITECTURES.get(arch_name)
    if architecture is None:
        raise ConfigurationError(
            f"JSDL: unknown CPUArchitectureName {arch_name!r}"
        )

    os_name = _find_text(
        root,
        ".//jsdl:Resources/jsdl:OperatingSystem/jsdl:OperatingSystemType/"
        "jsdl:OperatingSystemName",
    ).lower()
    operating_system = _OPERATING_SYSTEMS.get(os_name)
    if operating_system is None:
        raise ConfigurationError(
            f"JSDL: unknown OperatingSystemName {os_name!r}"
        )

    memory_path = (
        ".//jsdl:Resources/jsdl:TotalPhysicalMemory/jsdl:LowerBoundedRange"
    )
    disk_path = ".//jsdl:Resources/jsdl:TotalDiskSpace/jsdl:LowerBoundedRange"
    memory_gb = _bytes_to_gb(_find_text(root, memory_path), memory_path)
    disk_gb = _bytes_to_gb(_find_text(root, disk_path), disk_path)

    return Job(
        job_id=JobId(job_id),
        requirements=JobRequirements(
            architecture=architecture,
            memory_gb=memory_gb,
            disk_gb=disk_gb,
            os=operating_system,
        ),
        ert=ert,
        deadline=deadline,
        submit_time=submit_time,
    )


def parse_jsdl_file(
    path: Union[str, Path],
    job_id: int = 1,
    submit_time: float = 0.0,
    deadline: Optional[float] = None,
) -> Job:
    """Parse a JSDL file into a :class:`Job`."""
    return parse_jsdl(
        Path(path).read_text(),
        job_id=job_id,
        submit_time=submit_time,
        deadline=deadline,
    )
