"""Metrics: per-job records, grid-wide collection, run aggregation."""

from .collector import GridMetrics
from .records import JobRecord

__all__ = ["GridMetrics", "JobRecord"]
