"""Grid-wide metrics hub.

All protocol and node events funnel into one :class:`GridMetrics` per run;
figure extractors and reports then read aggregated views from it.  The hub
is intentionally passive (no simulator dependency) so it can also serve the
centralized baseline schedulers.

The grid-level tallies live on a shared :class:`~repro.obs.MetricsRegistry`
(one per run, also fed by the transport and reliability layers) and are
surfaced as ``RunSummary.telemetry``; the historical attribute names
(``completed_jobs`` etc.) remain as read-only properties.
"""

from __future__ import annotations

import statistics
from typing import Dict, List, Optional, Tuple

from ..errors import ReproError
from ..obs.metrics import MetricsRegistry
from ..types import JobId, NodeId
from ..workload.jobs import Job
from .records import JobRecord

__all__ = ["GridMetrics"]


class GridMetrics:
    """Collects per-job records and grid-level counters for one run."""

    def __init__(self, registry: Optional[MetricsRegistry] = None) -> None:
        self.records: Dict[JobId, JobRecord] = {}
        self.registry = registry if registry is not None else MetricsRegistry()
        self._completed_jobs = self.registry.counter("jobs.completed")
        self._reschedules = self.registry.counter("jobs.reschedules")
        self._inform_broadcasts = self.registry.counter("informs.advertised")
        self._duplicate_executions = self.registry.counter(
            "jobs.duplicate_executions"
        )
        self._node_restarts = self.registry.counter("nodes.restarted")
        self._orphaned_jobs = self.registry.counter("jobs.orphaned")
        self._adopted_jobs = self.registry.counter("jobs.adopted")
        self._deadline_exceeded = self.registry.counter(
            "jobs.deadline_exceeded"
        )
        self._completion_time = self.registry.histogram("job.completion_time")
        #: Time-resolved completion latency, decimated to bounded memory
        #: (:class:`~repro.obs.BoundedSeries`): at 10^5+ completions an
        #: unbounded per-event series would be the collector's dominant
        #: allocation.
        self.completion_series = self.registry.series(
            "job.completion_time.series"
        )
        #: Every completion as ``(job, node, incarnation)`` — including
        #: duplicates the records above refuse to double-book.  The
        #: invariant checker reads this to prove no job ran under two
        #: different (node, incarnation) identities.
        self.execution_log: List[Tuple[JobId, NodeId, int]] = []

    @property
    def completed_jobs(self) -> int:
        """Completed-job counter (probe for the Fig. 1 time series)."""
        return self._completed_jobs.value

    @property
    def reschedules(self) -> int:
        """INFORM-triggered reassignments that actually happened."""
        return self._reschedules.value

    @property
    def inform_broadcasts(self) -> int:
        """Jobs advertised for rescheduling (INFORM broadcasts initiated)."""
        return self._inform_broadcasts.value

    @property
    def duplicate_executions(self) -> int:
        """Completions of already finished jobs (fail-safe at-least-once
        races; zero in every nominal scenario)."""
        return self._duplicate_executions.value

    @property
    def node_restarts(self) -> int:
        """Crash-restart rejoins (one per incarnation bump)."""
        return self._node_restarts.value

    @property
    def orphaned_jobs(self) -> int:
        """Held jobs whose initiator went silent past the adoption window."""
        return self._orphaned_jobs.value

    @property
    def adopted_jobs(self) -> int:
        """Orphaned jobs whose assignee took over the initiator role."""
        return self._adopted_jobs.value

    @property
    def deadline_exceeded_jobs(self) -> int:
        """Queued jobs that blew their execution deadline (straggler
        defense engaged)."""
        return self._deadline_exceeded.value

    def informs_advertised(self, count: int) -> None:
        """Count ``count`` jobs advertised in one INFORM round."""
        self._inform_broadcasts.inc(count)

    # ------------------------------------------------------------------
    # Event sinks (called by protocol agents and nodes)
    # ------------------------------------------------------------------
    def job_submitted(self, job: Job, initiator: NodeId, time: float) -> None:
        """Record a job submission (creates the job's lifecycle record)."""
        if job.job_id in self.records:
            raise ReproError(f"job {job.job_id} submitted twice")
        self.records[job.job_id] = JobRecord(
            job=job, initiator=initiator, submit_time=time
        )

    def ensure_job(self, job: Job, initiator: NodeId, time: float) -> None:
        """Create ``job``'s lifecycle record if this collector has none.

        The process-isolated runtime shards metrics per OS process, so a
        job delegated over the wire reaches an assignee whose collector
        never saw the submission — the wire copy carries everything the
        record needs.  No-op when the record already exists, which keeps
        simulated and single-process runs (one collector sees every
        submission) byte-identical.
        """
        if job.job_id not in self.records:
            self.records[job.job_id] = JobRecord(
                job=job, initiator=initiator, submit_time=time
            )

    def _record(self, job_id: JobId) -> JobRecord:
        record = self.records.get(job_id)
        if record is None:
            raise ReproError(f"no record for job {job_id}")
        return record

    def job_assigned(
        self, job_id: JobId, node: NodeId, time: float, reschedule: bool
    ) -> None:
        """Record an ASSIGN: initial delegation or dynamic reschedule."""
        record = self._record(job_id)
        record.assignments.append((time, node))
        if reschedule:
            self._reschedules.inc()

    def job_started(self, job_id: JobId, node: NodeId, time: float) -> None:
        """Record the start of execution on ``node``."""
        record = self._record(job_id)
        record.start_time = time
        record.start_node = node

    def job_finished(
        self, job_id: JobId, node: NodeId, time: float, incarnation: int = 0
    ) -> None:
        """Record a completion (duplicates are counted, not double-booked)."""
        self.execution_log.append((job_id, node, incarnation))
        record = self._record(job_id)
        if record.finish_time is not None:
            # A fail-safe resubmission can race recovery and execute a job
            # twice (at-least-once semantics).  Keep the first completion
            # and surface the anomaly instead of corrupting the averages.
            self._duplicate_executions.inc()
            return
        record.finish_time = time
        self._completed_jobs.inc()
        self._completion_time.observe(record.completion_time)
        self.completion_series.record(time, record.completion_time)

    def job_unschedulable(self, job_id: JobId, time: float) -> None:
        """Record that discovery gave up on the job (REQUEST retries spent)."""
        self._record(job_id).unschedulable = True

    def job_resubmitted(self, job_id: JobId, time: float) -> None:
        """Fail-safe resubmission after a suspected assignee crash."""
        self._record(job_id).resubmissions += 1

    def job_lost(self, job_id: JobId, time: float) -> None:
        """Record that a crashing node took the job down with it.

        Any in-progress execution is void (the machine is gone), so the
        start bookkeeping is cleared; a fail-safe resubmission may set it
        again later.
        """
        record = self._record(job_id)
        record.lost_count += 1
        if not record.completed:
            record.start_time = None
            record.start_node = None

    def node_restarted(self, node: NodeId, time: float) -> None:
        """A crashed node rejoined the grid under a fresh incarnation."""
        self._node_restarts.inc()

    def job_orphaned(self, job_id: JobId, time: float) -> None:
        """An assignee detected that the job's initiator went silent."""
        self._orphaned_jobs.inc()

    def job_adopted(self, job_id: JobId, time: float) -> None:
        """An assignee took over the initiator role of an orphaned job."""
        self._adopted_jobs.inc()

    def job_deadline_exceeded(self, job_id: JobId, time: float) -> None:
        """A queued job blew its execution deadline (first time only)."""
        self._deadline_exceeded.inc()

    # ------------------------------------------------------------------
    # Aggregated views (the paper's reported quantities)
    # ------------------------------------------------------------------
    def completed_records(self) -> List[JobRecord]:
        """Records of all completed jobs."""
        return [r for r in self.records.values() if r.completed]

    def unschedulable_count(self) -> int:
        """Number of jobs discovery gave up on."""
        return sum(1 for r in self.records.values() if r.unschedulable)

    def _mean(self, values: List[float]) -> Optional[float]:
        return statistics.fmean(values) if values else None

    def average_completion_time(self) -> Optional[float]:
        """Mean submission-to-completion time over completed jobs (Fig. 2)."""
        return self._mean(
            [r.completion_time for r in self.records.values() if r.completed]
        )

    def average_waiting_time(self) -> Optional[float]:
        """Mean submission-to-start time over completed jobs (Fig. 2)."""
        return self._mean(
            [
                r.waiting_time
                for r in self.records.values()
                if r.waiting_time is not None and r.completed
            ]
        )

    def average_execution_time(self) -> Optional[float]:
        """Mean actual running time over completed jobs (Fig. 2)."""
        return self._mean(
            [
                r.execution_time
                for r in self.records.values()
                if r.execution_time is not None
            ]
        )

    def average_reschedules(self) -> Optional[float]:
        """Mean dynamic-reschedule count per completed job."""
        completed = self.completed_records()
        if not completed:
            return None
        return self._mean([float(r.reschedule_count) for r in completed])

    # -- deadline metrics (Fig. 4) -------------------------------------
    def missed_deadline_count(self) -> int:
        """Number of completed jobs that finished past their deadline (Fig. 4)."""
        return sum(
            1 for r in self.records.values() if r.missed_deadline is True
        )

    def average_lateness(self) -> Optional[float]:
        """Mean slack over jobs that met their deadline (paper's lateness)."""
        return self._mean(
            [
                r.lateness
                for r in self.records.values()
                if r.missed_deadline is False
            ]
        )

    def average_missed_time(self) -> Optional[float]:
        """Mean time past the deadline over late jobs (paper's missed time)."""
        return self._mean(
            [
                r.missed_time
                for r in self.records.values()
                if r.missed_time is not None
            ]
        )

    # -- load balancing (the paper's Fig. 3 claim, quantified) ---------
    def busy_time_by_node(self) -> Dict[NodeId, float]:
        """Total execution time each node performed (completed jobs)."""
        busy: Dict[NodeId, float] = {}
        for record in self.records.values():
            if record.completed and record.start_node is not None:
                busy[record.start_node] = (
                    busy.get(record.start_node, 0.0) + record.execution_time
                )
        return busy

    def load_fairness(self, node_count: int) -> Optional[float]:
        """Jain's fairness index over per-node busy time.

        1.0 = perfectly even work distribution across all ``node_count``
        nodes; 1/node_count = all work on one node.  Nodes that executed
        nothing count as zero, so the index captures the paper's
        idle-node story as a single number.
        """
        if node_count <= 0:
            return None
        busy = list(self.busy_time_by_node().values())
        total = sum(busy)
        if total == 0:
            return None
        squares = sum(value * value for value in busy)
        return (total * total) / (node_count * squares)
