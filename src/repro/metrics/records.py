"""Per-job lifecycle records.

One :class:`JobRecord` accumulates everything the paper's figures need about
a single job: submission, the full assignment history (rescheduling hops),
execution start/finish, and the deadline outcome.  Records are written by
the protocol/node layers through :class:`~repro.metrics.collector.GridMetrics`
and read by the figure extractors.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..types import NodeId
from ..workload.jobs import Job

__all__ = ["JobRecord"]


@dataclass
class JobRecord:
    """Lifecycle of one job across the grid."""

    job: Job
    initiator: NodeId
    submit_time: float
    #: ``(time, node)`` per ASSIGN received; index 0 is the initial
    #: delegation, every further entry is a dynamic reschedule.
    assignments: List[Tuple[float, NodeId]] = field(default_factory=list)
    start_time: Optional[float] = None
    start_node: Optional[NodeId] = None
    finish_time: Optional[float] = None
    #: Set when the initiator exhausted its REQUEST retries.
    unschedulable: bool = False
    #: Fail-safe resubmissions after a suspected assignee crash.
    resubmissions: int = 0
    #: Times the job was lost with a crashing node (queued or running).
    lost_count: int = 0

    # ------------------------------------------------------------------
    # Derived quantities (the paper's metrics)
    # ------------------------------------------------------------------
    @property
    def completed(self) -> bool:
        return self.finish_time is not None

    @property
    def reschedule_count(self) -> int:
        """Number of dynamic rescheduling hops the job took."""
        return max(0, len(self.assignments) - 1)

    @property
    def waiting_time(self) -> Optional[float]:
        """Submission → execution start (Fig. 2's waiting share)."""
        if self.start_time is None:
            return None
        return self.start_time - self.submit_time

    @property
    def execution_time(self) -> Optional[float]:
        """Execution start → completion, i.e. the ART (Fig. 2's exec share)."""
        if self.finish_time is None or self.start_time is None:
            return None
        return self.finish_time - self.start_time

    @property
    def completion_time(self) -> Optional[float]:
        """Submission → completion (the paper's job completion time)."""
        if self.finish_time is None:
            return None
        return self.finish_time - self.submit_time

    @property
    def missed_deadline(self) -> Optional[bool]:
        """Whether the job finished past its deadline (None: not applicable)."""
        if self.job.deadline is None or self.finish_time is None:
            return None
        return self.finish_time > self.job.deadline

    @property
    def lateness(self) -> Optional[float]:
        """Paper Fig. 4 'lateness': time left from completion to deadline.

        Positive when the deadline was met; only defined for completed
        deadline jobs.
        """
        if self.job.deadline is None or self.finish_time is None:
            return None
        return self.job.deadline - self.finish_time

    @property
    def missed_time(self) -> Optional[float]:
        """Paper Fig. 4 'missed time': time past the deadline (late jobs)."""
        if self.missed_deadline is not True:
            return None
        return self.finish_time - self.job.deadline
