"""Exception hierarchy for the ARiA reproduction.

Every error raised by this package derives from :class:`ReproError` so that
callers embedding the simulator can catch one base class.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class SimulationError(ReproError):
    """Misuse of the discrete-event kernel (e.g. scheduling in the past)."""


class TopologyError(ReproError):
    """Invalid overlay topology operation (unknown node, self-link, ...)."""


class SchedulingError(ReproError):
    """Violation of a local-scheduling invariant.

    Raised for instance when a job is started while another one is running
    (the paper allows one running job per node), or when a job is removed
    from a queue it does not belong to.
    """


class ProtocolError(ReproError):
    """Violation of an ARiA protocol invariant.

    Raised for instance when a node attempts to decline a job it already
    accepted — the paper explicitly forbids that (§III-A).
    """


class ConfigurationError(ReproError):
    """Invalid scenario or protocol configuration."""


class JournalError(ReproError):
    """Durable-journal failure.

    Raised when a journal file is already locked by a live process (a
    second incarnation of the same node racing the first) or when the
    journal body is corrupt beyond the tolerated torn tail.
    """
