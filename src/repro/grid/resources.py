"""Random profile generation following the paper's distributions (§IV-B/D).

Architectures and operating systems follow the TOP500 list as published at
the time of the paper's writing; memory and disk are uniform over
{1, 2, 4, 8, 16} GB.  Job requirements use the *same* distributions, which
makes most jobs runnable on most nodes (AMD64 + LINUX dominate) while
leaving a tail of jobs that only a few nodes can host.
"""

from __future__ import annotations

import random
from typing import Sequence, Tuple, TypeVar

from .profiles import (
    CAPACITY_CHOICES,
    Architecture,
    JobRequirements,
    NodeProfile,
    OperatingSystem,
)

__all__ = [
    "ARCHITECTURE_DISTRIBUTION",
    "OS_DISTRIBUTION",
    "weighted_choice",
    "random_node_profile",
    "random_job_requirements",
    "random_performance_index",
]

T = TypeVar("T")

#: §IV-B: architecture shares of the TOP500 list used by the paper.
ARCHITECTURE_DISTRIBUTION: Tuple[Tuple[Architecture, float], ...] = (
    (Architecture.AMD64, 0.872),
    (Architecture.POWER, 0.110),
    (Architecture.IA64, 0.012),
    (Architecture.SPARC, 0.002),
    (Architecture.MIPS, 0.002),
    (Architecture.NEC, 0.002),
)

#: §IV-B: operating-system shares of the TOP500 list used by the paper.
OS_DISTRIBUTION: Tuple[Tuple[OperatingSystem, float], ...] = (
    (OperatingSystem.LINUX, 0.886),
    (OperatingSystem.SOLARIS, 0.058),
    (OperatingSystem.UNIX, 0.044),
    (OperatingSystem.WINDOWS, 0.010),
    (OperatingSystem.BSD, 0.002),
)


def weighted_choice(
    distribution: Sequence[Tuple[T, float]], rng: random.Random
) -> T:
    """Draw one item from a ``(value, weight)`` table.

    Weights need not sum exactly to one (the paper's tables sum to 1.0, but
    floating-point drift is tolerated by renormalizing on the fly).
    """
    total = sum(weight for _, weight in distribution)
    point = rng.random() * total
    cumulative = 0.0
    for value, weight in distribution:
        cumulative += weight
        if point < cumulative:
            return value
    return distribution[-1][0]


def random_node_profile(rng: random.Random) -> NodeProfile:
    """Draw a node profile with the paper's §IV-B distributions."""
    return NodeProfile(
        architecture=weighted_choice(ARCHITECTURE_DISTRIBUTION, rng),
        memory_gb=rng.choice(CAPACITY_CHOICES),
        disk_gb=rng.choice(CAPACITY_CHOICES),
        os=weighted_choice(OS_DISTRIBUTION, rng),
    )


def random_job_requirements(rng: random.Random) -> JobRequirements:
    """Draw job requirements; §IV-D uses the node-profile distributions."""
    return JobRequirements(
        architecture=weighted_choice(ARCHITECTURE_DISTRIBUTION, rng),
        memory_gb=rng.choice(CAPACITY_CHOICES),
        disk_gb=rng.choice(CAPACITY_CHOICES),
        os=weighted_choice(OS_DISTRIBUTION, rng),
    )


def random_performance_index(rng: random.Random) -> float:
    """Performance index p ∈ [1, 2] (§IV-B), uniform."""
    return rng.uniform(1.0, 2.0)
