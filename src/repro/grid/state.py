"""Slab-backed aggregate grid state, indexed by dense node id.

At the paper's 500 nodes, aggregate probes ("how many live nodes are
idle?") and the submission process ("pick a live initiator") can afford to
walk the agent list.  At 10k–100k nodes those O(nodes) walks dominate:
every submission and every sampler tick re-derives state that only changes
at job start/finish and membership events.

:class:`GridState` replaces the walks with flat byte arrays (one slot per
node id — ids are dense small integers in every experiment path) plus
incrementally maintained counters:

* ``idle[slot]``   — nothing running and an empty queue (mirrors
  :attr:`~repro.grid.node.GridNode.is_idle`);
* ``live[slot]``   — not crashed and not departed (mirrors the agent's
  ``not failed and not departed``);
* ``idle_live_count`` / ``live_count`` — the two sampler probes, O(1);
* ``membership_version`` — bumped whenever a live bit changes, so callers
  (the submission process) can cache the live-agent list and rebuild it
  only on actual membership change.

The slabs are *derived* state: :class:`~repro.grid.node.GridNode` and
:class:`~repro.core.protocol.AriaAgent` remain the source of truth and
push bit updates at their own transition points.  A grid built without a
``GridState`` (unit tests, live runtime) pays a single ``is None`` check.
"""

from __future__ import annotations

from array import array

from ..types import NodeId

__all__ = ["GridState", "IncarnationSlab"]


class GridState:
    """Flat per-node state bits with O(1) aggregate counters."""

    __slots__ = (
        "_idle",
        "_live",
        "idle_live_count",
        "live_count",
        "membership_version",
    )

    def __init__(self) -> None:
        self._idle = array("b")
        self._live = array("b")
        self.idle_live_count = 0
        self.live_count = 0
        #: Bumped on every live-bit transition (including registration).
        self.membership_version = 0

    def __len__(self) -> int:
        return len(self._live)

    def _grow_to(self, slot: int) -> None:
        missing = slot + 1 - len(self._live)
        if missing > 0:
            self._idle.extend([0] * missing)
            self._live.extend([0] * missing)

    # ------------------------------------------------------------------
    # Registration and bit updates
    # ------------------------------------------------------------------
    def register(self, node_id: NodeId) -> int:
        """Add (or re-add) a node as live and idle; returns its slot."""
        slot = int(node_id)
        self._grow_to(slot)
        self.set_idle(slot, True)
        self.set_live(slot, True)
        return slot

    def set_idle(self, slot: int, flag: bool) -> None:
        """Update the idle bit; counters move only while the slot is live."""
        value = 1 if flag else 0
        if self._idle[slot] == value:
            return
        self._idle[slot] = value
        if self._live[slot]:
            self.idle_live_count += 1 if value else -1

    def set_live(self, slot: int, flag: bool) -> None:
        """Update the live bit (and the membership version on change)."""
        value = 1 if flag else 0
        if self._live[slot] == value:
            return
        self._live[slot] = value
        self.live_count += 1 if value else -1
        if self._idle[slot]:
            self.idle_live_count += 1 if value else -1
        self.membership_version += 1

    # ------------------------------------------------------------------
    # Probes
    # ------------------------------------------------------------------
    def is_idle(self, slot: int) -> bool:
        """Whether the slot's node is idle (independent of liveness)."""
        return bool(self._idle[slot])

    def is_live(self, slot: int) -> bool:
        """Whether the slot's node is live (not crashed, not departed)."""
        return bool(self._live[slot])


class IncarnationSlab:
    """Dict-shaped incarnation store backed by a flat unsigned array.

    Drop-in for the ``{node_id: incarnation}`` dict on the transport hot
    path: supports exactly the two operations the stamping code uses
    (``get(node, 0)`` and item assignment), with O(1) array indexing
    instead of hashing — and ~9 bytes per node instead of a dict entry.
    """

    __slots__ = ("_values",)

    def __init__(self) -> None:
        self._values = array("Q")

    def get(self, node_id: NodeId, default: int = 0) -> int:
        """The node's incarnation, or ``default`` when never bumped."""
        slot = int(node_id)
        values = self._values
        if slot >= len(values):
            return default
        return values[slot]

    def __setitem__(self, node_id: NodeId, value: int) -> None:
        slot = int(node_id)
        values = self._values
        missing = slot + 1 - len(values)
        if missing > 0:
            values.extend([0] * missing)
        values[slot] = value

    def __len__(self) -> int:
        return sum(1 for value in self._values if value)
