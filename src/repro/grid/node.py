"""The grid node: profile + local scheduler + single-slot executor.

Per the paper's assumptions (§III-A): "every node may hold several jobs
within its scheduling queue, only one job at a time can be executed", jobs
are independent, and "preemption and migration of running jobs are not
considered".  :class:`GridNode` enforces exactly that contract:

* waiting jobs live in the node's :class:`~repro.scheduling.LocalScheduler`;
* one job at most is *running*; once started it always runs to completion;
* a waiting job can be withdrawn (dynamic rescheduling), a running one not.

Cost quotes use the node's **estimated** view of its load: the running
job's remaining ERTp plus the queue's ERTp values.  The Actual Running Time
(sampled from the :class:`~repro.grid.performance.AccuracyModel` when the
job starts) stays hidden until the completion event fires, exactly as in
the paper ("the ART ... is unknown until execution completes", §IV-D).
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, Callable, List, Optional

from ..clock import Clock
from ..errors import SchedulingError
from ..scheduling.base import LocalScheduler, QueuedJob
from ..types import JobId, NodeId
from .performance import AccuracyModel, scaled_ert
from .profiles import NodeProfile

if TYPE_CHECKING:  # avoid the workload -> grid -> workload import cycle
    from ..workload.jobs import Job

__all__ = ["RunningJob", "GridNode"]


class RunningJob:
    """The job currently executing on a node."""

    __slots__ = ("job", "start_time", "ertp", "art", "enqueue_time")

    def __init__(
        self,
        job: "Job",
        start_time: float,
        ertp: float,
        art: float,
        enqueue_time: float,
    ) -> None:
        self.job = job
        self.start_time = start_time
        self.ertp = ertp
        self.art = art
        self.enqueue_time = enqueue_time

    def estimated_remaining(self, now: float) -> float:
        """Remaining time according to the ERTp estimate (floor 0)."""
        return max(0.0, self.start_time + self.ertp - now)


#: ``callback(node, running)`` fired when a job starts / finishes.
NodeJobCallback = Callable[["GridNode", RunningJob], None]


class GridNode:
    """One grid site: resources, a local scheduler, and an executor."""

    __slots__ = (
        "node_id",
        "sim",
        "profile",
        "performance_index",
        "scheduler",
        "accuracy",
        "_art_rng",
        "running",
        "_completion_event",
        "crashed",
        "slowdown_factor",
        "on_job_started",
        "on_job_finished",
        "completed_jobs",
        "_state",
        "_state_slot",
    )

    def __init__(
        self,
        node_id: NodeId,
        sim: Clock,
        profile: NodeProfile,
        performance_index: float,
        scheduler: LocalScheduler,
        accuracy: AccuracyModel,
        art_rng: Optional[random.Random] = None,
    ) -> None:
        self.node_id = node_id
        self.sim = sim
        self.profile = profile
        self.performance_index = performance_index
        self.scheduler = scheduler
        self.accuracy = accuracy
        self._art_rng = art_rng if art_rng is not None else sim.streams.get("grid.art")
        self.running: Optional[RunningJob] = None
        self._completion_event = None
        #: A crashed node executes nothing and loses its queue (§III-D
        #: fail-safe discussion).
        self.crashed = False
        #: Fail-slow degradation: jobs that *start* while the factor is
        #: above 1 take that many times their sampled ART.  The node's
        #: cost quotes still use the healthy ERTp — a fail-slow node does
        #: not know (or admit) it is slow, which is what makes the
        #: failure mode hard.
        self.slowdown_factor = 1.0
        #: Fired right after a job begins execution.
        self.on_job_started: List[NodeJobCallback] = []
        #: Fired right after a job completes.
        self.on_job_finished: List[NodeJobCallback] = []
        #: Completed-job counter (cheap probe for utilization series).
        self.completed_jobs = 0
        #: Optional :class:`~repro.grid.state.GridState` slab this node
        #: mirrors its idle bit into (``None`` costs one check per queue
        #: transition).
        self._state = None
        self._state_slot = 0

    def bind_state(self, state) -> None:
        """Mirror this node's idle bit into ``state`` from now on."""
        self._state = state
        self._state_slot = int(self.node_id)
        state.set_idle(self._state_slot, self.is_idle)

    def _sync_state(self) -> None:
        state = self._state
        if state is not None:
            state.set_idle(
                self._state_slot,
                self.running is None and len(self.scheduler) == 0,
            )

    # ------------------------------------------------------------------
    # Matching and cost quoting
    # ------------------------------------------------------------------
    def can_execute(self, job: "Job") -> bool:
        """Whether this node's profile satisfies the job's requirements."""
        return self.profile.satisfies(job.requirements)

    def ertp(self, job: "Job") -> float:
        """The job's estimated running time scaled to this node (ERTp)."""
        return scaled_ert(job.ert, self.performance_index)

    def running_remaining(self) -> float:
        """Estimated remaining time of the running job (0 when idle)."""
        if self.running is None:
            return 0.0
        return self.running.estimated_remaining(self.sim.now)

    def cost_for(self, job: "Job") -> float:
        """Quote the cost of accepting ``job`` now (lower = better offer)."""
        return self.scheduler.cost_of(
            job, self.ertp(job), self.sim.now, self.running_remaining()
        )

    # ------------------------------------------------------------------
    # Queue mutation (driven by the protocol layer)
    # ------------------------------------------------------------------
    def accept_job(self, job: "Job") -> None:
        """Enqueue an assigned job; nodes may not decline (§III-A)."""
        if self.crashed:
            raise SchedulingError(
                f"node {self.node_id} is crashed and cannot accept jobs"
            )
        if not self.can_execute(job):
            raise SchedulingError(
                f"node {self.node_id} assigned job {job.job_id} it cannot run"
            )
        if job.not_before is not None and not self.scheduler.supports_reservations:
            raise SchedulingError(
                f"node {self.node_id} ({self.scheduler.name}) cannot honour "
                f"the advance reservation of job {job.job_id}"
            )
        self.scheduler.enqueue(job, self.ertp(job), self.sim.now)
        self._maybe_start()
        self._sync_state()

    def withdraw_job(self, job_id: JobId) -> Optional[QueuedJob]:
        """Remove a *waiting* job for rescheduling elsewhere.

        Returns ``None`` when the job is not withdrawable anymore — it
        already started (running jobs never migrate) or already left this
        node.  The protocol layer treats ``None`` as "rescheduling lost the
        race", which the paper's design explicitly tolerates.
        """
        if self.running is not None and self.running.job.job_id == job_id:
            return None
        if job_id not in self.scheduler:
            return None
        removed = self.scheduler.remove(job_id)
        self._sync_state()
        return removed

    def holds_job(self, job_id: JobId) -> bool:
        """Whether the job is waiting or running on this node."""
        if self.running is not None and self.running.job.job_id == job_id:
            return True
        return job_id in self.scheduler

    # ------------------------------------------------------------------
    # Executor
    # ------------------------------------------------------------------
    def _maybe_start(self) -> None:
        if self.running is not None or self.crashed:
            return
        entry = self.scheduler.pop_next(self.sim.now)
        if entry is None:
            # Reservation-aware queues may block while holding jobs; wake
            # the executor when the earliest reservation arrives.
            wakeup = self.scheduler.next_wakeup(self.sim.now)
            if wakeup is not None and wakeup > self.sim.now:
                self.sim.call_at(wakeup, self._maybe_start)
            return
        art = self.accuracy.actual_running_time(
            entry.job.ert, entry.ertp, self._art_rng
        )
        if self.slowdown_factor != 1.0:
            art *= self.slowdown_factor
        self.running = RunningJob(
            job=entry.job,
            start_time=self.sim.now,
            ertp=entry.ertp,
            art=art,
            enqueue_time=entry.enqueue_time,
        )
        for callback in self.on_job_started:
            callback(self, self.running)
        self._completion_event = self.sim.call_after(art, self._complete_running)

    def _complete_running(self) -> None:
        finished = self.running
        if finished is None:  # pragma: no cover - defensive
            raise SchedulingError(f"node {self.node_id}: completion while idle")
        self.running = None
        self.completed_jobs += 1
        for callback in self.on_job_finished:
            callback(self, finished)
        self._maybe_start()
        self._sync_state()

    # ------------------------------------------------------------------
    # Failure injection
    # ------------------------------------------------------------------
    def crash(self) -> List["Job"]:
        """Crash the node: execution stops and all held jobs are lost.

        Returns the jobs that were lost (running + waiting), so callers can
        assert on what a fail-safe mechanism must recover.
        """
        if self.crashed:
            raise SchedulingError(f"node {self.node_id} already crashed")
        self.crashed = True
        lost: List["Job"] = []
        if self.running is not None:
            if self._completion_event is not None:
                self.sim.cancel(self._completion_event)
            lost.append(self.running.job)
            self.running = None
        while True:
            entry = self.scheduler.pop_next()
            if entry is None:
                break
            lost.append(entry.job)
        self._sync_state()
        return lost

    def revive(self) -> None:
        """Bring a crashed node back as an empty executor (crash-restart).

        Everything held at crash time stayed lost; the node simply starts
        accepting and executing jobs again.  The protocol layer is
        responsible for the overlay rejoin and incarnation bump.
        """
        if not self.crashed:
            raise SchedulingError(f"node {self.node_id} is not crashed")
        self.crashed = False

    def apply_slowdown(self, factor: float) -> None:
        """Degrade (or restore, with 1.0) this node's execution rate.

        Affects jobs that start from now on; the running job keeps its
        completion event (no preemption, §III-A, and a slowdown mid-job
        would require re-timing an event the scheduler cannot observe).
        """
        if factor < 1.0:
            raise SchedulingError(
                f"slowdown factor {factor} must be >= 1 (got a speedup?)"
            )
        self.slowdown_factor = factor

    # ------------------------------------------------------------------
    # State probes (metrics)
    # ------------------------------------------------------------------
    @property
    def is_idle(self) -> bool:
        """True when nothing runs and the scheduling queue is empty."""
        return self.running is None and len(self.scheduler) == 0

    @property
    def queue_length(self) -> int:
        return len(self.scheduler)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "idle" if self.is_idle else f"q={self.queue_length}"
        return f"<GridNode {self.node_id} {self.scheduler.name} {state}>"
