"""Estimated vs. actual running times (§IV-B and §IV-D of the paper).

Every job carries an **ERT** (Estimated job Running Time) expressed against
a grid-wide baseline machine.  A node with performance index ``p`` expects
to run the job in ``ERTp = ERT / p``.  The **ART** (Actual Running Time) is
unknown until execution completes and deviates from ERTp by a drift term
controlled by the relative estimation error ε:

    ART = ERTp + drift,   drift = U[-1, 1] · ERT · ε

The *AccuracyBad* scenarios replace ``drift`` with ``|drift|`` ("the ERT is
always lower than the actual running time"), and the *Precise* scenarios use
ε = 0.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..errors import ConfigurationError

__all__ = ["scaled_ert", "AccuracyModel"]


def scaled_ert(ert: float, performance_index: float) -> float:
    """ERTp: the estimated running time on a node of the given index."""
    if ert <= 0:
        raise ConfigurationError(f"non-positive ERT {ert!r}")
    if performance_index < 1.0:
        raise ConfigurationError(
            f"performance index {performance_index!r} below the baseline 1.0"
        )
    return ert / performance_index


@dataclass(frozen=True)
class AccuracyModel:
    """ERT accuracy model producing Actual Running Times.

    Parameters
    ----------
    epsilon:
        Relative estimation error ε.  The paper's baseline is 0.1 (±10 %);
        the Accuracy25 scenarios use 0.25; Precise uses 0.0.
    optimistic_only:
        When true (the AccuracyBad scenarios), the drift is folded to its
        absolute value so the estimate is always optimistic.
    """

    epsilon: float = 0.1
    optimistic_only: bool = False

    def __post_init__(self) -> None:
        if self.epsilon < 0:
            raise ConfigurationError(f"negative epsilon {self.epsilon!r}")

    def actual_running_time(
        self, ert: float, ertp: float, rng: random.Random
    ) -> float:
        """Sample the ART for a job of estimate ``ert`` scaled to ``ertp``."""
        if self.epsilon == 0.0:
            return ertp
        drift = rng.uniform(-1.0, 1.0) * ert * self.epsilon
        if self.optimistic_only:
            drift = abs(drift)
        # An extremely pessimistic draw cannot make a job finish instantly.
        return max(ertp + drift, ertp * 0.01)


#: The accuracy models named by the paper's scenarios.
PRECISE = AccuracyModel(epsilon=0.0)
BASELINE_10 = AccuracyModel(epsilon=0.1)
ACCURACY_25 = AccuracyModel(epsilon=0.25)
ACCURACY_BAD = AccuracyModel(epsilon=0.1, optimistic_only=True)

__all__ += ["PRECISE", "BASELINE_10", "ACCURACY_25", "ACCURACY_BAD"]
