"""Resource profiles of grid nodes and resource requirements of jobs.

Per §IV-B, every node is "characterized by a different profile ... the
implemented architecture (e.g. AMD64, POWER, etc.), available memory,
available disk space, and operating system".  Jobs carry the same fields as
*requirements* (§IV-D): a node matches a job when architectures and
operating systems are equal and the node's memory and disk are at least the
required amounts.

The protocol itself "does not specify neither the resource profiles and job
submission formats, nor the matching logic" (§III-A); this module is the
concrete instantiation the paper's simulator uses.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..errors import ConfigurationError

__all__ = ["Architecture", "OperatingSystem", "NodeProfile", "JobRequirements"]


class Architecture(str, enum.Enum):
    """Hardware architectures, from the paper's TOP500-derived list."""

    AMD64 = "AMD64"
    POWER = "POWER"
    IA64 = "IA-64"
    SPARC = "SPARC"
    MIPS = "MIPS"
    NEC = "NEC"


class OperatingSystem(str, enum.Enum):
    """Operating systems, from the paper's TOP500-derived list."""

    LINUX = "LINUX"
    SOLARIS = "SOLARIS"
    UNIX = "UNIX"
    WINDOWS = "WINDOWS"
    BSD = "BSD"


#: The paper draws memory and disk independently from this set (GiB).
CAPACITY_CHOICES = (1, 2, 4, 8, 16)
__all__.append("CAPACITY_CHOICES")


@dataclass(frozen=True)
class NodeProfile:
    """Hardware/software profile of one grid node."""

    architecture: Architecture
    memory_gb: int
    disk_gb: int
    os: OperatingSystem

    def __post_init__(self) -> None:
        if self.memory_gb <= 0 or self.disk_gb <= 0:
            raise ConfigurationError(
                f"non-positive capacity in profile {self!r}"
            )

    def satisfies(self, requirements: "JobRequirements") -> bool:
        """Whether this node can execute a job with the given requirements."""
        return (
            self.architecture is requirements.architecture
            and self.os is requirements.os
            and self.memory_gb >= requirements.memory_gb
            and self.disk_gb >= requirements.disk_gb
        )


@dataclass(frozen=True)
class JobRequirements:
    """Resource requirements carried in a job's profile."""

    architecture: Architecture
    memory_gb: int
    disk_gb: int
    os: OperatingSystem

    def __post_init__(self) -> None:
        if self.memory_gb <= 0 or self.disk_gb <= 0:
            raise ConfigurationError(
                f"non-positive requirement in {self!r}"
            )
