"""Grid substrate: resource profiles, performance model, grid nodes."""

from .node import GridNode, RunningJob
from .performance import (
    ACCURACY_25,
    ACCURACY_BAD,
    BASELINE_10,
    PRECISE,
    AccuracyModel,
    scaled_ert,
)
from .profiles import (
    CAPACITY_CHOICES,
    Architecture,
    JobRequirements,
    NodeProfile,
    OperatingSystem,
)
from .resources import (
    ARCHITECTURE_DISTRIBUTION,
    OS_DISTRIBUTION,
    random_job_requirements,
    random_node_profile,
    random_performance_index,
    weighted_choice,
)

__all__ = [
    "ACCURACY_25",
    "ACCURACY_BAD",
    "ARCHITECTURE_DISTRIBUTION",
    "AccuracyModel",
    "Architecture",
    "BASELINE_10",
    "CAPACITY_CHOICES",
    "GridNode",
    "JobRequirements",
    "NodeProfile",
    "OS_DISTRIBUTION",
    "OperatingSystem",
    "PRECISE",
    "RunningJob",
    "random_job_requirements",
    "random_node_profile",
    "random_performance_index",
    "scaled_ert",
    "weighted_choice",
]
