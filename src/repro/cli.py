"""Command-line interface.

Everything the library does is reachable from the shell::

    python -m repro list                         # Table II catalog
    python -m repro run iMixed --scale small     # one scenario
    python -m repro figure fig4 --scale small    # regenerate a figure
    python -m repro baseline centralized         # a comparison scheduler
    python -m repro trace out.json --jobs 200    # freeze a workload trace
    python -m repro run iMixed --faults          # chaos-test the protocol
    python -m repro run iMixed --failure-model   # crash/restart/fail-slow mix
    python -m repro run iMixed --trace t.jsonl   # record a protocol trace
    python -m repro explain-job t.jsonl 17       # why did job 17 land there?
    python -m repro serve --nodes 8              # live HTTP overlay run
    python -m repro serve --faults --chaos       # chaos on the live wire
    python -m repro soak --wall-seconds 600      # soak + online invariants
    python -m repro soak --top --chaos           # soak with live dashboard
    python -m repro top --port-base 18200        # watch a running overlay

All commands accept ``--scale tiny|small|medium|paper`` and ``--seeds N``
(N seeds starting at ``--seed-base``, default 0; the paper averages 10).
Simulation commands also accept ``--parallel W`` (fan seeds out over W
worker processes; 0 = all cores) and ``--no-cache`` (skip the on-disk
result cache) — see :mod:`repro.experiments.engine`.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from .baselines import BASELINE_NAMES
from .experiments import (
    SCENARIOS,
    RunOptions,
    ScenarioScale,
    get_scenario,
    render_table,
    run,
    run_batch,
    summarize_runs,
)
from .experiments import figures as figures_module
from .experiments.report import fmt_hours, fmt_opt

__all__ = ["main"]

_SCALES = {
    "tiny": ScenarioScale.tiny,
    "small": ScenarioScale.small,
    "medium": ScenarioScale.medium,
    "paper": ScenarioScale.paper,
}

_FIGURES = {
    "fig1": figures_module.fig1_completed_jobs,
    "fig2": figures_module.fig2_completion_time,
    "fig3": figures_module.fig3_idle_nodes,
    "fig4": figures_module.fig4_deadlines,
    "fig5": figures_module.fig5_expanding,
    "fig6": figures_module.fig6_load_idle,
    "fig7": figures_module.fig7_load_completion,
    "fig8": figures_module.fig8_resched_policies,
    "fig9": figures_module.fig9_ert_accuracy,
    "fig10": figures_module.fig10_traffic,
}


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--scale",
        choices=sorted(_SCALES),
        default="small",
        help="grid size (paper = 500 nodes / 1000 jobs)",
    )
    parser.add_argument(
        "--seeds", type=int, default=1, help="number of seeds to average"
    )
    parser.add_argument(
        "--seed-base", type=int, default=0, help="first seed value"
    )
    parser.add_argument(
        "--parallel",
        type=int,
        default=None,
        metavar="W",
        help="worker processes for the seed batch (0 = all cores)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="bypass the on-disk result cache",
    )


def _scale_and_seeds(args) -> tuple:
    scale = _SCALES[args.scale]()
    seeds = tuple(range(args.seed_base, args.seed_base + args.seeds))
    return scale, seeds


def _engine_kwargs(args) -> dict:
    """``run_batch`` keyword arguments from the common CLI flags."""
    return {
        "parallel": args.parallel,
        "cache": False if args.no_cache else None,
        "progress": True if getattr(args, "progress", False) else None,
    }


def _add_progress(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--progress",
        action="store_true",
        help="report per-seed batch progress on stderr",
    )


def _trace_config(args, seeds):
    """Build a :class:`TraceConfig` from ``--trace`` / ``--trace-level``.

    Returns ``None`` when tracing was not requested.  Multi-seed batches
    must embed a ``{seed}`` placeholder in the path so each seed writes
    its own trace file.
    """
    if args.trace is None:
        if args.trace_level is not None:
            raise SystemExit("--trace-level requires --trace PATH")
        return None
    from .obs import TraceConfig

    if len(seeds) > 1 and "{seed}" not in args.trace:
        raise SystemExit(
            "--trace with multiple seeds needs a {seed} placeholder "
            "in the path (e.g. trace-{seed}.jsonl)"
        )
    return TraceConfig(
        level=args.trace_level or "protocol", sink="jsonl", path=args.trace
    )


def _cmd_list(_args) -> int:
    rows = [
        [name, "yes" if scenario.rescheduling else "no", scenario.description]
        for name, scenario in SCENARIOS.items()
    ]
    print(render_table(["scenario", "resched", "description"], rows))
    return 0


def _parse_fault_plan(text: str, duration: float):
    """Build a :class:`FaultPlan` from the ``--faults`` argument value.

    ``"default"`` (the bare-flag value) is the representative
    :meth:`FaultPlan.chaos` plan scaled to the run's protocol-time
    ``duration``; an inline ``{...}`` string is parsed as JSON; anything
    else is a path to a JSON file of ``FaultPlan`` fields.
    """
    from .experiments import FaultPlan

    if text == "default":
        return FaultPlan.chaos(duration)
    import json

    if text.lstrip().startswith("{"):
        data = json.loads(text)
    else:
        from pathlib import Path

        data = json.loads(Path(text).read_text())
    return FaultPlan(**data)


def _parse_failure_model(text: str, scale: ScenarioScale):
    """Build a :class:`FailureModel` from ``--failure-model``.

    Same conventions as :func:`_parse_fault_plan`: ``"default"`` is the
    representative :meth:`FailureModel.chaos` mix scaled to the run's
    duration; otherwise inline JSON or a JSON file of ``FailureModel``
    fields.
    """
    from .experiments import FailureModel

    if text == "default":
        return FailureModel.chaos(scale.duration)
    import json

    if text.lstrip().startswith("{"):
        data = json.loads(text)
    else:
        from pathlib import Path

        data = json.loads(Path(text).read_text())
    return FailureModel(**data)


def _cmd_run(args) -> int:
    scale, seeds = _scale_and_seeds(args)
    scenario = get_scenario(args.scenario)
    trace = _trace_config(args, seeds)
    if args.failure_model is not None:
        spec = _parse_failure_model(args.failure_model, scale)
        options = RunOptions(
            scenario_name=args.scenario,
            reliability=not args.no_reliability,
            adoption=not args.no_adoption,
            # Compose node failures with network faults in one run.
            fault_plan=(
                _parse_fault_plan(args.faults, scale.duration)
                if args.faults is not None
                else None
            ),
        )
    elif args.faults is not None:
        spec = _parse_fault_plan(args.faults, scale.duration)
        options = RunOptions(
            scenario_name=args.scenario,
            reliability=not args.no_reliability,
        )
    else:
        spec, options = scenario, None
    if args.profile or args.profile_out is not None:
        # Profiling must observe the actual simulation, so the seeds run
        # serially in-process and bypass the result cache.
        summaries = []
        for seed in seeds:
            profile_out = (
                args.profile_out.replace("{seed}", str(seed))
                if args.profile_out is not None
                else None
            )
            result = run(
                spec,
                scale,
                seed=seed,
                profile=args.profile,
                profile_out=profile_out,
                trace=trace,
                options=options,
            )
            summaries.append(result.summary())
    else:
        engine_kwargs = _engine_kwargs(args)
        if trace is not None:
            # A cached result would skip the run and leave no trace file,
            # so traced batches always execute.
            engine_kwargs["cache"] = False
        summaries = run_batch(
            spec, scale, seeds=seeds, trace=trace,
            options=options, **engine_kwargs,
        )
    chaos = args.faults is not None or args.failure_model is not None
    errors = dict(getattr(summaries, "errors", None) or {})
    completed_seeds = [seed for seed in seeds if seed not in errors]
    if not summaries:
        for seed, reason in sorted(errors.items()):
            print(f"SEED FAILED (seed {seed}): {reason}", file=sys.stderr)
        print("error: every seed failed", file=sys.stderr)
        return 1
    summary = summarize_runs(summaries)
    rows = [
        ["completed jobs", fmt_opt(summary.completed_jobs, ".1f")],
        ["unschedulable", fmt_opt(summary.unschedulable_jobs, ".1f")],
        ["avg completion", fmt_hours(summary.average_completion_time)],
        ["avg waiting", fmt_hours(summary.average_waiting_time)],
        ["avg execution", fmt_hours(summary.average_execution_time)],
        ["reschedules", fmt_opt(summary.reschedules, ".1f")],
        ["missed deadlines", fmt_opt(summary.missed_deadlines, ".1f")],
        ["avg lateness", fmt_hours(summary.average_lateness)],
        ["avg missed time", fmt_hours(summary.average_missed_time)],
        ["bandwidth/node", f"{summary.bandwidth_bps:.1f} bps"],
    ]
    for message_type, total in sorted(summary.traffic_bytes.items()):
        rows.append([f"traffic {message_type}", f"{total / 1e6:.2f} MB"])
    title = scenario.name
    if args.failure_model is not None:
        title += "+failures"
    if args.faults is not None:
        title += "+faults"
    if chaos:
        if not args.no_reliability:
            title += "+reliable"
        import statistics

        net_keys = sorted(
            {k for s in summaries for k in s.extras if k.startswith("net_")}
        )
        for key in net_keys:
            mean = statistics.fmean(s.extras.get(key, 0.0) for s in summaries)
            rows.append([key, f"{mean:.1f}"])
    print(
        f"{title} @ {args.scale} "
        f"({scale.nodes} nodes, {scale.jobs} jobs), seeds {seeds}"
    )
    print(render_table(["metric", "value"], rows))
    exit_code = 0
    for seed, reason in sorted(errors.items()):
        print(f"SEED FAILED (seed {seed}): {reason}", file=sys.stderr)
        exit_code = 1
    if chaos:
        violations = [
            (seed, violation)
            for seed, run_summary in zip(completed_seeds, summaries)
            for violation in run_summary.violations
        ]
        if violations:
            for seed, violation in violations:
                print(f"VIOLATION (seed {seed}): {violation}")
            return 1
        print("invariants: OK")
    return exit_code


def _cmd_procs(args, soak: bool) -> int:
    """The ``--procs`` branch shared by ``serve`` and ``soak``: the
    process-isolated overlay under the supervisor."""
    from .experiments import OnlineInvariantChecker
    from .runtime import ProcRunConfig, ProcessFailureSchedule, run_procs

    if soak:
        wall = args.wall_seconds
        duration = wall * args.time_scale
        jobs = args.jobs if args.jobs is not None else max(5, int(wall * 0.7))
        submission_interval = args.time_scale
    else:
        duration = args.duration
        wall = duration / args.time_scale
        jobs = args.jobs
        submission_interval = 30.0
    fault_plan = (
        _parse_fault_plan(args.faults, duration)
        if args.faults is not None
        else None
    )
    schedule = (
        ProcessFailureSchedule.chaos(wall)
        if getattr(args, "chaos", False)
        else None
    )
    config = ProcRunConfig(
        scenario_name=args.scenario,
        nodes=args.nodes,
        jobs=jobs,
        seed=args.seed_base,
        time_scale=args.time_scale,
        duration=duration,
        submission_interval=submission_interval,
        reliability=not getattr(args, "no_reliability", False),
        port_base=args.port_base,
        group_size=args.group_size,
        run_dir=args.run_dir,
        trace_level=args.trace_level or "transport",
        rotate_bytes=int(getattr(args, "rotate_mb", 64.0) * 1024 * 1024),
        dashboard=args.top,
        fault_plan=fault_plan,
        failure_schedule=schedule,
        seed_violation=getattr(args, "seed_violation", False),
        merged_trace_path=args.trace,
    )
    checker = OnlineInvariantChecker(
        on_violation=lambda text: print(
            f"VIOLATION (merged trace): {text}", file=sys.stderr
        )
    )
    print(
        f"process overlay: {config.nodes} nodes in "
        f"{config.worker_count()} OS processes on {config.host}, "
        f"{jobs} jobs, scenario {config.scenario_name}, time scale "
        f"{config.time_scale:.0f}x (~{config.wall_duration():.0f}s wall), "
        f"supervisor armed (max {config.max_restarts} restarts/worker)"
        + (", faults on" if fault_plan is not None else "")
        + (", process chaos on (SIGKILL/SIGSTOP)" if schedule else "")
        + (
            ", SEEDED VIOLATION (self-test)"
            if config.seed_violation
            else ""
        ),
        file=sys.stderr,
    )
    result = run_procs(config, online_checker=checker)
    rows = [
        ["jobs submitted", str(result.submitted)],
        ["jobs completed", str(result.completed)],
        ["events checked (merged)", str(result.checked_events)],
        ["torn trace lines", str(result.torn_lines)],
        ["supervisor restarts", str(result.supervisor["restarts"])],
        ["worker states", " ".join(result.supervisor["states"])],
        ["journal recoveries", str(len(result.recovered))],
        ["run dir", result.run_dir],
        ["merged trace", result.merged_trace_path],
    ]
    print(render_table(["metric", "value"], rows))
    if result.interrupted:
        print(
            "interrupted: run cut short by signal; trace and journals "
            "flushed",
            file=sys.stderr,
        )
    if result.violations:
        for violation in result.violations:
            print(f"VIOLATION: {violation}")
        return 1
    print("invariants: OK (merged multi-process trace)")
    return 0


def _cmd_serve(args) -> int:
    from .obs import TraceConfig
    from .runtime import LiveFailureSchedule, LiveRunConfig, run_live

    if args.procs:
        return _cmd_procs(args, soak=False)
    fault_plan = (
        _parse_fault_plan(args.faults, args.duration)
        if args.faults is not None
        else None
    )
    chaos = getattr(args, "chaos", False)
    schedule = (
        LiveFailureSchedule.chaos(args.duration / args.time_scale)
        if chaos
        else None
    )
    config = LiveRunConfig(
        scenario_name=args.scenario,
        nodes=args.nodes,
        jobs=args.jobs,
        seed=args.seed_base,
        time_scale=args.time_scale,
        duration=args.duration,
        reliability=not args.no_reliability,
        fault_plan=fault_plan,
        failure_schedule=schedule,
        failsafe=chaos or fault_plan is not None,
        port_base=args.port_base,
        dashboard=args.top,
    )
    trace = (
        TraceConfig(level=args.trace_level or "protocol",
                    sink="jsonl", path=args.trace)
        if args.trace is not None
        else None
    )
    print(
        f"live overlay: {config.nodes} HTTP nodes on {config.host}, "
        f"{config.jobs} jobs, scenario {config.scenario_name}, "
        f"time scale {config.time_scale:.0f}x "
        f"(~{config.wall_duration():.0f}s wall)"
        + (", faults on" if fault_plan is not None else "")
        + (", lifecycle chaos on" if schedule is not None else ""),
        file=sys.stderr,
    )
    result = run_live(config, obs=trace)
    summary = result.summary()
    metrics = result.metrics
    rows = [
        ["completed jobs", str(metrics.completed_jobs)],
        ["unschedulable", str(metrics.unschedulable_count())],
        ["avg completion", fmt_hours(metrics.average_completion_time())],
        ["avg waiting", fmt_hours(metrics.average_waiting_time())],
        ["reschedules", str(metrics.reschedules)],
        ["final node count", str(result.final_node_count)],
        ["timer events", str(result.executed_events)],
    ]
    for message_type, total in sorted(result.traffic.count_by_type.items()):
        rows.append([f"messages {message_type}", str(total)])
    for key, value in sorted(result.network.items()):
        rows.append([f"net {key}", str(value)])
    print(render_table(["metric", "value"], rows))
    if summary.violations:
        for violation in summary.violations:
            print(f"VIOLATION: {violation}")
        return 1
    print("invariants: OK")
    return 0


def _cmd_soak(args) -> int:
    from .experiments import OnlineInvariantChecker
    from .obs import TraceConfig
    from .runtime import LiveFailureSchedule, LiveRunConfig, run_live

    if args.procs:
        return _cmd_procs(args, soak=True)
    wall = args.wall_seconds
    duration = wall * args.time_scale
    # One job submitted roughly every wall second over the first ~70% of
    # the run, unless an explicit count was given.
    jobs = args.jobs if args.jobs is not None else max(5, int(wall * 0.7))
    fault_plan = (
        _parse_fault_plan(args.faults, duration)
        if args.faults is not None
        else None
    )
    schedule = LiveFailureSchedule.chaos(wall) if args.chaos else None
    config = LiveRunConfig(
        scenario_name=args.scenario,
        nodes=args.nodes,
        jobs=jobs,
        seed=args.seed_base,
        time_scale=args.time_scale,
        duration=duration,
        submission_interval=args.time_scale,
        reliability=True,
        fault_plan=fault_plan,
        failure_schedule=schedule,
        failsafe=args.chaos or fault_plan is not None,
        port_base=args.port_base,
        dashboard=args.top,
    )
    trace = TraceConfig(
        level=args.trace_level,
        sink="jsonl",
        path=args.trace,
        rotate_bytes=int(args.rotate_mb * 1024 * 1024),
    )
    checker = OnlineInvariantChecker(
        on_violation=lambda text: print(
            f"VIOLATION (online): {text}", file=sys.stderr
        )
    )
    print(
        f"soak: {config.nodes} HTTP nodes, {jobs} jobs over ~{wall:.0f}s "
        f"wall, scenario {config.scenario_name}, time scale "
        f"{config.time_scale:.0f}x, trace -> {args.trace} "
        f"(rotate at {args.rotate_mb} MB), online invariant checker armed"
        + (", faults on" if fault_plan is not None else "")
        + (", lifecycle chaos on" if schedule is not None else "")
        + (", SEEDED VIOLATION (self-test)" if args.seed_violation else ""),
        file=sys.stderr,
    )
    result = run_live(
        config,
        obs=trace,
        online_checker=checker,
        seed_violation=args.seed_violation,
    )
    summary = result.summary()
    metrics = result.metrics
    rows = [
        ["completed jobs", str(metrics.completed_jobs)],
        ["unschedulable", str(metrics.unschedulable_count())],
        ["reschedules", str(metrics.reschedules)],
        ["final node count", str(result.final_node_count)],
        ["timer events", str(result.executed_events)],
        ["events checked online", str(checker.checked)],
    ]
    for key, value in sorted(result.network.items()):
        rows.append([f"net {key}", str(value)])
    print(render_table(["metric", "value"], rows))
    if result.interrupted:
        print(
            "interrupted: soak cut short by signal; trace flushed and "
            "closed, conservation checks relaxed",
            file=sys.stderr,
        )
    if summary.violations:
        for violation in summary.violations:
            print(f"VIOLATION: {violation}")
        return 1
    print("invariants: OK (online + post-run)")
    return 0


def _cmd_figure(args) -> int:
    scale, seeds = _scale_and_seeds(args)
    figure = _FIGURES[args.figure](scale, seeds, args.parallel)
    print(figure.render())
    return 0


def _cmd_baseline(args) -> int:
    scale, seeds = _scale_and_seeds(args)
    import statistics

    runs = run_batch(
        args.baseline, scale, seeds=seeds, **_engine_kwargs(args)
    )
    completion = statistics.fmean(
        r.average_completion_time
        for r in runs
        if r.average_completion_time is not None
    )
    waiting = statistics.fmean(
        r.average_waiting_time
        for r in runs
        if r.average_waiting_time is not None
    )
    revoked = statistics.fmean(
        r.extras.get("revoked_copies", 0.0) for r in runs
    )
    print(
        f"{args.baseline} @ {args.scale}: "
        f"completion {fmt_hours(completion)}, waiting {fmt_hours(waiting)}, "
        f"revoked copies {revoked:.1f}"
    )
    return 0


def _cmd_run_file(args) -> int:
    import json
    from pathlib import Path

    from .experiments import Scenario

    payload = json.loads(Path(args.path).read_text())
    scenario = Scenario.from_dict(payload)
    scale, seeds = _scale_and_seeds(args)
    summary = summarize_runs(
        run_batch(scenario, scale, seeds=seeds, **_engine_kwargs(args))
    )
    print(
        f"{scenario.name} (custom) @ {args.scale}: "
        f"completion {fmt_hours(summary.average_completion_time)}, "
        f"waiting {fmt_hours(summary.average_waiting_time)}, "
        f"completed {summary.completed_jobs:.1f}, "
        f"reschedules {summary.reschedules:.1f}"
    )
    return 0


def _cmd_sweep(args) -> int:
    from .experiments.sweep import sweep_config_field, sweep_scenario_field

    scale, seeds = _scale_and_seeds(args)
    values = [float(v) if "." in v or "e" in v else int(v) for v in args.values]
    sweep = (
        sweep_config_field
        if args.target == "config"
        else sweep_scenario_field
    )
    points = sweep(
        args.scenario, args.field, values, scale, seeds,
        parallel=args.parallel,
    )
    rows = [
        [
            str(point.value),
            fmt_hours(point.summary.average_completion_time),
            fmt_hours(point.summary.average_waiting_time),
            f"{sum(point.summary.traffic_bytes.values()) / 1e6:.1f}",
        ]
        for point in points
    ]
    print(f"sweep of {args.target}.{args.field} on {args.scenario}")
    print(
        render_table([args.field, "completion", "waiting", "traffic MB"], rows)
    )
    return 0


def _cmd_top(args) -> int:
    """Attach to an already-running live overlay and stream its dashboard."""
    import asyncio
    import time

    from .obs import MetricsRegistry, TelemetryCollector, render_dashboard

    if args.targets:
        addresses = {}
        for index, spec in enumerate(args.targets.split(",")):
            host, _, port = spec.strip().rpartition(":")
            addresses[index] = (host or "127.0.0.1", int(port))
    else:
        addresses = {
            index: (args.host, args.port_base + index)
            for index in range(args.nodes)
        }
    start = time.monotonic()
    collector = TelemetryCollector(
        MetricsRegistry(),
        targets=lambda: addresses,
        now=lambda: time.monotonic() - start,
    )

    async def watch() -> int:
        while True:
            await collector.scrape()
            print(
                "\x1b[2J\x1b[H"
                + render_dashboard(collector, title="ARiA fleet (repro top)"),
                end="",
                flush=True,
            )
            if args.iterations and collector.rounds >= args.iterations:
                return 0
            await asyncio.sleep(args.interval)

    try:
        return asyncio.run(watch())
    except KeyboardInterrupt:
        return 0


def _cmd_explain_job(args) -> int:
    import json

    from .errors import ConfigurationError
    from .obs import explain_job, load_rotated_trace

    try:
        # Rotated soak traces stitch back together transparently; an
        # unrotated trace is just its own single segment.
        events = load_rotated_trace(args.trace)
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    if not events:
        print(f"error: no events found at {args.trace}", file=sys.stderr)
        return 1
    try:
        timeline = explain_job(events, args.job_id)
    except ConfigurationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    if args.json:
        print(json.dumps(timeline.to_json(), indent=2, sort_keys=True))
    else:
        print(timeline.to_text())
    return 0


def _cmd_trace(args) -> int:
    import random

    from .types import HOUR
    from .workload import JobGenerator, SubmissionSchedule, WorkloadTrace

    generator = JobGenerator(
        random.Random(args.seed_base),
        deadline_slack_mean=args.deadline_slack * HOUR
        if args.deadline_slack
        else None,
    )
    schedule = SubmissionSchedule(
        job_count=args.jobs, interval=args.interval
    )
    trace = WorkloadTrace.from_generator(generator, schedule.times())
    trace.save(args.path)
    print(f"wrote {len(trace)} jobs to {args.path}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser for the ``repro`` CLI."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="ARiA grid meta-scheduling reproduction (ICDCS 2010)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list the Table II scenarios").set_defaults(
        func=_cmd_list
    )

    run_parser = sub.add_parser("run", help="simulate one scenario")
    run_parser.add_argument("scenario", choices=sorted(SCENARIOS))
    _add_common(run_parser)
    _add_progress(run_parser)
    run_parser.add_argument(
        "--profile",
        action="store_true",
        help="print a cProfile report (top 20 by cumulative time) per "
        "seed; runs serially in-process and bypasses the cache",
    )
    run_parser.add_argument(
        "--profile-out",
        default=None,
        metavar="PATH",
        help="save raw cProfile stats to PATH (loadable with pstats); "
        "use a {seed} placeholder with multiple seeds; runs serially "
        "in-process and bypasses the cache",
    )
    run_parser.add_argument(
        "--trace",
        default=None,
        metavar="PATH",
        help="write a JSONL protocol trace to PATH (use a {seed} "
        "placeholder with multiple seeds); explore it afterwards with "
        "'repro explain-job PATH JOB_ID'",
    )
    run_parser.add_argument(
        "--trace-level",
        choices=("protocol", "transport", "kernel"),
        default=None,
        help="trace detail level (default protocol; transport adds "
        "per-message events, kernel adds per-event timing)",
    )
    run_parser.add_argument(
        "--faults",
        nargs="?",
        const="default",
        default=None,
        metavar="PLAN",
        help="inject network faults: bare flag = the representative chaos "
        "plan; otherwise inline JSON ('{...}') or a JSON file of "
        "FaultPlan fields; checks protocol invariants afterwards and "
        "exits nonzero on any violation",
    )
    run_parser.add_argument(
        "--failure-model",
        nargs="?",
        const="default",
        default=None,
        metavar="MODEL",
        help="inject node failures (crash-stop, crash-restart, fail-slow): "
        "bare flag = the representative chaos mix; otherwise inline JSON "
        "('{...}') or a JSON file of FailureModel fields; composes with "
        "--faults (network faults ride along in the same run); checks "
        "protocol invariants afterwards and exits nonzero on any "
        "violation",
    )
    run_parser.add_argument(
        "--no-adoption",
        action="store_true",
        help="with --failure-model: disable initiator-crash orphan "
        "adoption (demonstrates the orphaned-job leak it prevents)",
    )
    run_parser.add_argument(
        "--no-reliability",
        action="store_true",
        help="with --faults/--failure-model: disable the at-least-once "
        "reliability layer (demonstrates the invariant violations it "
        "prevents)",
    )
    run_parser.set_defaults(func=_cmd_run)

    serve_parser = sub.add_parser(
        "serve",
        help="run a scenario on a live localhost HTTP overlay "
        "(real sockets, wall-clock timers)",
    )
    serve_parser.add_argument(
        "scenario", nargs="?", default="iMixed", choices=sorted(SCENARIOS)
    )
    serve_parser.add_argument(
        "--nodes", type=int, default=8, help="overlay size (default 8)"
    )
    serve_parser.add_argument(
        "--jobs", type=int, default=10, help="workload size (default 10)"
    )
    serve_parser.add_argument(
        "--time-scale",
        type=float,
        default=300.0,
        metavar="X",
        help="protocol seconds per wall second (default 300: a 2.5h "
        "scenario runs in ~30s)",
    )
    serve_parser.add_argument(
        "--duration",
        type=float,
        default=9000.0,
        metavar="SECONDS",
        help="protocol-time horizon (default 9000)",
    )
    serve_parser.add_argument("--seed-base", type=int, default=0)
    serve_parser.add_argument(
        "--no-reliability",
        action="store_true",
        help="detach the at-least-once reliability layer",
    )
    serve_parser.add_argument(
        "--trace",
        default=None,
        metavar="PATH",
        help="write a JSONL protocol trace of the live run to PATH",
    )
    serve_parser.add_argument(
        "--trace-level",
        choices=("protocol", "transport", "kernel"),
        default=None,
        help="trace detail level (default protocol)",
    )
    serve_parser.add_argument(
        "--faults",
        nargs="?",
        const="default",
        default=None,
        metavar="PLAN",
        help="inject network faults on the live wire (same plan syntax as "
        "'run --faults'); arms the fail-safe extension so crashed "
        "deliveries are recovered",
    )
    serve_parser.add_argument(
        "--chaos",
        action="store_true",
        help="drive the representative live lifecycle schedule: one "
        "crash-restart, one mid-run join, one graceful leave",
    )
    serve_parser.add_argument(
        "--port-base",
        type=int,
        default=None,
        metavar="PORT",
        help="bind node i's endpoint to PORT+i instead of ephemeral "
        "ports, so 'repro top' and external scrapers can find the "
        "fleet's /metrics pages",
    )
    serve_parser.add_argument(
        "--top",
        action="store_true",
        help="render the streaming fleet dashboard while the run is live",
    )
    serve_parser.add_argument(
        "--procs",
        action="store_true",
        help="run every node (group) as its own OS process under a "
        "supervisor with crash recovery and durable journals; --chaos "
        "then means real SIGKILL/SIGSTOP process chaos",
    )
    serve_parser.add_argument(
        "--group-size",
        type=int,
        default=1,
        metavar="N",
        help="with --procs: nodes per worker process (default 1, full "
        "per-node isolation)",
    )
    serve_parser.add_argument(
        "--run-dir",
        default=None,
        metavar="DIR",
        help="with --procs: scratch directory for address files, "
        "journals and per-process traces (default: fresh temp dir)",
    )
    serve_parser.set_defaults(func=_cmd_serve)

    soak_parser = sub.add_parser(
        "soak",
        help="long-running live overlay with streaming trace, /healthz "
        "endpoints and incremental invariant checking; exits nonzero "
        "on the first confirmed violation",
    )
    soak_parser.add_argument(
        "scenario", nargs="?", default="iMixed", choices=sorted(SCENARIOS)
    )
    soak_parser.add_argument(
        "--nodes", type=int, default=8, help="overlay size (default 8)"
    )
    soak_parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="workload size (default: ~0.7 jobs per wall second)",
    )
    soak_parser.add_argument(
        "--wall-seconds",
        type=float,
        default=60.0,
        metavar="SECONDS",
        help="how long the soak runs in wall time (default 60; set "
        "minutes-to-hours for a real soak)",
    )
    soak_parser.add_argument(
        "--time-scale",
        type=float,
        default=300.0,
        metavar="X",
        help="protocol seconds per wall second (default 300)",
    )
    soak_parser.add_argument("--seed-base", type=int, default=0)
    soak_parser.add_argument(
        "--faults",
        nargs="?",
        const="default",
        default=None,
        metavar="PLAN",
        help="inject network faults on the live wire (same plan syntax as "
        "'run --faults')",
    )
    soak_parser.add_argument(
        "--chaos",
        action="store_true",
        help="drive the representative live lifecycle schedule "
        "(crash-restart + join + leave)",
    )
    soak_parser.add_argument(
        "--trace",
        default="soak-trace.jsonl",
        metavar="PATH",
        help="JSONL trace stream (default soak-trace.jsonl; rotated, see "
        "--rotate-mb)",
    )
    soak_parser.add_argument(
        "--trace-level",
        choices=("protocol", "transport", "kernel"),
        default="transport",
        help="trace detail level (default transport, which the online "
        "stale-delivery check needs)",
    )
    soak_parser.add_argument(
        "--rotate-mb",
        type=float,
        default=64.0,
        metavar="MB",
        help="rotate the trace file at this size (default 64 MB)",
    )
    soak_parser.add_argument(
        "--seed-violation",
        action="store_true",
        help="self-test: forge a duplicate job.finished mid-run and "
        "verify the online checker flags it (the run exits nonzero)",
    )
    soak_parser.add_argument(
        "--port-base",
        type=int,
        default=None,
        metavar="PORT",
        help="bind node i's endpoint to PORT+i instead of ephemeral "
        "ports (lets 'repro top' and external scrapers attach)",
    )
    soak_parser.add_argument(
        "--top",
        action="store_true",
        help="render the streaming fleet dashboard while the soak runs",
    )
    soak_parser.add_argument(
        "--procs",
        action="store_true",
        help="soak the process-isolated overlay: per-node OS processes, "
        "supervisor crash recovery, durable journals; --chaos then "
        "means real SIGKILL/SIGSTOP process chaos and --seed-violation "
        "forges a cross-process duplicate",
    )
    soak_parser.add_argument(
        "--group-size",
        type=int,
        default=1,
        metavar="N",
        help="with --procs: nodes per worker process (default 1)",
    )
    soak_parser.add_argument(
        "--run-dir",
        default=None,
        metavar="DIR",
        help="with --procs: scratch directory for address files, "
        "journals and per-process traces (default: fresh temp dir)",
    )
    soak_parser.set_defaults(func=_cmd_soak)

    figure_parser = sub.add_parser("figure", help="regenerate a paper figure")
    figure_parser.add_argument("figure", choices=sorted(_FIGURES))
    _add_common(figure_parser)
    figure_parser.set_defaults(func=_cmd_figure)

    baseline_parser = sub.add_parser(
        "baseline", help="run a comparison meta-scheduler"
    )
    baseline_parser.add_argument("baseline", choices=BASELINE_NAMES)
    _add_common(baseline_parser)
    _add_progress(baseline_parser)
    baseline_parser.set_defaults(func=_cmd_baseline)

    top_parser = sub.add_parser(
        "top",
        help="attach to a running live overlay and stream the fleet "
        "dashboard (scrapes every node's /metrics)",
    )
    top_parser.add_argument(
        "--port-base",
        type=int,
        default=18200,
        metavar="PORT",
        help="first node port of the overlay to watch (node i = PORT+i; "
        "match the serve/soak --port-base, default 18200)",
    )
    top_parser.add_argument(
        "--nodes", type=int, default=8, help="how many ports to scrape"
    )
    top_parser.add_argument("--host", default="127.0.0.1")
    top_parser.add_argument(
        "--targets",
        default=None,
        metavar="HOST:PORT,...",
        help="explicit scrape targets (overrides --port-base/--nodes)",
    )
    top_parser.add_argument(
        "--interval",
        type=float,
        default=1.0,
        metavar="SECONDS",
        help="wall seconds between scrape rounds (default 1)",
    )
    top_parser.add_argument(
        "--iterations",
        type=int,
        default=0,
        metavar="N",
        help="stop after N rounds (default 0 = run until interrupted)",
    )
    top_parser.set_defaults(func=_cmd_top)

    explain_parser = sub.add_parser(
        "explain-job",
        help="reconstruct one job's timeline from a JSONL trace "
        "(rotated soak traces are stitched back together)",
    )
    explain_parser.add_argument("trace", help="trace file from 'run --trace'")
    explain_parser.add_argument("job_id", type=int)
    explain_parser.add_argument(
        "--json",
        action="store_true",
        help="emit the timeline as JSON instead of text",
    )
    explain_parser.set_defaults(func=_cmd_explain_job)

    run_file_parser = sub.add_parser(
        "run-file", help="simulate a custom scenario from a JSON file"
    )
    run_file_parser.add_argument("path")
    _add_common(run_file_parser)
    run_file_parser.set_defaults(func=_cmd_run_file)

    sweep_parser = sub.add_parser(
        "sweep", help="sensitivity sweep over one scenario/config field"
    )
    sweep_parser.add_argument("scenario", choices=sorted(SCENARIOS))
    sweep_parser.add_argument(
        "target", choices=("scenario", "config"),
        help="whether the field lives on the Scenario or the AriaConfig",
    )
    sweep_parser.add_argument("field")
    sweep_parser.add_argument("values", nargs="+")
    _add_common(sweep_parser)
    sweep_parser.set_defaults(func=_cmd_sweep)

    trace_parser = sub.add_parser(
        "trace", help="generate a workload trace file"
    )
    trace_parser.add_argument("path")
    trace_parser.add_argument("--jobs", type=int, default=1000)
    trace_parser.add_argument("--interval", type=float, default=10.0)
    trace_parser.add_argument(
        "--deadline-slack",
        type=float,
        default=None,
        help="mean deadline slack in hours (omit for batch jobs)",
    )
    trace_parser.add_argument("--seed-base", type=int, default=0)
    trace_parser.set_defaults(func=_cmd_trace)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:
        # Output piped into a pager/head that exited early — not an error.
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
