"""Legacy setup shim.

The execution environment has no network access and no ``wheel`` package, so
PEP 517/660 editable installs fail; ``pip install -e . --no-use-pep517
--no-build-isolation`` with this shim works everywhere.
"""

from setuptools import setup

setup()
