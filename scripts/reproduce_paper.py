#!/usr/bin/env python
"""Full reproduction driver: every figure of the paper at a chosen scale.

Renders Figures 1-10 plus the ablations and writes them under
``benchmarks/results/<scale>/``.  At paper scale with 3 seeds this takes
roughly 15-20 minutes on a laptop.

Usage::

    python scripts/reproduce_paper.py [tiny|small|medium|paper] [seed_count]
"""

import sys
import time
from pathlib import Path

from repro.experiments import figures
from repro.experiments.scale import ScenarioScale

FIGURES = [
    ("fig1_completed_jobs", figures.fig1_completed_jobs),
    ("fig2_completion_time", figures.fig2_completion_time),
    ("fig3_idle_nodes", figures.fig3_idle_nodes),
    ("fig4_deadlines", figures.fig4_deadlines),
    ("fig5_expanding", figures.fig5_expanding),
    ("fig6_load_idle", figures.fig6_load_idle),
    ("fig7_load_completion", figures.fig7_load_completion),
    ("fig8_resched_policies", figures.fig8_resched_policies),
    ("fig9_ert_accuracy", figures.fig9_ert_accuracy),
    ("fig10_traffic", figures.fig10_traffic),
]


def main() -> None:
    scale_name = sys.argv[1] if len(sys.argv) > 1 else "paper"
    seed_count = int(sys.argv[2]) if len(sys.argv) > 2 else 3
    scale = {
        "tiny": ScenarioScale.tiny,
        "small": ScenarioScale.small,
        "medium": ScenarioScale.medium,
        "paper": ScenarioScale.paper,
    }[scale_name]()
    seeds = tuple(range(seed_count))
    out_dir = (
        Path(__file__).resolve().parent.parent
        / "benchmarks"
        / "results"
        / scale_name
    )
    out_dir.mkdir(parents=True, exist_ok=True)
    print(
        f"scale={scale_name} ({scale.nodes} nodes, {scale.jobs} jobs), "
        f"seeds={seeds}",
        flush=True,
    )
    start = time.time()
    for name, builder in FIGURES:
        t0 = time.time()
        fig = builder(scale, seeds)
        text = fig.render()
        if hasattr(fig, "series"):  # zoom time-series figures into the load
            text += (
                "\n\nZoom (loaded phase, first quarter of the run):\n\n"
                + fig.render(points=12, until=scale.duration * 0.25)
            )
        (out_dir / f"{name}.txt").write_text(text + "\n")
        print(f"[{time.time() - start:7.1f}s] {name} ({time.time() - t0:.1f}s)")
        print(text, flush=True)
        print(flush=True)
    print(f"done in {time.time() - start:.1f}s; results in {out_dir}")


if __name__ == "__main__":
    main()
