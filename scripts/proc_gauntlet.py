"""The multi-process chaos gauntlet: SIGKILL + fail-slow + wire faults.

Runs the process-isolated overlay (one OS process per node under the
supervisor) across several seeds, each run under the full chaos stack:

* a SIGKILL crash-stop and a SIGSTOP/SIGCONT stall
  (``ProcessFailureSchedule.chaos``);
* the representative everything-on wire-fault plan
  (``FaultPlan.chaos``: loss, bursts, duplication, delay spikes);
* per-process rotated traces merged post-run and streamed through the
  invariant checker.

The gauntlet passes only if every seed holds **zero invariant
violations** over the merged cross-process trace AND at least one seed
demonstrates durable recovery — a respawned worker announcing
``journal.recovered`` with an incarnation past boot 0.

Usage::

    PYTHONPATH=src python scripts/proc_gauntlet.py
    PYTHONPATH=src python scripts/proc_gauntlet.py --seeds 5 --nodes 5 \
        --wall-seconds 20
"""

from __future__ import annotations

import argparse
import sys
import tempfile
import time

from repro.experiments import FaultPlan
from repro.runtime import ProcRunConfig, ProcessFailureSchedule, run_procs


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--seeds", type=int, default=5)
    parser.add_argument("--nodes", type=int, default=5)
    parser.add_argument("--jobs", type=int, default=8)
    parser.add_argument("--wall-seconds", type=float, default=20.0)
    parser.add_argument("--time-scale", type=float, default=600.0)
    parser.add_argument("--scenario", default="iMixed")
    args = parser.parse_args(argv)

    duration = args.wall_seconds * args.time_scale
    failed = []
    recovered_seeds = []
    for seed in range(args.seeds):
        run_dir = tempfile.mkdtemp(prefix=f"aria-gauntlet-s{seed}-")
        config = ProcRunConfig(
            scenario_name=args.scenario,
            nodes=args.nodes,
            jobs=args.jobs,
            seed=seed,
            time_scale=args.time_scale,
            duration=duration,
            run_dir=run_dir,
            backoff_base=0.2,
            failure_schedule=ProcessFailureSchedule.chaos(args.wall_seconds),
            fault_plan=FaultPlan.chaos(duration),
        )
        started = time.monotonic()
        result = run_procs(config)
        elapsed = time.monotonic() - started
        reborn = any(
            event.get("incarnation", 0) >= 1 for event in result.recovered
        )
        if reborn:
            recovered_seeds.append(seed)
        status = "FAIL" if result.violations else "ok"
        print(
            f"seed {seed}: {status}  "
            f"jobs {result.completed}/{result.submitted}  "
            f"events {result.checked_events}  "
            f"restarts {result.supervisor['restarts']}  "
            f"recoveries {len(result.recovered)}"
            f"{' (reborn)' if reborn else ''}  "
            f"torn {result.torn_lines}  [{elapsed:.1f}s]"
        )
        for violation in result.violations:
            print(f"  VIOLATION: {violation}")
        if result.violations:
            failed.append(seed)

    print()
    if failed:
        print(f"gauntlet FAILED: violations on seeds {failed}")
        return 1
    if not recovered_seeds:
        print(
            "gauntlet FAILED: no seed demonstrated journal recovery past "
            "boot 0 — the SIGKILL arm did not exercise durable restart"
        )
        return 1
    print(
        f"gauntlet passed: {args.seeds} seeds, zero invariant violations, "
        f"journal recovery demonstrated on seeds {recovered_seeds}"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
