"""Hot-path benchmark: events/sec and wall-clock of single simulation runs.

While ``bench_engine.py`` measures *batch* throughput (process pool, result
cache), this script measures the per-event hot path of one simulated run —
the kernel dispatch loop, message transport, flooding and cost evaluation.
It runs one scenario at three scales (tiny / small / medium), reports
executed events, wall-clock seconds and events/sec, and compares against
the records stored in ``BENCH_hotpath.json`` so the repository keeps a
measured performance trajectory across PRs.

Usage::

    PYTHONPATH=src python scripts/bench_hotpath.py                # measure + compare
    PYTHONPATH=src python scripts/bench_hotpath.py --quick        # tiny+small, 1 rep
    PYTHONPATH=src python scripts/bench_hotpath.py --record LABEL # append a record
    PYTHONPATH=src python scripts/bench_hotpath.py --gate 50      # fail if < 50% of
                                                                  # the latest record
    PYTHONPATH=src python scripts/bench_hotpath.py --against "pre-PR2 baseline"
    PYTHONPATH=src python scripts/bench_hotpath.py --trace-overhead small
                                                  # trace-off vs trace-on ev/s

Notes
-----
* events/sec is ``Simulator.executed_events / wall_s`` for a full run of the
  scenario (default ``iMixed`` — the INFORM-heavy rescheduling scenario that
  stresses every hot subsystem).  Each scale runs ``--reps`` times and keeps
  the best (lowest-noise) wall clock.
* absolute events/sec is machine-dependent; comparisons are only meaningful
  against records measured on comparable hardware, which is why the CI gate
  is deliberately generous (50 %).
"""

from __future__ import annotations

import argparse
import json
import os
import resource
import sys
import time

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
)

from repro.experiments import ScenarioScale, run  # noqa: E402

BENCH_FILE = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "BENCH_hotpath.json",
)

def _large_smoke() -> ScenarioScale:
    """Bench-only scale exercising the large-grid build path cheaply.

    2 500 nodes crosses the ``_LARGE_GRID_NODES`` threshold — direct
    chordal-ring overlay, capped REQUEST floods, small seen caches,
    gc-frozen run — but with a short horizon so a run is ~2M events
    (seconds, not minutes): fast enough for CI to gate on.
    """
    return ScenarioScale(
        nodes=2_500, jobs=1_500, duration=30_000.0, sample_interval=300.0
    )


_SCALES = {
    "tiny": ScenarioScale.tiny,
    "small": ScenarioScale.small,
    "medium": ScenarioScale.medium,
    "paper": ScenarioScale.paper,
    "large-smoke": _large_smoke,
    "large": ScenarioScale.large,
    "huge": ScenarioScale.huge,
}

#: Scales that take minutes per run: always measured with a single rep.
_SLOW_SCALES = {"paper", "large", "huge"}


def _peak_rss_mb() -> float:
    """Process peak RSS in MiB (``ru_maxrss`` is KiB on Linux)."""
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0


def measure_scale(scenario: str, scale_name: str, seed: int, reps: int) -> dict:
    """Best-of-``reps`` measurement of one scenario run at one scale.

    ``peak_rss_mb`` is the process high-water mark after the scale's runs;
    measuring scales in ascending size keeps the attribution honest (each
    bigger scale sets a new high-water mark of its own).
    """
    scale = _SCALES[scale_name]()
    if scale_name in _SLOW_SCALES:
        reps = 1
    best = None
    events = 0
    for _ in range(max(1, reps)):
        start = time.perf_counter()
        result = run(scenario, scale, seed=seed)
        wall = time.perf_counter() - start
        events = result.executed_events
        if best is None or wall < best:
            best = wall
    return {
        "executed_events": events,
        "wall_s": round(best, 4),
        "events_per_sec": round(events / best, 1),
        "peak_rss_mb": round(_peak_rss_mb(), 1),
    }


def measure_trace_overhead(
    scenario: str, scale_name: str, seed: int, reps: int
) -> dict:
    """Best-of-``reps`` events/sec with tracing off vs protocol-level on.

    The traced arm records into a memory sink with telemetry disabled, so
    the measured difference is the trace bus itself (emit filtering, dict
    builds, ring-buffer appends) — not file IO.  ``overhead_pct`` is how
    much events/sec the traced run gives up against the untraced one.
    """
    from repro.obs import TraceConfig

    scale = _SCALES[scale_name]()
    if scale_name in _SLOW_SCALES:
        reps = 1
    arms = (
        ("off", None),
        (
            "protocol",
            TraceConfig(level="protocol", sink="memory", telemetry=False),
        ),
    )
    results: dict = {}
    for mode, trace in arms:
        best = None
        events = 0
        for _ in range(max(1, reps)):
            start = time.perf_counter()
            result = run(scenario, scale, seed=seed, trace=trace)
            wall = time.perf_counter() - start
            events = result.executed_events
            if best is None or wall < best:
                best = wall
        results[mode] = {
            "executed_events": events,
            "wall_s": round(best, 4),
            "events_per_sec": round(events / best, 1),
        }
    off = results["off"]["events_per_sec"]
    on = results["protocol"]["events_per_sec"]
    results["overhead_pct"] = round((off - on) / off * 100.0, 2)
    return results


def load_records(path: str = BENCH_FILE) -> dict:
    """The benchmark file contents (empty skeleton when absent)."""
    try:
        with open(path) as handle:
            return json.load(handle)
    except (OSError, ValueError):
        return {"scenario": None, "records": []}


def find_record(document: dict, label: str | None) -> dict | None:
    """The record named ``label``, or the most recent one when ``None``."""
    records = document.get("records") or []
    if not records:
        return None
    if label is None:
        return records[-1]
    for record in records:
        if record.get("label") == label:
            return record
    return None


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scenario", default="iMixed")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--reps", type=int, default=3)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="tiny+small only, single rep (CI smoke mode)",
    )
    parser.add_argument(
        "--record",
        metavar="LABEL",
        default=None,
        help="append this measurement to BENCH_hotpath.json under LABEL",
    )
    parser.add_argument(
        "--against",
        metavar="LABEL",
        default=None,
        help="compare against this stored record (default: most recent)",
    )
    parser.add_argument(
        "--gate",
        type=float,
        default=None,
        metavar="PCT",
        help="exit 1 if any scale's events/sec falls below PCT%% of the "
        "compared record (e.g. 50)",
    )
    parser.add_argument("--json", default=None, help="also write results to this path")
    parser.add_argument(
        "--trace-overhead",
        nargs="?",
        const="small",
        default=None,
        metavar="SCALE",
        help="also measure trace-off vs trace-on (protocol, memory sink) "
        "events/sec at SCALE (default small) and store it with the record",
    )
    parser.add_argument(
        "--scales",
        default=None,
        metavar="NAMES",
        help="comma-separated scales to measure (default: tiny,small,medium; "
        f"known: {','.join(_SCALES)})",
    )
    args = parser.parse_args(argv)

    if args.scales:
        scales = [name.strip() for name in args.scales.split(",") if name.strip()]
        unknown = [name for name in scales if name not in _SCALES]
        if unknown:
            parser.error(f"unknown scales {unknown}; known: {sorted(_SCALES)}")
    else:
        scales = ["tiny", "small"] if args.quick else ["tiny", "small", "medium"]
    reps = 1 if args.quick else args.reps

    print(
        f"hot-path benchmark: {args.scenario} seed={args.seed} "
        f"reps={reps} scales={scales}"
    )
    from repro.accel import describe

    print(f"  {describe()}")
    current = {}
    for scale_name in scales:
        result = measure_scale(args.scenario, scale_name, args.seed, reps)
        current[scale_name] = result
        print(
            f"  {scale_name:<8s} {result['executed_events']:>10,d} events  "
            f"{result['wall_s']:>8.3f} s  {result['events_per_sec']:>12,.0f} ev/s  "
            f"{result['peak_rss_mb']:>8,.0f} MB peak"
        )

    trace_overhead = None
    if args.trace_overhead:
        if args.trace_overhead not in _SCALES:
            parser.error(
                f"unknown scale {args.trace_overhead!r}; "
                f"known: {sorted(_SCALES)}"
            )
        trace_overhead = measure_trace_overhead(
            args.scenario, args.trace_overhead, args.seed, reps
        )
        off = trace_overhead["off"]
        on = trace_overhead["protocol"]
        print(
            f"\ntrace overhead @ {args.trace_overhead}: "
            f"off {off['events_per_sec']:,.0f} ev/s, "
            f"protocol {on['events_per_sec']:,.0f} ev/s "
            f"({trace_overhead['overhead_pct']:+.1f}%)"
        )

    document = load_records()
    if document.get("scenario") is None:
        document["scenario"] = args.scenario
    reference = find_record(document, args.against)

    failed = False
    if reference is not None:
        print(f"\nvs record {reference['label']!r}:")
        for scale_name in scales:
            then = reference.get("scales", {}).get(scale_name)
            if then is None:
                continue
            ratio = current[scale_name]["events_per_sec"] / then["events_per_sec"]
            flag = ""
            if args.gate is not None and ratio * 100.0 < args.gate:
                flag = f"  << below {args.gate:.0f}% gate"
                failed = True
            print(
                f"  {scale_name:<8s} {then['events_per_sec']:>12,.0f} -> "
                f"{current[scale_name]['events_per_sec']:>12,.0f} ev/s "
                f"({ratio:5.2f}x){flag}"
            )
    else:
        print("\nno stored record to compare against")

    if args.record:
        merged = None
        for record in document.get("records") or []:
            if record.get("label") == args.record:
                merged = record
                break
        if merged is None:
            merged = {"label": args.record, "seed": args.seed, "scales": current}
            document.setdefault("records", []).append(merged)
        else:
            # Re-recording under an existing label merges scales, so slow
            # scales (large/huge) can be appended by a separate invocation.
            merged.setdefault("scales", {}).update(current)
        if trace_overhead is not None:
            merged.setdefault("trace_overhead", {})[
                args.trace_overhead
            ] = trace_overhead
        with open(BENCH_FILE, "w") as handle:
            json.dump(document, handle, indent=2)
            handle.write("\n")
        print(f"\nrecorded {args.record!r} in {BENCH_FILE}")

    if args.json:
        payload = {"scenario": args.scenario, "scales": current}
        if trace_overhead is not None:
            payload["trace_overhead"] = {args.trace_overhead: trace_overhead}
        with open(args.json, "w") as handle:
            json.dump(payload, handle, indent=2)
            handle.write("\n")

    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
