"""Validate a recorded JSONL trace against the published event schema.

Every line of the file must be a JSON object that passes
``repro.obs.validate_event`` — known event name, ``t``/``ev`` present,
every required field for that event, no fields outside the schema.  The
CI trace-smoke job runs this over a freshly traced faulted run, which is
what makes ``repro.obs.EVENTS`` a contract rather than documentation.

Usage::

    PYTHONPATH=src python scripts/validate_trace.py run.jsonl
    PYTHONPATH=src python scripts/validate_trace.py run.jsonl --max-problems 5

Exits nonzero if any event fails validation (or the file is empty).
"""

from __future__ import annotations

import argparse
import os
import sys

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
)

from repro.obs import load_trace, validate_event  # noqa: E402


def main(argv=None) -> int:
    """Validate the trace file; returns the process exit code."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("path", help="JSONL trace file to validate")
    parser.add_argument(
        "--max-problems",
        type=int,
        default=20,
        help="stop printing after this many problems (still counts all)",
    )
    args = parser.parse_args(argv)

    events = load_trace(args.path)
    if not events:
        print(f"{args.path}: no events", file=sys.stderr)
        return 1

    problem_count = 0
    counts: dict = {}
    for line_number, event in enumerate(events, start=1):
        problems = validate_event(event)
        for problem in problems:
            problem_count += 1
            if problem_count <= args.max_problems:
                print(f"{args.path}:{line_number}: {problem}", file=sys.stderr)
        name = event.get("ev", "<missing>")
        counts[name] = counts.get(name, 0) + 1

    width = max(len(name) for name in counts)
    for name in sorted(counts):
        print(f"  {name:<{width}}  {counts[name]}")
    print(f"{args.path}: {len(events)} events, {problem_count} problem(s)")
    return 1 if problem_count else 0


if __name__ == "__main__":
    sys.exit(main())
