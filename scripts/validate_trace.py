"""Validate a recorded JSONL trace against the published event schema.

Thin wrapper over :mod:`repro.obs.validate` (the importable core), kept
so existing CI invocations and docs keep working::

    PYTHONPATH=src python scripts/validate_trace.py run.jsonl
    PYTHONPATH=src python scripts/validate_trace.py run.jsonl --max-problems 5
    PYTHONPATH=src python scripts/validate_trace.py soak.jsonl --rotated

Exits nonzero if any event fails validation (or the file is empty).
"""

from __future__ import annotations

import os
import sys

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
)

from repro.obs.validate import main  # noqa: E402

if __name__ == "__main__":
    sys.exit(main())
