"""Demonstrate the batch engine's speedup, determinism, and cache.

Runs the same 8-seed batch of a Table II scenario three ways and reports:

1. serial wall-clock time (cold, cache disabled);
2. parallel wall-clock time with ``--parallel`` workers (cold, cache
   disabled) plus the speedup — on a 4-core machine expect >= 2.5x with
   the default 4 workers;
3. cold vs warm cache timings against a throwaway cache directory, with
   the hit ratio of the warm pass.

It also asserts the determinism guarantee: the parallel batch's
``RunSummary.to_dict()`` payloads are bit-identical to the serial
batch's.

Usage::

    PYTHONPATH=src python scripts/bench_engine.py
    PYTHONPATH=src python scripts/bench_engine.py \
        --scenario iMixed --scale small --seeds 8 --parallel 4
"""

from __future__ import annotations

import argparse
import os
import sys
import tempfile
import time

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
)

from repro.experiments import ResultCache, ScenarioScale, run_batch  # noqa: E402

_SCALES = {
    "tiny": ScenarioScale.tiny,
    "small": ScenarioScale.small,
    "medium": ScenarioScale.medium,
    "paper": ScenarioScale.paper,
}


def _timed(label, fn):
    start = time.perf_counter()
    result = fn()
    elapsed = time.perf_counter() - start
    print(f"  {label:<28s} {elapsed:8.2f} s")
    return result, elapsed


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scenario", default="iMixed")
    parser.add_argument("--scale", choices=sorted(_SCALES), default="small")
    parser.add_argument("--seeds", type=int, default=8)
    parser.add_argument("--parallel", type=int, default=4)
    args = parser.parse_args(argv)

    scale = _SCALES[args.scale]()
    seeds = tuple(range(args.seeds))
    cores = os.cpu_count() or 1
    print(
        f"{args.scenario} @ {args.scale} ({scale.nodes} nodes, "
        f"{scale.jobs} jobs), seeds {seeds}, "
        f"{args.parallel} workers on {cores} cores\n"
    )

    print("cold, cache disabled:")
    serial, t_serial = _timed(
        "serial",
        lambda: run_batch(
            args.scenario, scale, seeds=seeds, parallel=1, cache=False
        ),
    )
    parallel, t_parallel = _timed(
        f"parallel={args.parallel}",
        lambda: run_batch(
            args.scenario,
            scale,
            seeds=seeds,
            parallel=args.parallel,
            cache=False,
        ),
    )
    identical = [s.to_dict() for s in serial] == [
        s.to_dict() for s in parallel
    ]
    assert identical, "parallel batch diverged from serial batch"
    speedup = t_serial / t_parallel if t_parallel else float("inf")
    print(f"  bit-identical summaries: yes   speedup: {speedup:.2f}x")
    if cores >= 4 and args.parallel >= 4 and speedup < 2.5:
        print("  WARNING: expected >= 2.5x on a 4-core machine")

    with tempfile.TemporaryDirectory(prefix="aria-bench-cache-") as tmp:
        cache = ResultCache(tmp)
        print("\nresult cache:")
        _timed(
            "cold (populate)",
            lambda: run_batch(
                args.scenario,
                scale,
                seeds=seeds,
                parallel=args.parallel,
                cache=cache,
            ),
        )
        cached, _ = _timed(
            "warm (served from cache)",
            lambda: run_batch(
                args.scenario, scale, seeds=seeds, parallel=1, cache=cache
            ),
        )
        warm_hits = cache.hits
        hit_ratio = warm_hits / len(seeds)
        print(f"  warm hit ratio: {hit_ratio:.0%} ({warm_hits}/{len(seeds)})")
        assert hit_ratio >= 0.9, "warm pass should be >= 90% cache-served"
        assert [s.to_dict() for s in cached] == [
            s.to_dict() for s in serial
        ], "cached summaries diverged"

    print("\nOK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
