"""Ablation (the paper's future work, §VI): overlay-topology sensitivity.

Runs the iMixed workload on the BLATANT overlay and on three static
topologies (random-regular, small-world, scale-free) plus the pathological
ring, quantifying how much the meta-scheduling performance depends on the
overlay — the exact question the paper defers to future work.
"""

import dataclasses
import statistics

from repro.experiments import get_scenario, render_table, run_batch
from repro.experiments.report import fmt_hours

OVERLAYS = ("blatant", "random_regular", "small_world", "scale_free", "ring")


def test_ablation_overlays(benchmark, aria_scale, aria_seeds, report):
    base = get_scenario("iMixed")

    def build():
        rows = []
        for overlay in OVERLAYS:
            scenario = dataclasses.replace(
                base, name=f"iMixed@{overlay}", overlay=overlay
            )
            runs = run_batch(scenario, aria_scale, seeds=aria_seeds)
            rows.append(
                (
                    overlay,
                    statistics.fmean(
                        r.average_completion_time for r in runs
                    ),
                    statistics.fmean(r.unschedulable_jobs for r in runs),
                    statistics.fmean(r.reschedules for r in runs),
                )
            )
        return rows

    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    table = render_table(
        ["overlay", "completion", "unreached jobs", "reschedules"],
        [
            [name, fmt_hours(ct), f"{unsched:.1f}", f"{resched:.0f}"]
            for name, ct, unsched, resched in rows
        ],
    )
    report("Ablation: overlay-topology sensitivity (iMixed)\n\n" + table)

    by_name = {row[0]: row for row in rows}
    # Bounded-path-length overlays all work; the ring's huge diameter makes
    # REQUEST floods miss most of the grid (many unreached jobs).
    assert by_name["ring"][2] >= by_name["blatant"][2]
    for overlay in ("random_regular", "small_world", "scale_free"):
        assert by_name[overlay][1] <= by_name["blatant"][1] * 1.5
