"""Figure 7: job completion time under load."""

from repro.experiments.figures import fig7_load_completion, scenario_summary


def test_fig7_load_completion(benchmark, aria_scale, aria_seeds, report):
    fig = benchmark.pedantic(
        fig7_load_completion,
        args=(aria_scale, aria_seeds),
        rounds=1,
        iterations=1,
    )
    report(fig.render())
    # Shape: iHighLoad is comparable to LowLoad despite 4x the submission
    # rate (the paper's headline scalability result).
    ihigh = scenario_summary(
        "iHighLoad", aria_scale, aria_seeds
    ).average_completion_time
    low = scenario_summary(
        "LowLoad", aria_scale, aria_seeds
    ).average_completion_time
    assert ihigh <= 1.5 * low
