"""Figure 3: idle nodes over time (six policy scenarios)."""

from repro.experiments.figures import fig3_idle_nodes, scenario_summary
from repro.types import HOUR


def test_fig3_idle_nodes(benchmark, aria_scale, aria_seeds, report):
    fig = benchmark.pedantic(
        fig3_idle_nodes,
        args=(aria_scale, aria_seeds),
        rounds=1,
        iterations=1,
    )
    report(
        fig.render(points=12)
        + "\n\nZoom (loaded phase, first quarter of the run):\n\n"
        + fig.render(points=12, until=aria_scale.duration * 0.25)
    )
    # Shape: iMixed keeps fewer nodes idle during the loaded phase.
    start, end = scenario_summary(
        "Mixed", aria_scale, aria_seeds
    ).submission_window

    def loaded_mean(name):
        series = fig.series[name]
        values = [v for t, v in series if start <= t <= end + 2 * HOUR]
        return sum(values) / len(values)

    assert loaded_mean("iMixed") < loaded_mean("Mixed")
