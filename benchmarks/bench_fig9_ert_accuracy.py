"""Figure 9: sensitivity of the completion time to ERT accuracy."""

from repro.experiments.figures import fig9_ert_accuracy, scenario_summary


def test_fig9_ert_accuracy(benchmark, aria_scale, aria_seeds, report):
    fig = benchmark.pedantic(
        fig9_ert_accuracy,
        args=(aria_scale, aria_seeds),
        rounds=1,
        iterations=1,
    )
    report(fig.render())
    # Shape: homogeneous results; even always-optimistic estimates do not
    # excessively worsen efficiency.
    times = [
        scenario_summary(n, aria_scale, aria_seeds).average_completion_time
        for n in ("iPrecise", "iMixed", "iAccuracy25", "iAccuracyBad")
    ]
    assert max(times) <= 1.4 * min(times)
