"""Ablation (beyond the paper): ARiA vs the related-work design space.

Same node pool and workload, five meta-schedulers: ARiA (± rescheduling),
an omniscient centralized scheduler, the multiple-simultaneous-requests
model of Subramani et al. [13], uniform random placement, and the
gossip-cached state dissemination of Erdil & Lewis [25].
"""

import statistics

from repro.experiments import render_table, run_batch
from repro.experiments.figures import scenario_summary
from repro.experiments.report import fmt_hours


def test_ablation_baselines(benchmark, aria_scale, aria_seeds, report):
    def build():
        rows = []
        for name in ("Mixed", "iMixed"):
            summary = scenario_summary(name, aria_scale, aria_seeds)
            rows.append(
                (
                    f"ARiA {name}",
                    summary.average_completion_time,
                    summary.average_waiting_time,
                    0,
                )
            )
        for baseline in ("centralized", "multirequest", "random", "gossip"):
            runs = run_batch(baseline, aria_scale, seeds=aria_seeds)
            rows.append(
                (
                    baseline,
                    statistics.fmean(
                        r.average_completion_time for r in runs
                    ),
                    statistics.fmean(r.average_waiting_time for r in runs),
                    statistics.fmean(
                        r.extras.get("revoked_copies", 0.0) for r in runs
                    ),
                )
            )
        return rows

    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    table = render_table(
        ["scheduler", "completion", "waiting", "revoked copies"],
        [
            [name, fmt_hours(ct), fmt_hours(wt), f"{rev:.0f}"]
            for name, ct, wt, rev in rows
        ],
    )
    report("Ablation: ARiA vs baseline meta-schedulers\n\n" + table)

    by_name = {row[0]: row for row in rows}
    # Sanity of the design space: the omniscient centralized scheduler is
    # at least as good as plain ARiA; random placement is the worst.
    assert by_name["centralized"][1] <= by_name["ARiA Mixed"][1] * 1.05
    assert by_name["random"][1] == max(row[1] for row in rows)
    # Dynamic rescheduling closes most of the gap to the centralized bound.
    assert by_name["ARiA iMixed"][1] < by_name["ARiA Mixed"][1]
    # The multirequest model wastes queue slots (the paper's critique).
    assert by_name["multirequest"][3] > 0
