"""Figure 6: idle nodes under low / normal / high load."""

from repro.experiments.figures import fig6_load_idle
from repro.types import HOUR


def test_fig6_load_idle(benchmark, aria_scale, aria_seeds, report):
    fig = benchmark.pedantic(
        fig6_load_idle,
        args=(aria_scale, aria_seeds),
        rounds=1,
        iterations=1,
    )
    report(
        fig.render(points=12)
        + "\n\nZoom (loaded phase, first quarter of the run):\n\n"
        + fig.render(points=12, until=aria_scale.duration * 0.25)
    )
    # Shape: at every load the i-variant keeps utilization higher.
    for name in ("LowLoad", "Mixed", "HighLoad"):
        start, end = fig.windows[name]

        def loaded_mean(series_name):
            values = [
                v
                for t, v in fig.series[series_name]
                if start <= t <= end + 2 * HOUR
            ]
            return sum(values) / len(values)

        assert loaded_mean(f"i{name}") < loaded_mean(name)
