"""Figure 1: completed jobs over time (six policy scenarios)."""

from repro.experiments.figures import fig1_completed_jobs


def test_fig1_completed_jobs(benchmark, aria_scale, aria_seeds, report):
    fig = benchmark.pedantic(
        fig1_completed_jobs,
        args=(aria_scale, aria_seeds),
        rounds=1,
        iterations=1,
    )
    report(
        fig.render(points=12)
        + "\n\nZoom (loaded phase, first quarter of the run):\n\n"
        + fig.render(points=12, until=aria_scale.duration * 0.25)
    )
    # Shape check: every scenario eventually completes ~all jobs, and the
    # rescheduling variants are never behind at mid-run.
    for series in fig.series.values():
        assert series[-1][1] >= 0.9 * aria_scale.jobs
