"""Figure 2: average job completion time, waiting vs execution split."""

from repro.experiments.figures import fig2_completion_time, scenario_summary


def test_fig2_completion_time(benchmark, aria_scale, aria_seeds, report):
    fig = benchmark.pedantic(
        fig2_completion_time,
        args=(aria_scale, aria_seeds),
        rounds=1,
        iterations=1,
    )
    report(fig.render())
    # Shape: rescheduling shortens SJF and Mixed completion times (§V-A).
    for name in ("SJF", "Mixed"):
        plain = scenario_summary(name, aria_scale, aria_seeds)
        resched = scenario_summary(f"i{name}", aria_scale, aria_seeds)
        assert (
            resched.average_completion_time < plain.average_completion_time
        )
