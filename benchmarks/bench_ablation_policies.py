"""Ablation (the paper's future work, §VI): additional local policies.

The paper's evaluation covers FCFS, SJF and EDF and names "priority
scheduling" among the future local policies.  This ablation runs the
standard workload over queue mixes that include the LJF, PRIORITY and
AGING extensions (all interoperable with FCFS/SJF through the shared ETTC
cost), with jobs carrying random priority levels.
"""

import dataclasses
import statistics

from repro.experiments import get_scenario, render_table, run_batch
from repro.experiments.report import fmt_hours

MIXES = {
    "FCFS+SJF (paper)": ("FCFS", "SJF"),
    "FCFS+SJF+LJF": ("FCFS", "SJF", "LJF"),
    "PRIORITY only": ("PRIORITY",),
    "AGING only": ("AGING",),
    "all batch": ("FCFS", "SJF", "LJF", "PRIORITY", "AGING"),
}


def test_ablation_policies(benchmark, aria_scale, aria_seeds, report):
    base = get_scenario("iMixed")

    def build():
        rows = []
        for label, policies in MIXES.items():
            scenario = dataclasses.replace(
                base,
                name=f"iMixed[{label}]",
                policies=policies,
                priority_levels=(0, 1, 2, 3),
            )
            runs = run_batch(scenario, aria_scale, seeds=aria_seeds)
            rows.append(
                (
                    label,
                    statistics.fmean(
                        r.average_completion_time for r in runs
                    ),
                    statistics.fmean(r.average_waiting_time for r in runs),
                    statistics.fmean(r.reschedules for r in runs),
                )
            )
        return rows

    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    table = render_table(
        ["queue mix", "completion", "waiting", "reschedules"],
        [
            [label, fmt_hours(ct), fmt_hours(wt), f"{resched:.0f}"]
            for label, ct, wt, resched in rows
        ],
    )
    report("Ablation: local-policy extensions (iMixed workload)\n\n" + table)

    times = [row[1] for row in rows]
    # The protocol is local-scheduler agnostic: every interoperable batch
    # mix lands in the same performance band.
    assert max(times) <= 1.5 * min(times)
