"""Tables I and II: protocol messages and the scenario catalog."""

from repro.core import Accept, Assign, Inform, Request
from repro.experiments import SCENARIOS, render_table
from repro.grid import Architecture, JobRequirements, OperatingSystem
from repro.net import wire_size
from repro.types import HOUR
from repro.workload import Job


def _job():
    return Job(
        job_id=1,
        requirements=JobRequirements(
            architecture=Architecture.AMD64,
            memory_gb=2,
            disk_gb=2,
            os=OperatingSystem.LINUX,
        ),
        ert=HOUR,
    )


def test_table1_protocol_messages(benchmark, report):
    """Table I: message types, fields and wire sizes."""

    def build():
        job = _job()
        messages = [
            ("REQUEST", Request(0, job, 8, (0, 1)),
             "initiator, job UUID, job profile"),
            ("ACCEPT", Accept(0, 1, 3600.0), "node, job UUID, cost"),
            ("INFORM", Inform(0, job, 3600.0, 7, (0, 2)),
             "assignee, job UUID, job profile, cost"),
            ("ASSIGN", Assign(0, job, False),
             "initiator, job UUID, job profile"),
        ]
        rows = [
            [name, fields, f"{wire_size(msg)} B"]
            for name, msg, fields in messages
        ]
        return render_table(["message", "fields (Table I)", "size"], rows)

    table = benchmark.pedantic(build, rounds=1, iterations=1)
    report("Table I: Protocol Messages and Fields\n\n" + table)
    assert "1024 B" in table and "128 B" in table


def test_table2_scenario_catalog(benchmark, report):
    """Table II: the 26 evaluation scenarios."""

    def build():
        rows = [
            [name, scenario.description]
            for name, scenario in SCENARIOS.items()
        ]
        return render_table(["scenario", "description"], rows)

    table = benchmark.pedantic(build, rounds=1, iterations=1)
    report("Table II: Summary of Evaluation Scenarios\n\n" + table)
    assert len(SCENARIOS) == 26
