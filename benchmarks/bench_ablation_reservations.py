"""Ablation (the paper's §VI future work): advance reservation + backfill.

20 % of the jobs carry an advance reservation (mean delay 2 h).  All nodes
run reservation-capable queues: either strict RESERVATION (the machine
idles while holding a reservation) or BACKFILL (the idle gap is filled
with short eligible jobs).  Backfill should recover most of the wait the
strict policy wastes.
"""

import dataclasses
import statistics

from repro.experiments import get_scenario, render_table, run_batch
from repro.experiments.report import fmt_hours
from repro.types import HOUR

MIXES = {
    "strict reservation": ("RESERVATION",),
    "backfill": ("BACKFILL",),
    "backfill+FCFS mix": ("BACKFILL", "FCFS"),
}


def test_ablation_reservations(benchmark, aria_scale, aria_seeds, report):
    # High submission rate: queues must actually back up behind held
    # machines, otherwise the meta-scheduler simply routes around them and
    # strict reservations cost nothing (a real, observable effect).
    base = get_scenario("iHighLoad")

    def build():
        rows = []
        for label, policies in MIXES.items():
            scenario = dataclasses.replace(
                base,
                name=f"iReserved[{label}]",
                policies=policies,
                reservation_probability=0.2,
                reservation_delay_mean=2 * HOUR,
            )
            runs = run_batch(scenario, aria_scale, seeds=aria_seeds)
            rows.append(
                (
                    label,
                    statistics.fmean(
                        r.average_completion_time for r in runs
                    ),
                    statistics.fmean(r.average_waiting_time for r in runs),
                    statistics.fmean(r.completed_jobs for r in runs),
                )
            )
        return rows

    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    table = render_table(
        ["queue policy", "completion", "waiting", "completed"],
        [
            [label, fmt_hours(ct), fmt_hours(wt), f"{done:.0f}"]
            for label, ct, wt, done in rows
        ],
    )
    report(
        "Ablation: advance reservations, strict vs backfill "
        "(20% reserved jobs)\n\n" + table
    )

    by_label = {row[0]: row for row in rows}
    # Backfill must not be worse than strict reservations (it only uses
    # gaps the strict policy leaves idle).
    assert (
        by_label["backfill"][1]
        <= by_label["strict reservation"][1] * 1.05
    )
