"""Figure 8: completion time across rescheduling-policy settings."""

from repro.experiments.figures import fig8_resched_policies, scenario_summary


def test_fig8_resched_policies(benchmark, aria_scale, aria_seeds, report):
    fig = benchmark.pedantic(
        fig8_resched_policies,
        args=(aria_scale, aria_seeds),
        rounds=1,
        iterations=1,
    )
    report(fig.render())
    # Shape: "minimal differences" between candidate counts and thresholds.
    times = [
        scenario_summary(n, aria_scale, aria_seeds).average_completion_time
        for n in ("iInform1", "iMixed", "iInform4", "iInform15m", "iInform30m")
    ]
    assert max(times) <= 1.3 * min(times)
