"""Sensitivity sweep (beyond the paper): the INFORM cadence curve.

The paper samples the rescheduling policy at isolated points (1/2/4
candidates, 3/15/30-minute thresholds).  This sweep traces the whole
cadence curve instead: how completion time and INFORM traffic trade off as
the advertisement period varies from 1 to 40 minutes.
"""

from repro.experiments import render_table
from repro.experiments.report import fmt_hours
from repro.experiments.sweep import sweep_config_field
from repro.types import MINUTE

INTERVALS = [1 * MINUTE, 5 * MINUTE, 10 * MINUTE, 20 * MINUTE, 40 * MINUTE]


def test_sweep_inform_cadence(benchmark, aria_scale, aria_seeds, report):
    points = benchmark.pedantic(
        sweep_config_field,
        args=("iMixed", "inform_interval", INTERVALS, aria_scale, aria_seeds),
        rounds=1,
        iterations=1,
    )
    rows = [
        [
            f"{point.value / MINUTE:.0f}m",
            fmt_hours(point.summary.average_completion_time),
            f"{point.summary.traffic_bytes.get('Inform', 0) / 1e6:.1f}",
            f"{point.summary.reschedules:.0f}",
        ]
        for point in points
    ]
    report(
        "Sweep: INFORM cadence vs completion time and overhead\n\n"
        + render_table(
            ["inform period", "completion", "Inform MB", "reschedules"], rows
        )
    )
    # Slower cadence => monotonically less INFORM traffic.
    informs = [p.summary.traffic_bytes.get("Inform", 0) for p in points]
    assert all(b <= a * 1.05 for a, b in zip(informs, informs[1:]))
    # Even the slowest cadence must beat no rescheduling at all on waiting
    # time — the paper's core effect is robust to the knob.
    from repro.experiments.figures import scenario_summary

    plain = scenario_summary("Mixed", aria_scale, aria_seeds)
    assert (
        points[-1].summary.average_waiting_time
        <= plain.average_waiting_time * 1.1
    )
