"""Figure 4: deadline scheduling performance."""

from repro.experiments.figures import fig4_deadlines, scenario_summary


def test_fig4_deadlines(benchmark, aria_scale, aria_seeds, report):
    fig = benchmark.pedantic(
        fig4_deadlines,
        args=(aria_scale, aria_seeds),
        rounds=1,
        iterations=1,
    )
    report(fig.render())
    # Shape: dynamic rescheduling reduces missed deadlines (187->4 and
    # 236->59 at paper scale).  The strict inequality needs enough jobs to
    # rise above noise; the tiny smoke scale only checks non-regression.
    ih = scenario_summary("iDeadlineH", aria_scale, aria_seeds).missed_deadlines
    h = scenario_summary("DeadlineH", aria_scale, aria_seeds).missed_deadlines
    if aria_scale.jobs >= 100:
        assert ih < h
    else:
        assert ih <= h
    assert (
        scenario_summary("iDeadline", aria_scale, aria_seeds).missed_deadlines
        <= scenario_summary("Deadline", aria_scale, aria_seeds).missed_deadlines
    )
