"""Ablation (beyond the paper): sustained membership churn.

The paper's Expanding scenarios only grow the grid once.  This benchmark
keeps the membership turning over — joins, graceful leaves and crashes —
and measures how much of the workload survives, with and without the
fail-safe extension.
"""

import statistics

from repro.experiments import ChurnPlan, render_table, run_batch


def test_ablation_churn(benchmark, aria_scale, aria_seeds, report):
    plans = {
        "join+leave": ChurnPlan(),
        "join+leave+crash": ChurnPlan(crash_weight=0.5),
        "join+leave+crash+failsafe": ChurnPlan(crash_weight=0.5),
    }

    def build():
        rows = []
        for label, plan in plans.items():
            failsafe = "failsafe" in label
            runs = run_batch(
                plan, aria_scale, seeds=aria_seeds, failsafe=failsafe
            )
            for run in runs:
                assert run.duplicate_executions == 0
            rows.append(
                (
                    label,
                    statistics.fmean(r.completed_jobs for r in runs),
                    statistics.fmean(r.incomplete_jobs for r in runs),
                    statistics.fmean(r.resubmissions for r in runs),
                )
            )
        return rows

    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    table = render_table(
        ["churn mix", "completed", "lost", "resubmissions"],
        [
            [label, f"{done:.1f}", f"{lost:.1f}", f"{resub:.1f}"]
            for label, done, lost, resub in rows
        ],
    )
    report("Ablation: sustained membership churn (iMixed workload)\n\n" + table)

    by_label = {row[0]: row for row in rows}
    # Graceful-only churn loses nothing; crashes lose jobs; the fail-safe
    # recovers most of them.
    assert by_label["join+leave"][2] == 0
    assert (
        by_label["join+leave+crash+failsafe"][2]
        <= by_label["join+leave+crash"][2]
    )
