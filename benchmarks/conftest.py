"""Shared benchmark fixtures.

Every benchmark regenerates one of the paper's tables or figures and both
prints it (visible with ``pytest benchmarks/ --benchmark-only -s``) and
saves it under ``benchmarks/results/``.

Environment knobs:

* ``ARIA_BENCH_SCALE`` — ``tiny`` / ``small`` (default) / ``medium`` /
  ``paper``.  ``paper`` runs the full 500-node, 1000-job setup.
* ``ARIA_BENCH_SEEDS`` — number of seeds to average over (default 2;
  the paper uses 10 runs per scenario).
* ``ARIA_PARALLEL`` — worker processes per seed batch (``0`` = all
  cores); honored by the batch engine every benchmark now runs through.
* ``ARIA_CACHE_DIR`` — the engine's on-disk result cache.  Repeat
  benchmark sessions at the same scale/seeds are served from cache, and
  figures that share scenario sets (e.g. Figures 1-3) simulate each
  scenario once.
"""

import os
from pathlib import Path

import pytest

from repro.experiments import bench_scale_from_env

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def aria_scale():
    return bench_scale_from_env()


@pytest.fixture(scope="session")
def aria_seeds():
    count = int(os.environ.get("ARIA_BENCH_SEEDS", "2"))
    return tuple(range(count))


@pytest.fixture
def report(request):
    """Print a rendered figure and persist it to benchmarks/results/."""

    def _report(text: str) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        name = request.node.name.replace("/", "_")
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
        print("\n" + text)

    return _report
