"""Micro-benchmarks of the simulation substrate itself.

Unlike the figure benchmarks (one long simulation, pedantic single round),
these measure the hot primitives with pytest-benchmark's full statistical
machinery: kernel event throughput, overlay BFS, cost quoting, and a
complete tiny scenario run.
"""

import random

from repro.overlay import average_path_length, build_blatant_overlay
from repro.scheduling import SJFScheduler
from repro.sim import Simulator
from repro.types import HOUR


def test_kernel_event_throughput(benchmark):
    """Schedule and execute 10k events."""

    def run():
        sim = Simulator(seed=0)
        for i in range(10_000):
            sim.call_at(float(i), lambda: None)
        sim.run()
        return sim.executed_events

    assert benchmark(run) == 10_000


def test_overlay_bfs_cost(benchmark):
    """Average path length (24-source BFS) on a 200-node BLATANT overlay."""
    graph = build_blatant_overlay(200, random.Random(0))
    rng = random.Random(1)
    result = benchmark(average_path_length, graph, rng, 24)
    assert 0 < result < 20


def test_cost_quote_throughput(benchmark):
    """1000 ETTC quotes against a 50-job SJF queue."""
    from repro.grid import JobRequirements, Architecture, OperatingSystem
    from repro.workload import Job

    requirements = JobRequirements(
        architecture=Architecture.AMD64,
        memory_gb=2,
        disk_gb=2,
        os=OperatingSystem.LINUX,
    )
    scheduler = SJFScheduler()
    for job_id in range(1, 51):
        ert = HOUR + job_id * 60.0
        scheduler.enqueue(
            Job(job_id=job_id, requirements=requirements, ert=ert),
            ert,
            now=0.0,
        )
    probe = Job(job_id=999, requirements=requirements, ert=2 * HOUR)

    def quote():
        total = 0.0
        for _ in range(1000):
            total += scheduler.cost_of(probe, 2 * HOUR, 0.0, 0.0)
        return total

    assert benchmark(quote) > 0


def test_tiny_scenario_end_to_end(benchmark):
    """A complete tiny iMixed run (16 nodes, 30 jobs, 60k simulated s)."""
    from repro.experiments import ScenarioScale, get_scenario, run

    scale = ScenarioScale.tiny()
    scenario = get_scenario("iMixed")

    result = benchmark.pedantic(
        run, args=(scenario, scale), kwargs={"seed": 0}, rounds=3,
        iterations=1,
    )
    assert result.metrics.completed_jobs > 0
