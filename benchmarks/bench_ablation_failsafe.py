"""Ablation (the paper's §III-D sketch, evaluated): crash recovery.

Crashes 10 % of the grid mid-run.  Without the fail-safe extension the
jobs held by crashed nodes are lost; with it they are detected and
resubmitted.  The paper proposes the mechanism but never measures it —
this benchmark does.
"""

from repro.experiments import render_table
from repro.experiments.failures import run_crash_experiment


def _lost(metrics):
    return sum(
        1
        for record in metrics.records.values()
        if not record.completed and not record.unschedulable
    )


def test_ablation_failsafe(benchmark, aria_scale, aria_seeds, report):
    def build():
        rows = []
        for failsafe in (False, True):
            lost = resubmitted = completed = 0
            for seed in aria_seeds:
                run = run_crash_experiment(failsafe, aria_scale, seed)
                completed += run.metrics.completed_jobs
                lost += _lost(run.metrics)
                resubmitted += sum(
                    r.resubmissions for r in run.metrics.records.values()
                )
            n = len(aria_seeds)
            rows.append(
                (
                    "failsafe" if failsafe else "baseline",
                    completed / n,
                    lost / n,
                    resubmitted / n,
                )
            )
        return rows

    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    table = render_table(
        ["mode", "completed", "lost jobs", "resubmissions"],
        [
            [mode, f"{done:.1f}", f"{lost:.1f}", f"{resub:.1f}"]
            for mode, done, lost, resub in rows
        ],
    )
    report("Ablation: crash recovery via the fail-safe extension\n\n" + table)

    baseline, failsafe = rows
    # The fail-safe must eliminate (or at least strictly reduce) job loss
    # and complete strictly more jobs whenever the baseline lost any.
    assert failsafe[2] <= baseline[2]
    if baseline[2] > 0:
        assert failsafe[1] > baseline[1]
        assert failsafe[3] > 0
