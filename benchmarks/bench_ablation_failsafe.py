"""Ablation (the paper's §III-D sketch, evaluated): crash recovery.

Crashes 10 % of the grid mid-run.  Without the fail-safe extension the
jobs held by crashed nodes are lost; with it they are detected and
resubmitted.  The paper proposes the mechanism but never measures it —
this benchmark does.
"""

import statistics

from repro.experiments import CrashPlan, render_table, run_batch


def test_ablation_failsafe(benchmark, aria_scale, aria_seeds, report):
    def build():
        rows = []
        for failsafe in (False, True):
            runs = run_batch(
                CrashPlan(), aria_scale, seeds=aria_seeds, failsafe=failsafe
            )
            rows.append(
                (
                    "failsafe" if failsafe else "baseline",
                    statistics.fmean(r.completed_jobs for r in runs),
                    statistics.fmean(r.incomplete_jobs for r in runs),
                    statistics.fmean(r.resubmissions for r in runs),
                )
            )
        return rows

    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    table = render_table(
        ["mode", "completed", "lost jobs", "resubmissions"],
        [
            [mode, f"{done:.1f}", f"{lost:.1f}", f"{resub:.1f}"]
            for mode, done, lost, resub in rows
        ],
    )
    report("Ablation: crash recovery via the fail-safe extension\n\n" + table)

    baseline, failsafe = rows
    # The fail-safe must eliminate (or at least strictly reduce) job loss
    # and complete strictly more jobs whenever the baseline lost any.
    assert failsafe[2] <= baseline[2]
    if baseline[2] > 0:
        assert failsafe[1] > baseline[1]
        assert failsafe[3] > 0
