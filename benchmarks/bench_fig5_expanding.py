"""Figure 5: idle nodes in an expanding network (500 -> 700 at paper scale)."""

from repro.experiments.figures import fig5_expanding
from repro.types import HOUR


def test_fig5_expanding(benchmark, aria_scale, aria_seeds, report):
    fig = benchmark.pedantic(
        fig5_expanding,
        args=(aria_scale, aria_seeds),
        rounds=1,
        iterations=1,
    )
    report(
        fig.render(points=12)
        + "\n\nZoom (loaded phase, first quarter of the run):\n\n"
        + fig.render(points=12, until=aria_scale.duration * 0.25)
    )
    # Shape: rescheduling exploits the newly joined nodes.
    start = aria_scale.expanding_start
    end = aria_scale.expanding_end + 2 * HOUR

    def window_mean(name):
        values = [v for t, v in fig.series[name] if start <= t <= end]
        return sum(values) / len(values)

    assert window_mean("iExpanding") < window_mean("Expanding")
