"""Figure 10: network overhead per message type."""

from repro.experiments.figures import fig10_traffic, scenario_summary


def test_fig10_traffic(benchmark, aria_scale, aria_seeds, report):
    fig = benchmark.pedantic(
        fig10_traffic,
        args=(aria_scale, aria_seeds),
        rounds=1,
        iterations=1,
    )
    report(fig.render())

    def traffic(name):
        return scenario_summary(name, aria_scale, aria_seeds).traffic_bytes

    # Shapes (§V-E): REQUEST constant across static scenarios; ACCEPT and
    # ASSIGN negligible; INFORM dominates the rescheduling overhead and
    # shrinks with the per-round candidate budget.
    requests = [
        traffic(n).get("Request", 0.0)
        for n in ("Mixed", "iMixed", "HighLoad", "iHighLoad")
    ]
    assert max(requests) <= 1.3 * min(requests)
    imixed = traffic("iMixed")
    assert imixed["Accept"] + imixed["Assign"] <= 0.05 * sum(imixed.values())
    assert traffic("iInform1")["Inform"] < imixed["Inform"]
