#!/usr/bin/env python
"""Answer "why did node X win job J?" from a protocol trace.

A small iMixed grid runs with the trace bus recording every protocol
event into memory.  Afterwards the :mod:`repro.obs.timeline` explainer
reconstructs one job's life — every ACCEPT the initiator heard with its
ETTC/NAL cost, the winner and its margin over the runner-up, and any
INFORM-triggered reassignment — straight from the recorded events.
Run with ``python examples/trace_explorer.py``.
"""

from repro.experiments import ScenarioScale, TraceConfig, run
from repro.obs import explain_job


def main() -> None:
    trace = TraceConfig(level="protocol", sink="memory")
    result = run("iMixed", ScenarioScale.tiny(), seed=0, trace=trace)
    events = result.trace_events
    print(
        f"traced {len(events)} protocol events across "
        f"{result.metrics.completed_jobs} completed jobs\n"
    )

    # Pick a job that was reassigned after an INFORM, if any — those have
    # the most interesting timelines — otherwise the first finished job.
    reassigned = sorted(
        {
            event["job"]
            for event in events
            if event["ev"] == "assign.received" and event["reschedule"]
        }
    )
    finished = sorted(
        event["job"] for event in events if event["ev"] == "job.finished"
    )
    job_id = reassigned[0] if reassigned else finished[0]

    timeline = explain_job(events, job_id)
    print(timeline.to_text())

    # The structured form answers "why did the winner win?" directly.
    decision = timeline.why_won()
    print(f"\nwhy node {decision['winner']} won job {job_id}:")
    for offer in decision["offers"]:
        marker = " <- winner" if offer["node"] == decision["winner"] else ""
        print(
            f"  node {offer['node']:>3} quoted {offer['cost']:.3f} "
            f"({offer['phase']}){marker}"
        )
    if decision["runner_up"] is not None:
        print(
            f"  margin over runner-up: {decision['margin']:.3f} "
            f"(node {decision['runner_up']['node']})"
        )


if __name__ == "__main__":
    main()
