#!/usr/bin/env python
"""Deadline scheduling: EDF grids with and without dynamic rescheduling.

Reproduces the paper's Figure 4 story at laptop scale: tight deadlines
(DeadlineH) miss often under plain ARiA, and dynamic rescheduling collapses
the miss count while halving the time by which late jobs overshoot.
Run with ``python examples/deadline_grid.py``.
"""

from repro.experiments import ScenarioScale, get_scenario, run
from repro.types import format_duration


def describe(name: str, scale: ScenarioScale, seed: int = 0) -> None:
    result = run(get_scenario(name), scale, seed=seed)
    m = result.metrics
    lateness = m.average_lateness()
    missed_time = m.average_missed_time()
    print(
        f"{name:<11} completed={m.completed_jobs:<4} "
        f"missed={m.missed_deadline_count():<3} "
        f"lateness={format_duration(lateness) if lateness else '-':<7} "
        f"missed_time={format_duration(missed_time) if missed_time else '-':<7} "
        f"reschedules={m.reschedules}"
    )


def main() -> None:
    scale = ScenarioScale.small()
    print(
        f"EDF grid, {scale.nodes} nodes / {scale.jobs} jobs "
        "(load shape preserved from the paper's 500/1000)\n"
    )
    print("loose deadlines (mean slack 7h30m):")
    describe("Deadline", scale)
    describe("iDeadline", scale)
    print("\ntight deadlines (mean slack 2h30m):")
    describe("DeadlineH", scale)
    describe("iDeadlineH", scale)
    print(
        "\nThe i-variants advertise waiting jobs (INFORM) every 5 minutes;"
        "\nnodes that can finish a job sooner take it over, so deadline"
        "\nmisses collapse exactly as in the paper's Figure 4."
    )


if __name__ == "__main__":
    main()
