#!/usr/bin/env python
"""Overlay substrate tour: BLATANT-S maintenance and the topology zoo.

Shows the ant-based maintainer converging a ring into a bounded-path-length
overlay, a node join being re-integrated online, and the alternative static
topologies used by the overlay-sensitivity ablation.
Run with ``python examples/overlay_playground.py``.
"""

import random

from repro.overlay import (
    TOPOLOGY_BUILDERS,
    BlatantConfig,
    BlatantMaintainer,
    average_path_length,
    estimated_diameter,
    is_connected,
    ring,
)
from repro.sim import Simulator


def stats(graph, rng):
    apl = average_path_length(graph, rng, sources=24)
    diameter = estimated_diameter(graph, rng, sources=24)
    return (
        f"APL={apl:5.2f}  diameter={diameter:>2}  "
        f"avg degree={graph.average_degree():4.2f}  links={graph.link_count}"
    )


def main() -> None:
    rng = random.Random(7)
    size = 120

    print(f"1. BLATANT-S convergence ({size} nodes, target path length 9)")
    graph = ring(size)
    print(f"   start (ring):     {stats(graph, rng)}")
    maintainer = BlatantMaintainer(graph, rng, BlatantConfig())
    maintainer.converge()
    print(f"   after ants:       {stats(graph, rng)}")
    print(
        f"   ants added {maintainer.links_added} links, "
        f"pruned {maintainer.links_removed}"
    )

    print("\n2. Online maintenance: 20 nodes join a running overlay")
    sim = Simulator(seed=7)
    maintainer.start(sim)
    for index in range(20):
        sim.call_at(index * 30.0, maintainer.join, 1000 + index)
    sim.run_until(3600.0)
    print(f"   after joins:      {stats(graph, rng)}")
    print(f"   still connected:  {is_connected(graph)}")

    print("\n3. The topology zoo (same size, for the overlay ablation)")
    for name, builder in TOPOLOGY_BUILDERS.items():
        topo = builder(size, random.Random(7))
        print(f"   {name:<15} {stats(topo, rng)}")


if __name__ == "__main__":
    main()
