#!/usr/bin/env python
"""Chaos-testing ARiA: composed network faults vs the reliability layer.

A grid is run through a hostile network — i.i.d. loss, Gilbert–Elliott
loss bursts, message duplication, delay spikes and a healing partition —
twice: once with the bare paper protocol, once with the at-least-once
reliability layer plus the §III-D fail-safe extension.  Post-run protocol
invariants (job conservation, no double execution, tracking quiescence)
show the difference.  Run with ``python examples/fault_injection.py``.
"""

from repro.experiments import FaultPlan, RunOptions, ScenarioScale, run


def main() -> None:
    scale = ScenarioScale.tiny()
    plan = FaultPlan.chaos(scale.duration)
    print(
        f"{scale.nodes}-node grid, {scale.jobs} jobs; "
        f"{plan.loss:.0%} base loss, {plan.duplicate:.0%} duplication, "
        f"loss bursts, delay spikes, and a "
        f"{plan.partitions[0][1] - plan.partitions[0][0]:.0f}s partition\n"
    )
    print(f"{'mode':<28} {'completed':>9} {'violations':>10}")
    results = {}
    for reliable in (False, True):
        result = run(
            plan,
            scale,
            seed=0,
            options=RunOptions(reliability=reliable, failsafe=reliable),
        )
        results[reliable] = result
        label = (
            "faults + reliability" if reliable else "faults (paper protocol)"
        )
        print(
            f"{label:<28} {result.metrics.completed_jobs:>9} "
            f"{len(result.extra_violations):>10}"
        )

    unreliable = results[False]
    if unreliable.extra_violations:
        print("\nwhat broke without the reliability layer:")
        for violation in unreliable.extra_violations:
            print(f"  - {violation}")

    reliable = results[True]
    net = reliable.network
    print(
        f"\nreliable run repair work: {net['reliable_retransmissions']} "
        f"retransmissions, {net['reliable_duplicates_suppressed']} "
        f"duplicates suppressed, {net['lost']} datagrams lost in transit"
    )
    print(
        "\nA dropped ASSIGN silently strands a job; a duplicated one can"
        "\nexecute it twice. Per-message acks, bounded retransmission and"
        "\nreceiver-side dedup make the control plane idempotent, and the"
        "\ninvariant checker proves the workload survives the chaos."
    )


if __name__ == "__main__":
    main()
