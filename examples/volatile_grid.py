#!/usr/bin/env python
"""A grid under sustained churn — the paper's 'highly volatile' vision.

Every two simulated minutes a node joins, leaves gracefully (handing off
its queue) or crashes.  Dynamic rescheduling plus the fail-safe extension
keep the workload flowing while the membership turns over.
Run with ``python examples/volatile_grid.py``.
"""

from repro.experiments import RunOptions, ScenarioScale, run
from repro.experiments.churn import ChurnPlan
from repro.experiments.report import render_series


def lost_count(metrics):
    return sum(
        1
        for record in metrics.records.values()
        if not record.completed and not record.unschedulable
    )


def main() -> None:
    scale = ScenarioScale.small()
    plan = ChurnPlan(crash_weight=0.5)
    print(
        f"{scale.nodes}-node grid, {scale.jobs} jobs; one churn event "
        f"(join / leave / crash) every {plan.interval:.0f}s\n"
    )
    print(f"{'mode':<22} {'completed':>9} {'lost':>5} {'resubmitted':>11}")
    runs = {}
    for failsafe in (False, True):
        result = run(
            plan, scale, seed=0, options=RunOptions(failsafe=failsafe)
        )
        runs[failsafe] = result
        resubmitted = sum(
            r.resubmissions for r in result.metrics.records.values()
        )
        label = "churn + failsafe" if failsafe else "churn (paper protocol)"
        print(
            f"{label:<22} {result.metrics.completed_jobs:>9} "
            f"{lost_count(result.metrics):>5} {resubmitted:>11}"
        )

    print("\ngrid size over time (fail-safe run):")
    print(
        render_series(
            {"nodes": runs[True].node_count_series}, points=12
        )
    )
    print(
        "\nGraceful leavers hand their queues off before departing; crash"
        "\nvictims' jobs are recovered by initiator-side probing. The"
        "\nworkload survives a membership turnover the paper only"
        "\nhypothesizes about."
    )


if __name__ == "__main__":
    main()
