#!/usr/bin/env python
"""Scalability demo: a grid that grows while jobs are running.

Reproduces the paper's Figure 5 setting: the overlay starts at N nodes and
grows by 40 % mid-run (joins handled by the BLATANT-style ant maintainer).
With dynamic rescheduling the queued jobs migrate onto the new nodes; the
idle-node series shows the difference.
Run with ``python examples/expanding_grid.py``.
"""

from repro.experiments import ScenarioScale, get_scenario, run
from repro.experiments.report import render_series


def main() -> None:
    scale = ScenarioScale.small()
    print(
        f"grid grows {scale.nodes} -> "
        f"{scale.nodes + scale.expanding_extra_nodes} nodes between "
        f"{scale.expanding_start / 3600:.1f}h and "
        f"{scale.expanding_end / 3600:.1f}h\n"
    )
    runs = {
        name: run(get_scenario(name), scale, seed=0)
        for name in ("Expanding", "iExpanding")
    }
    series = {name: r.idle_series for name, r in runs.items()}
    series["nodes total"] = runs["Expanding"].node_count_series
    print(render_series(series, points=12))
    print()
    for name, result in runs.items():
        m = result.metrics
        print(
            f"{name:<11} avg completion "
            f"{m.average_completion_time() / 3600:.2f}h, "
            f"{m.reschedules} reschedules"
        )
    print(
        "\niExpanding pushes waiting jobs onto freshly joined nodes, so"
        "\nfewer nodes sit idle during the growth phase — the paper's"
        "\nscalability claim."
    )


if __name__ == "__main__":
    main()
