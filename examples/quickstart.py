#!/usr/bin/env python
"""Quickstart: a hand-built five-node ARiA grid.

Builds the full stack explicitly — overlay, transport, heterogeneous nodes,
protocol agents — submits a handful of jobs and traces their lifecycle.
Run with ``python examples/quickstart.py``.
"""

from repro.core import AriaAgent, AriaConfig
from repro.grid import (
    AccuracyModel,
    Architecture,
    GridNode,
    JobRequirements,
    NodeProfile,
    OperatingSystem,
)
from repro.metrics import GridMetrics
from repro.net import SimTransport
from repro.overlay import OverlayGraph
from repro.scheduling import make_scheduler
from repro.sim import Simulator
from repro.types import HOUR, MINUTE, format_duration
from repro.workload import Job


def main() -> None:
    sim = Simulator(seed=42)
    metrics = GridMetrics()
    transport = SimTransport(sim)

    # A small ring overlay; any connected topology works.
    graph = OverlayGraph()
    for node_id in range(5):
        graph.add_node(node_id)
    for node_id in range(5):
        graph.add_link(node_id, (node_id + 1) % 5)

    # Five heterogeneous nodes: different speeds and local policies.
    profile = NodeProfile(
        architecture=Architecture.AMD64,
        memory_gb=8,
        disk_gb=8,
        os=OperatingSystem.LINUX,
    )
    config = AriaConfig(inform_interval=2 * MINUTE)  # faster demo cadence
    agents = []
    for node_id, (speed, policy) in enumerate(
        [(1.0, "FCFS"), (1.2, "SJF"), (1.5, "FCFS"), (1.8, "SJF"), (2.0, "FCFS")]
    ):
        node = GridNode(
            node_id=node_id,
            sim=sim,
            profile=profile,
            performance_index=speed,
            scheduler=make_scheduler(policy),
            accuracy=AccuracyModel(epsilon=0.1),
        )
        agent = AriaAgent(node, transport, graph, config, metrics)
        agent.start()
        agents.append(agent)

    # Submit eight two-hour jobs to node 0; ARiA spreads them grid-wide.
    requirements = JobRequirements(
        architecture=Architecture.AMD64,
        memory_gb=4,
        disk_gb=4,
        os=OperatingSystem.LINUX,
    )
    for job_id in range(1, 9):
        job = Job(
            job_id=job_id,
            requirements=requirements,
            ert=2 * HOUR,
            submit_time=sim.now,
        )
        agents[0].submit(job)

    sim.run_until(12 * HOUR)

    print("job  assignee(s)        waited    ran       completed")
    for job_id, record in sorted(metrics.records.items()):
        hops = " -> ".join(str(node) for _, node in record.assignments)
        print(
            f"{job_id:>3}  {hops:<17} "
            f"{format_duration(record.waiting_time):>8}  "
            f"{format_duration(record.execution_time):>8}  "
            f"{format_duration(record.completion_time):>8}"
        )
    print()
    print(
        f"completed {metrics.completed_jobs}/8 jobs, "
        f"{metrics.reschedules} dynamic reschedules, "
        f"average completion "
        f"{format_duration(metrics.average_completion_time())}"
    )
    report = transport.monitor.report(node_count=5, duration=sim.now)
    print(
        "traffic: "
        + ", ".join(
            f"{name}={total / 1024:.1f}KB"
            for name, total in sorted(report.bytes_by_type.items())
        )
    )


if __name__ == "__main__":
    main()
