#!/usr/bin/env python
"""ARiA vs. the related-work design space (§II of the paper).

Same nodes, same workload, six meta-schedulers:

* ARiA without / with dynamic rescheduling (the paper's protocol);
* an omniscient centralized scheduler (global instantaneous view —
  the upper bound that doesn't scale);
* the multiple-simultaneous-requests model of Subramani et al. [13];
* uniform random placement (the lower bound);
* gossip-cached state dissemination after Erdil & Lewis [25]
  (stale caches herd load — the coupling ARiA's pull-based INFORM
  avoids).

Run with ``python examples/baseline_comparison.py``.
"""

from repro.experiments import ScenarioScale, get_scenario, run
from repro.experiments.report import render_table
from repro.types import format_duration


def main() -> None:
    scale = ScenarioScale.small()
    seed = 0
    rows = []

    for name in ("Mixed", "iMixed"):
        result = run(get_scenario(name), scale, seed=seed)
        m = result.metrics
        rows.append(
            [
                f"ARiA {name}",
                format_duration(m.average_completion_time()),
                format_duration(m.average_waiting_time()),
                f"{m.completed_jobs:.0f}",
                "-",
            ]
        )

    for baseline in ("centralized", "multirequest", "random", "gossip"):
        result = run(baseline, scale, seed=seed)
        m = result.metrics
        rows.append(
            [
                baseline,
                format_duration(m.average_completion_time()),
                format_duration(m.average_waiting_time()),
                f"{m.completed_jobs:.0f}",
                str(result.revoked_copies)
                if baseline == "multirequest"
                else "-",
            ]
        )

    print(
        render_table(
            ["scheduler", "completion", "waiting", "completed", "revoked"],
            rows,
        )
    )
    print(
        "\nExpected ordering: centralized (omniscient) <= ARiA iMixed <"
        "\nARiA Mixed ~ multirequest < random.  The multirequest row's"
        "\n'revoked' column counts the duplicate queue entries the paper"
        "\ncriticizes that design for."
    )


if __name__ == "__main__":
    main()
