#!/usr/bin/env python
"""Submit a real JSDL job description to the grid (paper §III-A).

The protocol "does not specify ... the job submission formats"; the paper
points at JSDL [29] as the schema real deployments would use.  This
example writes a JSDL document, parses it into a simulator job, and runs
it through a small ARiA grid.
Run with ``python examples/jsdl_submission.py``.
"""

import tempfile
from pathlib import Path

from repro.core import AriaConfig
from repro.grid import AccuracyModel, GridNode, NodeProfile, Architecture, OperatingSystem
from repro.metrics import GridMetrics
from repro.net import SimTransport
from repro.overlay import OverlayGraph
from repro.scheduling import make_scheduler
from repro.sim import Simulator
from repro.types import format_duration
from repro.workload import parse_jsdl_file

JSDL = """<?xml version="1.0" encoding="UTF-8"?>
<jsdl:JobDefinition xmlns:jsdl="http://schemas.ggf.org/jsdl/2005/11/jsdl"
    xmlns:jsdl-posix="http://schemas.ggf.org/jsdl/2005/11/jsdl-posix">
  <jsdl:JobDescription>
    <jsdl:Application>
      <jsdl-posix:POSIXApplication>
        <jsdl-posix:Executable>/opt/render/trace</jsdl-posix:Executable>
        <jsdl-posix:WallTimeLimit>7200</jsdl-posix:WallTimeLimit>
      </jsdl-posix:POSIXApplication>
    </jsdl:Application>
    <jsdl:Resources>
      <jsdl:CPUArchitecture>
        <jsdl:CPUArchitectureName>x86_64</jsdl:CPUArchitectureName>
      </jsdl:CPUArchitecture>
      <jsdl:OperatingSystem>
        <jsdl:OperatingSystemType>
          <jsdl:OperatingSystemName>LINUX</jsdl:OperatingSystemName>
        </jsdl:OperatingSystemType>
      </jsdl:OperatingSystem>
      <jsdl:TotalPhysicalMemory>
        <jsdl:LowerBoundedRange>2147483648</jsdl:LowerBoundedRange>
      </jsdl:TotalPhysicalMemory>
      <jsdl:TotalDiskSpace>
        <jsdl:LowerBoundedRange>1073741824</jsdl:LowerBoundedRange>
      </jsdl:TotalDiskSpace>
    </jsdl:Resources>
  </jsdl:JobDescription>
</jsdl:JobDefinition>
"""


def main() -> None:
    path = Path(tempfile.gettempdir()) / "aria_example.jsdl"
    path.write_text(JSDL)
    job = parse_jsdl_file(path, job_id=1)
    print(f"parsed {path.name}:")
    print(
        f"  ERT {format_duration(job.ert)}, "
        f"arch {job.requirements.architecture.value}, "
        f"{job.requirements.memory_gb} GB RAM, "
        f"{job.requirements.disk_gb} GB disk, "
        f"{job.requirements.os.value}"
    )

    sim = Simulator(seed=3)
    metrics = GridMetrics()
    transport = SimTransport(sim)
    graph = OverlayGraph()
    profile = NodeProfile(
        architecture=Architecture.AMD64,
        memory_gb=4,
        disk_gb=4,
        os=OperatingSystem.LINUX,
    )
    from repro.core import AriaAgent

    agents = []
    for node_id, speed in enumerate((1.0, 1.4, 1.9)):
        graph.add_node(node_id)
        node = GridNode(
            node_id=node_id,
            sim=sim,
            profile=profile,
            performance_index=speed,
            scheduler=make_scheduler("FCFS"),
            accuracy=AccuracyModel(),
        )
        agents.append(
            AriaAgent(node, transport, graph, AriaConfig(), metrics)
        )
    for a in range(3):
        graph.add_link(a, (a + 1) % 3)

    agents[0].submit(job)
    sim.run_until(6 * 3600.0)
    record = metrics.records[1]
    print(
        f"\nexecuted on node {record.start_node} "
        f"(fastest match), completed in "
        f"{format_duration(record.completion_time)}"
    )


if __name__ == "__main__":
    main()
