#!/usr/bin/env python
"""Workload traces: freeze, save, reload and inspect a §IV-D workload.

The paper's future work calls for evaluation on real grid workload traces.
This example shows the substitute machinery: the random workload is frozen
into a portable JSON trace that external traces can also be converted into.
Run with ``python examples/trace_replay.py``.
"""

import random
import statistics
import tempfile
from collections import Counter
from pathlib import Path

from repro.types import HOUR
from repro.workload import JobGenerator, SubmissionSchedule, WorkloadTrace


def main() -> None:
    # 1. Freeze a paper-distribution workload into a trace.
    generator = JobGenerator(
        random.Random(11), deadline_slack_mean=7.5 * HOUR
    )
    schedule = SubmissionSchedule(job_count=200, interval=10.0)
    trace = WorkloadTrace.from_generator(generator, schedule.times())

    # 2. Save and reload it.
    path = Path(tempfile.gettempdir()) / "aria_example_trace.json"
    trace.save(path)
    loaded = WorkloadTrace.load(path)
    print(f"saved and reloaded {len(loaded)} jobs from {path}")

    # 3. Inspect: the distributions of §IV-D.
    jobs = loaded.jobs()
    erts = [job.ert / HOUR for job in jobs]
    slacks = [(job.deadline - job.submit_time - job.ert) / HOUR for job in jobs]
    archs = Counter(job.requirements.architecture.value for job in jobs)
    print(
        f"ERT:   mean {statistics.fmean(erts):.2f}h, "
        f"min {min(erts):.2f}h, max {max(erts):.2f}h (paper: 2.5h in [1h, 4h])"
    )
    print(
        f"slack: mean {statistics.fmean(slacks):.2f}h (paper Deadline: 7.5h)"
    )
    print("architectures:", dict(archs.most_common()))
    print(
        "\nAny real trace (e.g. from the Grid Workloads Archive) converted"
        "\ninto this JSON format replays through the exact same machinery."
    )


if __name__ == "__main__":
    main()
