#!/usr/bin/env python
"""Local scheduling policies: the paper's Figures 1-3 at laptop scale.

Runs the six policy scenarios (FCFS / SJF / Mixed, each with and without
dynamic rescheduling) and prints the completed-jobs series, the completion
time split, and the idle-node series.
Run with ``python examples/policy_comparison.py [seed]``.
"""

import sys

from repro.experiments import ScenarioScale
from repro.experiments.figures import (
    fig1_completed_jobs,
    fig2_completion_time,
    fig3_idle_nodes,
)


def main() -> None:
    seed = int(sys.argv[1]) if len(sys.argv) > 1 else 0
    scale = ScenarioScale.small()
    seeds = (seed,)
    fig1 = fig1_completed_jobs(scale, seeds)
    print(fig1.render(points=12))
    print()
    print(fig1.render_chart(until=scale.duration * 0.3))
    print()
    print(fig2_completion_time(scale, seeds).render())
    print()
    print(fig3_idle_nodes(scale, seeds).render(points=12))
    print(
        "\nReadings: the i-scenarios complete jobs sooner (Fig 1), cut the"
        "\nwaiting share of the completion time (Fig 2) and keep fewer"
        "\nnodes idle while load lasts (Fig 3)."
    )


if __name__ == "__main__":
    main()
