#!/usr/bin/env python
"""Crash recovery: the §III-D fail-safe extension in action.

Ten percent of the grid crashes one hour into a standard iMixed run.
Without the fail-safe, every job queued or running on a crashed node is
simply lost.  With it, initiators track their jobs' assignees (Track/Done
notifications), probe them periodically, and resubmit jobs whose assignee
went silent — so the grid absorbs the failures.
Run with ``python examples/failsafe_demo.py``.
"""

from repro.experiments import RunOptions, ScenarioScale, run
from repro.experiments.failures import CrashPlan


def main() -> None:
    scale = ScenarioScale.small()
    plan = CrashPlan(fraction=0.10, start=3600.0)
    print(
        f"{scale.nodes}-node grid, {scale.jobs} jobs; "
        f"{plan.fraction:.0%} of nodes crash from t=1h\n"
    )
    print(f"{'mode':<12} {'completed':>9} {'lost':>5} {'resubmitted':>11}")
    for failsafe in (False, True):
        result = run(
            plan, scale, seed=0, options=RunOptions(failsafe=failsafe)
        )
        metrics = result.metrics
        lost = sum(
            1
            for record in metrics.records.values()
            if not record.completed and not record.unschedulable
        )
        resubmitted = sum(
            record.resubmissions for record in metrics.records.values()
        )
        label = "failsafe" if failsafe else "baseline"
        print(
            f"{label:<12} {metrics.completed_jobs:>9} {lost:>5} "
            f"{resubmitted:>11}"
        )
    print(
        "\nThe fail-safe run recovers every job that died with its node:"
        "\ninitiators notice two consecutive probe misses and re-run the"
        "\ndiscovery phase for the lost jobs."
    )


if __name__ == "__main__":
    main()
