"""Unit tests for the metrics registry."""

import pytest

from repro.errors import ConfigurationError
from repro.obs import MetricsRegistry


def test_counter_increments_and_snapshots():
    registry = MetricsRegistry()
    counter = registry.counter("jobs.completed")
    counter.inc()
    counter.inc(3)
    assert counter.value == 4
    assert registry.snapshot() == {"jobs.completed": 4.0}


def test_counter_rejects_negative_increment():
    counter = MetricsRegistry().counter("c")
    with pytest.raises(ConfigurationError):
        counter.inc(-1)


def test_same_name_returns_same_instance():
    registry = MetricsRegistry()
    assert registry.counter("a") is registry.counter("a")
    assert registry.counter("a", node="1") is registry.counter("a", node="1")
    assert registry.counter("a") is not registry.counter("a", node="1")


def test_labels_join_the_key_sorted():
    registry = MetricsRegistry()
    registry.counter("msgs", type="Request", dir="out").inc()
    assert registry.snapshot() == {"msgs{dir=out,type=Request}": 1.0}


def test_type_conflict_is_rejected():
    registry = MetricsRegistry()
    registry.counter("x")
    with pytest.raises(ConfigurationError):
        registry.gauge("x")


def test_gauge_sets_latest_value():
    registry = MetricsRegistry()
    gauge = registry.gauge("queue.depth")
    gauge.set(5)
    gauge.set(2)
    assert registry.snapshot() == {"queue.depth": 2.0}


def test_histogram_observations_and_snapshot_keys():
    registry = MetricsRegistry()
    histogram = registry.histogram("latency")
    for value in (1.0, 2.0, 9.0):
        histogram.observe(value)
    assert histogram.count == 3
    assert histogram.mean == pytest.approx(4.0)
    snapshot = registry.snapshot()
    assert snapshot["latency.count"] == 3.0
    assert snapshot["latency.sum"] == pytest.approx(12.0)
    assert snapshot["latency.min"] == 1.0
    assert snapshot["latency.max"] == 9.0


def test_histogram_rejects_unsorted_buckets():
    with pytest.raises(ConfigurationError):
        MetricsRegistry().histogram("h", buckets=(10.0, 1.0))


def test_snapshot_keys_are_sorted_and_float():
    registry = MetricsRegistry()
    registry.counter("z").inc()
    registry.counter("a").inc()
    snapshot = registry.snapshot()
    assert list(snapshot) == sorted(snapshot)
    assert all(isinstance(v, float) for v in snapshot.values())


def test_registry_len_and_contains():
    registry = MetricsRegistry()
    assert len(registry) == 0
    registry.counter("a")
    assert "a" in registry
    assert "b" not in registry
    assert len(registry) == 1


def test_bounded_series_records_and_snapshots():
    from repro.obs import BoundedSeries

    series = BoundedSeries("s", max_points=4)
    for i in range(3):
        series.record(float(i), float(i * 10))
    assert series.points == [(0.0, 0.0), (1.0, 10.0), (2.0, 20.0)]
    out = {}
    series.snapshot_into(out)
    assert out == {"s.count": 3.0, "s.points": 3.0, "s.stride": 1.0}


def test_bounded_series_decimates_at_cap():
    from repro.obs import BoundedSeries

    series = BoundedSeries("s", max_points=8)
    for i in range(1000):
        series.record(float(i), float(i))
    assert series.count == 1000
    assert len(series.points) <= 8
    assert series.stride == 256
    # Retained points are aligned to the final stride and time-ordered.
    times = [time for time, _ in series.points]
    assert times == sorted(times)
    assert all(time % series.stride == 0 for time in times)


def test_bounded_series_validates_cap():
    from repro.obs import BoundedSeries

    with pytest.raises(ConfigurationError):
        BoundedSeries("s", max_points=1)


def test_registry_series_factory_shares_instances():
    from repro.obs import BoundedSeries

    registry = MetricsRegistry()
    series = registry.series("s", max_points=16)
    assert registry.series("s") is series
    assert isinstance(series, BoundedSeries)
    with pytest.raises(ConfigurationError):
        registry.counter("s")
