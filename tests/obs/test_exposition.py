"""Prometheus exposition: rendering contract and the parser inverse."""

import pytest

from repro.obs import MetricsRegistry, parse_prometheus, render_prometheus
from repro.obs.exposition import CONTENT_TYPE


def test_content_type_declares_the_text_format_version():
    assert CONTENT_TYPE == "text/plain; version=0.0.4; charset=utf-8"


def test_counter_renders_with_type_header_and_sanitised_name():
    registry = MetricsRegistry()
    registry.counter("jobs.completed").inc(7)
    page = render_prometheus(registry)
    assert "# TYPE aria_jobs_completed counter\n" in page
    assert "\naria_jobs_completed 7\n" in page


def test_gauge_labels_become_quoted_label_sets():
    registry = MetricsRegistry()
    registry.gauge("node.queue_depth", node="3").set(4)
    page = render_prometheus(registry)
    assert 'aria_node_queue_depth{node="3"} 4' in page.splitlines()


def test_type_header_written_once_per_family():
    registry = MetricsRegistry()
    registry.gauge("node.idle", node="0").set(1)
    registry.gauge("node.idle", node="1").set(0)
    page = render_prometheus(registry)
    assert page.count("# TYPE aria_node_idle gauge") == 1


def test_histogram_renders_the_full_prometheus_contract():
    registry = MetricsRegistry()
    histogram = registry.histogram("net.hop_latency", buckets=(0.1, 1.0))
    for value in (0.05, 0.5, 0.7, 5.0):
        histogram.observe(value)
    lines = render_prometheus(registry).splitlines()
    assert "# TYPE aria_net_hop_latency histogram" in lines
    # Buckets are cumulative and end in +Inf = total count.
    assert 'aria_net_hop_latency_bucket{le="0.1"} 1' in lines
    assert 'aria_net_hop_latency_bucket{le="1"} 3' in lines
    assert 'aria_net_hop_latency_bucket{le="+Inf"} 4' in lines
    assert "aria_net_hop_latency_sum 6.25" in lines
    assert "aria_net_hop_latency_count 4" in lines


def test_bounded_series_renders_last_value_plus_observation_count():
    registry = MetricsRegistry()
    series = registry.series("fleet.queue_depth")
    series.record(1.0, 5.0)
    series.record(2.0, 9.0)
    lines = render_prometheus(registry).splitlines()
    assert "aria_fleet_queue_depth 9" in lines
    assert "aria_fleet_queue_depth_observations 2" in lines


def test_extra_samples_render_as_untyped_gauges():
    registry = MetricsRegistry()
    page = render_prometheus(
        registry, extra={"node_uptime{node=2}": 12.5, "traffic_Request": 3}
    )
    lines = page.splitlines()
    assert "# TYPE aria_node_uptime gauge" in lines
    assert 'aria_node_uptime{node="2"} 12.5' in lines
    assert "aria_traffic_Request 3" in lines


def test_parse_is_the_inverse_of_render():
    registry = MetricsRegistry()
    registry.counter("jobs.completed").inc(11)
    registry.gauge("node.queue_depth", node="5").set(2)
    registry.histogram("net.hop_latency", buckets=(1.0,)).observe(0.5)
    samples = parse_prometheus(render_prometheus(registry))
    assert samples["aria_jobs_completed"] == 11
    assert samples['aria_node_queue_depth{node="5"}'] == 2
    assert samples['aria_net_hop_latency_bucket{le="+Inf"}'] == 1
    assert samples["aria_net_hop_latency_count"] == 1


def test_parse_skips_comments_and_blank_lines():
    samples = parse_prometheus("# HELP x y\n\n# TYPE aria_up gauge\naria_up 1\n")
    assert samples == {"aria_up": 1.0}


@pytest.mark.parametrize(
    "page",
    [
        "not a metric line",
        "aria_up one\n",
        "3aria_bad_name 1\n",
    ],
)
def test_parse_raises_on_malformed_lines(page):
    with pytest.raises(ValueError):
        parse_prometheus(page)
