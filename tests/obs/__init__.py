"""Tests for the observability package (trace bus, metrics, explainer)."""
