"""Unit tests for the trace bus: schema, config, sinks, tracer."""

import json

import pytest

from repro.errors import ConfigurationError
from repro.obs import (
    EVENTS,
    LEVELS,
    JsonlSink,
    MemorySink,
    PerfettoSink,
    TraceConfig,
    Tracer,
    load_trace,
    message_job_id,
    validate_event,
)


# -- schema ------------------------------------------------------------
def test_every_event_declares_a_known_level():
    for name, (level, fields) in EVENTS.items():
        assert level in LEVELS and level != "off", name
        assert isinstance(fields, tuple), name


def test_validate_event_accepts_a_wellformed_event():
    event = {"t": 1.0, "ev": "job.submitted", "job": 1, "node": 2}
    assert validate_event(event) == []


def test_validate_event_flags_problems():
    assert validate_event({"t": 1.0}) == ["event has no 'ev' field"]
    assert "unknown event name" in validate_event({"ev": "nope"})[0]
    missing = validate_event({"t": 1.0, "ev": "job.submitted", "job": 1})
    assert any("node" in problem for problem in missing)
    extra = validate_event(
        {"t": 1.0, "ev": "job.submitted", "job": 1, "node": 2, "x": 3}
    )
    assert any("unexpected field 'x'" in problem for problem in extra)


def test_message_job_id_reads_either_shape():
    class WithId:
        job_id = 7

    class WithJob:
        class job:
            job_id = 9

    class Neither:
        pass

    assert message_job_id(WithId()) == 7
    assert message_job_id(WithJob()) == 9
    assert message_job_id(Neither()) is None


# -- config ------------------------------------------------------------
def test_config_rejects_bad_values():
    with pytest.raises(ConfigurationError):
        TraceConfig(level="verbose")
    with pytest.raises(ConfigurationError):
        TraceConfig(sink="csv")
    with pytest.raises(ConfigurationError):
        TraceConfig(sink="jsonl", path=None)
    with pytest.raises(ConfigurationError):
        TraceConfig(sink="memory", events=("not.an.event",))
    with pytest.raises(ConfigurationError):
        TraceConfig(sink="memory", memory_capacity=0)


def test_config_resolves_seed_placeholder():
    config = TraceConfig(path="trace-{seed}.jsonl")
    assert config.resolved(3).path == "trace-3.jsonl"
    plain = TraceConfig(path="trace.jsonl")
    assert plain.resolved(3) is plain


def test_config_roundtrips_through_dict():
    config = TraceConfig(
        level="transport",
        sink="memory",
        events=("msg.sent", "msg.delivered"),
        telemetry=False,
    )
    assert TraceConfig.from_dict(config.to_dict()) == config
    assert json.dumps(config.to_dict())  # JSON-able (cache-key contract)


# -- tracer + sinks ----------------------------------------------------
def test_tracer_filters_by_level():
    tracer = Tracer(TraceConfig(level="protocol", sink="memory"))
    tracer.emit("job.submitted", 1.0, job=1, node=2)
    tracer.emit("msg.sent", 1.0, src=1, dst=2, type="Request")
    assert [e["ev"] for e in tracer.events] == ["job.submitted"]
    assert tracer.wants("job.submitted")
    assert not tracer.wants("msg.sent")
    assert tracer.wants_level("protocol")
    assert not tracer.wants_level("transport")


def test_tracer_honours_event_allowlist():
    config = TraceConfig(
        level="transport", sink="memory", events=("msg.sent",)
    )
    tracer = Tracer(config)
    tracer.emit("msg.sent", 1.0, src=1, dst=2, type="Request")
    tracer.emit("msg.delivered", 2.0, src=1, dst=2, type="Request")
    tracer.emit("job.submitted", 3.0, job=1, node=2)
    assert [e["ev"] for e in tracer.events] == ["msg.sent"]


def test_memory_sink_is_a_ring_buffer():
    sink = MemorySink(capacity=2)
    for index in range(5):
        sink.append({"t": float(index), "ev": "kernel.event"})
    assert len(sink) == 2
    assert [e["t"] for e in sink.events] == [3.0, 4.0]


def test_jsonl_sink_roundtrips_through_load_trace(tmp_path):
    path = tmp_path / "trace.jsonl"
    sink = JsonlSink(path)
    sink.append({"t": 1.0, "ev": "job.submitted", "job": 1, "node": 2})
    sink.append({"t": 2.0, "ev": "job.finished", "job": 1, "node": 3})
    sink.close()
    events = load_trace(path)
    assert [e["ev"] for e in events] == ["job.submitted", "job.finished"]
    assert all(validate_event(e) == [] for e in events)


def _rotating_event(index):
    return {"t": float(index), "ev": "job.submitted", "job": index, "node": 0}


def test_rotating_sink_rotates_and_bounds_disk(tmp_path):
    from repro.obs import RotatingJsonlSink

    path = tmp_path / "soak.jsonl"
    line = len(json.dumps(_rotating_event(0), separators=(",", ":"))) + 1
    # Room for two lines per file: every third append rotates.
    sink = RotatingJsonlSink(str(path), max_bytes=2 * line + 5, backups=2)
    for index in range(10):
        sink.append(_rotating_event(index))
    sink.close()

    assert sink.emitted == 10
    assert sink.rotations == 4
    # The newest events are always in the active file ...
    newest = [json.loads(l) for l in path.read_text().splitlines()]
    assert [e["job"] for e in newest] == [8, 9]
    # ... and the backup cascade keeps the next-newest, oldest dropped.
    backup1 = (tmp_path / "soak.jsonl.1").read_text().splitlines()
    backup2 = (tmp_path / "soak.jsonl.2").read_text().splitlines()
    assert [json.loads(l)["job"] for l in backup1] == [6, 7]
    assert [json.loads(l)["job"] for l in backup2] == [4, 5]
    assert not (tmp_path / "soak.jsonl.3").exists()  # backups=2 bound


def test_rotating_sink_without_overflow_is_a_plain_jsonl(tmp_path):
    from repro.obs import RotatingJsonlSink, load_trace

    path = tmp_path / "soak.jsonl"
    sink = RotatingJsonlSink(str(path), max_bytes=1 << 20, backups=3)
    for index in range(5):
        sink.append(_rotating_event(index))
    sink.close()
    assert sink.rotations == 0
    events = load_trace(path)
    assert [e["job"] for e in events] == [0, 1, 2, 3, 4]
    assert all(validate_event(e) == [] for e in events)


def test_rotating_sink_validates_parameters(tmp_path):
    from repro.obs import RotatingJsonlSink

    with pytest.raises(ConfigurationError):
        RotatingJsonlSink(str(tmp_path / "t.jsonl"), max_bytes=0)
    with pytest.raises(ConfigurationError):
        RotatingJsonlSink(str(tmp_path / "t.jsonl"), backups=0)


def test_config_rotate_bytes_makes_a_rotating_sink(tmp_path):
    from repro.obs import RotatingJsonlSink

    config = TraceConfig(
        sink="jsonl", path=str(tmp_path / "t.jsonl"), rotate_bytes=1 << 20
    )
    sink = config.make_sink()
    try:
        assert isinstance(sink, RotatingJsonlSink)
        assert sink.max_bytes == 1 << 20
    finally:
        sink.close()
    with pytest.raises(ConfigurationError):
        TraceConfig(sink="memory", rotate_bytes=1 << 20)
    with pytest.raises(ConfigurationError):
        TraceConfig(
            sink="jsonl", path=str(tmp_path / "t.jsonl"), rotate_bytes=-1
        )
    # rotate_bytes participates in the cache-key contract.
    assert TraceConfig.from_dict(config.to_dict()) == config


def test_perfetto_sink_writes_trace_event_json(tmp_path):
    path = tmp_path / "trace.json"
    sink = PerfettoSink(path)
    sink.append(
        {"t": 1.0, "ev": "kernel.event", "name": "f", "wall_us": 10.0,
         "dur_us": 3.0}
    )
    sink.append({"t": 2.0, "ev": "job.submitted", "job": 1, "node": 2})
    sink.close()
    document = json.loads(path.read_text())
    phases = [entry["ph"] for entry in document["traceEvents"]]
    assert "X" in phases and "i" in phases


def test_file_tracer_rejects_events_property(tmp_path):
    tracer = Tracer(TraceConfig(path=str(tmp_path / "t.jsonl")))
    tracer.close()
    with pytest.raises(ConfigurationError):
        tracer.events


# -- end-to-end: a traced run obeys the published schema ---------------
def test_traced_run_events_all_validate():
    from repro.experiments import ScenarioScale, run

    result = run(
        "iMixed",
        ScenarioScale.tiny(),
        seed=0,
        trace=TraceConfig(level="transport", sink="memory"),
    )
    assert result.trace_events, "transport-level trace recorded nothing"
    for event in result.trace_events:
        assert validate_event(event) == [], event
    names = {event["ev"] for event in result.trace_events}
    assert "job.submitted" in names
    assert "assign.winner" in names
    assert "msg.delivered" in names
    assert result.telemetry["jobs.completed"] > 0


def test_tracing_does_not_change_the_simulated_outcome():
    from repro.experiments import ScenarioScale, run

    plain = run("iMixed", ScenarioScale.tiny(), seed=1).summary()
    traced = run(
        "iMixed",
        ScenarioScale.tiny(),
        seed=1,
        trace=TraceConfig(level="kernel", sink="memory"),
    ).summary()
    plain_dict = plain.to_dict()
    traced_dict = traced.to_dict()
    traced_dict.pop("telemetry", None)
    assert traced_dict == plain_dict
