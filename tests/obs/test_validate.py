"""The importable trace validator behind ``scripts/validate_trace.py``."""

import json

from repro.obs.validate import main, validate_trace_file


def _write_jsonl(path, events):
    with open(path, "w", encoding="utf-8") as handle:
        for event in events:
            handle.write(json.dumps(event) + "\n")


GOOD = [
    {"t": 0.0, "ev": "job.submitted", "job": 1, "node": 0},
    {"t": 1.0, "ev": "request.broadcast", "job": 1, "node": 0, "retry": 0},
    {"t": 2.0, "ev": "job.finished", "job": 1, "node": 3, "wall": 1e9},
]


def test_clean_trace_has_no_problems(tmp_path):
    path = tmp_path / "trace.jsonl"
    _write_jsonl(path, GOOD)
    problems, counts = validate_trace_file(str(path))
    assert problems == []
    assert counts == {
        "job.submitted": 1,
        "request.broadcast": 1,
        "job.finished": 1,
    }


def test_schema_violations_are_reported_with_line_numbers(tmp_path):
    path = tmp_path / "trace.jsonl"
    _write_jsonl(
        path,
        [
            {"t": 0.0, "ev": "job.submitted", "job": 1, "node": 0},
            {"t": 1.0, "ev": "no.such.event"},
            {"t": 2.0, "ev": "job.finished", "job": 2},  # missing node
            {"t": 3.0, "ev": "job.queued", "job": 2, "node": 1, "bogus": 9},
        ],
    )
    problems, counts = validate_trace_file(str(path))
    assert len(problems) == 3
    assert any(":2:" in p and "unknown event" in p for p in problems)
    assert any(":3:" in p and "'node'" in p for p in problems)
    assert any(":4:" in p and "'bogus'" in p for p in problems)
    assert counts["no.such.event"] == 1


def test_rotated_mode_stitches_backup_segments_oldest_first(tmp_path):
    active = tmp_path / "soak.jsonl"
    _write_jsonl(str(active) + ".2", GOOD[:1])
    _write_jsonl(str(active) + ".1", GOOD[1:2])
    _write_jsonl(active, GOOD[2:])
    problems, counts = validate_trace_file(str(active), rotated=True)
    assert problems == []
    assert sum(counts.values()) == 3
    # Without rotated=True only the active segment is read.
    _, active_only = validate_trace_file(str(active))
    assert sum(active_only.values()) == 1


def test_main_exits_zero_on_a_clean_trace(tmp_path, capsys):
    path = tmp_path / "trace.jsonl"
    _write_jsonl(path, GOOD)
    assert main([str(path)]) == 0
    out = capsys.readouterr().out
    assert "3 events, 0 problem(s)" in out
    assert "job.submitted" in out


def test_main_exits_nonzero_on_problems_and_caps_output(tmp_path, capsys):
    path = tmp_path / "trace.jsonl"
    _write_jsonl(path, [{"t": float(i), "ev": "bad.event"} for i in range(5)])
    assert main([str(path), "--max-problems", "2"]) == 1
    captured = capsys.readouterr()
    assert captured.err.count("unknown event") == 2
    assert "5 events, 5 problem(s)" in captured.out


def test_main_exits_nonzero_on_an_empty_trace(tmp_path, capsys):
    path = tmp_path / "empty.jsonl"
    path.write_text("")
    assert main([str(path)]) == 1
    assert "no events" in capsys.readouterr().err
