"""Unit tests for the job-timeline explainer."""

import pytest

from repro.errors import ConfigurationError
from repro.obs import JobTimeline, TraceConfig, explain_job, validate_event

JOB = 7


def _event(t, ev, **fields):
    return {"t": t, "ev": ev, "job": JOB, **fields}


def _lifecycle():
    """A hand-built, schema-valid lifecycle with two offers + reschedule."""
    events = [
        _event(0.0, "job.submitted", node=1),
        _event(0.0, "request.broadcast", node=1, retry=0),
        _event(1.0, "cost.evaluated", node=2, cost=100.0, phase="request"),
        _event(
            2.0, "accept.received", node=1, src=2, cost=100.0,
            phase="request",
        ),
        _event(
            2.5, "accept.received", node=1, src=3, cost=250.0,
            phase="request",
        ),
        _event(
            5.0, "assign.winner", node=1, winner=2, cost=100.0, offers=2,
            reschedule=False,
        ),
        _event(6.0, "assign.received", node=2, src=1, reschedule=False),
        _event(6.0, "job.queued", node=2),
        _event(20.0, "inform.broadcast", node=2, cost=90.0),
        _event(
            21.0, "accept.received", node=2, src=4, cost=40.0,
            phase="inform",
        ),
        _event(
            22.0, "reschedule.withdrawn", node=2, to=4, own_cost=90.0,
            offer_cost=40.0,
        ),
        _event(23.0, "assign.received", node=4, src=2, reschedule=True),
        _event(23.0, "job.queued", node=4),
        _event(24.0, "job.started", node=4),
        _event(60.0, "job.finished", node=4),
    ]
    for event in events:
        assert validate_event(event) == [], event
    return events


def test_timeline_indexes_the_lifecycle():
    timeline = JobTimeline(JOB, _lifecycle())
    assert timeline.submitted["node"] == 1
    assert len(timeline.requests) == 1
    assert len(timeline.offers) == 3
    assert len(timeline.decisions) == 1
    assert len(timeline.reassignments) == 1
    assert len(timeline.withdrawals) == 1
    assert timeline.final_state == "finished"
    assert timeline.completed


def test_why_won_ranks_offers_and_reports_the_margin():
    rationale = JobTimeline(JOB, _lifecycle()).why_won()
    assert rationale["winner"] == 2
    assert rationale["winning_cost"] == 100.0
    assert [offer["node"] for offer in rationale["offers"]] == [2, 3]
    assert rationale["runner_up"]["node"] == 3
    assert rationale["margin"] == pytest.approx(150.0)
    assert rationale["reschedule"] is False


def test_why_won_without_decision_raises():
    events = [_event(0.0, "job.submitted", node=1)]
    with pytest.raises(ConfigurationError):
        JobTimeline(JOB, events).why_won()


def test_empty_timeline_raises():
    with pytest.raises(ConfigurationError):
        JobTimeline(JOB, [])


def test_to_text_narrates_key_moments():
    text = JobTimeline(JOB, _lifecycle()).to_text()
    assert "won by node 2 at cost 100.000" in text
    assert "beat node 3 (250.000) by 150.000" in text
    assert "withdrew job to 4" in text
    assert "job finished at node 4" in text


def test_to_json_is_structured_and_complete():
    payload = JobTimeline(JOB, _lifecycle()).to_json()
    assert payload["job"] == JOB
    assert payload["final_state"] == "finished"
    assert payload["completed"] is True
    assert payload["requests"] == 1
    assert len(payload["decisions"]) == 1
    assert len(payload["events"]) == len(_lifecycle())


def test_explain_job_filters_by_job_id():
    events = _lifecycle() + [
        {"t": 0.0, "ev": "job.submitted", "job": 99, "node": 8}
    ]
    timeline = explain_job(events, JOB)
    assert all(event["job"] == JOB for event in timeline.events)


def test_explainer_ties_a_faulted_job_to_its_dropped_messages():
    """A faulted run's timeline shows the loss/retry that explains it."""
    from repro.experiments import (
        FaultPlan,
        RunOptions,
        ScenarioScale,
        run,
    )

    scale = ScenarioScale.tiny()
    result = run(
        FaultPlan.chaos(scale.duration),
        scale,
        seed=3,
        options=RunOptions(scenario_name="iMixed", reliability=True),
        trace=TraceConfig(level="transport", sink="memory"),
    )
    events = result.trace_events
    lossy_jobs = sorted(
        {
            event["job"]
            for event in events
            if event["ev"] in ("msg.lost", "retry.sent") and "job" in event
        }
    )
    assert lossy_jobs, "chaos plan produced no traced message loss"
    timeline = explain_job(events, lossy_jobs[0])
    assert timeline.network, "timeline lost the network events"
    assert any(
        event["ev"] in ("msg.lost", "retry.sent")
        for event in timeline.network
    )
    text = timeline.to_text()
    assert "LOST" in text or "retransmission" in text


def test_to_text_shows_wall_clock_column_for_live_traces():
    events = _lifecycle()
    for event in events:
        event["wall"] = 1_700_000_000.0 + event["t"]
        assert validate_event(event) == [], event
    text = JobTimeline(JOB, events).to_text()
    # Every timeline line carries the wall stamp as a UTC clock time.
    timeline_lines = [l for l in text.splitlines() if l.startswith("  t=")]
    assert timeline_lines
    assert all("wall=" in line for line in timeline_lines)
    assert "wall=22:13:20.000" in timeline_lines[0]
