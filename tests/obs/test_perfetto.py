"""PerfettoSink output contract: valid JSON, monotonic tracks, merging."""

import json

from repro.obs import PerfettoSink, merge_perfetto_traces


def _hop(ev, t, src, dst, trace, hop, **extra):
    event = {
        "t": t,
        "ev": ev,
        "src": src,
        "dst": dst,
        "type": "Request",
        "trace": trace,
        "hop": hop,
    }
    event.update(extra)
    return event


def _export(path, events):
    sink = PerfettoSink(path)
    for event in events:
        sink.append(event)
    sink.close()
    with open(path, encoding="utf-8") as handle:
        return json.load(handle)


def test_export_is_valid_json_with_named_node_lanes(tmp_path):
    document = _export(
        tmp_path / "run.json",
        [
            {"t": 1.0, "ev": "job.submitted", "job": 1, "node": 2},
            _hop("net.send", 2.0, 2, 5, "t1", 0),
        ],
    )
    entries = document["traceEvents"]
    names = {
        entry["pid"]: entry["args"]["name"]
        for entry in entries
        if entry["ph"] == "M"
    }
    # pid = node_id + 1, pid 0 is the run-global track.
    assert names[0] == "run"
    assert names[3] == "node 2"


def test_timestamps_are_monotonic_per_track_after_close(tmp_path):
    document = _export(
        tmp_path / "run.json",
        [
            {"t": 5.0, "ev": "job.queued", "job": 1, "node": 0},
            {"t": 1.0, "ev": "job.submitted", "job": 1, "node": 0},
            {"t": 3.0, "ev": "job.submitted", "job": 2, "node": 1},
            {"t": 2.0, "ev": "job.started", "job": 1, "node": 0},
        ],
    )
    by_track = {}
    for entry in document["traceEvents"]:
        if entry["ph"] == "M":
            continue
        by_track.setdefault((entry["pid"], entry["tid"]), []).append(
            entry["ts"]
        )
    for stamps in by_track.values():
        assert stamps == sorted(stamps)


def test_send_recv_pairs_share_a_flow_id(tmp_path):
    sink = PerfettoSink(tmp_path / "run.json")
    sink.append(_hop("net.send", 1.0, 0, 3, "t1", 0))
    sink.append(_hop("net.recv", 1.2, 0, 3, "t1", 0, latency=0.2))
    sink.append(_hop("net.send", 2.0, 3, 0, "t1", 1))
    flows = [e for e in sink.events if e["ph"] in ("s", "f")]
    start, finish, next_hop = flows
    assert start["ph"] == "s" and finish["ph"] == "f"
    assert start["id"] == finish["id"]
    assert finish["bp"] == "e"  # bind the arrow to the enclosing slice
    assert next_hop["id"] != start["id"]  # a new hop is a new arrow
    # The hop slices land on the acting endpoint's lane.
    slices = [e for e in sink.events if e["ph"] == "X"]
    assert slices[0]["pid"] == 1  # net.send -> src 0
    assert slices[1]["pid"] == 4  # net.recv -> dst 3


def test_merged_exports_keep_stable_pids_and_dedup_metadata(tmp_path):
    # Two per-node exports of the same run: node lanes are globally
    # identified (pid = node_id + 1), so the merge is pure concatenation.
    _export(
        tmp_path / "node0.json",
        [
            {"t": 1.0, "ev": "job.submitted", "job": 1, "node": 0},
            _hop("net.send", 2.0, 0, 1, "t1", 0),
        ],
    )
    _export(
        tmp_path / "node1.json",
        [
            _hop("net.recv", 2.5, 0, 1, "t1", 0, latency=0.5),
            {"t": 3.0, "ev": "job.queued", "job": 1, "node": 1},
        ],
    )
    out = tmp_path / "merged.json"
    count = merge_perfetto_traces(
        [tmp_path / "node0.json", tmp_path / "node1.json"], out
    )
    with open(out, encoding="utf-8") as handle:
        document = json.load(handle)
    entries = document["traceEvents"]
    assert count == len(entries)
    metadata = [e for e in entries if e["ph"] == "M"]
    assert len({(e["pid"], e["args"]["name"]) for e in metadata}) == len(
        metadata
    )
    # Both files' "run" (pid 0) metadata collapsed to one record.
    assert sum(1 for e in metadata if e["pid"] == 0) == 1
    # The cross-file send/recv pair still reads as one hop in time order.
    rest = [e for e in entries if e["ph"] != "M"]
    assert [e["ts"] for e in rest] == sorted(e["ts"] for e in rest)
    hop_slices = [
        e for e in rest if e["ph"] == "X" and e["name"].startswith("net.")
    ]
    assert [e["pid"] for e in hop_slices] == [1, 2]  # send on 0, recv on 1
