"""TelemetryCollector merge rules, sparklines and the dashboard view."""

from repro.obs import (
    MetricsRegistry,
    NodeSample,
    TelemetryCollector,
    render_dashboard,
)
from repro.obs.collector import sparkline


def _collector(registry=None):
    return TelemetryCollector(
        registry if registry is not None else MetricsRegistry(),
        targets=lambda: {},
        now=lambda: 0.0,
    )


def _node(node_id, queue=0.0, tracked=0.0, idle=0.0, completed=0.0, lost=0.0):
    return NodeSample(
        node_id,
        True,
        {
            f'aria_node_queue_depth{{node="{node_id}"}}': queue,
            f'aria_node_tracked_jobs{{node="{node_id}"}}': tracked,
            f'aria_node_idle{{node="{node_id}"}}': idle,
            "aria_jobs_completed": completed,
            "aria_net_lost": lost,
        },
    )


def test_per_node_gauges_are_summed_and_counters_maxed():
    collector = _collector()
    collector.observe(
        1.0,
        [
            _node(0, queue=2, tracked=3, idle=0, completed=5, lost=1),
            _node(1, queue=1, tracked=4, idle=1, completed=7, lost=0),
        ],
    )
    points = collector.series_points()
    assert points["fleet.nodes_up"] == [(1.0, 2.0)]
    assert points["fleet.queue_depth"] == [(1.0, 3.0)]
    assert points["fleet.tracked_jobs"] == [(1.0, 7.0)]
    assert points["fleet.idle_nodes"] == [(1.0, 1.0)]
    # Run-level counters take the max across answering nodes, not the sum.
    assert points["fleet.completed_jobs"] == [(1.0, 7.0)]
    assert points["fleet.net_lost"] == [(1.0, 1.0)]


def test_a_failed_scrape_is_a_data_point_not_a_crash():
    collector = _collector()
    down = NodeSample(1, False, error="ConnectionError: refused")
    collector.observe(1.0, [_node(0, queue=2, completed=3), down])
    collector.observe(2.0, [_node(0, queue=1, completed=4), down])
    assert collector.scrape_failures == 2
    points = collector.series_points()
    # The series keep flowing with the answering nodes' data.
    assert points["fleet.nodes_up"] == [(1.0, 1.0), (2.0, 1.0)]
    assert points["fleet.completed_jobs"] == [(1.0, 3.0), (2.0, 4.0)]


def test_last_samples_sorted_by_node_for_stable_display():
    collector = _collector()
    collector.observe(1.0, [_node(2), NodeSample(0, False), _node(1)])
    assert [s.node_id for s in collector.last_samples] == [0, 1, 2]


def test_fleet_series_land_on_the_run_registry():
    registry = MetricsRegistry()
    collector = _collector(registry)
    collector.observe(1.0, [_node(0, queue=4)])
    assert "fleet.queue_depth" in registry
    assert registry.snapshot()["fleet.queue_depth.count"] == 1.0


def test_sparkline_scales_and_downsamples():
    assert sparkline([]) == ""
    assert sparkline([1.0, 1.0, 1.0]) == "▁▁▁"  # flat series, no span
    line = sparkline([0.0, 1.0, 2.0, 3.0])
    assert len(line) == 4
    assert line[0] == "▁" and line[-1] == "█"
    assert len(sparkline([float(i) for i in range(100)], width=8)) == 8


def test_dashboard_renders_curves_and_the_down_node_row():
    collector = _collector()
    collector.observe(
        1.0,
        [
            _node(0, queue=2, tracked=1, idle=0, completed=3),
            NodeSample(1, False, error="TimeoutError: scrape"),
        ],
    )
    view = render_dashboard(collector, title="test fleet")
    assert "test fleet" in view
    assert "nodes up 1/2" in view
    assert "scrape failures 1" in view
    assert "completed" in view and "queue" in view
    assert "down  (TimeoutError: scrape)" in view
