"""Tests for the command-line interface."""

import pytest

from repro.cli import main


def test_list_prints_all_scenarios(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for name in ("FCFS", "iMixed", "iInform30m", "iAccuracyBad"):
        assert name in out


def test_run_prints_summary(capsys):
    assert main(["run", "Mixed", "--scale", "tiny"]) == 0
    out = capsys.readouterr().out
    assert "completed jobs" in out
    assert "avg completion" in out
    assert "traffic Request" in out


def test_run_with_profile_prints_report_and_summary(capsys):
    assert main(["run", "Mixed", "--scale", "tiny", "--profile"]) == 0
    captured = capsys.readouterr()
    assert "completed jobs" in captured.out  # normal summary still printed
    assert "cumulative" in captured.err  # cProfile table on stderr
    assert "function calls" in captured.err


def test_run_rejects_unknown_scenario():
    with pytest.raises(SystemExit):
        main(["run", "NotAScenario", "--scale", "tiny"])


def test_figure_renders(capsys):
    assert main(["figure", "fig4", "--scale", "tiny"]) == 0
    out = capsys.readouterr().out
    assert "Figure 4" in out
    assert "iDeadline" in out


def test_baseline_runs(capsys):
    assert main(["baseline", "random", "--scale", "tiny"]) == 0
    out = capsys.readouterr().out
    assert "completion" in out


def test_multi_seed_run(capsys):
    assert main(
        ["run", "Mixed", "--scale", "tiny", "--seeds", "2", "--seed-base", "3"]
    ) == 0
    assert "seeds (3, 4)" in capsys.readouterr().out


def test_run_with_faults_reports_clean_invariants(capsys):
    assert main(
        ["run", "iMixed", "--scale", "tiny", "--faults", "--no-cache"]
    ) == 0
    out = capsys.readouterr().out
    assert "iMixed+faults+reliable" in out
    assert "invariants: OK" in out
    assert "net_reliable_delivered" in out


def test_run_with_faults_without_reliability_exits_nonzero(capsys):
    # Seed 0 of the default chaos plan strands jobs when the reliability
    # layer and fail-safe are off; the CLI must surface that and fail.
    assert main(
        [
            "run", "iMixed", "--scale", "tiny",
            "--faults", "--no-reliability", "--no-cache",
        ]
    ) == 1
    out = capsys.readouterr().out
    assert "iMixed+faults" in out
    assert "VIOLATION (seed 0)" in out


def test_run_with_inline_fault_plan(capsys):
    assert main(
        [
            "run", "iMixed", "--scale", "tiny", "--no-cache",
            "--faults", '{"loss": 0.1, "duplicate": 0.05}',
        ]
    ) == 0
    out = capsys.readouterr().out
    assert "invariants: OK" in out
    assert "net_fault_iid_lost" in out


def test_run_with_fault_plan_file(tmp_path, capsys):
    plan_path = tmp_path / "plan.json"
    plan_path.write_text('{"loss": 0.08, "partitions": [[1000, 1600]]}')
    assert main(
        [
            "run", "iMixed", "--scale", "tiny", "--no-cache",
            "--faults", str(plan_path),
        ]
    ) == 0
    assert "invariants: OK" in capsys.readouterr().out


def test_trace_generation(tmp_path, capsys):
    path = tmp_path / "trace.json"
    assert main(
        ["trace", str(path), "--jobs", "25", "--deadline-slack", "7.5"]
    ) == 0
    assert "wrote 25 jobs" in capsys.readouterr().out
    from repro.workload import WorkloadTrace

    trace = WorkloadTrace.load(path)
    assert len(trace) == 25
    assert all(entry.deadline is not None for entry in trace)


def test_requires_subcommand():
    with pytest.raises(SystemExit):
        main([])


def test_run_with_profile_out_saves_stats(tmp_path, capsys):
    import pstats

    out = tmp_path / "profile.pstats"
    assert main(
        ["run", "Mixed", "--scale", "tiny", "--profile-out", str(out)]
    ) == 0
    captured = capsys.readouterr()
    assert "completed jobs" in captured.out  # normal summary still printed
    assert "cumulative" not in captured.err  # no report without --profile
    assert pstats.Stats(str(out)).total_calls > 0


def test_run_with_trace_then_explain_job(tmp_path, capsys):
    trace_path = tmp_path / "run.jsonl"
    assert main(
        ["run", "Mixed", "--scale", "tiny", "--trace", str(trace_path)]
    ) == 0
    capsys.readouterr()

    from repro.obs import load_trace

    events = load_trace(trace_path)
    job_id = next(e["job"] for e in events if e["ev"] == "job.finished")
    assert main(["explain-job", str(trace_path), str(job_id)]) == 0
    out = capsys.readouterr().out
    assert f"job {job_id}:" in out
    assert "timeline:" in out
    assert "broadcast REQUEST" in out


def test_explain_job_json_output(tmp_path, capsys):
    import json

    trace_path = tmp_path / "run.jsonl"
    assert main(
        ["run", "Mixed", "--scale", "tiny", "--trace", str(trace_path)]
    ) == 0
    capsys.readouterr()
    from repro.obs import load_trace

    events = load_trace(trace_path)
    job_id = next(e["job"] for e in events if e["ev"] == "job.finished")
    assert main(
        ["explain-job", str(trace_path), str(job_id), "--json"]
    ) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["job"] == job_id
    assert payload["decisions"]


def test_explain_job_unknown_job_errors(tmp_path, capsys):
    trace_path = tmp_path / "run.jsonl"
    assert main(
        ["run", "Mixed", "--scale", "tiny", "--trace", str(trace_path)]
    ) == 0
    capsys.readouterr()
    assert main(["explain-job", str(trace_path), "999999"]) == 1
    assert "no events for job 999999" in capsys.readouterr().err


def test_trace_level_requires_trace_path():
    with pytest.raises(SystemExit):
        main(["run", "Mixed", "--scale", "tiny", "--trace-level", "kernel"])


def test_multi_seed_trace_requires_seed_placeholder(tmp_path):
    with pytest.raises(SystemExit):
        main(
            [
                "run", "Mixed", "--scale", "tiny", "--seeds", "2",
                "--trace", str(tmp_path / "t.jsonl"),
            ]
        )


def test_run_progress_reports_on_stderr(capsys):
    assert main(
        ["run", "Mixed", "--scale", "tiny", "--seeds", "2", "--progress",
         "--no-cache"]
    ) == 0
    err = capsys.readouterr().err
    assert "[1/2] runs complete" in err
    assert "[2/2] runs complete" in err


def test_serve_with_faults_and_chaos_exits_clean(capsys):
    assert main(
        [
            "serve", "iMixed", "--nodes", "4", "--jobs", "2",
            "--duration", "2400", "--time-scale", "600",
            "--faults", "--chaos",
        ]
    ) == 0
    captured = capsys.readouterr()
    assert "faults on" in captured.err
    assert "lifecycle chaos on" in captured.err
    assert "invariants: OK" in captured.out


def test_soak_runs_clean_and_streams_a_trace(tmp_path, capsys):
    trace_path = tmp_path / "soak.jsonl"
    assert main(
        [
            "soak", "--nodes", "4", "--jobs", "2",
            "--wall-seconds", "4", "--time-scale", "600",
            "--trace", str(trace_path),
        ]
    ) == 0
    captured = capsys.readouterr()
    assert "online invariant checker armed" in captured.err
    assert "events checked online" in captured.out
    assert "invariants: OK (online + post-run)" in captured.out
    from repro.obs import load_trace, validate_event

    events = load_trace(trace_path)
    assert events
    assert all(validate_event(event) == [] for event in events)


def test_soak_seeded_violation_exits_nonzero(tmp_path, capsys):
    assert main(
        [
            "soak", "--nodes", "4", "--jobs", "2",
            "--wall-seconds", "4", "--time-scale", "600",
            "--trace", str(tmp_path / "soak.jsonl"),
            "--seed-violation",
        ]
    ) == 1
    captured = capsys.readouterr()
    assert "VIOLATION (online):" in captured.err
    assert "double execution" in captured.out


def test_explain_job_reads_rotated_soak_segments(tmp_path, capsys):
    trace_path = tmp_path / "soak.jsonl"
    assert main(
        ["run", "Mixed", "--scale", "tiny", "--trace", str(trace_path)]
    ) == 0
    # Simulate a soak rotation: every event lands in backup segment .1,
    # leaving a fresh (empty) active file — the explainer must stitch.
    (tmp_path / "soak.jsonl.1").write_text(trace_path.read_text())
    trace_path.write_text("")
    from repro.obs import load_rotated_trace

    job_id = next(
        event["job"]
        for event in load_rotated_trace(str(trace_path))
        if event["ev"] == "job.finished"
    )
    capsys.readouterr()
    assert main(["explain-job", str(trace_path), str(job_id)]) == 0
    assert "timeline:" in capsys.readouterr().out


def test_explain_job_missing_trace_errors(tmp_path, capsys):
    assert main(["explain-job", str(tmp_path / "nope.jsonl"), "1"]) == 1
    assert "error:" in capsys.readouterr().err


def test_top_renders_down_nodes_without_servers(capsys):
    assert main(
        [
            "top", "--targets", "127.0.0.1:9,127.0.0.1:13",
            "--iterations", "1", "--interval", "0",
        ]
    ) == 0
    out = capsys.readouterr().out
    assert "ARiA fleet (repro top)" in out
    assert "down" in out
    assert "scrape failures 2" in out
