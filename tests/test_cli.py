"""Tests for the command-line interface."""

import pytest

from repro.cli import main


def test_list_prints_all_scenarios(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for name in ("FCFS", "iMixed", "iInform30m", "iAccuracyBad"):
        assert name in out


def test_run_prints_summary(capsys):
    assert main(["run", "Mixed", "--scale", "tiny"]) == 0
    out = capsys.readouterr().out
    assert "completed jobs" in out
    assert "avg completion" in out
    assert "traffic Request" in out


def test_run_with_profile_prints_report_and_summary(capsys):
    assert main(["run", "Mixed", "--scale", "tiny", "--profile"]) == 0
    captured = capsys.readouterr()
    assert "completed jobs" in captured.out  # normal summary still printed
    assert "cumulative" in captured.err  # cProfile table on stderr
    assert "function calls" in captured.err


def test_run_rejects_unknown_scenario():
    with pytest.raises(SystemExit):
        main(["run", "NotAScenario", "--scale", "tiny"])


def test_figure_renders(capsys):
    assert main(["figure", "fig4", "--scale", "tiny"]) == 0
    out = capsys.readouterr().out
    assert "Figure 4" in out
    assert "iDeadline" in out


def test_baseline_runs(capsys):
    assert main(["baseline", "random", "--scale", "tiny"]) == 0
    out = capsys.readouterr().out
    assert "completion" in out


def test_multi_seed_run(capsys):
    assert main(
        ["run", "Mixed", "--scale", "tiny", "--seeds", "2", "--seed-base", "3"]
    ) == 0
    assert "seeds (3, 4)" in capsys.readouterr().out


def test_trace_generation(tmp_path, capsys):
    path = tmp_path / "trace.json"
    assert main(
        ["trace", str(path), "--jobs", "25", "--deadline-slack", "7.5"]
    ) == 0
    assert "wrote 25 jobs" in capsys.readouterr().out
    from repro.workload import WorkloadTrace

    trace = WorkloadTrace.load(path)
    assert len(trace) == 25
    assert all(entry.deadline is not None for entry in trace)


def test_requires_subcommand():
    with pytest.raises(SystemExit):
        main([])
