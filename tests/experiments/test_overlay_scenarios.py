"""Runner support for alternative overlay topologies (future-work axis)."""

import dataclasses

import pytest

from repro.errors import ConfigurationError
from repro.experiments import ScenarioScale, get_scenario, run

TINY = ScenarioScale.tiny()


def overlay_scenario(kind):
    return dataclasses.replace(
        get_scenario("Mixed"), name=f"Mixed@{kind}", overlay=kind
    )


@pytest.mark.parametrize("kind", ["random_regular", "small_world", "scale_free"])
def test_static_overlays_run_the_workload(kind):
    result = run(overlay_scenario(kind), TINY, seed=1)
    metrics = result.metrics
    assert metrics.completed_jobs >= 0.85 * TINY.jobs
    assert (
        metrics.completed_jobs + metrics.unschedulable_count() <= TINY.jobs
    )


def test_ring_overlay_strands_jobs():
    # A plain ring's diameter dwarfs the 9-hop flood horizon: discovery
    # fails for a visible share of jobs (the ablation's point).
    ring_run = run(overlay_scenario("ring"), TINY, seed=1)
    blatant_run = run(get_scenario("Mixed"), TINY, seed=1)
    assert (
        ring_run.metrics.unschedulable_count()
        >= blatant_run.metrics.unschedulable_count()
    )


def test_unknown_overlay_rejected():
    with pytest.raises(ConfigurationError):
        run(overlay_scenario("hypercube"), TINY, seed=1)


def test_priority_scenarios_run():
    scenario = dataclasses.replace(
        get_scenario("iMixed"),
        name="iPriority",
        policies=("PRIORITY", "AGING"),
        priority_levels=(0, 1, 2),
    )
    result = run(scenario, TINY, seed=1)
    assert result.metrics.completed_jobs > 0
    priorities = {
        r.job.priority for r in result.metrics.records.values()
    }
    assert priorities == {0, 1, 2}
