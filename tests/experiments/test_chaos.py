"""Chaos harness: randomized fault schedules vs the protocol invariants.

The acceptance bar for the robustness work: under composed network faults
(≥5% i.i.d. loss, duplication, loss bursts, delay spikes, and a partition
window with heal) every protocol invariant holds across many seeds when
the reliability layer + fail-safe are ON — and the harness *detects*
violations when they are OFF, proving the checker has teeth.
"""

import random

import pytest

from repro.experiments import FaultPlan, RunOptions, ScenarioScale, run

TINY = ScenarioScale.tiny()

#: Seeds for the invariants-hold arm (the acceptance bar asks for >= 10).
CHAOS_SEEDS = list(range(10))


def _random_plan(seed: int, duration: float) -> FaultPlan:
    """A randomized-but-reproducible composed fault schedule."""
    rng = random.Random(seed * 7919 + 13)
    start = rng.uniform(0.2, 0.5) * duration
    return FaultPlan(
        loss=rng.uniform(0.05, 0.12),
        duplicate=rng.uniform(0.01, 0.05),
        burst_enter=rng.uniform(0.002, 0.01),
        burst_exit=rng.uniform(0.15, 0.3),
        burst_loss=0.9,
        delay_spike=rng.uniform(0.0, 0.02),
        delay_spike_mean=2.0,
        partitions=((start, start + 600.0),),
        partition_fraction=rng.uniform(0.2, 0.4),
    )


@pytest.mark.parametrize("seed", CHAOS_SEEDS)
def test_invariants_hold_under_randomized_faults(seed):
    plan = _random_plan(seed, TINY.duration)
    result = run(
        plan,
        TINY,
        seed=seed,
        options=RunOptions(reliability=True, failsafe=True),
    )
    assert result.extra_violations == []
    summary = result.summary()
    assert summary.violations == []
    # The run was genuinely hostile: faults actually fired.
    assert result.network["lost"] > 0
    assert result.network["reliable_retransmissions"] > 0


def test_violations_detected_without_reliability():
    """The checker must have teeth: with the recovery machinery off, the
    same fault schedules break at least one invariant on some seed."""
    detected = 0
    for seed in range(6):
        plan = _random_plan(seed, TINY.duration)
        result = run(
            plan,
            TINY,
            seed=seed,
            options=RunOptions(reliability=False, failsafe=False),
        )
        if result.extra_violations:
            detected += 1
            # The findings also reach the summary consumers.
            assert any(
                v in result.summary().violations
                for v in result.extra_violations
            )
    assert detected >= 1


def test_chaos_plan_round_trips_through_the_engine():
    plan = FaultPlan.chaos(TINY.duration)
    result = run(plan, TINY, seed=0)
    assert result.extra_violations == []
    assert result.network["fault_partition_dropped"] >= 0
    assert result.metrics.completed_jobs > 0
