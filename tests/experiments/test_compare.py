"""Tests for the statistical scenario comparison."""

import pytest

from repro.errors import ConfigurationError
from repro.experiments import ScenarioScale
from repro.experiments.compare import ComparisonResult, compare_scenarios

TINY = ScenarioScale.tiny()


def test_welch_on_clearly_different_scenarios():
    # HighLoad vs LowLoad waiting times differ sharply and consistently.
    result = compare_scenarios(
        "HighLoad", "LowLoad", "waiting_time", TINY, seeds=(0, 1, 2, 3)
    )
    assert result.mean_a > result.mean_b
    assert result.p_value is not None
    assert result.t_statistic > 0
    assert result.exact  # scipy available in the dev environment


def test_identical_scenarios_are_not_significant():
    result = compare_scenarios(
        "Mixed", "Mixed", "completion_time", TINY, seeds=(0, 1, 2)
    )
    assert result.mean_a == result.mean_b
    # Zero variance difference => no t statistic at all.
    assert result.p_value is None or not result.significant


def test_unknown_metric_rejected():
    with pytest.raises(ConfigurationError):
        compare_scenarios("Mixed", "iMixed", "happiness", TINY, seeds=(0, 1))


def test_too_few_seeds_rejected():
    with pytest.raises(ConfigurationError):
        compare_scenarios("Mixed", "iMixed", scale=TINY, seeds=(0,))


def test_custom_metric_function():
    result = compare_scenarios(
        "Mixed",
        "iMixed",
        metric="events",
        scale=TINY,
        seeds=(0, 1),
        metric_fn=lambda run: float(run.executed_events),
    )
    # Rescheduling produces strictly more protocol events.
    assert result.mean_b > result.mean_a


def test_render_mentions_verdict():
    result = ComparisonResult(
        scenario_a="A",
        scenario_b="B",
        metric="m",
        values_a=[1.0, 2.0],
        values_b=[10.0, 11.0],
        mean_a=1.5,
        mean_b=10.5,
        t_statistic=-5.0,
        p_value=0.01,
        exact=True,
    )
    out = result.render()
    assert "p=0.0100" in out and "significant" in out
    assert result.significant
