"""Unit tests for text rendering helpers."""

from repro.experiments import render_series, render_table
from repro.experiments.report import fmt_hours, fmt_opt
from repro.types import HOUR


def test_fmt_hours():
    assert fmt_hours(2.5 * HOUR) == "2h30m"
    assert fmt_hours(None) == "-"
    assert fmt_hours(90.0) == "1m30s"


def test_fmt_opt():
    assert fmt_opt(None) == "-"
    assert fmt_opt(1.234, ".2f") == "1.23"


def test_render_table_alignment():
    out = render_table(["name", "v"], [["a", "1"], ["longer", "22"]])
    lines = out.splitlines()
    assert len(lines) == 4
    assert lines[0].startswith("name")
    assert all(len(line) == len(lines[0]) for line in lines[1:])


def test_render_series_samples_requested_points():
    series = {"x": [(float(i) * HOUR, float(i)) for i in range(100)]}
    out = render_series(series, points=5)
    lines = out.splitlines()
    header = lines[0].split()
    assert header[0] == "t"
    assert len(header) == 6  # t + 5 samples
    assert "0.0h" in header[1]
    assert "99.0h" in header[-1]


def test_render_series_handles_empty():
    assert "series" in render_series({})
    assert "series" in render_series({"x": []})


def test_render_series_multiple_rows():
    series = {
        "a": [(0.0, 1.0), (HOUR, 2.0)],
        "b": [(0.0, 3.0), (HOUR, 4.0)],
    }
    out = render_series(series, points=2)
    assert "a" in out and "b" in out
