"""Tests for the failure-injection experiment module."""

import pytest

from repro.errors import ConfigurationError
from repro.experiments import RunOptions, ScenarioScale, run
from repro.experiments.failures import CrashPlan

TINY = ScenarioScale.tiny()


def lost_jobs(metrics):
    return [
        record
        for record in metrics.records.values()
        if not record.completed and not record.unschedulable
    ]


def test_crash_plan_validation():
    with pytest.raises(ConfigurationError):
        CrashPlan(fraction=0.0)
    with pytest.raises(ConfigurationError):
        CrashPlan(fraction=1.0)
    with pytest.raises(ConfigurationError):
        CrashPlan(start=-1.0)


@pytest.fixture(scope="module")
def crash_runs():
    plan = CrashPlan(fraction=0.25, start=3600.0)
    return {
        failsafe: run(
            plan, TINY, seed=1, options=RunOptions(failsafe=failsafe)
        )
        for failsafe in (False, True)
    }


def test_crashes_actually_happen(crash_runs):
    run = crash_runs[False]
    assert run.node_count_series[0][1] == TINY.nodes
    assert run.node_count_series[-1][1] == TINY.nodes - round(0.25 * TINY.nodes)


def test_failsafe_recovers_jobs(crash_runs):
    baseline = crash_runs[False].metrics
    failsafe = crash_runs[True].metrics
    # The fail-safe can only help: never more lost jobs, never fewer
    # completions.  This legacy crash path runs with adoption off, so a
    # job whose *initiator* crashed has nobody tracking it (the
    # FailureModel path's orphan adoption closes that gap — see
    # test_failure_model.py), and a resubmission whose only matching
    # nodes died ends as unschedulable — so the strict assertions are on
    # engagement.
    assert len(lost_jobs(failsafe)) <= len(lost_jobs(baseline))
    assert failsafe.completed_jobs >= baseline.completed_jobs
    if lost_jobs(baseline):
        assert sum(r.resubmissions for r in failsafe.records.values()) > 0


def test_failsafe_traffic_includes_probe_messages(crash_runs):
    traffic = crash_runs[True].traffic.bytes_by_type
    assert traffic.get("Probe", 0) > 0
    assert traffic.get("ProbeReply", 0) > 0
    baseline_traffic = crash_runs[False].traffic.bytes_by_type
    assert "Probe" not in baseline_traffic


def test_scenario_names_are_labelled(crash_runs):
    assert crash_runs[False].scenario.name == "iMixed+crash"
    assert crash_runs[True].scenario.name == "iMixed+crash+failsafe"
