"""Tests for the consolidated RunOptions spec."""

import dataclasses

import pytest

from repro.errors import ConfigurationError
from repro.experiments import (
    ChurnPlan,
    RunOptions,
    ScenarioScale,
    get_scenario,
    run,
)

TINY = ScenarioScale.tiny()


def test_defaults_produce_empty_spec_options():
    # The empty-options payload must be byte-identical to a bare call,
    # so unset fields never leak into cache keys or golden summaries.
    assert RunOptions().spec_options() == {}


def test_spec_options_excludes_only_unset_fields():
    options = RunOptions(failsafe=False, probe_interval=300.0)
    assert options.spec_options() == {
        "failsafe": False,  # an explicit False is set, not unset
        "probe_interval": 300.0,
    }


def test_mechanics_never_join_spec_options():
    options = RunOptions(parallel=4, progress=True, seed_timeout=60.0)
    assert options.spec_options() == {}


def test_options_are_frozen():
    with pytest.raises(dataclasses.FrozenInstanceError):
        RunOptions().failsafe = True


def test_policies_normalize_to_tuple():
    assert RunOptions(policies=["FCFS"]).policies == ("FCFS",)


def test_merged_applies_changes_and_validates_names():
    base = RunOptions(failsafe=True)
    merged = base.merged(probe_interval=120.0)
    assert merged.failsafe is True
    assert merged.probe_interval == 120.0
    with pytest.raises(ConfigurationError):
        base.merged(warp_drive=True)


def test_from_legacy_accepts_spec_names_only():
    options = RunOptions.from_legacy({"failsafe": True})
    assert options.failsafe is True
    with pytest.raises(ConfigurationError):
        RunOptions.from_legacy({"parallel": 2})  # a mechanic, never legacy
    with pytest.raises(ConfigurationError):
        RunOptions.from_legacy({"nonsense": 1})


def test_engine_rejects_inapplicable_options():
    # RunOptions guards names; the engine still guards applicability.
    with pytest.raises(ConfigurationError):
        run(
            get_scenario("Mixed"),
            TINY,
            seed=0,
            options=RunOptions(failsafe=True),
        )


def test_legacy_kwargs_warn_but_match_options():
    plan = ChurnPlan(interval=300.0, start=1800.0, end=9000.0)
    with pytest.warns(DeprecationWarning):
        legacy = run(plan, TINY, seed=1, failsafe=True)
    modern = run(plan, TINY, seed=1, options=RunOptions(failsafe=True))
    assert legacy.summary().to_dict() == modern.summary().to_dict()


def test_unknown_legacy_kwarg_raises():
    with pytest.raises(ConfigurationError):
        run(get_scenario("Mixed"), TINY, seed=0, warp_drive=True)
