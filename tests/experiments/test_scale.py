"""Unit tests for scenario scaling."""

import pytest

from repro.errors import ConfigurationError
from repro.experiments import ScenarioScale, bench_scale_from_env


def test_paper_scale_matches_evaluation_section():
    scale = ScenarioScale.paper()
    assert scale.nodes == 500
    assert scale.jobs == 1000
    assert scale.duration == 150_000.0  # 41 h 40 m
    assert scale.expanding_extra_nodes == 200  # 500 -> 700
    assert scale.expanding_start == 5_000.0  # 1 h 23 m
    assert scale.expanding_end == 15_000.0  # ~4 h 10 m
    assert scale.interval_factor == 1.0


def test_interval_factor_preserves_per_node_rate():
    small = ScenarioScale.small()
    # nodes scaled by f, interval scaled by 1/f: per-node arrival unchanged.
    assert small.interval_factor * small.nodes == pytest.approx(500)


def test_stock_scales_are_valid_and_ordered():
    tiny, small, medium, paper, large, huge = (
        ScenarioScale.tiny(),
        ScenarioScale.small(),
        ScenarioScale.medium(),
        ScenarioScale.paper(),
        ScenarioScale.large(),
        ScenarioScale.huge(),
    )
    assert (
        tiny.nodes < small.nodes < medium.nodes < paper.nodes
        < large.nodes < huge.nodes
    )
    assert (
        tiny.jobs < small.jobs < medium.jobs < paper.jobs
        < large.jobs < huge.jobs
    )


def test_scale_up_presets_keep_per_node_rate():
    for factory in (ScenarioScale.large, ScenarioScale.huge):
        scale = factory()
        # Same load shape as the paper: jobs and nodes scale together ...
        assert scale.jobs / scale.nodes == pytest.approx(1000 / 500)
        # ... and the Table II intervals shrink by the node-count ratio.
        assert scale.interval_factor == pytest.approx(500 / scale.nodes)


def test_scale_validation():
    with pytest.raises(ConfigurationError):
        ScenarioScale(nodes=1)
    with pytest.raises(ConfigurationError):
        ScenarioScale(jobs=0)
    with pytest.raises(ConfigurationError):
        ScenarioScale(expanding_fraction=1.5)
    with pytest.raises(ConfigurationError):
        ScenarioScale(expanding_start=10.0, expanding_end=5.0)
    with pytest.raises(ConfigurationError):
        ScenarioScale(sample_interval=0.0)


def test_sample_interval_must_scale_with_duration():
    # 150 000 s at a 1 s cadence would emit 150k probe events per series.
    with pytest.raises(ConfigurationError, match="sample_interval"):
        ScenarioScale(sample_interval=1.0)
    # The same cadence is fine once the duration shrinks to match.
    ScenarioScale(
        duration=5_000.0,
        expanding_start=1_000.0,
        expanding_end=4_000.0,
        sample_interval=1.0,
    )


def test_bench_scale_from_env(monkeypatch):
    monkeypatch.setenv("ARIA_BENCH_SCALE", "tiny")
    assert bench_scale_from_env().nodes == ScenarioScale.tiny().nodes
    monkeypatch.setenv("ARIA_BENCH_SCALE", "paper")
    assert bench_scale_from_env().nodes == 500
    monkeypatch.delenv("ARIA_BENCH_SCALE")
    assert bench_scale_from_env().nodes == ScenarioScale.small().nodes
    monkeypatch.setenv("ARIA_BENCH_SCALE", "large")
    assert bench_scale_from_env().nodes == 10_000
    monkeypatch.setenv("ARIA_BENCH_SCALE", "huge")
    assert bench_scale_from_env().nodes == 100_000
    monkeypatch.setenv("ARIA_BENCH_SCALE", "bogus")
    with pytest.raises(ConfigurationError) as err:
        bench_scale_from_env()
    # The error names every preset, including the scale-up ones.
    assert "large" in str(err.value) and "huge" in str(err.value)
