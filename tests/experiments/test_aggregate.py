"""Unit tests for multi-run aggregation."""

import pytest

from repro.experiments import (
    ScenarioScale,
    average_series,
    get_scenario,
    run,
    summarize_runs,
)

TINY = ScenarioScale.tiny()


def test_average_series_pointwise():
    a = [(0.0, 1.0), (1.0, 3.0)]
    b = [(0.0, 3.0), (1.0, 5.0)]
    assert average_series([a, b]) == [(0.0, 2.0), (1.0, 4.0)]


def test_average_series_truncates_to_shortest():
    a = [(0.0, 1.0), (1.0, 1.0), (2.0, 1.0)]
    b = [(0.0, 3.0), (1.0, 3.0)]
    assert len(average_series([a, b])) == 2


def test_average_series_empty():
    assert average_series([]) == []


def test_summarize_runs_averages_metrics():
    runs = [run(get_scenario("Mixed"), TINY, seed=s) for s in (1, 2)]
    summary = summarize_runs(runs)
    assert summary.runs == 2
    assert summary.scenario_name == "Mixed"
    expected = (
        runs[0].metrics.completed_jobs + runs[1].metrics.completed_jobs
    ) / 2
    assert summary.completed_jobs == expected
    assert summary.average_completion_time is not None
    assert len(summary.idle_series) == len(runs[0].idle_series)
    assert summary.traffic_bytes["Request"] > 0


def test_summarize_runs_rejects_mixed_scenarios():
    a = [run(get_scenario("Mixed"), TINY, seed=1)]
    b = [run(get_scenario("iMixed"), TINY, seed=1)]
    with pytest.raises(ValueError):
        summarize_runs(a + b)


def test_summarize_runs_rejects_empty():
    with pytest.raises(ValueError):
        summarize_runs([])


def test_summary_json_roundtrip(tmp_path):
    import json

    runs = [run(get_scenario("Mixed"), TINY, seed=1)]
    summary = summarize_runs(runs)
    path = tmp_path / "summary.json"
    summary.save(path)
    loaded = json.loads(path.read_text())
    assert loaded["scenario_name"] == "Mixed"
    assert loaded["completed_jobs"] == summary.completed_jobs
    assert loaded["traffic_bytes"]["Request"] > 0
    assert loaded["idle_series"][0] == [0.0, float(TINY.nodes)]
