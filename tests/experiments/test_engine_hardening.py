"""Batch-engine hardening: crashed / hung workers degrade per seed.

These tests drive ``run_batch``'s parallel path through the
``$ARIA_TEST_WORKER_FAULT`` hook (see ``engine._inject_worker_fault``):
a worker that hard-exits or wedges for one designated seed must cost at
most that seed — after one automatic retry the failure is recorded in
``BatchResult.errors`` while every other seed's summary still comes
back, bit-identical to a serial run.
"""

from repro.experiments import BatchResult, ScenarioScale, run_batch

TINY = ScenarioScale.tiny()


def tiny_batch(seeds, **kwargs):
    return run_batch("iMixed", TINY, seeds=seeds, cache=False, **kwargs)


def serial_dicts(seeds):
    return {
        summary.seed: summary.to_dict()
        for summary in tiny_batch(seeds, parallel=1)
    }


def test_serial_path_returns_an_ok_batch_result():
    result = tiny_batch([0], parallel=1)
    assert isinstance(result, BatchResult)
    assert result.ok
    assert result.errors == {}
    assert len(result) == 1


def test_crashed_worker_is_retried_once_and_recovers(monkeypatch, tmp_path):
    marker = tmp_path / "first-strike"
    monkeypatch.setenv("ARIA_TEST_WORKER_FAULT", f"crash_once:1:{marker}")
    result = tiny_batch([0, 1, 2], parallel=2)
    assert marker.exists()  # the first attempt did die
    assert result.ok
    assert [summary.seed for summary in result] == [0, 1, 2]


def test_persistently_crashing_seed_degrades_to_an_error(monkeypatch):
    monkeypatch.setenv("ARIA_TEST_WORKER_FAULT", "crash:1")
    result = tiny_batch([0, 1, 2], parallel=2)
    assert not result.ok
    assert list(result.errors) == [1]
    assert "worker process died" in result.errors[1]
    # The surviving seeds are unharmed by the pool breakage — present,
    # in order, and bit-identical to a serial run.
    expected = serial_dicts([0, 2])
    assert {s.seed: s.to_dict() for s in result} == expected


def test_hung_worker_is_timed_out_and_recorded(monkeypatch):
    monkeypatch.setenv("ARIA_TEST_WORKER_FAULT", "hang:2")
    result = tiny_batch([0, 1, 2], parallel=2, seed_timeout=10.0)
    assert list(result.errors) == [2]
    assert "timed out after 10s" in result.errors[2]
    assert [summary.seed for summary in result] == [0, 1]


def test_seed_timeout_leaves_healthy_batches_alone():
    result = tiny_batch([0, 1], parallel=2, seed_timeout=120.0)
    assert result.ok
    assert [summary.seed for summary in result] == [0, 1]
